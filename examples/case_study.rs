//! The paper's Fig. 3 case study, step by step.
//!
//! Two extenders (PLC 60 / 20 Mbit/s) and two users. Watch the three
//! association strategies land at 22, 30, and 40 Mbit/s.
//!
//! ```text
//! cargo run -p wolt-examples --bin case_study
//! ```

use wolt_core::baselines::{Greedy, Optimal, Rssi};
use wolt_core::{evaluate, AssociationPolicy, Network, Wolt};
use wolt_examples::{banner, mbps};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Fig. 3 case study");
    println!("extender 1: PLC 60 Mbit/s   extender 2: PLC 20 Mbit/s");
    println!("user 1 WiFi rates: 15 / 10  user 2 WiFi rates: 40 / 20");

    let network = Network::from_raw(vec![60.0, 20.0], vec![vec![15.0, 10.0], vec![40.0, 20.0]])?;

    let wolt = Wolt::new();
    let greedy = Greedy::new();
    let optimal = Optimal::new();
    let policies: [(&dyn AssociationPolicy, &str); 4] = [
        (
            &Rssi,
            "both users chase the strongest signal and pile onto extender 1",
        ),
        (
            &greedy,
            "arrivals optimize one at a time; leftover PLC airtime rescues user 2",
        ),
        (&optimal, "brute force over all 4 associations"),
        (
            &wolt,
            "phase I matches users to extenders, phase II fills in the rest",
        ),
    ];

    for (policy, story) in policies {
        let association = policy.associate(&network)?;
        let eval = evaluate(&network, &association)?;
        banner(policy.name());
        println!("{story}");
        for user in 0..2 {
            println!(
                "  user {} -> extender {}: {}",
                user + 1,
                association.target(user).expect("complete") + 1,
                mbps(eval.per_user[user].value())
            );
        }
        println!("  aggregate: {}", mbps(eval.aggregate.value()));
    }

    banner("takeaway");
    println!("RSSI ~22, Greedy 30, Optimal 40 — and WOLT recovers the optimum");
    println!("in polynomial time, exactly as the paper's Fig. 3 reports.");
    Ok(())
}
