//! Shared helpers for the WOLT examples.
//!
//! The runnable examples live in this package as binaries:
//!
//! * `quickstart` — build a network by hand, run WOLT, inspect the result.
//! * `case_study` — the paper's Fig. 3 walkthrough with commentary.
//! * `enterprise_floor` — generate a full enterprise scenario and compare
//!   all policies.
//! * `online_dynamics` — users arriving/departing over epochs.
//! * `controller_protocol` — the threaded Central-Controller rig.
//!
//! Run any of them with `cargo run -p wolt-examples --bin <name>`.

/// Prints a section banner.
pub fn banner(title: &str) {
    println!();
    println!("== {title} ==");
}

/// Formats Mbit/s values consistently across examples.
pub fn mbps(v: f64) -> String {
    format!("{v:6.2} Mbit/s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbps_formats() {
        assert_eq!(mbps(1.5), "  1.50 Mbit/s");
    }
}
