//! The Central Controller protocol, live: client threads scan, attach,
//! report, and follow directives over channels.
//!
//! This is the paper's testbed software architecture (§V-A) running on
//! real threads against the simulated lab.
//!
//! ```text
//! cargo run -p wolt-examples --bin controller_protocol
//! ```

use wolt_examples::{banner, mbps};
use wolt_sim::scenario::ScenarioConfig;
use wolt_sim::Scenario;
use wolt_support::rng::ChaCha8Rng;
use wolt_support::rng::SeedableRng;
use wolt_testbed::{run_rig, ControllerPolicy, RigConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("central-controller rig (3 extenders, 7 laptops)");
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let scenario = Scenario::generate(&ScenarioConfig::lab(7), &mut rng)?;

    for policy in [
        ControllerPolicy::Rssi,
        ControllerPolicy::Greedy,
        ControllerPolicy::Wolt,
    ] {
        let outcome = run_rig(&scenario, &RigConfig::new(policy), 0)?;
        banner(policy.name());
        println!(
            "aggregate {}   directives sent: {}   clients moved off RSSI attach: {}",
            mbps(outcome.aggregate),
            outcome.directives,
            outcome.switches
        );
        for (user, t) in outcome.per_user.iter().enumerate() {
            println!(
                "  laptop {user} on extender {}: {}",
                outcome.association.target(user).expect("complete"),
                mbps(*t)
            );
        }
    }

    banner("takeaway");
    println!("the RSSI default sends no directives; WOLT's re-association messages");
    println!("buy the aggregate-throughput improvement the paper measures in Fig. 4a.");
    Ok(())
}
