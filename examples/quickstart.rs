//! Quickstart: build a small PLC-WiFi network by hand and let WOLT
//! configure it.
//!
//! ```text
//! cargo run -p wolt-examples --bin quickstart
//! ```

use wolt_core::{evaluate, AssociationPolicy, Network, Wolt};
use wolt_examples::{banner, mbps};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("WOLT quickstart");

    // Three extenders with different PLC backhaul capacities (Mbit/s)...
    let capacities = vec![120.0, 45.0, 80.0];
    // ...and five users with their achievable WiFi rate to each extender
    // (rows = users, columns = extenders; 0.0 = out of range).
    let rates = vec![
        vec![40.0, 8.0, 0.0],
        vec![35.0, 12.0, 5.0],
        vec![6.0, 30.0, 11.0],
        vec![0.0, 22.0, 28.0],
        vec![9.0, 0.0, 33.0],
    ];
    let network = Network::from_raw(capacities, rates)?;

    // Run the full two-phase WOLT algorithm.
    let association = Wolt::new().associate(&network)?;

    banner("association");
    for user in 0..network.users() {
        let ext = association.target(user).expect("complete association");
        println!(
            "user {user} -> extender {ext} (WiFi rate {})",
            mbps(network.rate(user, ext).expect("reachable").value())
        );
    }

    // Score it under the physical model (throughput-fair WiFi, time-fair
    // PLC with airtime redistribution).
    let eval = evaluate(&network, &association)?;
    banner("throughput");
    for (user, t) in eval.per_user.iter().enumerate() {
        println!("user {user}: {}", mbps(t.value()));
    }
    println!("aggregate: {}", mbps(eval.aggregate.value()));
    println!(
        "fairness (Jain): {:.2}",
        wolt_core::fairness::jain_index(&eval.per_user).expect("non-zero throughputs")
    );

    Ok(())
}
