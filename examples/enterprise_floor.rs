//! A full enterprise floor: 15 extenders, 36 users, all policies.
//!
//! Generates the paper's 100 m × 100 m simulation scenario (random
//! outlets, building-calibrated PLC capacities, distance-derived WiFi
//! rates) and compares WOLT with every baseline.
//!
//! ```text
//! cargo run -p wolt-examples --bin enterprise_floor [seed]
//! ```

use wolt_core::baselines::{Greedy, Random, Rssi, SelfishGreedy};
use wolt_core::{evaluate, AssociationPolicy, Wolt};
use wolt_examples::{banner, mbps};
use wolt_sim::scenario::ScenarioConfig;
use wolt_sim::Scenario;
use wolt_support::rng::ChaCha8Rng;
use wolt_support::rng::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(2020);

    banner(&format!("enterprise floor (seed {seed})"));
    let config = ScenarioConfig::enterprise(36);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let scenario = Scenario::generate(&config, &mut rng)?;
    let network = scenario.network()?;

    println!(
        "{} extenders, {} users on a {:.0} m x {:.0} m floor",
        network.extenders(),
        network.users(),
        config.width,
        config.height
    );
    let caps: Vec<f64> = scenario.capacities.iter().map(|c| c.value()).collect();
    println!(
        "PLC capacities: {:.0}-{:.0} Mbit/s across outlets",
        caps.iter().cloned().fold(f64::INFINITY, f64::min),
        caps.iter().cloned().fold(0.0, f64::max),
    );

    banner("policy comparison");
    let wolt = Wolt::new();
    let greedy = Greedy::new();
    let selfish = SelfishGreedy::new();
    let random = Random::new(seed);
    let policies: [&dyn AssociationPolicy; 5] = [&wolt, &greedy, &selfish, &Rssi, &random];
    for policy in policies {
        let association = policy.associate(&network)?;
        let eval = evaluate(&network, &association)?;
        let jain = wolt_core::fairness::jain_index(&eval.per_user).unwrap_or(0.0);
        println!(
            "{:>14}: aggregate {}  jain {:.2}",
            policy.name(),
            mbps(eval.aggregate.value()),
            jain
        );
    }

    Ok(())
}
