//! Online dynamics: users arrive and depart; WOLT reconfigures each epoch.
//!
//! Reproduces the setting of the paper's Fig. 6b/6c at example scale.
//!
//! ```text
//! cargo run -p wolt-examples --bin online_dynamics
//! ```

use wolt_examples::banner;
use wolt_sim::dynamics::DynamicsConfig;
use wolt_sim::experiment::{DynamicSimulation, OnlinePolicy};
use wolt_sim::scenario::ScenarioConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("online dynamics (Poisson arrivals λ=3, departures μ=1)");

    let sim = DynamicSimulation::new(ScenarioConfig::enterprise(36), DynamicsConfig::default());
    let epochs = 4;

    for policy in [
        OnlinePolicy::Wolt,
        OnlinePolicy::GreedyOnline,
        OnlinePolicy::Rssi,
    ] {
        banner(policy.name());
        println!("epoch | users | arrivals | departures | aggregate Mbit/s | reassignments");
        for record in sim.run(policy, epochs, 7)? {
            println!(
                "{:>5} | {:>5} | {:>8} | {:>10} | {:>16.2} | {:>13}",
                record.epoch,
                record.users,
                record.arrivals,
                record.departures,
                record.aggregate,
                record.reassignments
            );
        }
    }

    banner("takeaway");
    println!("WOLT re-assigns a bounded handful of users per epoch and stays ahead");
    println!("of the never-reassigning greedy policy as the population grows.");
    Ok(())
}
