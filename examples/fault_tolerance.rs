//! Fault tolerance: extenders fail, users move, WOLT adapts — on a budget.
//!
//! Combines the failure-injection extensions: per-epoch extender outages
//! and user mobility, with the budgeted `OnlineWolt` reconfiguration that
//! caps how many users get re-association directives per epoch.
//!
//! ```text
//! cargo run -p wolt-examples --bin fault_tolerance
//! ```

use wolt_core::baselines::Rssi;
use wolt_core::{evaluate, AssociationPolicy, OnlineWolt, Wolt};
use wolt_examples::{banner, mbps};
use wolt_sim::dynamics::DynamicsConfig;
use wolt_sim::experiment::{DynamicSimulation, OnlinePolicy};
use wolt_sim::perturb::{MobilityConfig, OutageConfig};
use wolt_sim::scenario::ScenarioConfig;
use wolt_sim::Scenario;
use wolt_support::rng::ChaCha8Rng;
use wolt_support::rng::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("part 1: WOLT vs RSSI while extenders fail and users move");
    let sim = DynamicSimulation::new(ScenarioConfig::enterprise(30), DynamicsConfig::default())
        .with_outages(OutageConfig {
            probability: 0.2,
            max_concurrent: 4,
        })
        .with_mobility(MobilityConfig { max_step: 6.0 });

    for policy in [OnlinePolicy::Wolt, OnlinePolicy::Rssi] {
        banner(policy.name());
        println!("epoch | users | down | moved | aggregate");
        for r in sim.run(policy, 5, 42)? {
            println!(
                "{:>5} | {:>5} | {:>4} | {:>5} | {}",
                r.epoch,
                r.users,
                r.down_extenders,
                r.moved_users,
                mbps(r.aggregate)
            );
        }
    }

    banner("part 2: bounded re-association from a cold RSSI start");
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let scenario = Scenario::generate(&ScenarioConfig::enterprise(24), &mut rng)?;
    let network = scenario.network()?;
    let start = Rssi.associate(&network)?;
    let full = evaluate(&network, &Wolt::new().associate(&network)?)?.aggregate;

    println!("budget | aggregate | share of full WOLT");
    for budget in [0usize, 2, 4, 8, usize::MAX] {
        let outcome = OnlineWolt::new()
            .with_move_budget(budget)
            .reconfigure(&network, &start)?;
        println!(
            "{:>6} | {} | {:>5.1}%",
            if budget == usize::MAX {
                "inf".to_string()
            } else {
                budget.to_string()
            },
            mbps(outcome.aggregate.value()),
            100.0 * outcome.aggregate.value() / full.value()
        );
    }

    banner("takeaway");
    println!("coverage-preserving outages cost throughput roughly in proportion to");
    println!("the airtime lost, and a handful of budgeted moves per epoch captures");
    println!("most of what unlimited re-association would deliver.");
    Ok(())
}
