//! Capacity planning: how many extenders does this floor actually need?
//!
//! Sweeps the extender count on a fixed user population and reports
//! WOLT's aggregate throughput — the deployment question an operator asks
//! before buying hardware. Illustrates the diminishing-returns knee: each
//! extra extender splits the PLC medium further, so beyond the knee more
//! extenders can even *hurt*.
//!
//! ```text
//! cargo run -p wolt-examples --bin capacity_planning
//! ```

use wolt_core::{evaluate, AssociationPolicy, Wolt};
use wolt_examples::{banner, mbps};
use wolt_sim::scenario::ScenarioConfig;
use wolt_sim::Scenario;
use wolt_support::rng::ChaCha8Rng;
use wolt_support::rng::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("capacity planning: extender-count sweep (36 users, 100 m x 100 m)");
    println!("extenders | WOLT aggregate | per-user mean");

    let mut best = (0usize, 0.0f64);
    for extenders in [3usize, 5, 8, 10, 12, 15, 20] {
        let mut config = ScenarioConfig::enterprise(36);
        config.extenders = extenders;

        // Average over a few seeds so the sweep reflects the model, not
        // one lucky layout.
        let seeds = [1u64, 2, 3, 4, 5];
        let mut total = 0.0;
        for &seed in &seeds {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let scenario = Scenario::generate(&config, &mut rng)?;
            let network = scenario.network()?;
            let assoc = Wolt::new().associate(&network)?;
            total += evaluate(&network, &assoc)?.aggregate.value();
        }
        let mean = total / seeds.len() as f64;
        if mean > best.1 {
            best = (extenders, mean);
        }
        println!("{extenders:>9} | {} | {}", mbps(mean), mbps(mean / 36.0));
    }

    banner("takeaway");
    println!(
        "the sweet spot for this floor is around {} extenders ({} aggregate):",
        best.0,
        mbps(best.1)
    );
    println!("too few starves WiFi coverage; too many splits the shared PLC medium");
    println!("into slivers — exactly the tension WOLT's utility min(c_j/|A|, r_ij) encodes.");
    Ok(())
}
