//! Seeded, deterministic fault injection for the testbed rig.
//!
//! The paper's testbed is a real enterprise network: client reports cross
//! a real medium, directives can be lost or delayed, and extender-attached
//! laptops crash or hang without notice. A [`FaultPlan`] reproduces those
//! conditions on the rig's channels — message **drop**, **delay**, and
//! **duplication** on the client ↔ Central Controller links, plus two
//! agent-level faults: **crash** (the agent thread exits right after its
//! first scan report, without ever sending `Departed`) and **wedge** (the
//! agent keeps running but never applies or acknowledges a directive).
//!
//! # Determinism contract
//!
//! Every per-message decision is a pure function of
//! `(plan seed, link, message identity)`, where the identity is the
//! message's protocol key — `(client, epoch, attempt)` for reports and
//! departure notices, `(client, seq, attempt)` for directives and acks —
//! **not** a draw from a shared sequential RNG stream. Thread scheduling,
//! retry timing, and the number of retransmissions therefore cannot shift
//! any other message's fate: two runs with the same seed and plan make
//! identical drop/duplicate/delay decisions for every message identity
//! they have in common, and the session outcome is byte-identical
//! regardless of wall-clock jitter or `WOLT_THREADS`. The workspace
//! integration tests pin this at 1/2/8 threads.

use std::time::Duration;

use wolt_support::rng::{ChaCha8Rng, Rng, RngCore, SeedableRng, SplitMix64};

use crate::TestbedError;

/// Per-link message fault rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability that a message is silently dropped.
    pub drop: f64,
    /// Probability that a delivered message is delivered twice.
    pub duplicate: f64,
    /// Maximum extra in-flight latency; each delivered message is delayed
    /// by a uniform draw from `[0, max_delay]`.
    pub max_delay: Duration,
}

impl LinkFaults {
    /// A perfectly reliable link.
    pub const fn none() -> Self {
        Self {
            drop: 0.0,
            duplicate: 0.0,
            max_delay: Duration::ZERO,
        }
    }

    /// Whether this link injects no faults at all.
    pub fn is_none(&self) -> bool {
        self.drop == 0.0 && self.duplicate == 0.0 && self.max_delay.is_zero()
    }

    fn validate(&self, link: &'static str) -> Result<(), TestbedError> {
        for (name, p) in [("drop", self.drop), ("duplicate", self.duplicate)] {
            if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                return Err(TestbedError::AssignmentFailed {
                    context: format!("fault plan: {link} {name} probability {p} outside [0, 1]"),
                });
            }
        }
        Ok(())
    }
}

/// Which rig link a message travels on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Link {
    /// Client agent → Central Controller (reports, acks, departures).
    ToCc,
    /// Central Controller → client agent (directives).
    ToClient,
}

/// The stable identity of one message transmission, used to key its fault
/// decision. Retries of the same logical message differ in `attempt` and
/// get independent decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageKey {
    /// Message kind discriminant (report / departed / ack / directive).
    pub kind: u8,
    /// Client index.
    pub client: u64,
    /// Epoch (reports, departures) or directive sequence number (acks,
    /// directives).
    pub marker: u64,
    /// Delivery attempt, 1-based.
    pub attempt: u64,
}

impl MessageKey {
    /// Key for a scan report.
    pub fn report(client: usize, epoch: u64, attempt: u32) -> Self {
        Self {
            kind: 0,
            client: client as u64,
            marker: epoch,
            attempt: u64::from(attempt),
        }
    }

    /// Key for a departure notice.
    pub fn departed(client: usize, epoch: u64, attempt: u32) -> Self {
        Self {
            kind: 1,
            client: client as u64,
            marker: epoch,
            attempt: u64::from(attempt),
        }
    }

    /// Key for a directive ack.
    pub fn ack(client: usize, seq: u64, attempt: u32) -> Self {
        Self {
            kind: 2,
            client: client as u64,
            marker: seq,
            attempt: u64::from(attempt),
        }
    }

    /// Key for a directive.
    pub fn directive(client: usize, seq: u64, attempt: u32) -> Self {
        Self {
            kind: 3,
            client: client as u64,
            marker: seq,
            attempt: u64::from(attempt),
        }
    }
}

/// The fate of one message transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Deliver nothing.
    pub drop: bool,
    /// Deliver a second copy.
    pub duplicate: bool,
    /// Extra in-flight latency before delivery.
    pub delay: Duration,
}

impl Decision {
    /// Faithful delivery.
    pub const DELIVER: Self = Self {
        drop: false,
        duplicate: false,
        delay: Duration::ZERO,
    };
}

/// A complete, seeded description of the faults injected into one
/// session.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every per-message decision.
    pub seed: u64,
    /// Faults on the client → CC link.
    pub to_cc: LinkFaults,
    /// Faults on the CC → client link. Its `max_delay` is served by the
    /// receiving agent before it processes the directive, which keeps the
    /// controller thread non-blocking.
    pub to_client: LinkFaults,
    /// Clients whose agent thread exits silently right after sending its
    /// first scan report — no `Departed`, no acks, channel closed.
    pub crashed: Vec<usize>,
    /// Clients that join and report normally but never apply or
    /// acknowledge any directive.
    pub wedged: Vec<usize>,
}

impl FaultPlan {
    /// The fault-free plan (strict mode: the rig behaves exactly like the
    /// lossless original, and unresponsive endpoints are hard errors).
    pub fn none() -> Self {
        Self {
            seed: 0,
            to_cc: LinkFaults::none(),
            to_client: LinkFaults::none(),
            crashed: Vec::new(),
            wedged: Vec::new(),
        }
    }

    /// Whether the plan injects no faults at all.
    pub fn is_none(&self) -> bool {
        self.to_cc.is_none()
            && self.to_client.is_none()
            && self.crashed.is_empty()
            && self.wedged.is_empty()
    }

    /// Whether `client`'s agent is expected to misbehave (crash or
    /// wedge), so the harness treats its silence as a planned fault
    /// rather than a harness bug.
    pub fn expects_agent_fault(&self, client: usize) -> bool {
        self.crashed.contains(&client) || self.wedged.contains(&client)
    }

    /// Validates probabilities and fault-set consistency.
    ///
    /// # Errors
    ///
    /// Returns [`TestbedError::AssignmentFailed`] describing the first
    /// invalid field.
    pub fn validate(&self) -> Result<(), TestbedError> {
        self.to_cc.validate("to_cc")?;
        self.to_client.validate("to_client")?;
        if let Some(c) = self.crashed.iter().find(|c| self.wedged.contains(c)) {
            return Err(TestbedError::AssignmentFailed {
                context: format!("fault plan: client {c} is both crashed and wedged"),
            });
        }
        Ok(())
    }

    /// The deterministic fate of the message identified by `key` on
    /// `link`. Independent of call order, thread, and wall clock.
    pub fn decide(&self, link: Link, key: MessageKey) -> Decision {
        let faults = match link {
            Link::ToCc => &self.to_cc,
            Link::ToClient => &self.to_client,
        };
        if faults.is_none() {
            return Decision::DELIVER;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(mix(&[
            self.seed,
            link as u64,
            u64::from(key.kind),
            key.client,
            key.marker,
            key.attempt,
        ]));
        // Fixed draw order so each field's distribution is independent of
        // the other probabilities.
        let drop = rng.gen_range(0.0..1.0) < faults.drop;
        let duplicate = rng.gen_range(0.0..1.0) < faults.duplicate;
        let delay = if faults.max_delay.is_zero() {
            Duration::ZERO
        } else {
            faults.max_delay.mul_f64(rng.gen_range(0.0..=1.0))
        };
        Decision {
            drop,
            duplicate: duplicate && !drop,
            delay,
        }
    }
}

/// Hashes the parts into one 64-bit decision seed by chaining SplitMix64.
fn mix(parts: &[u64]) -> u64 {
    let mut h: u64 = 0x574F_4C54_5F66_6C74; // "WOLT_flt"
    for &p in parts {
        h = SplitMix64::new(h ^ p).next_u64();
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy_plan() -> FaultPlan {
        FaultPlan {
            seed: 42,
            to_cc: LinkFaults {
                drop: 0.3,
                duplicate: 0.2,
                max_delay: Duration::from_millis(5),
            },
            to_client: LinkFaults {
                drop: 0.3,
                duplicate: 0.0,
                max_delay: Duration::ZERO,
            },
            crashed: vec![2],
            wedged: vec![4],
        }
    }

    #[test]
    fn decisions_are_deterministic_and_key_sensitive() {
        let plan = lossy_plan();
        let key = MessageKey::ack(3, 17, 1);
        assert_eq!(plan.decide(Link::ToCc, key), plan.decide(Link::ToCc, key));
        // Different attempt, client, or link → independent decision seed.
        let decisions: Vec<Decision> = (1..=64)
            .map(|attempt| plan.decide(Link::ToCc, MessageKey::ack(3, 17, attempt)))
            .collect();
        assert!(
            decisions.iter().any(|d| d.drop) && decisions.iter().any(|d| !d.drop),
            "64 attempts at drop=0.3 should mix fates: {decisions:?}"
        );
    }

    #[test]
    fn decision_independent_of_call_order() {
        let plan = lossy_plan();
        let a = MessageKey::report(0, 0, 1);
        let b = MessageKey::directive(1, 5, 2);
        let first = (plan.decide(Link::ToCc, a), plan.decide(Link::ToClient, b));
        let second = (plan.decide(Link::ToClient, b), plan.decide(Link::ToCc, a));
        assert_eq!(first.0, second.1);
        assert_eq!(first.1, second.0);
    }

    #[test]
    fn drop_rate_is_approximately_honored() {
        let plan = lossy_plan();
        let n = 2000;
        let dropped = (0..n)
            .filter(|&i| plan.decide(Link::ToCc, MessageKey::report(i, 0, 1)).drop)
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.05, "empirical drop rate {rate}");
    }

    #[test]
    fn fault_free_plan_always_delivers() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        for i in 0..100 {
            assert_eq!(
                plan.decide(Link::ToCc, MessageKey::report(i, 0, 1)),
                Decision::DELIVER
            );
        }
    }

    #[test]
    fn dropped_messages_are_not_duplicated() {
        let plan = FaultPlan {
            to_cc: LinkFaults {
                drop: 0.5,
                duplicate: 1.0,
                max_delay: Duration::ZERO,
            },
            ..lossy_plan()
        };
        for i in 0..200 {
            let d = plan.decide(Link::ToCc, MessageKey::ack(i, 1, 1));
            assert!(!(d.drop && d.duplicate), "dropped AND duplicated: {d:?}");
        }
    }

    #[test]
    fn validation_catches_bad_plans() {
        let mut plan = lossy_plan();
        assert!(plan.validate().is_ok());
        plan.to_cc.drop = 1.5;
        assert!(plan.validate().is_err());
        plan.to_cc.drop = 0.1;
        plan.wedged = vec![2];
        assert!(plan.validate().is_err(), "client both crashed and wedged");
    }

    #[test]
    fn agent_fault_expectations() {
        let plan = lossy_plan();
        assert!(plan.expects_agent_fault(2));
        assert!(plan.expects_agent_fault(4));
        assert!(!plan.expects_agent_fault(0));
        assert!(!FaultPlan::none().expects_agent_fault(2));
    }
}
