//! Wire codec for the Central Controller protocol: tagged JSON message
//! bodies and length-prefixed framing over byte streams.
//!
//! The in-process rig moves [`protocol`](crate::protocol) enums over mpsc
//! channels; the networked daemon moves the *same* enums over TCP. This
//! module is the boundary between them: every protocol message gains a
//! canonical JSON form (a `{"t": ...}` tagged object via
//! [`ToJson`]/[`FromJson`]), and [`write_frame`]/[`read_frame`] move one
//! JSON value per frame — a 4-byte big-endian length prefix followed by
//! the compact UTF-8 serialization.
//!
//! Because `wolt_support::json` is deterministic (insertion-ordered keys,
//! shortest-round-trip floats), equal messages always encode to identical
//! bytes — the property that makes wire traffic diffable and replayable.

use std::io::{self, Read, Write};

use wolt_support::json::{FromJson, Json, JsonError, ToJson};
use wolt_units::Mbps;

use crate::protocol::{ToAgent, ToClient, ToController};

/// Hard cap on one frame's payload, over which [`read_frame`] rejects the
/// stream as corrupt: no protocol message comes close, and a garbage
/// length prefix must not trigger a giant allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 24;

/// Crash point between a frame's length prefix and its body (see
/// [`wolt_support::crash`]): an armed abort here leaves the peer holding
/// a torn frame, the wire-level analogue of a torn snapshot write.
pub const CRASH_MID_FRAME: &str = "codec.write.mid_frame";

/// How a *patient* frame read reacts to socket-timeout stalls (reads
/// failing with [`io::ErrorKind::WouldBlock`] or
/// [`io::ErrorKind::TimedOut`] because the stream has a read timeout
/// configured as a polling tick).
///
/// The policy distinguishes two kinds of silence. At a *frame boundary*
/// (no byte of the next frame has arrived) idling is legitimate — a
/// control connection may sit quiet between metrics polls for as long as
/// it likes — so the read waits indefinitely, consulting `keep_waiting`
/// each tick so the caller can end it cleanly (shutdown). *Mid-frame*
/// silence is different: a peer that sent half a frame and stopped is
/// either broken or a slowloris pinning the reader, so after
/// `mid_frame_stalls` consecutive stalled ticks the read fails with
/// [`io::ErrorKind::TimedOut`].
pub struct ReadPatience<'a> {
    /// Consulted on every frame-boundary stall; returning `false` ends
    /// the read as a clean close (`Ok(None)`).
    pub keep_waiting: &'a mut dyn FnMut() -> bool,
    /// Consecutive stalled ticks tolerated once a frame has started.
    pub mid_frame_stalls: u32,
}

fn is_stall(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Writes one JSON value as a length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O failures from the underlying writer.
pub fn write_frame(w: &mut impl Write, value: &Json) -> io::Result<()> {
    write_frame_counted(w, value).map(|_| ())
}

/// [`write_frame`], additionally returning the number of bytes put on
/// the wire (prefix + body) so transports can meter their traffic.
///
/// # Errors
///
/// As [`write_frame`].
pub fn write_frame_counted(w: &mut impl Write, value: &Json) -> io::Result<usize> {
    let body = value.to_compact();
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    wolt_support::crash_point!(CRASH_MID_FRAME);
    w.write_all(body.as_bytes())?;
    w.flush()?;
    Ok(4 + body.len())
}

/// Reads one length-prefixed JSON frame. Returns `Ok(None)` on a clean
/// end of stream (EOF at a frame boundary).
///
/// # Errors
///
/// Returns [`io::ErrorKind::UnexpectedEof`] for a stream truncated
/// mid-frame and [`io::ErrorKind::InvalidData`] for an oversized length
/// prefix, a non-UTF-8 body, or malformed JSON.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Json>> {
    read_frame_counted(r).map(|frame| frame.map(|(json, _)| json))
}

/// [`read_frame`], additionally returning the number of bytes consumed
/// from the wire (prefix + body) so transports can meter their traffic.
///
/// # Errors
///
/// As [`read_frame`].
pub fn read_frame_counted(r: &mut impl Read) -> io::Result<Option<(Json, usize)>> {
    read_frame_impl(r, None)
}

/// [`read_frame_counted`] with a stall policy for streams that use a
/// read timeout as a polling tick (see [`ReadPatience`]): idle frame
/// boundaries wait (checking `keep_waiting` each tick), mid-frame stalls
/// are bounded. On a plain blocking stream this behaves exactly like
/// [`read_frame_counted`], since stalls never surface.
///
/// # Errors
///
/// As [`read_frame`], plus [`io::ErrorKind::TimedOut`] when a peer
/// stalls mid-frame past the configured budget.
pub fn read_frame_counted_patient(
    r: &mut impl Read,
    patience: &mut ReadPatience<'_>,
) -> io::Result<Option<(Json, usize)>> {
    read_frame_impl(r, Some(patience))
}

fn read_frame_impl(
    r: &mut impl Read,
    mut patience: Option<&mut ReadPatience<'_>>,
) -> io::Result<Option<(Json, usize)>> {
    let mut len_bytes = [0u8; 4];
    // A clean EOF before any length byte is a closed connection, not an
    // error; EOF mid-prefix is truncation. Stall counting is consecutive:
    // any successful read resets it.
    let mut filled = 0;
    let mut stalls = 0u32;
    while filled < len_bytes.len() {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream truncated inside a frame length prefix",
                ))
            }
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_stall(&e) => match patience.as_mut() {
                Some(p) if filled == 0 => {
                    if !(p.keep_waiting)() {
                        return Ok(None);
                    }
                }
                Some(p) => {
                    stalls += 1;
                    if stalls > p.mid_frame_stalls {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "peer stalled mid-frame past the read deadline",
                        ));
                    }
                }
                None => return Err(e),
            },
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match r.read(&mut body[got..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream truncated inside a frame body",
                ))
            }
            Ok(n) => {
                got += n;
                stalls = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_stall(&e) => match patience.as_mut() {
                Some(p) => {
                    stalls += 1;
                    if stalls > p.mid_frame_stalls {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "peer stalled mid-frame past the read deadline",
                        ));
                    }
                }
                None => return Err(e),
            },
            Err(e) => return Err(e),
        }
    }
    let text = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame body is not UTF-8"))?;
    Json::parse(&text)
        .map(|json| Some((json, 4 + len)))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad frame JSON: {e}")))
}

/// Reads the `"t"` tag of a protocol message object.
fn tag(value: &Json) -> Result<&str, JsonError> {
    value
        .field("t")?
        .as_str()
        .ok_or_else(|| JsonError::shape("message tag must be a string"))
}

fn rates_to_json(rates: &[Option<Mbps>]) -> Json {
    Json::Arr(
        rates
            .iter()
            .map(|r| match r {
                Some(m) => Json::Num(m.value()),
                None => Json::Null,
            })
            .collect(),
    )
}

fn rates_from_json(value: &Json) -> Result<Vec<Option<Mbps>>, JsonError> {
    value
        .as_arr()
        .ok_or_else(|| JsonError::shape("rates must be an array"))?
        .iter()
        .map(|r| {
            if r.is_null() {
                Ok(None)
            } else {
                r.as_f64()
                    .map(|v| Some(Mbps::new(v)))
                    .ok_or_else(|| JsonError::shape("rate must be a number or null"))
            }
        })
        .collect()
}

impl ToJson for ToController {
    fn to_json(&self) -> Json {
        match self {
            ToController::Report {
                client,
                epoch,
                rates,
                attached,
            } => Json::obj([
                ("t", Json::Str("report".into())),
                ("client", client.to_json()),
                ("epoch", epoch.to_json()),
                ("rates", rates_to_json(rates)),
                ("attached", attached.to_json()),
            ]),
            ToController::Ack {
                client,
                seq,
                extender,
            } => Json::obj([
                ("t", Json::Str("ack".into())),
                ("client", client.to_json()),
                ("seq", seq.to_json()),
                ("extender", extender.to_json()),
            ]),
            ToController::Departed { client, epoch } => Json::obj([
                ("t", Json::Str("departed".into())),
                ("client", client.to_json()),
                ("epoch", epoch.to_json()),
            ]),
        }
    }
}

impl FromJson for ToController {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match tag(value)? {
            "report" => Ok(ToController::Report {
                client: usize::from_json(value.field("client")?)?,
                epoch: u64::from_json(value.field("epoch")?)?,
                rates: rates_from_json(value.field("rates")?)?,
                attached: usize::from_json(value.field("attached")?)?,
            }),
            "ack" => Ok(ToController::Ack {
                client: usize::from_json(value.field("client")?)?,
                seq: u64::from_json(value.field("seq")?)?,
                extender: usize::from_json(value.field("extender")?)?,
            }),
            "departed" => Ok(ToController::Departed {
                client: usize::from_json(value.field("client")?)?,
                epoch: u64::from_json(value.field("epoch")?)?,
            }),
            other => Err(JsonError::shape(format!(
                "unknown ToController tag {other:?}"
            ))),
        }
    }
}

impl ToJson for ToClient {
    fn to_json(&self) -> Json {
        match self {
            ToClient::Directive {
                extender,
                seq,
                attempt,
            } => Json::obj([
                ("t", Json::Str("directive".into())),
                ("extender", extender.to_json()),
                ("seq", seq.to_json()),
                ("attempt", attempt.to_json()),
            ]),
            ToClient::Shutdown => Json::obj([("t", Json::Str("shutdown".into()))]),
        }
    }
}

impl FromJson for ToClient {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match tag(value)? {
            "directive" => Ok(ToClient::Directive {
                extender: usize::from_json(value.field("extender")?)?,
                seq: u64::from_json(value.field("seq")?)?,
                attempt: u32::from_json(value.field("attempt")?)?,
            }),
            "shutdown" => Ok(ToClient::Shutdown),
            other => Err(JsonError::shape(format!("unknown ToClient tag {other:?}"))),
        }
    }
}

impl ToJson for ToAgent {
    fn to_json(&self) -> Json {
        match self {
            ToAgent::Join { epoch, attempt } => Json::obj([
                ("t", Json::Str("join".into())),
                ("epoch", epoch.to_json()),
                ("attempt", attempt.to_json()),
            ]),
            ToAgent::Leave { epoch, attempt } => Json::obj([
                ("t", Json::Str("leave".into())),
                ("epoch", epoch.to_json()),
                ("attempt", attempt.to_json()),
            ]),
            ToAgent::Shutdown => Json::obj([("t", Json::Str("shutdown".into()))]),
        }
    }
}

impl FromJson for ToAgent {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match tag(value)? {
            "join" => Ok(ToAgent::Join {
                epoch: u64::from_json(value.field("epoch")?)?,
                attempt: u32::from_json(value.field("attempt")?)?,
            }),
            "leave" => Ok(ToAgent::Leave {
                epoch: u64::from_json(value.field("epoch")?)?,
                attempt: u32::from_json(value.field("attempt")?)?,
            }),
            "shutdown" => Ok(ToAgent::Shutdown),
            other => Err(JsonError::shape(format!("unknown ToAgent tag {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(msg: T) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg.to_json()).unwrap();
        let mut r = buf.as_slice();
        let json = read_frame(&mut r).unwrap().expect("one frame");
        assert_eq!(T::from_json(&json).unwrap(), msg);
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF after");
    }

    #[test]
    fn every_protocol_variant_round_trips() {
        round_trip(ToController::Report {
            client: 3,
            epoch: 7,
            rates: vec![Some(Mbps::new(12.5)), None, Some(Mbps::new(0.1))],
            attached: 2,
        });
        round_trip(ToController::Ack {
            client: 1,
            seq: 9,
            extender: 0,
        });
        round_trip(ToController::Departed {
            client: 5,
            epoch: 2,
        });
        round_trip(ToClient::Directive {
            extender: 2,
            seq: 11,
            attempt: 3,
        });
        round_trip(ToClient::Shutdown);
        round_trip(ToAgent::Join {
            epoch: 0,
            attempt: 1,
        });
        round_trip(ToAgent::Leave {
            epoch: 4,
            attempt: 2,
        });
        round_trip(ToAgent::Shutdown);
    }

    #[test]
    fn frames_are_byte_deterministic() {
        let msg = ToController::Report {
            client: 0,
            epoch: 0,
            rates: vec![Some(Mbps::new(10.0))],
            attached: 0,
        };
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_frame(&mut a, &msg.to_json()).unwrap();
        write_frame(&mut b, &msg.clone().to_json()).unwrap();
        assert_eq!(a, b);
        // Length prefix is big-endian and covers exactly the body.
        let len = u32::from_be_bytes([a[0], a[1], a[2], a[3]]) as usize;
        assert_eq!(len, a.len() - 4);
    }

    #[test]
    fn multiple_frames_stream_in_order() {
        let msgs = [
            ToAgent::Join {
                epoch: 0,
                attempt: 1,
            },
            ToAgent::Leave {
                epoch: 1,
                attempt: 1,
            },
            ToAgent::Shutdown,
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, &m.to_json()).unwrap();
        }
        let mut r = buf.as_slice();
        for m in &msgs {
            let json = read_frame(&mut r).unwrap().unwrap();
            assert_eq!(&ToAgent::from_json(&json).unwrap(), m);
        }
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn truncated_and_corrupt_frames_are_rejected() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &ToAgent::Join {
                epoch: 0,
                attempt: 1,
            }
            .to_json(),
        )
        .unwrap();
        // Truncated mid-prefix.
        let mut r = &buf[..2];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Truncated mid-body.
        let mut r = &buf[..buf.len() - 3];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Giant length prefix: rejected before allocating.
        let giant = u32::try_from(MAX_FRAME_BYTES + 1).unwrap().to_be_bytes();
        let mut r = giant.as_slice();
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Valid prefix, garbage JSON body.
        let mut bad = Vec::new();
        bad.extend_from_slice(&3u32.to_be_bytes());
        bad.extend_from_slice(b"{{{");
        let mut r = bad.as_slice();
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    /// A reader that replays a script of data chunks and stalls, so the
    /// patient-read policy can be exercised without real sockets.
    struct ScriptedRead {
        script: std::collections::VecDeque<Result<Vec<u8>, io::ErrorKind>>,
    }

    impl Read for ScriptedRead {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.script.pop_front() {
                None => Ok(0),
                Some(Ok(mut chunk)) => {
                    let n = chunk.len().min(buf.len());
                    buf[..n].copy_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        // Requeue what this short read did not consume.
                        self.script.push_front(Ok(chunk.split_off(n)));
                    }
                    Ok(n)
                }
                Some(Err(kind)) => Err(io::Error::new(kind, "scripted stall")),
            }
        }
    }

    fn scripted(events: Vec<Result<Vec<u8>, io::ErrorKind>>) -> ScriptedRead {
        ScriptedRead {
            script: events.into(),
        }
    }

    #[test]
    fn patient_read_outwaits_boundary_idle_but_bounds_mid_frame_stalls() {
        let mut frame = Vec::new();
        write_frame(&mut frame, &ToAgent::Shutdown.to_json()).unwrap();
        // Many stalls before the first byte, then the frame split around
        // a couple of mid-frame stalls (within the budget of 3).
        let mut r = scripted(vec![
            Err(io::ErrorKind::WouldBlock),
            Err(io::ErrorKind::WouldBlock),
            Err(io::ErrorKind::WouldBlock),
            Err(io::ErrorKind::WouldBlock),
            Err(io::ErrorKind::WouldBlock),
            Ok(frame[..2].to_vec()),
            Err(io::ErrorKind::WouldBlock),
            Err(io::ErrorKind::WouldBlock),
            Ok(frame[2..6].to_vec()),
            Err(io::ErrorKind::TimedOut),
            Ok(frame[6..].to_vec()),
        ]);
        let mut keep = || true;
        let mut patience = ReadPatience {
            keep_waiting: &mut keep,
            mid_frame_stalls: 3,
        };
        let json = read_frame_counted_patient(&mut r, &mut patience)
            .unwrap()
            .expect("one frame")
            .0;
        assert_eq!(ToAgent::from_json(&json).unwrap(), ToAgent::Shutdown);
    }

    #[test]
    fn patient_read_times_out_a_mid_frame_staller() {
        // One length byte arrives, then the peer goes silent: a
        // slowloris. The budget of 2 consecutive stalls expires.
        let mut r = scripted(vec![
            Ok(vec![0]),
            Err(io::ErrorKind::WouldBlock),
            Err(io::ErrorKind::WouldBlock),
            Err(io::ErrorKind::WouldBlock),
        ]);
        let mut keep = || true;
        let mut patience = ReadPatience {
            keep_waiting: &mut keep,
            mid_frame_stalls: 2,
        };
        assert_eq!(
            read_frame_counted_patient(&mut r, &mut patience)
                .unwrap_err()
                .kind(),
            io::ErrorKind::TimedOut
        );
    }

    #[test]
    fn patient_read_ends_cleanly_when_told_to_stop_waiting() {
        let mut r = scripted(vec![
            Err(io::ErrorKind::WouldBlock),
            Err(io::ErrorKind::WouldBlock),
            Err(io::ErrorKind::WouldBlock),
        ]);
        // Stop waiting after the second boundary stall.
        let mut ticks = 0;
        let mut keep = move || {
            ticks += 1;
            ticks < 2
        };
        let mut patience = ReadPatience {
            keep_waiting: &mut keep,
            mid_frame_stalls: 100,
        };
        assert!(read_frame_counted_patient(&mut r, &mut patience)
            .unwrap()
            .is_none());
    }

    #[test]
    fn patient_read_matches_plain_read_on_blocking_streams() {
        let mut frame = Vec::new();
        write_frame(
            &mut frame,
            &ToAgent::Join {
                epoch: 3,
                attempt: 1,
            }
            .to_json(),
        )
        .unwrap();
        let mut plain = frame.as_slice();
        let mut patient_src = frame.as_slice();
        let mut keep = || true;
        let mut patience = ReadPatience {
            keep_waiting: &mut keep,
            mid_frame_stalls: 0,
        };
        let a = read_frame_counted(&mut plain).unwrap();
        let b = read_frame_counted_patient(&mut patient_src, &mut patience).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_tags_are_shape_errors() {
        let v = Json::parse(r#"{"t":"warp","client":0}"#).unwrap();
        assert!(ToController::from_json(&v).is_err());
        assert!(ToClient::from_json(&v).is_err());
        assert!(ToAgent::from_json(&v).is_err());
        let untagged = Json::parse(r#"{"client":0}"#).unwrap();
        assert!(ToController::from_json(&untagged).is_err());
    }
}
