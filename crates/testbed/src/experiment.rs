//! The paper's §V-D testbed experiment: 25 random topologies, 3
//! extenders, 7 laptops, three policies.
//!
//! "We randomly picked three power outlets (among 10 outlets that are
//! available) and moved the laptops around to create 25 different
//! topologies" — here, 25 seeded lab scenarios, each run through the
//! threaded rig under WOLT, Greedy, and RSSI. The analyses reproduce:
//!
//! * Fig. 4a — average aggregate throughput per policy;
//! * Fig. 4b — fraction of users better/worse off under WOLT than under a
//!   baseline;
//! * Fig. 5  — per-user throughput of WOLT's worst-3 and best-3 users
//!   against the greedy baseline on one topology.

use wolt_sim::scenario::ScenarioConfig;
use wolt_sim::Scenario;
use wolt_support::rng::ChaCha8Rng;
use wolt_support::rng::SeedableRng;

use crate::rig::{run_rig, ControllerPolicy, RigConfig, TopologyOutcome};
use crate::TestbedError;

/// Configuration of the §V-D experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct TestbedExperiment {
    /// Scenario template (defaults to the paper's 3-extender/7-user lab).
    pub scenario: ScenarioConfig,
    /// Number of random topologies (the paper uses 25).
    pub topologies: usize,
    /// Base seed; topology `t` uses `base_seed + t`.
    pub base_seed: u64,
}

impl Default for TestbedExperiment {
    fn default() -> Self {
        Self {
            scenario: ScenarioConfig::lab(7),
            topologies: 25,
            base_seed: 0,
        }
    }
}

/// All outcomes of one topology (same scenario, all three policies).
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyComparison {
    /// Topology index (0-based).
    pub topology: usize,
    /// WOLT outcome.
    pub wolt: TopologyOutcome,
    /// Greedy outcome.
    pub greedy: TopologyOutcome,
    /// RSSI outcome.
    pub rssi: TopologyOutcome,
}

impl TestbedExperiment {
    /// Runs every topology under all three policies.
    ///
    /// # Errors
    ///
    /// Propagates scenario-generation and rig failures.
    pub fn run(&self) -> Result<Vec<TopologyComparison>, TestbedError> {
        if self.topologies == 0 {
            return Err(TestbedError::InvalidConfig {
                context: "need at least one topology",
            });
        }
        let mut out = Vec::with_capacity(self.topologies);
        for t in 0..self.topologies {
            let seed = self.base_seed + t as u64;
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let scenario = Scenario::generate(&self.scenario, &mut rng)?;
            let run = |policy| run_rig(&scenario, &RigConfig::new(policy), seed);
            out.push(TopologyComparison {
                topology: t,
                wolt: run(ControllerPolicy::Wolt)?,
                greedy: run(ControllerPolicy::Greedy)?,
                rssi: run(ControllerPolicy::Rssi)?,
            });
        }
        Ok(out)
    }
}

/// Fig. 4a row: mean aggregate throughput per policy.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateSummary {
    /// Mean aggregate under WOLT (Mbit/s).
    pub wolt: f64,
    /// Mean aggregate under Greedy (Mbit/s).
    pub greedy: f64,
    /// Mean aggregate under RSSI (Mbit/s).
    pub rssi: f64,
}

/// Computes the Fig. 4a summary.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn aggregate_summary(comparisons: &[TopologyComparison]) -> AggregateSummary {
    assert!(!comparisons.is_empty(), "need at least one topology");
    let n = comparisons.len() as f64;
    AggregateSummary {
        wolt: comparisons.iter().map(|c| c.wolt.aggregate).sum::<f64>() / n,
        greedy: comparisons.iter().map(|c| c.greedy.aggregate).sum::<f64>() / n,
        rssi: comparisons.iter().map(|c| c.rssi.aggregate).sum::<f64>() / n,
    }
}

/// Fig. 4b row: fraction of (user, topology) pairs better / worse off
/// under WOLT than under the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct WinLoss {
    /// Fraction of users with strictly higher throughput under WOLT.
    pub better: f64,
    /// Fraction with strictly lower throughput under WOLT.
    pub worse: f64,
    /// Fraction unchanged (within 1e-9).
    pub unchanged: f64,
}

/// Computes the Fig. 4b per-user comparison of WOLT against a baseline
/// extractor (`|c| &c.greedy` or `|c| &c.rssi`).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn per_user_win_loss<F>(comparisons: &[TopologyComparison], baseline: F) -> WinLoss
where
    F: Fn(&TopologyComparison) -> &TopologyOutcome,
{
    assert!(!comparisons.is_empty(), "need at least one topology");
    let mut better = 0usize;
    let mut worse = 0usize;
    let mut unchanged = 0usize;
    for c in comparisons {
        let base = baseline(c);
        for (w, b) in c.wolt.per_user.iter().zip(&base.per_user) {
            if (w - b).abs() < 1e-9 {
                unchanged += 1;
            } else if w > b {
                better += 1;
            } else {
                worse += 1;
            }
        }
    }
    let total = (better + worse + unchanged) as f64;
    WinLoss {
        better: better as f64 / total,
        worse: worse as f64 / total,
        unchanged: unchanged as f64 / total,
    }
}

/// Fig. 5 rows for one topology: `(wolt_throughput, greedy_throughput)`
/// per user, for WOLT's `k` worst and `k` best users.
#[derive(Debug, Clone, PartialEq)]
pub struct BestWorstUsers {
    /// WOLT's `k` lowest-throughput users: `(wolt, greedy)` pairs.
    pub worst: Vec<(f64, f64)>,
    /// WOLT's `k` highest-throughput users: `(wolt, greedy)` pairs.
    pub best: Vec<(f64, f64)>,
}

/// Extracts the Fig. 5 comparison for one topology.
///
/// # Panics
///
/// Panics if `k` exceeds the user count.
pub fn best_worst_users(comparison: &TopologyComparison, k: usize) -> BestWorstUsers {
    let n = comparison.wolt.per_user.len();
    assert!(k <= n, "k={k} exceeds user count {n}");
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        comparison.wolt.per_user[a]
            .partial_cmp(&comparison.wolt.per_user[b])
            .expect("finite throughputs")
    });
    let pair = |i: usize| (comparison.wolt.per_user[i], comparison.greedy.per_user[i]);
    BestWorstUsers {
        worst: order[..k].iter().map(|&i| pair(i)).collect(),
        best: order[n - k..].iter().map(|&i| pair(i)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_experiment() -> Vec<TopologyComparison> {
        TestbedExperiment {
            topologies: 5,
            ..TestbedExperiment::default()
        }
        .run()
        .unwrap()
    }

    #[test]
    fn runs_all_topologies_and_policies() {
        let comparisons = small_experiment();
        assert_eq!(comparisons.len(), 5);
        for c in &comparisons {
            assert_eq!(c.wolt.per_user.len(), 7);
            assert_eq!(c.greedy.per_user.len(), 7);
            assert_eq!(c.rssi.per_user.len(), 7);
        }
    }

    #[test]
    fn fig4a_ordering_wolt_first() {
        let comparisons = small_experiment();
        let summary = aggregate_summary(&comparisons);
        assert!(
            summary.wolt >= summary.greedy * 0.98,
            "WOLT {} should not trail Greedy {} meaningfully",
            summary.wolt,
            summary.greedy
        );
        assert!(
            summary.wolt > summary.rssi,
            "WOLT {} vs RSSI {}",
            summary.wolt,
            summary.rssi
        );
    }

    #[test]
    fn fig4b_fractions_sum_to_one() {
        let comparisons = small_experiment();
        for baseline in [
            per_user_win_loss(&comparisons, |c| &c.greedy),
            per_user_win_loss(&comparisons, |c| &c.rssi),
        ] {
            let total = baseline.better + baseline.worse + baseline.unchanged;
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fig5_extracts_ordered_extremes() {
        let comparisons = small_experiment();
        let bw = best_worst_users(&comparisons[0], 3);
        assert_eq!(bw.worst.len(), 3);
        assert_eq!(bw.best.len(), 3);
        let worst_max = bw.worst.iter().map(|p| p.0).fold(0.0, f64::max);
        let best_min = bw.best.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        assert!(worst_max <= best_min);
    }

    #[test]
    fn deterministic_per_base_seed() {
        let a = TestbedExperiment {
            topologies: 2,
            ..TestbedExperiment::default()
        }
        .run()
        .unwrap();
        let b = TestbedExperiment {
            topologies: 2,
            ..TestbedExperiment::default()
        }
        .run()
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_topologies_rejected() {
        let err = TestbedExperiment {
            topologies: 0,
            ..TestbedExperiment::default()
        }
        .run()
        .unwrap_err();
        assert!(matches!(err, TestbedError::InvalidConfig { .. }));
    }
}
