//! Testbed emulation for WOLT: the Central Controller architecture on
//! real threads.
//!
//! The paper evaluates WOLT on a physical testbed of TP-Link TL-WPA8630
//! extenders and seven laptops running "a user-space utility that runs on
//! users' devices as well as the server" (§V-A). This crate reproduces
//! that software architecture faithfully — minus the hardware, which is
//! replaced by the `wolt-sim` scenario substrate:
//!
//! * [`protocol`] — the client ↔ Central Controller messages (scan
//!   report, association directive, ack, departure).
//! * [`rig`] — one controller thread plus one thread per client laptop,
//!   joined sequentially over mpsc channels; the CC runs WOLT /
//!   Greedy / RSSI on *estimated* PLC capacities while outcomes are
//!   evaluated on the true ones.
//! * [`controller`] — the transport-agnostic Central Controller brain
//!   ([`controller::ControllerCore`]): epoch dedup, telemetry ingest,
//!   policy planning, monotone directive sequencing, declared-dead
//!   bookkeeping, and JSON snapshot/restore. Both the in-process [`rig`]
//!   and the networked `wolt-daemon` drive it.
//! * [`codec`] — the length-prefixed JSON wire codec for [`protocol`]
//!   messages, used by the daemon's TCP transport.
//! * [`faults`] — seeded deterministic fault injection (message drop /
//!   delay / duplication, crashed and wedged agents) for exercising the
//!   resilient control loop.
//! * [`experiment`] — the §V-D experiment: 25 random lab topologies,
//!   3 extenders, 7 laptops, with the Fig. 4a/4b/5 analyses.
//!
//! # Example
//!
//! ```
//! use wolt_testbed::experiment::{aggregate_summary, TestbedExperiment};
//!
//! # fn main() -> Result<(), wolt_testbed::TestbedError> {
//! let comparisons = TestbedExperiment {
//!     topologies: 3, // the paper uses 25; keep doc examples quick
//!     ..TestbedExperiment::default()
//! }
//! .run()?;
//! let summary = aggregate_summary(&comparisons);
//! assert!(summary.wolt > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod controller;
pub mod experiment;
pub mod faults;
pub mod protocol;
pub mod rig;

mod error;

pub use controller::{
    coalesce_frames, BatchOutcome, ControllerConfig, ControllerCore, ControllerSnapshot, Directive,
    ReportFrame,
};
pub use error::TestbedError;
pub use faults::{FaultPlan, LinkFaults};
pub use rig::{
    assemble_report, run_faulty_session, run_rig, run_session, ControllerPolicy, Deadlines,
    RigConfig, SessionEvent, SessionLedger, SessionReport, TopologyOutcome,
};
