//! The Central Controller's decision core, independent of transport.
//!
//! [`ControllerCore`] is the state machine behind both faces of the CC:
//! the in-process [`rig`](crate::rig) (mpsc channels, optionally faulty)
//! and the networked `wolt-daemon` (TCP + length-prefixed JSON frames).
//! It owns everything that determines *what the controller decides* —
//! the [`TelemetryCache`] planning view, the association bookkeeping,
//! monotone directive sequence numbers, dead-client accounting, and the
//! WOLT / Greedy / RSSI policy dispatch — and nothing about *how
//! messages move*: deadlines, retransmission, and framing stay with the
//! transport.
//!
//! Because both transports drive the identical core, a fault-free TCP
//! session and an in-process session over the same scenario, seed, and
//! policy make byte-identical decisions — the property the loopback
//! equivalence tests pin down.
//!
//! The core is also [snapshot](ControllerCore::snapshot)-able: the full
//! decision state serializes to canonical JSON so a daemon can persist
//! it each epoch and resume after a crash without losing the telemetry
//! it had accumulated.

use wolt_core::{
    evaluate, Association, AssociationPolicy, Network, TelemetryCache, TelemetryEntry, Wolt,
};
use wolt_support::json::{FromJson, Json, JsonError, ToJson};
use wolt_support::obs;
use wolt_units::Mbps;

use crate::rig::ControllerPolicy;
use crate::TestbedError;

/// Smoothing factor for the CC's telemetry cache. With one report per
/// join and forget-on-departure this is exact in fault-free sessions;
/// under faults it damps duplicate-epoch noise (which the cache already
/// suppresses) and repeated-report jitter.
pub const TELEMETRY_ALPHA: f64 = 0.5;

/// A planned re-association the transport must deliver (and retransmit
/// until acked or the client is declared dead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Directive {
    /// Target client.
    pub client: usize,
    /// Extender the client should associate with.
    pub extender: usize,
    /// Monotone sequence number: the client applies each sequence once
    /// and re-acks retries.
    pub seq: u64,
}

/// One inbound scan report, as a transport queues it for batch
/// ingestion via [`ControllerCore::handle_report_batch`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReportFrame {
    /// Reporting client.
    pub client: usize,
    /// Epoch of the join event that produced the report.
    pub epoch: u64,
    /// Scanned per-extender achievable rates (`None` = unreachable).
    pub rates: Vec<Option<Mbps>>,
    /// Extender the client attached to on its own.
    pub attached: usize,
}

/// What [`ControllerCore::handle_report_batch`] did with a drained batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// Directives produced by the single batch plan.
    pub directives: Vec<Directive>,
    /// Frames actually ingested (duplicates by epoch are skipped).
    pub ingested: usize,
    /// Epoch of the last ingested frame, if any was.
    pub last_epoch: Option<u64>,
}

/// Coalesces a drained run of report frames to each client's newest (by
/// arrival order): a frame is dropped when a later frame from the same
/// client is present, exactly as if the stale frame were deleted from
/// the queue in place — survivor order is arrival order. Returns the
/// survivors and the number of frames dropped. Pure queue-shape logic:
/// no clocks, so a given arrival order always coalesces identically.
pub fn coalesce_frames(frames: Vec<ReportFrame>) -> (Vec<ReportFrame>, usize) {
    let total = frames.len();
    let mut seen: Vec<usize> = Vec::new();
    let mut kept: Vec<ReportFrame> = Vec::with_capacity(total);
    for frame in frames.into_iter().rev() {
        if seen.contains(&frame.client) {
            continue;
        }
        seen.push(frame.client);
        kept.push(frame);
    }
    kept.reverse();
    let dropped = total - kept.len();
    (kept, dropped)
}

/// Immutable controller configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerConfig {
    /// Association logic.
    pub policy: ControllerPolicy,
    /// Estimated PLC capacities (the offline iperf procedure's output).
    pub estimated_capacities: Vec<Mbps>,
    /// Strict mode: a failed solve is a hard error instead of a
    /// degrade-to-previous-association.
    pub strict: bool,
}

/// The transport-agnostic Central Controller state machine.
///
/// The transport feeds it protocol events ([`handle_report`],
/// [`handle_departed`], [`handle_ack`], [`declare_dead`]) and delivers
/// the [`Directive`]s it returns; everything else — dedup, telemetry,
/// planning, sequencing — happens here.
///
/// [`handle_report`]: Self::handle_report
/// [`handle_departed`]: Self::handle_departed
/// [`handle_ack`]: Self::handle_ack
/// [`declare_dead`]: Self::declare_dead
#[derive(Debug, Clone)]
pub struct ControllerCore {
    config: ControllerConfig,
    /// Last-known-good smoothed client telemetry (the planning input).
    telemetry: TelemetryCache,
    /// The CC's view of each client's current extender.
    association: Vec<Option<usize>>,
    /// Clients declared dead after a missed ack budget.
    dead: Vec<bool>,
    /// Newest directive sequence issued to each client; only its ack is
    /// accepted.
    latest_seq: Vec<Option<u64>>,
    next_seq: u64,
    /// Highest event epoch processed; lower epochs are duplicates.
    watermark: Option<u64>,
    directives: usize,
    degraded_solves: usize,
    declared_dead: Vec<usize>,
    /// Cached planning view (see [`ensure_view`](Self::ensure_view)).
    /// Session-local: not snapshotted, rebuilt on demand after restore.
    view: Option<ViewCache>,
}

/// A planning [`Network`] built from the telemetry rates of one known
/// set, stamped with the [`TelemetryCache::version`] it was built from
/// so staleness is a pure integer comparison.
#[derive(Debug, Clone)]
struct ViewCache {
    version: u64,
    known: Vec<usize>,
    net: Network,
}

impl ControllerCore {
    /// A fresh controller for `n_users` clients.
    pub fn new(n_users: usize, config: ControllerConfig) -> Self {
        Self {
            telemetry: TelemetryCache::new(n_users, TELEMETRY_ALPHA),
            association: vec![None; n_users],
            dead: vec![false; n_users],
            latest_seq: vec![None; n_users],
            next_seq: 0,
            watermark: None,
            directives: 0,
            degraded_solves: 0,
            declared_dead: Vec::new(),
            view: None,
            config,
        }
    }

    /// Whether `epoch` was already processed (a retransmission or
    /// network duplicate the transport should drop).
    pub fn is_duplicate(&self, epoch: u64) -> bool {
        self.watermark.is_some_and(|w| epoch <= w)
    }

    fn begin_epoch(&mut self, epoch: u64) {
        self.watermark = Some(epoch);
        self.telemetry.advance_epoch();
    }

    /// Ingests a scan report and plans the arrival: records the rates,
    /// marks the client attached, and returns the directives the policy
    /// wants delivered (empty for RSSI, or when nothing moves).
    ///
    /// The caller must have rejected duplicates via
    /// [`is_duplicate`](Self::is_duplicate) first.
    ///
    /// # Errors
    ///
    /// In strict mode, propagates a failed solve as
    /// [`TestbedError::AssignmentFailed`]; in resilient mode a failed
    /// solve counts as a degraded solve and moves nobody.
    pub fn handle_report(
        &mut self,
        client: usize,
        epoch: u64,
        rates: &[Option<Mbps>],
        attached: usize,
    ) -> Result<Vec<Directive>, TestbedError> {
        obs::counter_inc("cc.reports");
        self.begin_epoch(epoch);
        self.telemetry.record(client, epoch, rates);
        self.association[client] = Some(attached);
        self.dead[client] = false;
        self.latest_seq[client] = None;
        self.plan(Some(client))
    }

    /// Ingests a drained batch of scan reports and plans **once**: each
    /// non-duplicate frame is applied in arrival order (same per-frame
    /// bookkeeping as [`handle_report`](Self::handle_report)), then a
    /// single solve — with the network view built once — diffs the
    /// directives. A batch with one ingested frame is byte-identical to
    /// `handle_report` on that frame; duplicates are skipped internally
    /// (no [`is_duplicate`](Self::is_duplicate) pre-check needed), so a
    /// frame whose epoch an earlier frame of the same batch already
    /// advanced past is absorbed here too.
    ///
    /// A merged batch (two or more frames ingested) may plan
    /// warm-started: WOLT re-polishes the previous complete association
    /// against the batched telemetry (`core.warm_solves`) instead of
    /// re-solving from scratch, falling back to the cold two-phase solve
    /// when no usable previous plan exists.
    ///
    /// # Errors
    ///
    /// As [`handle_report`](Self::handle_report).
    pub fn handle_report_batch(
        &mut self,
        frames: &[ReportFrame],
    ) -> Result<BatchOutcome, TestbedError> {
        let mut ingested = 0usize;
        let mut last: Option<(usize, u64)> = None;
        for frame in frames {
            if self.is_duplicate(frame.epoch) {
                continue;
            }
            obs::counter_inc("cc.reports");
            self.begin_epoch(frame.epoch);
            self.telemetry
                .record(frame.client, frame.epoch, &frame.rates);
            self.association[frame.client] = Some(frame.attached);
            self.dead[frame.client] = false;
            self.latest_seq[frame.client] = None;
            ingested += 1;
            last = Some((frame.client, frame.epoch));
        }
        let Some((arriving, last_epoch)) = last else {
            return Ok(BatchOutcome {
                directives: Vec::new(),
                ingested: 0,
                last_epoch: None,
            });
        };
        let directives = self.plan_with(Some(arriving), ingested > 1)?;
        Ok(BatchOutcome {
            directives,
            ingested,
            last_epoch: Some(last_epoch),
        })
    }

    /// Ingests a departure notice: forgets the client and — for WOLT,
    /// which re-optimizes survivors — returns the resulting directives.
    /// The baselines leave everyone where they are.
    ///
    /// # Errors
    ///
    /// As [`handle_report`](Self::handle_report).
    pub fn handle_departed(
        &mut self,
        client: usize,
        epoch: u64,
    ) -> Result<Vec<Directive>, TestbedError> {
        obs::counter_inc("cc.departures");
        self.begin_epoch(epoch);
        self.telemetry.forget(client);
        self.association[client] = None;
        self.dead[client] = false;
        self.latest_seq[client] = None;
        if self.config.policy == ControllerPolicy::Wolt {
            self.plan(None)
        } else {
            Ok(Vec::new())
        }
    }

    /// Processes a directive acknowledgement. Returns `true` when the
    /// ack matches the newest outstanding sequence for a live client (so
    /// the transport clears its pending entry); stale acks and acks from
    /// declared-dead clients return `false` and change nothing.
    pub fn handle_ack(&mut self, client: usize, seq: u64, extender: usize) -> bool {
        if !self.dead[client] && self.latest_seq[client] == Some(seq) {
            obs::counter_inc("cc.acks_accepted");
            self.association[client] = Some(extender);
            true
        } else {
            obs::counter_inc("cc.acks_stale");
            false
        }
    }

    /// Declares `client` dead after the transport exhausted its ack
    /// retry budget: forgets its telemetry, unassigns it, and re-plans
    /// the survivors (the dead client's load vanishes). The returned
    /// directives may supersede in-flight ones for other clients.
    ///
    /// # Errors
    ///
    /// As [`handle_report`](Self::handle_report).
    pub fn declare_dead(&mut self, client: usize) -> Result<Vec<Directive>, TestbedError> {
        obs::counter_inc("cc.declared_dead");
        self.dead[client] = true;
        self.telemetry.forget(client);
        self.association[client] = None;
        self.latest_seq[client] = None;
        self.declared_dead.push(client);
        self.plan(None)
    }

    /// Evicts telemetry entries staler than `max_staleness` epochs (see
    /// [`TelemetryCache::evict_stale`]), so a long-running controller
    /// whose clients vanish without a departure notice cannot retain
    /// their state forever. Evicted clients are also unassigned in the
    /// CC's view. Returns the evicted indices, ascending.
    pub fn evict_stale(&mut self, max_staleness: u64) -> Vec<usize> {
        let evicted = self.telemetry.evict_stale(max_staleness);
        for &i in &evicted {
            self.association[i] = None;
            self.latest_seq[i] = None;
        }
        evicted
    }

    /// Runs the policy on the telemetry view and returns a directive for
    /// every live client whose target changed, in ascending client
    /// order. Assigns sequence numbers and counts issued directives.
    fn plan(&mut self, arriving: Option<usize>) -> Result<Vec<Directive>, TestbedError> {
        self.plan_with(arriving, false)
    }

    /// [`plan`](Self::plan) with an explicit warm-start permission:
    /// `warm` lets WOLT re-polish the previous complete association
    /// instead of re-solving from scratch. Only merged report batches
    /// pass `true`; every single-event path stays cold so its decisions
    /// are bit-for-bit those of the pre-batching controller.
    fn plan_with(
        &mut self,
        arriving: Option<usize>,
        warm: bool,
    ) -> Result<Vec<Directive>, TestbedError> {
        if self.config.policy == ControllerPolicy::Rssi {
            return Ok(Vec::new());
        }
        let known: Vec<usize> = self
            .telemetry
            .known_clients()
            .into_iter()
            .filter(|&i| !self.dead[i])
            .collect();
        if known.is_empty() {
            return Ok(Vec::new());
        }
        let desired = match self
            .ensure_view(&known)
            .and_then(|()| self.plan_targets(&known, arriving, warm))
        {
            Ok(d) => d,
            Err(e) if self.config.strict => return Err(e),
            Err(_) => {
                self.degraded_solves += 1;
                obs::counter_inc("cc.degraded_solves");
                return Ok(Vec::new());
            }
        };
        let mut out = Vec::new();
        for (v, &i) in known.iter().enumerate() {
            if self.association[i] == Some(desired[v]) {
                continue;
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            self.latest_seq[i] = Some(seq);
            self.directives += 1;
            out.push(Directive {
                client: i,
                extender: desired[v],
                seq,
            });
        }
        obs::counter_add("cc.directives", out.len() as u64);
        Ok(out)
    }

    /// Computes each known client's desired extender under the
    /// configured policy, in `known` order. Requires
    /// [`ensure_view`](Self::ensure_view) to have prepared the planning
    /// view for this `known` set.
    fn plan_targets(
        &self,
        known: &[usize],
        arriving: Option<usize>,
        warm: bool,
    ) -> Result<Vec<usize>, TestbedError> {
        let (net, current) = self.current_view(known)?;
        match self.config.policy {
            ControllerPolicy::Rssi => Err(TestbedError::AssignmentFailed {
                context: "RSSI policy plans no directives".to_string(),
            }),
            ControllerPolicy::Greedy => {
                let Some(client) = arriving else {
                    // Greedy never re-optimizes existing clients.
                    return Ok(known
                        .iter()
                        .map(|&i| self.association[i].expect("known clients are attached"))
                        .collect());
                };
                // Only the newcomer moves.
                let view_idx = known
                    .iter()
                    .position(|&i| i == client)
                    .expect("reporting client is known");
                let mut best: Option<(usize, f64)> = None;
                for j in 0..net.extenders() {
                    if !net.reachable(view_idx, j) {
                        continue;
                    }
                    let mut candidate = current.clone();
                    candidate.assign(view_idx, j);
                    let value = evaluate(net, &candidate)
                        .map(|e| e.aggregate.value())
                        .unwrap_or(f64::NEG_INFINITY);
                    if best.is_none_or(|(_, v)| value > v) {
                        best = Some((j, value));
                    }
                }
                let (target, _) = best.ok_or_else(|| TestbedError::AssignmentFailed {
                    context: format!("client {client} has no reachable extender"),
                })?;
                let mut desired: Vec<usize> = known
                    .iter()
                    .map(|&i| self.association[i].expect("known clients are attached"))
                    .collect();
                desired[view_idx] = target;
                Ok(desired)
            }
            ControllerPolicy::Wolt => {
                let wolt = Wolt::new();
                // A merged batch may warm-start: re-polish the previous
                // complete association against the batched telemetry
                // instead of re-running both phases. Any failure — a
                // partial previous plan, a validation error against the
                // shifted view — falls back to the cold solve.
                let assoc = if warm && current.is_complete() {
                    wolt.warm_associate(net, &current)
                } else {
                    Err(wolt_core::CoreError::IncompleteAssociation { user: 0 })
                }
                .or_else(|_| wolt.associate(net))
                .map_err(|e| TestbedError::AssignmentFailed {
                    context: e.to_string(),
                })?;
                (0..net.users())
                    .map(|v| {
                        assoc
                            .target(v)
                            .ok_or_else(|| TestbedError::AssignmentFailed {
                                context: format!("planner left user {v} unassociated"),
                            })
                    })
                    .collect()
            }
        }
    }

    /// Builds — or, when the telemetry rate content and known set are
    /// unchanged since the last plan, reuses — the planning [`Network`]:
    /// estimated PLC capacities plus the telemetry cache's
    /// last-known-good rates for the given clients. The view is a pure
    /// function of `(telemetry version, known)`, so a steady-state
    /// population re-reporting unchanged rates replans across epochs
    /// without rebuilding it (`cc.view_reuses` / `cc.view_builds`).
    fn ensure_view(&mut self, known: &[usize]) -> Result<(), TestbedError> {
        let version = self.telemetry.version();
        if self
            .view
            .as_ref()
            .is_some_and(|v| v.version == version && v.known == known)
        {
            obs::counter_inc("cc.view_reuses");
            return Ok(());
        }
        let rates: Vec<Vec<f64>> = known
            .iter()
            .map(|&i| {
                self.telemetry
                    .rates(i)
                    .expect("known client has rates")
                    .iter()
                    .map(|r| r.map_or(0.0, |m| m.value()))
                    .collect()
            })
            .collect();
        let net = Network::from_raw(
            self.config
                .estimated_capacities
                .iter()
                .map(|c| c.value())
                .collect(),
            rates,
        )
        .map_err(|e| TestbedError::AssignmentFailed {
            context: e.to_string(),
        })?;
        obs::counter_inc("cc.view_builds");
        self.view = Some(ViewCache {
            version,
            known: known.to_vec(),
            net,
        });
        Ok(())
    }

    /// The prepared planning view for `known`, plus the CC's current
    /// association of those clients (always rebuilt — associations
    /// change on every ack, so only the [`Network`] is worth caching).
    fn current_view(&self, known: &[usize]) -> Result<(&Network, Association), TestbedError> {
        let view = self
            .view
            .as_ref()
            .filter(|v| v.version == self.telemetry.version() && v.known == known)
            .ok_or_else(|| TestbedError::AssignmentFailed {
                context: "planning view not prepared".to_string(),
            })?;
        let assoc = Association::from_targets(known.iter().map(|&i| self.association[i]).collect());
        Ok((&view.net, assoc))
    }

    /// The CC's view of each client's current extender.
    pub fn association(&self) -> &[Option<usize>] {
        &self.association
    }

    /// Distinct directives issued so far (retransmissions not counted —
    /// those are the transport's business).
    pub fn directives(&self) -> usize {
        self.directives
    }

    /// Solves that failed and degraded to the previous association.
    pub fn degraded_solves(&self) -> usize {
        self.degraded_solves
    }

    /// Clients declared dead, in declaration order.
    pub fn declared_dead(&self) -> &[usize] {
        &self.declared_dead
    }

    /// Highest event epoch processed so far.
    pub fn watermark(&self) -> Option<u64> {
        self.watermark
    }

    /// Captures the full decision state for persistence.
    pub fn snapshot(&self) -> ControllerSnapshot {
        ControllerSnapshot {
            epoch: self.watermark,
            alpha: self.telemetry.alpha(),
            telemetry: self.telemetry.entries(),
            association: self.association.clone(),
            dead: self.dead.clone(),
            latest_seq: self.latest_seq.clone(),
            next_seq: self.next_seq,
            directives: self.directives,
            degraded_solves: self.degraded_solves,
            declared_dead: self.declared_dead.clone(),
        }
    }

    /// Rebuilds a controller from a snapshot plus the (non-serialized)
    /// configuration. The restored core continues exactly where the
    /// snapshotted one stopped: same epoch watermark, same sequence
    /// counter, same telemetry.
    ///
    /// # Errors
    ///
    /// Returns [`TestbedError::InvalidConfig`] when the snapshot's
    /// per-client vectors disagree in length.
    pub fn restore(
        config: ControllerConfig,
        snapshot: ControllerSnapshot,
    ) -> Result<Self, TestbedError> {
        let n = snapshot.telemetry.len();
        if snapshot.association.len() != n
            || snapshot.dead.len() != n
            || snapshot.latest_seq.len() != n
        {
            return Err(TestbedError::InvalidConfig {
                context: "snapshot per-client vectors disagree in length",
            });
        }
        Ok(Self {
            telemetry: TelemetryCache::from_entries(snapshot.alpha, snapshot.telemetry),
            association: snapshot.association,
            dead: snapshot.dead,
            latest_seq: snapshot.latest_seq,
            next_seq: snapshot.next_seq,
            watermark: snapshot.epoch,
            directives: snapshot.directives,
            degraded_solves: snapshot.degraded_solves,
            declared_dead: snapshot.declared_dead,
            view: None,
            config,
        })
    }
}

/// The serializable decision state of a [`ControllerCore`].
///
/// Serializes to canonical JSON via [`ToJson`] (insertion-ordered keys,
/// shortest-round-trip floats), so two snapshots of equal state are
/// byte-identical on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerSnapshot {
    /// Highest event epoch processed ([`ControllerCore::watermark`]).
    pub epoch: Option<u64>,
    /// Telemetry smoothing factor.
    pub alpha: f64,
    /// Per-client telemetry slots.
    pub telemetry: Vec<Option<TelemetryEntry>>,
    /// Per-client association view.
    pub association: Vec<Option<usize>>,
    /// Per-client declared-dead flags.
    pub dead: Vec<bool>,
    /// Per-client newest outstanding directive sequence.
    pub latest_seq: Vec<Option<u64>>,
    /// Next directive sequence number.
    pub next_seq: u64,
    /// Distinct directives issued.
    pub directives: usize,
    /// Degraded solves so far.
    pub degraded_solves: usize,
    /// Clients declared dead, in declaration order.
    pub declared_dead: Vec<usize>,
}

impl ToJson for ControllerSnapshot {
    fn to_json(&self) -> Json {
        let telemetry = Json::Arr(
            self.telemetry
                .iter()
                .map(|slot| match slot {
                    None => Json::Null,
                    Some(e) => Json::obj([
                        (
                            "rates",
                            Json::Arr(
                                e.rates
                                    .iter()
                                    .map(|r| match r {
                                        Some(m) => Json::Num(m.value()),
                                        None => Json::Null,
                                    })
                                    .collect(),
                            ),
                        ),
                        ("staleness", e.staleness.to_json()),
                        ("last_epoch", e.last_epoch.to_json()),
                    ]),
                })
                .collect(),
        );
        Json::obj([
            ("epoch", self.epoch.to_json()),
            ("alpha", self.alpha.to_json()),
            ("telemetry", telemetry),
            ("association", self.association.to_json()),
            ("dead", self.dead.to_json()),
            ("latest_seq", self.latest_seq.to_json()),
            ("next_seq", self.next_seq.to_json()),
            ("directives", self.directives.to_json()),
            ("degraded_solves", self.degraded_solves.to_json()),
            ("declared_dead", self.declared_dead.to_json()),
        ])
    }
}

impl FromJson for ControllerSnapshot {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let telemetry = value
            .field("telemetry")?
            .as_arr()
            .ok_or_else(|| JsonError::shape("telemetry must be an array"))?
            .iter()
            .map(|slot| {
                if slot.is_null() {
                    return Ok(None);
                }
                let rates = slot
                    .field("rates")?
                    .as_arr()
                    .ok_or_else(|| JsonError::shape("rates must be an array"))?
                    .iter()
                    .map(|r| {
                        if r.is_null() {
                            Ok(None)
                        } else {
                            r.as_f64()
                                .map(|v| Some(Mbps::new(v)))
                                .ok_or_else(|| JsonError::shape("rate must be a number or null"))
                        }
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Some(TelemetryEntry {
                    rates,
                    staleness: u64::from_json(slot.field("staleness")?)?,
                    last_epoch: u64::from_json(slot.field("last_epoch")?)?,
                }))
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        Ok(Self {
            epoch: Option::<u64>::from_json(value.field("epoch")?)?,
            alpha: f64::from_json(value.field("alpha")?)?,
            telemetry,
            association: Vec::<Option<usize>>::from_json(value.field("association")?)?,
            dead: Vec::<bool>::from_json(value.field("dead")?)?,
            latest_seq: Vec::<Option<u64>>::from_json(value.field("latest_seq")?)?,
            next_seq: u64::from_json(value.field("next_seq")?)?,
            directives: usize::from_json(value.field("directives")?)?,
            degraded_solves: usize::from_json(value.field("degraded_solves")?)?,
            declared_dead: Vec::<usize>::from_json(value.field("declared_dead")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(policy: ControllerPolicy, n: usize, caps: &[f64]) -> ControllerCore {
        ControllerCore::new(
            n,
            ControllerConfig {
                policy,
                estimated_capacities: caps.iter().map(|&c| Mbps::new(c)).collect(),
                strict: true,
            },
        )
    }

    fn mb(v: f64) -> Option<Mbps> {
        Some(Mbps::new(v))
    }

    #[test]
    fn rssi_core_never_plans() {
        let mut cc = core(ControllerPolicy::Rssi, 2, &[60.0, 20.0]);
        let d = cc.handle_report(0, 0, &[mb(15.0), mb(10.0)], 0).unwrap();
        assert!(d.is_empty());
        assert_eq!(cc.directives(), 0);
        assert_eq!(cc.association()[0], Some(0));
    }

    #[test]
    fn wolt_core_moves_the_fig3_clients() {
        // The paper's Fig. 3 case study: WOLT splits the users across
        // both extenders; the RSSI attachment piles both on extender 0.
        let mut cc = core(ControllerPolicy::Wolt, 2, &[60.0, 20.0]);
        let d0 = cc.handle_report(0, 0, &[mb(15.0), mb(10.0)], 0).unwrap();
        let d1 = cc.handle_report(1, 1, &[mb(40.0), mb(20.0)], 0).unwrap();
        let moved: Vec<usize> = d0.iter().chain(&d1).map(|d| d.client).collect();
        assert!(!moved.is_empty(), "WOLT should re-balance");
        // Sequence numbers are monotone across the whole session.
        let seqs: Vec<u64> = d0.iter().chain(&d1).map(|d| d.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
    }

    fn frame(client: usize, epoch: u64, rates: &[Option<Mbps>], attached: usize) -> ReportFrame {
        ReportFrame {
            client,
            epoch,
            rates: rates.to_vec(),
            attached,
        }
    }

    #[test]
    fn coalesce_keeps_each_clients_newest_in_arrival_order() {
        let a1 = frame(0, 5, &[mb(10.0)], 0);
        let b1 = frame(1, 6, &[mb(20.0)], 0);
        let a2 = frame(0, 7, &[mb(30.0)], 0);
        let (kept, dropped) = coalesce_frames(vec![a1, b1.clone(), a2.clone()]);
        // a1 is deleted in place; survivor order is arrival order.
        assert_eq!(kept, vec![b1, a2]);
        assert_eq!(dropped, 1);
        let (kept, dropped) = coalesce_frames(Vec::new());
        assert!(kept.is_empty());
        assert_eq!(dropped, 0);
        // A same-client burst collapses to its last copy.
        let burst: Vec<ReportFrame> = (0..5).map(|e| frame(2, e, &[mb(1.0)], 0)).collect();
        let (kept, dropped) = coalesce_frames(burst.clone());
        assert_eq!(kept, vec![burst[4].clone()]);
        assert_eq!(dropped, 4);
    }

    #[test]
    fn batch_of_one_matches_handle_report_exactly() {
        for policy in [
            ControllerPolicy::Wolt,
            ControllerPolicy::Greedy,
            ControllerPolicy::Rssi,
        ] {
            let mut single = core(policy, 2, &[60.0, 20.0]);
            let mut batched = single.clone();
            let mut singles = Vec::new();
            let events = [
                frame(0, 0, &[mb(15.0), mb(10.0)], 0),
                frame(1, 1, &[mb(40.0), mb(20.0)], 0),
            ];
            for f in &events {
                assert!(!single.is_duplicate(f.epoch));
                singles.push(single.handle_report(f.client, f.epoch, &f.rates, f.attached));
            }
            for (f, expect) in events.iter().zip(singles) {
                let outcome = batched
                    .handle_report_batch(std::slice::from_ref(f))
                    .unwrap();
                assert_eq!(outcome.directives, expect.unwrap(), "{policy:?}");
                assert_eq!(outcome.ingested, 1);
                assert_eq!(outcome.last_epoch, Some(f.epoch));
            }
            // The full decision state agrees, byte for byte.
            assert_eq!(
                single.snapshot().to_json().to_pretty(),
                batched.snapshot().to_json().to_pretty(),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn batch_skips_duplicates_and_plans_once() {
        let mut cc = core(ControllerPolicy::Wolt, 2, &[60.0, 20.0]);
        cc.handle_report(0, 0, &[mb(15.0), mb(10.0)], 0).unwrap();
        // A stale epoch, a same-batch burst, and a fresh frame together:
        // only the two fresh ones are ingested.
        let outcome = cc
            .handle_report_batch(&[
                frame(0, 0, &[mb(15.0), mb(10.0)], 0),
                frame(1, 1, &[mb(40.0), mb(20.0)], 0),
                frame(1, 1, &[mb(40.0), mb(20.0)], 0),
                frame(0, 2, &[mb(15.0), mb(10.0)], 0),
            ])
            .unwrap();
        assert_eq!(outcome.ingested, 2);
        assert_eq!(outcome.last_epoch, Some(2));
        assert_eq!(cc.watermark(), Some(2));
        // An all-duplicate batch is a no-op.
        let outcome = cc
            .handle_report_batch(&[frame(0, 1, &[mb(15.0), mb(10.0)], 0)])
            .unwrap();
        assert_eq!(
            outcome,
            BatchOutcome {
                directives: Vec::new(),
                ingested: 0,
                last_epoch: None,
            }
        );
    }

    #[test]
    fn merged_batches_are_deterministic_and_valid() {
        // Two identical cores fed the same merged batch (the warm-start
        // path) must agree exactly — and with a strict config the batch
        // must plan, not degrade.
        let mk = || {
            let mut cc = core(ControllerPolicy::Wolt, 3, &[60.0, 20.0]);
            cc.handle_report(0, 0, &[mb(15.0), mb(10.0)], 0).unwrap();
            cc.handle_report(1, 1, &[mb(40.0), mb(20.0)], 0).unwrap();
            cc
        };
        let batch = [
            frame(2, 2, &[mb(25.0), mb(30.0)], 0),
            frame(0, 3, &[mb(15.0), mb(10.0)], 0),
        ];
        let (mut a, mut b) = (mk(), mk());
        let oa = a.handle_report_batch(&batch).unwrap();
        let ob = b.handle_report_batch(&batch).unwrap();
        assert_eq!(oa, ob);
        assert_eq!(oa.ingested, 2);
        assert_eq!(
            a.snapshot().to_json().to_pretty(),
            b.snapshot().to_json().to_pretty()
        );
        // Every client ends attached somewhere valid.
        for dir in &oa.directives {
            assert!(dir.extender < 2);
        }
    }

    #[test]
    fn duplicate_epochs_are_caller_visible() {
        let mut cc = core(ControllerPolicy::Wolt, 1, &[60.0]);
        assert!(!cc.is_duplicate(0));
        cc.handle_report(0, 0, &[mb(15.0)], 0).unwrap();
        assert!(cc.is_duplicate(0));
        assert!(!cc.is_duplicate(1));
    }

    #[test]
    fn ack_only_accepted_for_newest_sequence() {
        let mut cc = core(ControllerPolicy::Wolt, 2, &[60.0, 20.0]);
        cc.handle_report(0, 0, &[mb(15.0), mb(10.0)], 0).unwrap();
        let d = cc.handle_report(1, 1, &[mb(40.0), mb(20.0)], 0).unwrap();
        if let Some(dir) = d.first() {
            assert!(!cc.handle_ack(dir.client, dir.seq + 100, dir.extender));
            assert!(cc.handle_ack(dir.client, dir.seq, dir.extender));
            assert_eq!(cc.association()[dir.client], Some(dir.extender));
        }
    }

    #[test]
    fn declared_dead_client_is_forgotten_and_survivors_replanned() {
        let mut cc = core(ControllerPolicy::Wolt, 2, &[60.0, 20.0]);
        cc.handle_report(0, 0, &[mb(15.0), mb(10.0)], 0).unwrap();
        cc.handle_report(1, 1, &[mb(40.0), mb(20.0)], 0).unwrap();
        cc.declare_dead(1).unwrap();
        assert_eq!(cc.declared_dead(), &[1]);
        assert_eq!(cc.association()[1], None);
        // Regression (unbounded growth): a dead client leaves no
        // telemetry entry behind.
        assert_eq!(cc.snapshot().telemetry[1], None);
        // Its acks are ignored forever after.
        assert!(!cc.handle_ack(1, 0, 0));
    }

    #[test]
    fn departed_client_leaves_no_state_behind() {
        let mut cc = core(ControllerPolicy::Greedy, 2, &[60.0, 20.0]);
        cc.handle_report(0, 0, &[mb(15.0), mb(10.0)], 0).unwrap();
        cc.handle_departed(0, 1).unwrap();
        let snap = cc.snapshot();
        assert_eq!(snap.telemetry[0], None);
        assert_eq!(snap.association[0], None);
        assert_eq!(snap.latest_seq[0], None);
    }

    #[test]
    fn evict_stale_unassigns_evicted_clients() {
        let mut cc = core(ControllerPolicy::Greedy, 2, &[60.0, 20.0]);
        cc.handle_report(0, 0, &[mb(15.0), mb(10.0)], 0).unwrap();
        // Client 1 reports at each later epoch; client 0 stays silent and
        // ages past the bound.
        cc.handle_report(1, 1, &[mb(40.0), mb(20.0)], 0).unwrap();
        cc.handle_departed(1, 2).unwrap();
        cc.handle_report(1, 3, &[mb(40.0), mb(20.0)], 0).unwrap();
        assert_eq!(cc.evict_stale(2), vec![0]);
        assert_eq!(cc.association()[0], None);
        assert_eq!(cc.snapshot().telemetry[0], None);
    }

    #[test]
    fn snapshot_json_round_trips_byte_identically() {
        let mut cc = core(ControllerPolicy::Wolt, 3, &[60.0, 20.0]);
        cc.handle_report(0, 0, &[mb(15.0), None], 0).unwrap();
        cc.handle_report(1, 1, &[mb(40.0), mb(20.0)], 0).unwrap();
        cc.declare_dead(0).unwrap();
        let snap = cc.snapshot();
        let text = snap.to_json().to_pretty();
        let back = ControllerSnapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_json().to_pretty(), text, "canonical JSON");
    }

    #[test]
    fn restored_core_continues_identically() {
        let mut a = core(ControllerPolicy::Wolt, 3, &[60.0, 20.0]);
        a.handle_report(0, 0, &[mb(15.0), mb(10.0)], 0).unwrap();
        a.handle_report(1, 1, &[mb(40.0), mb(20.0)], 0).unwrap();
        let config = ControllerConfig {
            policy: ControllerPolicy::Wolt,
            estimated_capacities: vec![Mbps::new(60.0), Mbps::new(20.0)],
            strict: true,
        };
        let mut b = ControllerCore::restore(config, a.snapshot()).unwrap();
        assert_eq!(b.watermark(), a.watermark());
        // Same next event, same decisions, same sequence numbers.
        let da = a.handle_report(2, 2, &[mb(5.0), mb(25.0)], 1).unwrap();
        let db = b.handle_report(2, 2, &[mb(5.0), mb(25.0)], 1).unwrap();
        assert_eq!(da, db);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn restore_rejects_inconsistent_snapshot() {
        let cc = core(ControllerPolicy::Wolt, 2, &[60.0, 20.0]);
        let mut snap = cc.snapshot();
        snap.association.pop();
        let config = ControllerConfig {
            policy: ControllerPolicy::Wolt,
            estimated_capacities: vec![Mbps::new(60.0), Mbps::new(20.0)],
            strict: true,
        };
        assert!(matches!(
            ControllerCore::restore(config, snap),
            Err(TestbedError::InvalidConfig { .. })
        ));
    }
}
