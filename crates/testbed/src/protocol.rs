//! Wire messages between client agents and the Central Controller.
//!
//! Mirrors the paper's software architecture (§V-A): "When a user arrives
//! (needs association), it scans all available networks and estimate\[s\]
//! the WiFi channel quality of each extender … The users (clients) gather
//! this information on the reachable extenders and send it to the CC …
//! a new user initially connects to the extender with the highest RSSI to
//! communicate with the server and later switches extenders if needed,
//! based on the new assignment from the CC."
//!
//! Because these messages travel over a real (and in this rig, optionally
//! faulty) medium, every message carries enough identity to be processed
//! idempotently:
//!
//! * reports and departure notices carry the harness **epoch** (event
//!   index) that produced them, so the CC applies each event exactly once
//!   no matter how many retransmissions or duplicates arrive;
//! * directives carry a monotone **sequence number**, so a client applies
//!   each re-association exactly once and stale retries are recognized;
//! * directives and their acks carry the delivery **attempt**, so the
//!   fault layer can make an independent, deterministic drop/delay
//!   decision per retransmission.

use wolt_units::Mbps;

/// Messages a client agent sends to the Central Controller.
#[derive(Debug, Clone, PartialEq)]
pub enum ToController {
    /// Scan report: the client's estimated achievable rate to each
    /// extender (`None` = out of range), plus the extender it attached to
    /// initially (highest RSSI).
    Report {
        /// Client index.
        client: usize,
        /// Harness epoch (event index) of the join that produced this
        /// report; retransmissions repeat it.
        epoch: u64,
        /// Estimated achievable rate per extender.
        rates: Vec<Option<Mbps>>,
        /// Extender the client attached to for CC connectivity.
        attached: usize,
    },
    /// Acknowledgement that a directive was applied (the client finished
    /// re-associating).
    Ack {
        /// Client index.
        client: usize,
        /// Sequence number of the directive being acknowledged.
        seq: u64,
        /// The extender the client is now associated with.
        extender: usize,
    },
    /// The client has left the network.
    Departed {
        /// Client index.
        client: usize,
        /// Harness epoch (event index) of the leave that produced this
        /// notice; retransmissions repeat it.
        epoch: u64,
    },
}

/// Messages the Central Controller sends to a client agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToClient {
    /// Associate with this extender.
    Directive {
        /// Target extender index.
        extender: usize,
        /// Sequence number: a client applies each directive once and
        /// re-acks (without re-associating) when a retry of an
        /// already-applied sequence arrives.
        seq: u64,
        /// Delivery attempt (1-based); retries of the same `seq`
        /// increment it.
        attempt: u32,
    },
    /// Experiment over; the agent thread should exit.
    Shutdown,
}

/// Harness → client agent control messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToAgent {
    /// Begin the join procedure (scan → attach → report).
    Join {
        /// Harness epoch (event index) of this join.
        epoch: u64,
        /// Delivery attempt (1-based); the harness re-sends a join whose
        /// completion it never observed.
        attempt: u32,
    },
    /// Leave the network (detach and notify the CC).
    Leave {
        /// Harness epoch (event index) of this leave.
        epoch: u64,
        /// Delivery attempt (1-based).
        attempt: u32,
    },
    /// Exit the agent loop.
    Shutdown,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_cloneable_and_comparable() {
        let m = ToController::Report {
            client: 1,
            epoch: 0,
            rates: vec![Some(Mbps::new(10.0)), None],
            attached: 0,
        };
        assert_eq!(m.clone(), m);
        let d = ToClient::Directive {
            extender: 2,
            seq: 1,
            attempt: 1,
        };
        assert_ne!(d, ToClient::Shutdown);
        let j = ToAgent::Join {
            epoch: 3,
            attempt: 1,
        };
        assert_eq!(j.clone(), j);
    }

    #[test]
    fn retries_differ_only_in_attempt() {
        let first = ToClient::Directive {
            extender: 2,
            seq: 9,
            attempt: 1,
        };
        let retry = ToClient::Directive {
            extender: 2,
            seq: 9,
            attempt: 2,
        };
        assert_ne!(first, retry);
    }

    #[test]
    fn messages_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ToController>();
        assert_send::<ToClient>();
        assert_send::<ToAgent>();
    }
}
