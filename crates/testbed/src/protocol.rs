//! Wire messages between client agents and the Central Controller.
//!
//! Mirrors the paper's software architecture (§V-A): "When a user arrives
//! (needs association), it scans all available networks and estimate\[s\]
//! the WiFi channel quality of each extender … The users (clients) gather
//! this information on the reachable extenders and send it to the CC …
//! a new user initially connects to the extender with the highest RSSI to
//! communicate with the server and later switches extenders if needed,
//! based on the new assignment from the CC."

use wolt_units::Mbps;

/// Messages a client agent sends to the Central Controller.
#[derive(Debug, Clone, PartialEq)]
pub enum ToController {
    /// Scan report: the client's estimated achievable rate to each
    /// extender (`None` = out of range), plus the extender it attached to
    /// initially (highest RSSI).
    Report {
        /// Client index.
        client: usize,
        /// Estimated achievable rate per extender.
        rates: Vec<Option<Mbps>>,
        /// Extender the client attached to for CC connectivity.
        attached: usize,
    },
    /// Acknowledgement that a directive was applied (the client finished
    /// re-associating).
    Ack {
        /// Client index.
        client: usize,
        /// The extender the client is now associated with.
        extender: usize,
    },
    /// The client has left the network.
    Departed {
        /// Client index.
        client: usize,
    },
}

/// Messages the Central Controller sends to a client agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToClient {
    /// Associate with this extender.
    Directive {
        /// Target extender index.
        extender: usize,
    },
    /// Experiment over; the agent thread should exit.
    Shutdown,
}

/// Harness → client agent control messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToAgent {
    /// Begin the join procedure (scan → attach → report).
    Join,
    /// Leave the network (detach and notify the CC).
    Leave,
    /// Exit the agent loop.
    Shutdown,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_cloneable_and_comparable() {
        let m = ToController::Report {
            client: 1,
            rates: vec![Some(Mbps::new(10.0)), None],
            attached: 0,
        };
        assert_eq!(m.clone(), m);
        let d = ToClient::Directive { extender: 2 };
        assert_ne!(d, ToClient::Shutdown);
        assert_eq!(ToAgent::Join.clone(), ToAgent::Join);
    }

    #[test]
    fn messages_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ToController>();
        assert_send::<ToClient>();
        assert_send::<ToAgent>();
    }
}
