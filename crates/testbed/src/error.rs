use std::error::Error;
use std::fmt;

use wolt_core::CoreError;
use wolt_sim::SimError;

/// Errors produced by the testbed emulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TestbedError {
    /// A protocol channel closed unexpectedly (an agent or the controller
    /// panicked or exited early).
    ChannelClosed {
        /// Which endpoint disappeared.
        endpoint: &'static str,
    },
    /// The controller failed to compute an assignment.
    AssignmentFailed {
        /// The underlying description.
        context: String,
    },
    /// A configuration parameter was outside its valid range.
    InvalidConfig {
        /// Human-readable description.
        context: &'static str,
    },
    /// Scenario or evaluation machinery failed.
    Layer {
        /// Description of the failing call.
        context: String,
    },
    /// A protocol deadline expired: the awaited message never arrived
    /// within the configured retry budget. This is the bounded-time
    /// replacement for blocking forever on a dead or wedged endpoint.
    Timeout {
        /// What the waiter was blocked on (e.g. `"join of client 3"`).
        waiting_for: String,
    },
}

impl fmt::Display for TestbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestbedError::ChannelClosed { endpoint } => {
                write!(f, "protocol channel to {endpoint} closed unexpectedly")
            }
            TestbedError::AssignmentFailed { context } => {
                write!(f, "assignment failed: {context}")
            }
            TestbedError::InvalidConfig { context } => write!(f, "invalid config: {context}"),
            TestbedError::Layer { context } => write!(f, "layer failure: {context}"),
            TestbedError::Timeout { waiting_for } => {
                write!(f, "deadline expired waiting for {waiting_for}")
            }
        }
    }
}

impl Error for TestbedError {}

impl From<CoreError> for TestbedError {
    fn from(e: CoreError) -> Self {
        TestbedError::Layer {
            context: format!("core: {e}"),
        }
    }
}

impl From<SimError> for TestbedError {
    fn from(e: SimError) -> Self {
        TestbedError::Layer {
            context: format!("sim: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(TestbedError::ChannelClosed { endpoint: "cc" }
            .to_string()
            .contains("cc"));
        let e: TestbedError = CoreError::UnreachableUser { user: 0 }.into();
        assert!(e.to_string().contains("core"));
        let t = TestbedError::Timeout {
            waiting_for: "join of client 3".to_string(),
        };
        assert!(t.to_string().contains("join of client 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TestbedError>();
    }
}
