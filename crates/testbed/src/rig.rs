//! The testbed rig: a Central Controller and client agents on real
//! threads, speaking the paper's protocol over channels.
//!
//! The paper implements WOLT "as a user-space utility that runs on users'
//! devices as well as the server" (§V-A). This module reproduces that
//! architecture: one controller thread (the CC) and one thread per client
//! laptop, connected by mpsc channels. Clients join (and may leave)
//! sequentially, as laptops were carried around the lab: each scans,
//! attaches to its strongest-RSSI extender, reports its rate estimates to
//! the CC, and re-associates when a directive arrives. The CC runs the
//! configured association policy on the *estimated* PLC capacities (from
//! the offline iperf procedure), while the physical outcome is always
//! evaluated on the true capacities — estimation error is part of the
//! experiment.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread;

use wolt_core::{evaluate, Association, AssociationPolicy, Network, Wolt};
use wolt_plc::capacity::CapacityEstimator;
use wolt_sim::Scenario;
use wolt_support::rng::{ChaCha8Rng, SeedableRng};
use wolt_units::Mbps;

use crate::protocol::{ToAgent, ToClient, ToController};
use crate::TestbedError;

/// Which association logic the Central Controller runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerPolicy {
    /// Full WOLT re-optimization on every arrival/departure (directives
    /// may move existing clients).
    Wolt,
    /// Greedy placement of the arriving client only; departures trigger
    /// no re-optimization.
    Greedy,
    /// No directives: clients stay on their strongest-RSSI extender.
    Rssi,
}

impl ControllerPolicy {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ControllerPolicy::Wolt => "WOLT",
            ControllerPolicy::Greedy => "Greedy",
            ControllerPolicy::Rssi => "RSSI",
        }
    }
}

/// Rig configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RigConfig {
    /// Association logic at the CC.
    pub policy: ControllerPolicy,
    /// Offline PLC capacity estimation procedure (measurement noise).
    pub estimator: CapacityEstimator,
}

impl RigConfig {
    /// Rig with the given policy and the default estimator.
    pub fn new(policy: ControllerPolicy) -> Self {
        Self {
            policy,
            estimator: CapacityEstimator::default(),
        }
    }
}

/// One step of a testbed session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEvent {
    /// Client `i` powers on, scans, attaches, and reports to the CC.
    Join(usize),
    /// Client `i` leaves the network (sends a departure notice).
    Leave(usize),
}

/// Result of running one topology through the rig.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyOutcome {
    /// Policy name.
    pub policy: String,
    /// Final association (physical state at session end; departed clients
    /// are unassigned).
    pub association: Association,
    /// Aggregate throughput on the *true* capacities (Mbit/s).
    pub aggregate: f64,
    /// Per-user throughput on the true capacities (Mbit/s; 0 for departed
    /// clients).
    pub per_user: Vec<f64>,
    /// Jain's fairness index over the *present* clients.
    pub jain: Option<f64>,
    /// Directives the CC sent.
    pub directives: usize,
    /// Present clients whose final extender differs from their initial
    /// strongest-RSSI attachment.
    pub switches: usize,
}

/// Runs the standard experiment: every user joins once, in index order.
///
/// See [`run_session`] for the general event-driven form; this wrapper
/// additionally guarantees a complete final association.
///
/// # Errors
///
/// As [`run_session`], plus [`TestbedError::AssignmentFailed`] if the
/// session somehow ends incomplete.
pub fn run_rig(
    scenario: &Scenario,
    config: &RigConfig,
    seed: u64,
) -> Result<TopologyOutcome, TestbedError> {
    let events: Vec<SessionEvent> = (0..scenario.user_positions.len())
        .map(SessionEvent::Join)
        .collect();
    let outcome = run_session(scenario, config, &events, seed)?;
    outcome
        .association
        .require_complete()
        .map_err(TestbedError::from)?;
    Ok(outcome)
}

/// Runs an arbitrary join/leave session through the threaded rig and
/// evaluates the resulting physical association on the true capacities.
///
/// `seed` drives the capacity-estimation noise only; the scenario itself
/// is supplied fully sampled.
///
/// # Errors
///
/// * [`TestbedError::InvalidConfig`] for an empty scenario, a Join of an
///   already-present client, or a Leave of an absent one.
/// * [`TestbedError::ChannelClosed`] if a thread dies mid-protocol.
/// * [`TestbedError::AssignmentFailed`] if the CC's policy cannot produce
///   an association.
pub fn run_session(
    scenario: &Scenario,
    config: &RigConfig,
    events: &[SessionEvent],
    seed: u64,
) -> Result<TopologyOutcome, TestbedError> {
    let n_users = scenario.user_positions.len();
    let n_ext = scenario.extender_positions.len();
    if n_users == 0 || n_ext == 0 {
        return Err(TestbedError::InvalidConfig {
            context: "scenario needs at least one user and one extender",
        });
    }

    // Offline capacity estimation (the paper's iperf3 procedure).
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let estimated: Vec<Mbps> = scenario
        .capacities
        .iter()
        .map(|&c| config.estimator.estimate(c, &mut rng))
        .collect::<Result<_, _>>()
        .map_err(|e| TestbedError::Layer {
            context: format!("capacity estimation: {e}"),
        })?;

    // Physical association state shared by all agents (the "air").
    let physical: Arc<Mutex<Vec<Option<usize>>>> = Arc::new(Mutex::new(vec![None; n_users]));

    let (to_cc_tx, to_cc_rx) = channel::<ToController>();
    let (done_tx, done_rx) = channel::<Result<(), TestbedError>>();

    let mut agent_handles = Vec::with_capacity(n_users);
    let mut agent_txs: Vec<Sender<AgentInbox>> = Vec::with_capacity(n_users);

    for i in 0..n_users {
        // One inbox per agent: harness commands and CC directives are
        // serialized by the session loop, so a single merged queue
        // replaces a two-channel select without reordering anything.
        let (agent_tx, agent_rx) = channel::<AgentInbox>();
        agent_txs.push(agent_tx);
        let rates: Vec<Option<Mbps>> = (0..n_ext).map(|j| scenario.rate(i, j)).collect();
        let physical = Arc::clone(&physical);
        let to_cc = to_cc_tx.clone();
        agent_handles.push(thread::spawn(move || {
            client_agent(i, rates, physical, to_cc, agent_rx)
        }));
    }

    // The Central Controller thread.
    let cc_state = ControllerState {
        policy: config.policy,
        estimated_capacities: estimated,
        rates: vec![None; n_users],
        association: vec![None; n_users],
    };
    let cc_client_txs = agent_txs.clone();
    let cc_handle = thread::spawn(move || controller(cc_state, to_cc_rx, cc_client_txs, done_tx));

    // Drive the session: joins and leaves are serialized, as laptops were
    // brought online/offline one at a time.
    let mut present = vec![false; n_users];
    let mut initial_attach: Vec<Option<usize>> = vec![None; n_users];
    for &event in events {
        match event {
            SessionEvent::Join(i) => {
                if i >= n_users || present[i] {
                    return Err(TestbedError::InvalidConfig {
                        context: "join of an out-of-range or already-present client",
                    });
                }
                agent_txs[i]
                    .send(AgentInbox::Harness(ToAgent::Join))
                    .map_err(|_| TestbedError::ChannelClosed { endpoint: "agent" })?;
                done_rx.recv().map_err(|_| TestbedError::ChannelClosed {
                    endpoint: "controller",
                })??;
                present[i] = true;
                if initial_attach[i].is_none() {
                    initial_attach[i] = physical.lock().expect("physical state lock")[i];
                }
            }
            SessionEvent::Leave(i) => {
                if i >= n_users || !present[i] {
                    return Err(TestbedError::InvalidConfig {
                        context: "leave of an out-of-range or absent client",
                    });
                }
                agent_txs[i]
                    .send(AgentInbox::Harness(ToAgent::Leave))
                    .map_err(|_| TestbedError::ChannelClosed { endpoint: "agent" })?;
                done_rx.recv().map_err(|_| TestbedError::ChannelClosed {
                    endpoint: "controller",
                })??;
                present[i] = false;
            }
        }
    }

    // Shutdown: stop agents, close the CC inbox, join threads.
    for tx in &agent_txs {
        let _ = tx.send(AgentInbox::Harness(ToAgent::Shutdown));
    }
    drop(to_cc_tx);
    let (directives, final_assoc_cc) =
        cc_handle.join().map_err(|_| TestbedError::ChannelClosed {
            endpoint: "controller",
        })?;
    for h in agent_handles {
        h.join()
            .map_err(|_| TestbedError::ChannelClosed { endpoint: "agent" })?;
    }

    // The physical state is ground truth; the CC's view must agree.
    let physical_assoc: Vec<Option<usize>> = physical.lock().expect("physical state lock").clone();
    debug_assert_eq!(physical_assoc, final_assoc_cc);
    let association = Association::from_targets(physical_assoc);

    // Evaluate on the TRUE capacities.
    let network = scenario.network().map_err(TestbedError::from)?;
    let eval = evaluate(&network, &association).map_err(TestbedError::from)?;

    // A "switch" is a departure from the default RSSI attachment — the
    // re-association overhead the paper discusses.
    let switches = (0..n_users)
        .filter(|&i| {
            present[i] && initial_attach[i].is_some() && association.target(i) != initial_attach[i]
        })
        .count();

    let present_throughputs: Vec<Mbps> = (0..n_users)
        .filter(|&i| present[i])
        .map(|i| eval.per_user[i])
        .collect();

    Ok(TopologyOutcome {
        policy: config.policy.name().to_string(),
        aggregate: eval.aggregate.value(),
        per_user: eval.per_user.iter().map(|t| t.value()).collect(),
        jain: wolt_core::fairness::jain_index(&present_throughputs),
        association,
        directives,
        switches,
    })
}

/// Everything a client-agent thread can receive, merged into one queue:
/// harness lifecycle commands and CC directives.
enum AgentInbox {
    /// Join/Leave/Shutdown from the session driver.
    Harness(ToAgent),
    /// Directive (or shutdown) from the Central Controller.
    Cc(ToClient),
}

/// CC-internal state.
struct ControllerState {
    policy: ControllerPolicy,
    estimated_capacities: Vec<Mbps>,
    rates: Vec<Option<Vec<Option<Mbps>>>>,
    association: Vec<Option<usize>>,
}

impl ControllerState {
    fn known_clients(&self) -> Vec<usize> {
        (0..self.rates.len())
            .filter(|&i| self.rates[i].is_some())
            .collect()
    }

    fn network_view(&self, known: &[usize]) -> Result<(Network, Association), TestbedError> {
        let rates: Vec<Vec<f64>> = known
            .iter()
            .map(|&i| {
                self.rates[i]
                    .as_ref()
                    .expect("known client has rates")
                    .iter()
                    .map(|r| r.map_or(0.0, |m| m.value()))
                    .collect()
            })
            .collect();
        let net = Network::from_raw(
            self.estimated_capacities
                .iter()
                .map(|c| c.value())
                .collect(),
            rates,
        )
        .map_err(|e| TestbedError::AssignmentFailed {
            context: e.to_string(),
        })?;
        let assoc = Association::from_targets(known.iter().map(|&i| self.association[i]).collect());
        Ok((net, assoc))
    }
}

/// The Central Controller loop.
///
/// Returns `(directives_sent, final_association)` at shutdown.
fn controller(
    mut state: ControllerState,
    rx: Receiver<ToController>,
    client_txs: Vec<Sender<AgentInbox>>,
    done: Sender<Result<(), TestbedError>>,
) -> (usize, Vec<Option<usize>>) {
    let mut directives = 0usize;
    while let Ok(msg) = rx.recv() {
        match msg {
            ToController::Report {
                client,
                rates,
                attached,
            } => {
                state.rates[client] = Some(rates);
                state.association[client] = Some(attached);
                let result = handle_join(&mut state, client, &client_txs, &rx, &mut directives);
                if done.send(result).is_err() {
                    break;
                }
            }
            ToController::Ack { client, extender } => {
                // Acks outside a transaction (shutdown races) just refresh
                // the CC view.
                state.association[client] = Some(extender);
            }
            ToController::Departed { client } => {
                state.rates[client] = None;
                state.association[client] = None;
                let result = handle_leave(&mut state, &client_txs, &rx, &mut directives);
                if done.send(result).is_err() {
                    break;
                }
            }
        }
    }
    (directives, state.association)
}

/// Processes one arrival at the CC: run the policy, send directives, wait
/// for acks.
fn handle_join(
    state: &mut ControllerState,
    client: usize,
    client_txs: &[Sender<AgentInbox>],
    rx: &Receiver<ToController>,
    directives: &mut usize,
) -> Result<(), TestbedError> {
    let known = state.known_clients();
    let (net, current) = state.network_view(&known)?;

    let desired: Vec<usize> = match state.policy {
        ControllerPolicy::Rssi => return Ok(()),
        ControllerPolicy::Greedy => {
            // Only the newcomer moves.
            let view_idx = known
                .iter()
                .position(|&i| i == client)
                .expect("reporting client is known");
            let mut best: Option<(usize, f64)> = None;
            for j in 0..net.extenders() {
                if !net.reachable(view_idx, j) {
                    continue;
                }
                let mut candidate = current.clone();
                candidate.assign(view_idx, j);
                let value = evaluate(&net, &candidate)
                    .map(|e| e.aggregate.value())
                    .unwrap_or(f64::NEG_INFINITY);
                if best.is_none_or(|(_, v)| value > v) {
                    best = Some((j, value));
                }
            }
            let (target, _) = best.ok_or_else(|| TestbedError::AssignmentFailed {
                context: format!("client {client} has no reachable extender"),
            })?;
            let mut desired: Vec<usize> = known
                .iter()
                .map(|&i| state.association[i].expect("known clients attached"))
                .collect();
            desired[view_idx] = target;
            desired
        }
        ControllerPolicy::Wolt => wolt_plan(&net)?,
    };

    apply_directives(state, &known, &desired, client_txs, rx, directives)
}

/// Processes a departure: WOLT re-optimizes the survivors; the baselines
/// leave everyone where they are.
fn handle_leave(
    state: &mut ControllerState,
    client_txs: &[Sender<AgentInbox>],
    rx: &Receiver<ToController>,
    directives: &mut usize,
) -> Result<(), TestbedError> {
    if state.policy != ControllerPolicy::Wolt {
        return Ok(());
    }
    let known = state.known_clients();
    if known.is_empty() {
        return Ok(());
    }
    let (net, _) = state.network_view(&known)?;
    let desired = wolt_plan(&net)?;
    apply_directives(state, &known, &desired, client_txs, rx, directives)
}

/// Runs the WOLT planner on the CC's network view.
fn wolt_plan(net: &Network) -> Result<Vec<usize>, TestbedError> {
    let assoc = Wolt::new()
        .associate(net)
        .map_err(|e| TestbedError::AssignmentFailed {
            context: e.to_string(),
        })?;
    Ok((0..net.users())
        .map(|v| assoc.target(v).expect("wolt returns complete associations"))
        .collect())
}

/// Issues directives for every known client whose target changed, then
/// waits for all acks.
fn apply_directives(
    state: &mut ControllerState,
    known: &[usize],
    desired: &[usize],
    client_txs: &[Sender<AgentInbox>],
    rx: &Receiver<ToController>,
    directives: &mut usize,
) -> Result<(), TestbedError> {
    let mut pending = Vec::new();
    for (v, &i) in known.iter().enumerate() {
        if state.association[i] != Some(desired[v]) {
            client_txs[i]
                .send(AgentInbox::Cc(ToClient::Directive {
                    extender: desired[v],
                }))
                .map_err(|_| TestbedError::ChannelClosed { endpoint: "client" })?;
            *directives += 1;
            pending.push(i);
        }
    }
    while !pending.is_empty() {
        match rx.recv() {
            Ok(ToController::Ack { client, extender }) => {
                state.association[client] = Some(extender);
                pending.retain(|&i| i != client);
            }
            Ok(_) => {
                // No other message type can legally arrive mid-transaction
                // (events are serialized by the harness).
                return Err(TestbedError::AssignmentFailed {
                    context: "unexpected message during directive transaction".to_string(),
                });
            }
            Err(_) => return Err(TestbedError::ChannelClosed { endpoint: "client" }),
        }
    }
    Ok(())
}

/// The client-agent loop: handle harness commands (join/leave/shutdown)
/// and CC directives concurrently.
fn client_agent(
    id: usize,
    rates: Vec<Option<Mbps>>,
    physical: Arc<Mutex<Vec<Option<usize>>>>,
    to_cc: Sender<ToController>,
    inbox: Receiver<AgentInbox>,
) {
    let mut joined = false;
    loop {
        let msg = match inbox.recv() {
            Ok(msg) => msg,
            Err(_) => return,
        };
        match msg {
            AgentInbox::Harness(ToAgent::Join) => {
                // Scan: strongest signal = highest achievable rate
                // (monotone table); ties break toward the lowest
                // extender index, matching the offline RSSI baseline.
                let mut attached = 0usize;
                let mut best_rate = f64::NEG_INFINITY;
                for (j, r) in rates.iter().enumerate() {
                    if let Some(m) = r {
                        if m.value() > best_rate {
                            best_rate = m.value();
                            attached = j;
                        }
                    }
                }
                physical.lock().expect("physical state lock")[id] = Some(attached);
                joined = true;
                if to_cc
                    .send(ToController::Report {
                        client: id,
                        rates: rates.clone(),
                        attached,
                    })
                    .is_err()
                {
                    return;
                }
            }
            AgentInbox::Harness(ToAgent::Leave) => {
                if joined {
                    physical.lock().expect("physical state lock")[id] = None;
                    joined = false;
                    if to_cc.send(ToController::Departed { client: id }).is_err() {
                        return;
                    }
                }
            }
            AgentInbox::Harness(ToAgent::Shutdown) => return,
            AgentInbox::Cc(ToClient::Directive { extender }) => {
                // A directive can race a departure at shutdown; only a
                // joined client applies it.
                if joined {
                    physical.lock().expect("physical state lock")[id] = Some(extender);
                    if to_cc
                        .send(ToController::Ack {
                            client: id,
                            extender,
                        })
                        .is_err()
                    {
                        return;
                    }
                }
            }
            AgentInbox::Cc(ToClient::Shutdown) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolt_core::baselines::Greedy;
    use wolt_sim::scenario::ScenarioConfig;

    fn lab_scenario(seed: u64) -> Scenario {
        let cfg = ScenarioConfig::lab(7);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Scenario::generate(&cfg, &mut rng).unwrap()
    }

    #[test]
    fn rssi_rig_matches_offline_rssi_policy() {
        let scenario = lab_scenario(1);
        let outcome = run_rig(&scenario, &RigConfig::new(ControllerPolicy::Rssi), 0).unwrap();
        assert_eq!(outcome.directives, 0);
        assert_eq!(outcome.switches, 0);
        let net = scenario.network().unwrap();
        let reference = wolt_core::baselines::Rssi.associate(&net).unwrap();
        assert_eq!(outcome.association, reference);
    }

    #[test]
    fn wolt_rig_produces_complete_valid_association() {
        let scenario = lab_scenario(2);
        let outcome = run_rig(&scenario, &RigConfig::new(ControllerPolicy::Wolt), 0).unwrap();
        assert!(outcome.association.is_complete());
        let net = scenario.network().unwrap();
        assert!(net.validate_association(&outcome.association).is_ok());
        assert!(outcome.aggregate > 0.0);
    }

    #[test]
    fn greedy_rig_matches_offline_greedy_with_zero_estimation_noise() {
        let scenario = lab_scenario(3);
        let config = RigConfig {
            policy: ControllerPolicy::Greedy,
            estimator: CapacityEstimator {
                rounds: 1,
                noise_sigma: 0.0,
            },
        };
        let outcome = run_rig(&scenario, &config, 0).unwrap();
        let net = scenario.network().unwrap();
        let reference = Greedy::new().associate(&net).unwrap();
        let ref_eval = evaluate(&net, &reference).unwrap();
        assert!(
            (outcome.aggregate - ref_eval.aggregate.value()).abs() < 1e-9,
            "rig {} vs offline {}",
            outcome.aggregate,
            ref_eval.aggregate
        );
    }

    #[test]
    fn wolt_rig_beats_rssi_rig_on_average() {
        let mut wolt_total = 0.0;
        let mut rssi_total = 0.0;
        for seed in 0..8 {
            let scenario = lab_scenario(seed);
            wolt_total += run_rig(&scenario, &RigConfig::new(ControllerPolicy::Wolt), 0)
                .unwrap()
                .aggregate;
            rssi_total += run_rig(&scenario, &RigConfig::new(ControllerPolicy::Rssi), 0)
                .unwrap()
                .aggregate;
        }
        assert!(
            wolt_total > rssi_total,
            "WOLT {wolt_total} vs RSSI {rssi_total}"
        );
    }

    #[test]
    fn directives_track_switches_for_wolt() {
        let scenario = lab_scenario(5);
        let outcome = run_rig(&scenario, &RigConfig::new(ControllerPolicy::Wolt), 0).unwrap();
        assert!(outcome.directives >= outcome.switches);
    }

    #[test]
    fn estimation_noise_changes_little_at_default_sigma() {
        let scenario = lab_scenario(6);
        let a = run_rig(&scenario, &RigConfig::new(ControllerPolicy::Wolt), 1).unwrap();
        let b = run_rig(&scenario, &RigConfig::new(ControllerPolicy::Wolt), 2).unwrap();
        let rel = (a.aggregate - b.aggregate).abs() / a.aggregate.max(b.aggregate);
        assert!(rel < 0.25, "estimation noise too influential: {rel}");
    }

    #[test]
    fn rejects_empty_scenario() {
        let scenario = Scenario {
            extender_positions: vec![],
            capacities: vec![],
            user_positions: vec![],
            radio: wolt_wifi::WifiRadio::office_default(),
        };
        assert!(matches!(
            run_rig(&scenario, &RigConfig::new(ControllerPolicy::Rssi), 0),
            Err(TestbedError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn policy_names_match_paper() {
        assert_eq!(ControllerPolicy::Wolt.name(), "WOLT");
        assert_eq!(ControllerPolicy::Greedy.name(), "Greedy");
        assert_eq!(ControllerPolicy::Rssi.name(), "RSSI");
    }

    #[test]
    fn deterministic_for_fixed_seeds() {
        let scenario = lab_scenario(7);
        let a = run_rig(&scenario, &RigConfig::new(ControllerPolicy::Wolt), 3).unwrap();
        let b = run_rig(&scenario, &RigConfig::new(ControllerPolicy::Wolt), 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn session_with_departures_leaves_them_unassigned() {
        let scenario = lab_scenario(8);
        let events = vec![
            SessionEvent::Join(0),
            SessionEvent::Join(1),
            SessionEvent::Join(2),
            SessionEvent::Leave(1),
        ];
        let outcome = run_session(
            &scenario,
            &RigConfig::new(ControllerPolicy::Wolt),
            &events,
            0,
        )
        .unwrap();
        assert_eq!(outcome.association.target(1), None);
        assert!(outcome.association.target(0).is_some());
        assert!(outcome.association.target(2).is_some());
        assert_eq!(outcome.per_user[1], 0.0);
        assert!(outcome.aggregate > 0.0);
    }

    #[test]
    fn departure_triggers_wolt_reoptimization() {
        // With three clients on two good extenders, removing one lets
        // WOLT re-balance; the CC must be allowed to send directives on a
        // departure (the baselines send none).
        let scenario = lab_scenario(9);
        let events = vec![
            SessionEvent::Join(0),
            SessionEvent::Join(1),
            SessionEvent::Join(2),
            SessionEvent::Join(3),
            SessionEvent::Leave(0),
            SessionEvent::Leave(2),
        ];
        let wolt = run_session(
            &scenario,
            &RigConfig::new(ControllerPolicy::Wolt),
            &events,
            0,
        )
        .unwrap();
        let rssi = run_session(
            &scenario,
            &RigConfig::new(ControllerPolicy::Rssi),
            &events,
            0,
        )
        .unwrap();
        assert_eq!(rssi.directives, 0);
        assert!(wolt.aggregate >= rssi.aggregate - 1e-9);
    }

    #[test]
    fn rejoin_after_leave_is_allowed() {
        let scenario = lab_scenario(10);
        let events = vec![
            SessionEvent::Join(0),
            SessionEvent::Join(1),
            SessionEvent::Leave(0),
            SessionEvent::Join(0),
        ];
        let outcome = run_session(
            &scenario,
            &RigConfig::new(ControllerPolicy::Greedy),
            &events,
            0,
        )
        .unwrap();
        assert!(outcome.association.target(0).is_some());
        assert!(outcome.association.target(1).is_some());
    }

    #[test]
    fn invalid_sessions_rejected() {
        let scenario = lab_scenario(11);
        let config = RigConfig::new(ControllerPolicy::Rssi);
        // Leave before join.
        assert!(matches!(
            run_session(&scenario, &config, &[SessionEvent::Leave(0)], 0),
            Err(TestbedError::InvalidConfig { .. })
        ));
        // Double join.
        assert!(matches!(
            run_session(
                &scenario,
                &config,
                &[SessionEvent::Join(0), SessionEvent::Join(0)],
                0
            ),
            Err(TestbedError::InvalidConfig { .. })
        ));
        // Out of range.
        assert!(matches!(
            run_session(&scenario, &config, &[SessionEvent::Join(99)], 0),
            Err(TestbedError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn jain_only_counts_present_clients() {
        let scenario = lab_scenario(12);
        let events = vec![
            SessionEvent::Join(0),
            SessionEvent::Join(1),
            SessionEvent::Leave(1),
        ];
        let outcome = run_session(
            &scenario,
            &RigConfig::new(ControllerPolicy::Rssi),
            &events,
            0,
        )
        .unwrap();
        // A single present client with positive throughput: Jain = 1.
        assert_eq!(outcome.jain, Some(1.0));
    }
}
