//! The testbed rig: a Central Controller and client agents on real
//! threads, speaking the paper's protocol over channels.
//!
//! The paper implements WOLT "as a user-space utility that runs on users'
//! devices as well as the server" (§V-A). This module reproduces that
//! architecture: one controller thread (the CC) and one thread per client
//! laptop, connected by mpsc channels. Clients join (and may leave)
//! sequentially, as laptops were carried around the lab: each scans,
//! attaches to its strongest-RSSI extender, reports its rate estimates to
//! the CC, and re-associates when a directive arrives. The CC runs the
//! configured association policy on the *estimated* PLC capacities (from
//! the offline iperf procedure), while the physical outcome is always
//! evaluated on the true capacities — estimation error is part of the
//! experiment.
//!
//! # Resilience
//!
//! A real deployment's control plane is lossy: reports and directives
//! cross the same contended medium they configure, and laptops crash or
//! hang without notice. [`run_faulty_session`] runs the same protocol
//! under a seeded [`FaultPlan`], and the control loop is built to survive
//! it:
//!
//! * every wait is a `recv_timeout` against a [`Deadlines`] budget — the
//!   rig returns [`TestbedError::Timeout`] rather than hanging forever;
//! * directives carry monotone sequence numbers and are retransmitted
//!   with bounded exponential backoff; agents apply each sequence once
//!   and re-ack retries, so duplication and reordering are harmless;
//! * a client that misses its whole ack retry budget is declared dead:
//!   the CC forgets its telemetry and re-optimizes the survivors instead
//!   of stranding the transaction;
//! * the CC plans on a [`TelemetryCache`] of last-known-good smoothed
//!   rates, and degrades to the previous association when a solve fails
//!   mid-faults instead of panicking.
//!
//! The outcome of a faulty session is deterministic for a fixed scenario,
//! seed, and plan (see [`crate::faults`]): fault decisions are keyed by
//! message identity, so scheduling jitter only shifts *when* retries
//! happen, never *what* the session decides — provided the plan's delays
//! stay well below the ack retry budget.

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use wolt_core::{evaluate, Association};
use wolt_plc::capacity::CapacityEstimator;
use wolt_sim::Scenario;
use wolt_support::obs;
use wolt_support::rng::{ChaCha8Rng, SeedableRng};
use wolt_units::Mbps;

use crate::controller::{ControllerConfig, ControllerCore, Directive};
use crate::faults::{FaultPlan, Link, MessageKey};
use crate::protocol::{ToAgent, ToClient, ToController};
use crate::TestbedError;

/// Which association logic the Central Controller runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerPolicy {
    /// Full WOLT re-optimization on every arrival/departure (directives
    /// may move existing clients).
    Wolt,
    /// Greedy placement of the arriving client only; departures trigger
    /// no re-optimization.
    Greedy,
    /// No directives: clients stay on their strongest-RSSI extender.
    Rssi,
}

impl ControllerPolicy {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ControllerPolicy::Wolt => "WOLT",
            ControllerPolicy::Greedy => "Greedy",
            ControllerPolicy::Rssi => "RSSI",
        }
    }
}

/// Deadline and retry budgets for the control loop. Every blocking wait
/// in the rig is bounded by one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadlines {
    /// How long the harness waits for one join/leave transaction to
    /// complete before retransmitting the command.
    pub event: Duration,
    /// Harness retransmissions per event before giving up (≥ 1).
    pub event_attempts: u32,
    /// Base ack deadline for a directive; retries back off exponentially
    /// from here.
    pub ack: Duration,
    /// Directive transmissions per sequence number before the CC declares
    /// the client dead (≥ 1).
    pub ack_attempts: u32,
    /// Upper bound on the backed-off ack deadline.
    pub ack_backoff_cap: Duration,
    /// Poll interval of the CC's idle loop (shutdown detection).
    pub idle: Duration,
}

impl Default for Deadlines {
    fn default() -> Self {
        Self {
            event: Duration::from_secs(2),
            event_attempts: 8,
            ack: Duration::from_millis(25),
            ack_attempts: 6,
            ack_backoff_cap: Duration::from_millis(200),
            idle: Duration::from_millis(50),
        }
    }
}

impl Deadlines {
    /// The ack deadline for the given (1-based) transmission attempt:
    /// exponential backoff from [`ack`](Self::ack), capped at
    /// [`ack_backoff_cap`](Self::ack_backoff_cap). Public so alternate
    /// transports (the `wolt-daemon` TCP server) retransmit on the same
    /// schedule as the in-process rig.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        self.ack.saturating_mul(factor).min(self.ack_backoff_cap)
    }
}

/// Rig configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RigConfig {
    /// Association logic at the CC.
    pub policy: ControllerPolicy,
    /// Offline PLC capacity estimation procedure (measurement noise).
    pub estimator: CapacityEstimator,
    /// Deadline and retry budgets for the control loop.
    pub deadlines: Deadlines,
}

impl RigConfig {
    /// Rig with the given policy and the default estimator and deadlines.
    pub fn new(policy: ControllerPolicy) -> Self {
        Self {
            policy,
            estimator: CapacityEstimator::default(),
            deadlines: Deadlines::default(),
        }
    }
}

/// One step of a testbed session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEvent {
    /// Client `i` powers on, scans, attaches, and reports to the CC.
    Join(usize),
    /// Client `i` leaves the network (sends a departure notice).
    Leave(usize),
}

/// Result of running one topology through the rig.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyOutcome {
    /// Policy name.
    pub policy: String,
    /// Final association (physical state at session end; departed and
    /// non-surviving clients are unassigned).
    pub association: Association,
    /// Aggregate throughput on the *true* capacities (Mbit/s).
    pub aggregate: f64,
    /// Per-user throughput on the true capacities (Mbit/s; 0 for departed
    /// clients).
    pub per_user: Vec<f64>,
    /// Jain's fairness index over the surviving clients.
    pub jain: Option<f64>,
    /// Distinct directives the CC issued (retransmissions not counted).
    pub directives: usize,
    /// Surviving clients whose final extender differs from their initial
    /// strongest-RSSI attachment.
    pub switches: usize,
}

/// Everything [`run_faulty_session`] observed: the physical outcome plus
/// the fault bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// The evaluated physical outcome over the surviving clients.
    pub outcome: TopologyOutcome,
    /// Clients present, responsive, and fault-free at session end,
    /// ascending. Only these contribute throughput.
    pub survivors: Vec<usize>,
    /// Clients the plan crashed, ascending.
    pub crashed: Vec<usize>,
    /// Clients the plan wedged, ascending.
    pub wedged: Vec<usize>,
    /// Clients the CC declared dead after exhausting an ack retry
    /// budget, ascending.
    pub declared_dead: Vec<usize>,
    /// Clients whose join/leave never completed within the harness retry
    /// budget (expected agent faults only), ascending.
    pub unresponsive: Vec<usize>,
    /// Times the CC kept the previous association because a solve failed.
    pub degraded_solves: usize,
    /// Total retransmissions (harness events + CC directives). Timing
    /// dependent; excluded from [`canonical`](Self::canonical).
    pub retries: usize,
}

impl SessionReport {
    /// A canonical, timing-independent rendering of the session outcome.
    ///
    /// Two runs with the same scenario, seed, and fault plan produce
    /// byte-identical canonical reports regardless of thread count or
    /// scheduling. `retries` is the one timing-dependent field (a slow
    /// scheduler can trip a retransmission deadline without changing any
    /// decision), so it is deliberately excluded.
    pub fn canonical(&self) -> String {
        let targets: Vec<Option<usize>> = self.outcome.association.iter().collect();
        format!(
            "policy={} association={targets:?} aggregate={:?} per_user={:?} jain={:?} \
             directives={} switches={} survivors={:?} crashed={:?} wedged={:?} \
             declared_dead={:?} unresponsive={:?} degraded_solves={}",
            self.outcome.policy,
            self.outcome.aggregate,
            self.outcome.per_user,
            self.outcome.jain,
            self.outcome.directives,
            self.outcome.switches,
            self.survivors,
            self.crashed,
            self.wedged,
            self.declared_dead,
            self.unresponsive,
            self.degraded_solves,
        )
    }
}

/// Runs the standard experiment: every user joins once, in index order.
///
/// See [`run_session`] for the general event-driven form; this wrapper
/// additionally guarantees a complete final association.
///
/// # Errors
///
/// As [`run_session`], plus [`TestbedError::AssignmentFailed`] if the
/// session somehow ends incomplete.
pub fn run_rig(
    scenario: &Scenario,
    config: &RigConfig,
    seed: u64,
) -> Result<TopologyOutcome, TestbedError> {
    let events: Vec<SessionEvent> = (0..scenario.user_positions.len())
        .map(SessionEvent::Join)
        .collect();
    let outcome = run_session(scenario, config, &events, seed)?;
    outcome
        .association
        .require_complete()
        .map_err(TestbedError::from)?;
    Ok(outcome)
}

/// Runs an arbitrary join/leave session through the threaded rig on a
/// fault-free network and evaluates the resulting physical association
/// on the true capacities.
///
/// `seed` drives the capacity-estimation noise only; the scenario itself
/// is supplied fully sampled.
///
/// # Errors
///
/// * [`TestbedError::InvalidConfig`] for an empty scenario, a Join of an
///   already-present client, or a Leave of an absent one.
/// * [`TestbedError::ChannelClosed`] if a thread dies mid-protocol.
/// * [`TestbedError::AssignmentFailed`] if the CC's policy cannot produce
///   an association.
/// * [`TestbedError::Timeout`] if an endpoint stops responding (a bug on
///   a fault-free network, but bounded rather than a hang).
pub fn run_session(
    scenario: &Scenario,
    config: &RigConfig,
    events: &[SessionEvent],
    seed: u64,
) -> Result<TopologyOutcome, TestbedError> {
    run_faulty_session(scenario, config, events, seed, &FaultPlan::none()).map(|r| r.outcome)
}

/// Runs a join/leave session under a seeded [`FaultPlan`] and reports the
/// surviving physical outcome plus the fault bookkeeping.
///
/// With [`FaultPlan::none`] the rig is *strict*: it behaves exactly like
/// the lossless protocol and an unresponsive endpoint or failed solve is
/// a hard error. With any fault configured the rig is *resilient*: an
/// event that exhausts its retry budget against a planned agent fault
/// marks the client unresponsive, a failed solve keeps the previous
/// association, and the session always terminates within its deadline
/// budget.
///
/// # Errors
///
/// As [`run_session`]. [`TestbedError::Timeout`] is returned when an
/// event exhausts its retries and the plan does not explain the silence
/// with a crashed or wedged agent.
pub fn run_faulty_session(
    scenario: &Scenario,
    config: &RigConfig,
    events: &[SessionEvent],
    seed: u64,
    plan: &FaultPlan,
) -> Result<SessionReport, TestbedError> {
    let n_users = scenario.user_positions.len();
    let n_ext = scenario.extender_positions.len();
    if n_users == 0 || n_ext == 0 {
        return Err(TestbedError::InvalidConfig {
            context: "scenario needs at least one user and one extender",
        });
    }
    plan.validate()?;
    if plan
        .crashed
        .iter()
        .chain(plan.wedged.iter())
        .any(|&c| c >= n_users)
    {
        return Err(TestbedError::InvalidConfig {
            context: "fault plan names an out-of-range client",
        });
    }
    let deadlines = config.deadlines;
    if deadlines.event_attempts == 0 || deadlines.ack_attempts == 0 {
        return Err(TestbedError::InvalidConfig {
            context: "deadlines need at least one attempt per message",
        });
    }
    let strict = plan.is_none();
    let plan = Arc::new(plan.clone());

    // Offline capacity estimation (the paper's iperf3 procedure).
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let estimated: Vec<Mbps> = scenario
        .capacities
        .iter()
        .map(|&c| config.estimator.estimate(c, &mut rng))
        .collect::<Result<_, _>>()
        .map_err(|e| TestbedError::Layer {
            context: format!("capacity estimation: {e}"),
        })?;

    // Physical association state shared by all agents (the "air").
    let physical: Arc<Mutex<Vec<Option<usize>>>> = Arc::new(Mutex::new(vec![None; n_users]));

    let (to_cc_tx, to_cc_rx) = channel::<ToController>();
    let (done_tx, done_rx) = channel::<DoneEvent>();

    let mut agent_handles = Vec::with_capacity(n_users);
    let mut agent_txs: Vec<Sender<AgentInbox>> = Vec::with_capacity(n_users);

    for i in 0..n_users {
        // One inbox per agent: harness commands and CC directives are
        // serialized by the session loop, so a single merged queue
        // replaces a two-channel select without reordering anything.
        let (agent_tx, agent_rx) = channel::<AgentInbox>();
        agent_txs.push(agent_tx);
        let rates: Vec<Option<Mbps>> = (0..n_ext).map(|j| scenario.rate(i, j)).collect();
        let physical = Arc::clone(&physical);
        let to_cc = to_cc_tx.clone();
        let plan = Arc::clone(&plan);
        agent_handles.push(thread::spawn(move || {
            client_agent(i, rates, physical, to_cc, agent_rx, plan)
        }));
    }

    // The Central Controller thread: the shared decision core plus this
    // rig's mpsc transport.
    let ctx = ControllerCtx {
        deadlines,
        plan: Arc::clone(&plan),
        strict,
    };
    let core = ControllerCore::new(
        n_users,
        ControllerConfig {
            policy: config.policy,
            estimated_capacities: estimated,
            strict,
        },
    );
    let cc_client_txs = agent_txs.clone();
    let cc_handle = thread::spawn(move || controller(ctx, core, to_cc_rx, cc_client_txs, done_tx));

    // Drive the session: joins and leaves are serialized, as laptops were
    // brought online/offline one at a time. Each event is retransmitted
    // up to `event_attempts` times before the harness gives up.
    let mut present = vec![false; n_users];
    let mut unresponsive = vec![false; n_users];
    let mut initial_attach: Vec<Option<usize>> = vec![None; n_users];
    let mut harness_retries = 0usize;

    for (idx, &event) in events.iter().enumerate() {
        let epoch = idx as u64;
        let (i, is_join) = match event {
            SessionEvent::Join(i) => (i, true),
            SessionEvent::Leave(i) => (i, false),
        };
        if i < n_users && unresponsive[i] {
            // A client whose earlier event never completed is out of the
            // session: later events for it are skipped, not errors.
            continue;
        }
        let valid = i < n_users && if is_join { !present[i] } else { present[i] };
        if !valid {
            return Err(TestbedError::InvalidConfig {
                context: if is_join {
                    "join of an out-of-range or already-present client"
                } else {
                    "leave of an out-of-range or absent client"
                },
            });
        }

        let mut completed = false;
        let mut agent_gone = false;
        'attempts: for attempt in 1..=deadlines.event_attempts {
            if attempt > 1 {
                harness_retries += 1;
                obs::counter_inc("harness.retransmissions");
            }
            let cmd = if is_join {
                ToAgent::Join { epoch, attempt }
            } else {
                ToAgent::Leave { epoch, attempt }
            };
            if agent_txs[i].send(AgentInbox::Harness(cmd)).is_err() {
                if plan.expects_agent_fault(i) {
                    agent_gone = true;
                    break 'attempts;
                }
                return Err(TestbedError::ChannelClosed { endpoint: "agent" });
            }
            let deadline = Instant::now() + deadlines.event;
            loop {
                let wait = deadline.saturating_duration_since(Instant::now());
                match done_rx.recv_timeout(wait) {
                    Ok(DoneEvent { epoch: e, result }) if e == epoch => {
                        result?;
                        completed = true;
                        break 'attempts;
                    }
                    // Stale completion of an earlier retransmitted event.
                    Ok(_) => continue,
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(TestbedError::ChannelClosed {
                            endpoint: "controller",
                        })
                    }
                }
            }
        }

        if completed {
            if is_join {
                present[i] = true;
                if initial_attach[i].is_none() {
                    initial_attach[i] = lock_physical(&physical)[i];
                }
            } else {
                present[i] = false;
            }
        } else if agent_gone || plan.expects_agent_fault(i) {
            // Planned silence: a crashed agent's channel is gone (or its
            // only report was dropped). Its join can never complete; a
            // leave already happened physically or the radio is simply
            // abandoned to the survivor mask.
            if is_join {
                unresponsive[i] = true;
            } else {
                present[i] = false;
            }
        } else {
            return Err(TestbedError::Timeout {
                waiting_for: format!("completion of event {epoch} (client {i})"),
            });
        }
    }

    // Shutdown: stop agents, close the CC inbox, join threads.
    for tx in &agent_txs {
        let _ = tx.send(AgentInbox::Harness(ToAgent::Shutdown));
    }
    drop(to_cc_tx);
    let cc = cc_handle.join().map_err(|_| TestbedError::ChannelClosed {
        endpoint: "controller",
    })?;
    for h in agent_handles {
        h.join()
            .map_err(|_| TestbedError::ChannelClosed { endpoint: "agent" })?;
    }

    // The physical state is ground truth; on a fault-free network the
    // CC's view must agree with it exactly.
    let physical_assoc: Vec<Option<usize>> = lock_physical(&physical).clone();
    if strict {
        debug_assert_eq!(physical_assoc, cc.association);
    }

    assemble_report(
        scenario,
        &physical_assoc,
        SessionLedger {
            policy_name: config.policy.name().to_string(),
            present,
            unresponsive,
            initial_attach,
            crashed: plan.crashed.clone(),
            wedged: plan.wedged.clone(),
            declared_dead: cc.declared_dead,
            directives: cc.directives,
            degraded_solves: cc.degraded_solves,
            retries: cc.retries + harness_retries,
        },
    )
}

/// Everything a session driver observed, handed to [`assemble_report`]
/// for evaluation. Both transports fill one: the in-process rig from its
/// harness loop, the `wolt-daemon` from its TCP session loop.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionLedger {
    /// Display name of the policy that ran.
    pub policy_name: String,
    /// Whether each client was present (joined, not departed) at the end.
    pub present: Vec<bool>,
    /// Whether each client's join/leave never completed within the retry
    /// budget.
    pub unresponsive: Vec<bool>,
    /// Each client's first strongest-RSSI attachment, if it joined.
    pub initial_attach: Vec<Option<usize>>,
    /// Clients the fault plan crashed (empty for a fault-free transport).
    pub crashed: Vec<usize>,
    /// Clients the fault plan wedged (empty for a fault-free transport).
    pub wedged: Vec<usize>,
    /// Clients declared dead by the controller, any order.
    pub declared_dead: Vec<usize>,
    /// Distinct directives the controller issued.
    pub directives: usize,
    /// Solves that degraded to the previous association.
    pub degraded_solves: usize,
    /// Total retransmissions (timing-dependent).
    pub retries: usize,
}

/// Evaluates a finished session on the scenario's TRUE capacities and
/// assembles the [`SessionReport`]: survivor masking, aggregate and
/// per-user throughput, Jain's index, and switch counting. Shared by the
/// in-process rig and the networked daemon so both produce canonical
/// reports from the identical code path.
///
/// # Errors
///
/// Propagates scenario/evaluation failures as [`TestbedError::Layer`].
pub fn assemble_report(
    scenario: &Scenario,
    physical_assoc: &[Option<usize>],
    ledger: SessionLedger,
) -> Result<SessionReport, TestbedError> {
    let n_users = scenario.user_positions.len();
    // Only survivors carry traffic: present, responsive, and not faulted
    // by the plan. Everything else is masked out of the evaluation (a
    // crashed laptop's abandoned radio association moves no data).
    let survivor = |i: usize| {
        ledger.present[i]
            && !ledger.unresponsive[i]
            && !ledger.crashed.contains(&i)
            && !ledger.wedged.contains(&i)
    };
    let masked: Vec<Option<usize>> = (0..n_users)
        .map(|i| if survivor(i) { physical_assoc[i] } else { None })
        .collect();
    let association = Association::from_targets(masked);

    // Evaluate on the TRUE capacities.
    let network = scenario.network().map_err(TestbedError::from)?;
    let eval = evaluate(&network, &association).map_err(TestbedError::from)?;

    // A "switch" is a departure from the default RSSI attachment — the
    // re-association overhead the paper discusses.
    let switches = (0..n_users)
        .filter(|&i| {
            survivor(i)
                && ledger.initial_attach[i].is_some()
                && association.target(i) != ledger.initial_attach[i]
        })
        .count();

    let survivor_throughputs: Vec<Mbps> = (0..n_users)
        .filter(|&i| survivor(i))
        .map(|i| eval.per_user[i])
        .collect();

    let outcome = TopologyOutcome {
        policy: ledger.policy_name,
        aggregate: eval.aggregate.value(),
        per_user: eval.per_user.iter().map(|t| t.value()).collect(),
        jain: wolt_core::fairness::jain_index(&survivor_throughputs),
        association,
        directives: ledger.directives,
        switches,
    };

    let survivors: Vec<usize> = (0..n_users).filter(|&i| survivor(i)).collect();
    let mut declared_dead = ledger.declared_dead;
    declared_dead.sort_unstable();
    declared_dead.dedup();
    let mut crashed = ledger.crashed;
    crashed.sort_unstable();
    crashed.dedup();
    let mut wedged = ledger.wedged;
    wedged.sort_unstable();
    wedged.dedup();

    Ok(SessionReport {
        outcome,
        survivors,
        crashed,
        wedged,
        declared_dead,
        unresponsive: (0..n_users).filter(|&i| ledger.unresponsive[i]).collect(),
        degraded_solves: ledger.degraded_solves,
        retries: ledger.retries,
    })
}

/// Locks the shared physical-association state, recovering from a
/// poisoned mutex. The vector is plain data with no invariant spanning
/// the critical section (each agent writes only its own slot), so the
/// last written state is always safe to reuse even if another thread
/// panicked while holding the lock.
fn lock_physical(m: &Mutex<Vec<Option<usize>>>) -> MutexGuard<'_, Vec<Option<usize>>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Everything a client-agent thread can receive, merged into one queue:
/// harness lifecycle commands and CC directives.
enum AgentInbox {
    /// Join/Leave/Shutdown from the session driver.
    Harness(ToAgent),
    /// Directive (or shutdown) from the Central Controller.
    Cc(ToClient),
}

/// Completion notice for one harness event, tagged with its epoch so the
/// harness can discard stale notices from retransmitted events.
struct DoneEvent {
    epoch: u64,
    result: Result<(), TestbedError>,
}

/// Immutable transport-side controller context. Planning state lives in
/// [`ControllerCore`]; this is only what the channel loop itself needs.
struct ControllerCtx {
    deadlines: Deadlines,
    plan: Arc<FaultPlan>,
    strict: bool,
}

/// What the controller learned, returned at shutdown.
struct ControllerReturn {
    directives: usize,
    retries: usize,
    degraded_solves: usize,
    declared_dead: Vec<usize>,
    association: Vec<Option<usize>>,
}

/// A directive awaiting its ack.
struct PendingDirective {
    client: usize,
    extender: usize,
    seq: u64,
    attempt: u32,
    deadline: Instant,
}

/// The Central Controller loop: dedup incoming events by epoch, hand each
/// genuine event to the [`ControllerCore`] for planning, run one directive
/// transaction per event, absorb late acks in between.
fn controller(
    ctx: ControllerCtx,
    mut core: ControllerCore,
    rx: Receiver<ToController>,
    client_txs: Vec<Sender<AgentInbox>>,
    done: Sender<DoneEvent>,
) -> ControllerReturn {
    let mut retries = 0usize;
    loop {
        let msg = match rx.recv_timeout(ctx.deadlines.idle) {
            Ok(msg) => msg,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        match msg {
            ToController::Report {
                client,
                epoch,
                rates,
                attached,
            } => {
                if core.is_duplicate(epoch) {
                    continue;
                }
                let result = core
                    .handle_report(client, epoch, &rates, attached)
                    .and_then(|directives| {
                        run_transaction(
                            &mut core,
                            &ctx,
                            &mut retries,
                            directives,
                            epoch,
                            &rx,
                            &client_txs,
                        )
                    });
                if done.send(DoneEvent { epoch, result }).is_err() {
                    break;
                }
            }
            ToController::Departed { client, epoch } => {
                if core.is_duplicate(epoch) {
                    continue;
                }
                // WOLT re-optimizes the survivors; the baselines plan
                // nothing, so the transaction completes immediately.
                let result = core.handle_departed(client, epoch).and_then(|directives| {
                    run_transaction(
                        &mut core,
                        &ctx,
                        &mut retries,
                        directives,
                        epoch,
                        &rx,
                        &client_txs,
                    )
                });
                if done.send(DoneEvent { epoch, result }).is_err() {
                    break;
                }
            }
            ToController::Ack {
                client,
                seq,
                extender,
            } => {
                // A late ack (post-transaction retransmission) refreshes
                // the CC view iff it matches the newest directive.
                core.handle_ack(client, seq, extender);
            }
        }
    }
    ControllerReturn {
        directives: core.directives(),
        retries,
        degraded_solves: core.degraded_solves(),
        declared_dead: core.declared_dead().to_vec(),
        association: core.association().to_vec(),
    }
}

/// Adds freshly planned directives to the pending set (superseding any
/// in-flight directive for the same client) and performs their first
/// transmission through the fault layer.
fn enqueue_directives(
    ctx: &ControllerCtx,
    client_txs: &[Sender<AgentInbox>],
    pending: &mut Vec<PendingDirective>,
    directives: Vec<Directive>,
) -> Result<(), TestbedError> {
    for dir in directives {
        pending.retain(|p| p.client != dir.client);
        pending.push(PendingDirective {
            client: dir.client,
            extender: dir.extender,
            seq: dir.seq,
            attempt: 1,
            deadline: Instant::now() + ctx.deadlines.backoff(1),
        });
        send_directive(ctx, client_txs, dir.client, dir.extender, dir.seq, 1)?;
    }
    Ok(())
}

/// One directive transaction: issue the planned directives, then
/// retransmit with backoff until every pending directive is acked or its
/// client is declared dead (which triggers a survivor replan).
fn run_transaction(
    core: &mut ControllerCore,
    ctx: &ControllerCtx,
    retries: &mut usize,
    directives: Vec<Directive>,
    epoch: u64,
    rx: &Receiver<ToController>,
    client_txs: &[Sender<AgentInbox>],
) -> Result<(), TestbedError> {
    let mut pending: Vec<PendingDirective> = Vec::new();
    enqueue_directives(ctx, client_txs, &mut pending, directives)?;
    while !pending.is_empty() {
        let now = Instant::now();
        // Sweep expired directives: retry with backoff, or declare the
        // client dead after the retry budget and replan the survivors.
        let mut d = 0;
        while d < pending.len() {
            if pending[d].deadline > now {
                d += 1;
                continue;
            }
            obs::counter_inc("cc.ack_timeouts");
            if pending[d].attempt >= ctx.deadlines.ack_attempts {
                let casualty = pending.remove(d).client;
                // The dead client's load vanishes: re-optimize the
                // survivors (may supersede other in-flight directives).
                let replan = core.declare_dead(casualty)?;
                enqueue_directives(ctx, client_txs, &mut pending, replan)?;
                d = 0;
            } else {
                let p = &mut pending[d];
                p.attempt += 1;
                *retries += 1;
                obs::counter_inc("cc.retransmissions");
                p.deadline = now + ctx.deadlines.backoff(p.attempt);
                send_directive(ctx, client_txs, p.client, p.extender, p.seq, p.attempt)?;
                d += 1;
            }
        }
        if pending.is_empty() {
            break;
        }
        let next = pending
            .iter()
            .map(|p| p.deadline)
            .min()
            .expect("pending is non-empty");
        let wait = next.saturating_duration_since(Instant::now());
        match rx.recv_timeout(wait) {
            Ok(ToController::Ack {
                client,
                seq,
                extender,
            }) => {
                if core.handle_ack(client, seq, extender) {
                    pending.retain(|p| !(p.client == client && p.seq == seq));
                }
            }
            Ok(ToController::Report { epoch: e, .. })
            | Ok(ToController::Departed { epoch: e, .. }) => {
                // Retransmissions and duplicates of the current (or an
                // older) event are expected under faults; a genuinely new
                // event mid-transaction means serialization broke.
                if e > epoch {
                    return Err(TestbedError::AssignmentFailed {
                        context: "unexpected message during directive transaction".to_string(),
                    });
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                return Err(TestbedError::ChannelClosed { endpoint: "client" })
            }
        }
    }
    Ok(())
}

/// Sends one directive transmission through the fault layer. A closed
/// inbox is a crashed agent — indistinguishable from a lost directive, so
/// in resilient mode the ack-deadline machinery handles both uniformly.
fn send_directive(
    ctx: &ControllerCtx,
    client_txs: &[Sender<AgentInbox>],
    client: usize,
    extender: usize,
    seq: u64,
    attempt: u32,
) -> Result<(), TestbedError> {
    let decision = ctx
        .plan
        .decide(Link::ToClient, MessageKey::directive(client, seq, attempt));
    if decision.drop {
        return Ok(());
    }
    let copies = if decision.duplicate { 2 } else { 1 };
    for _ in 0..copies {
        let sent = client_txs[client]
            .send(AgentInbox::Cc(ToClient::Directive {
                extender,
                seq,
                attempt,
            }))
            .is_ok();
        if !sent && ctx.strict {
            return Err(TestbedError::ChannelClosed { endpoint: "client" });
        }
    }
    Ok(())
}

/// Applies the plan's decision for `key` to one client → CC transmission
/// (delay served in-line, drop swallowed, duplicate sent twice). Returns
/// `false` only when the CC inbox is gone (session shutdown).
fn faulty_send(
    plan: &FaultPlan,
    key: MessageKey,
    to_cc: &Sender<ToController>,
    msg: ToController,
) -> bool {
    let decision = plan.decide(Link::ToCc, key);
    if !decision.delay.is_zero() {
        thread::sleep(decision.delay);
    }
    if decision.drop {
        return true;
    }
    if decision.duplicate && to_cc.send(msg.clone()).is_err() {
        return false;
    }
    to_cc.send(msg).is_ok()
}

/// The client-agent loop: handle harness commands (join/leave/shutdown)
/// and CC directives concurrently, replaying the fault plan's decisions
/// for every transmission.
fn client_agent(
    id: usize,
    rates: Vec<Option<Mbps>>,
    physical: Arc<Mutex<Vec<Option<usize>>>>,
    to_cc: Sender<ToController>,
    inbox: Receiver<AgentInbox>,
    plan: Arc<FaultPlan>,
) {
    let crashes = plan.crashed.contains(&id);
    let wedged = plan.wedged.contains(&id);
    let mut joined = false;
    let mut attached = 0usize;
    let mut last_applied: Option<u64> = None;
    loop {
        let msg = match inbox.recv() {
            Ok(msg) => msg,
            Err(_) => return,
        };
        match msg {
            AgentInbox::Harness(ToAgent::Join { epoch, attempt }) => {
                if !joined {
                    // Scan: strongest signal = highest achievable rate
                    // (monotone table); ties break toward the lowest
                    // extender index, matching the offline RSSI baseline.
                    let mut best = 0usize;
                    let mut best_rate = f64::NEG_INFINITY;
                    for (j, r) in rates.iter().enumerate() {
                        if let Some(m) = r {
                            if m.value() > best_rate {
                                best_rate = m.value();
                                best = j;
                            }
                        }
                    }
                    attached = best;
                    lock_physical(&physical)[id] = Some(attached);
                    joined = true;
                    last_applied = None;
                }
                // Retransmitted joins re-send the report without
                // re-scanning, so an applied directive is never clobbered.
                let delivered = faulty_send(
                    &plan,
                    MessageKey::report(id, epoch, attempt),
                    &to_cc,
                    ToController::Report {
                        client: id,
                        epoch,
                        rates: rates.clone(),
                        attached,
                    },
                );
                if !delivered {
                    return;
                }
                if crashes {
                    // Planned crash: exit silently right after the first
                    // scan report, leaving the radio attached and the CC
                    // uninformed. No Departed, no acks, channel closed.
                    return;
                }
            }
            AgentInbox::Harness(ToAgent::Leave { epoch, attempt }) => {
                if joined {
                    lock_physical(&physical)[id] = None;
                    joined = false;
                }
                // Always (re-)notify: the CC dedups by epoch.
                let delivered = faulty_send(
                    &plan,
                    MessageKey::departed(id, epoch, attempt),
                    &to_cc,
                    ToController::Departed { client: id, epoch },
                );
                if !delivered {
                    return;
                }
            }
            AgentInbox::Harness(ToAgent::Shutdown) | AgentInbox::Cc(ToClient::Shutdown) => return,
            AgentInbox::Cc(ToClient::Directive {
                extender,
                seq,
                attempt,
            }) => {
                if wedged {
                    // Planned wedge: alive and reporting, but never
                    // applies or acknowledges a directive.
                    continue;
                }
                // The CC → client delay is served receiver-side so the CC
                // thread never blocks on an in-flight directive.
                let decision = plan.decide(Link::ToClient, MessageKey::directive(id, seq, attempt));
                if !decision.delay.is_zero() {
                    thread::sleep(decision.delay);
                }
                // A directive can race a departure at shutdown; only a
                // joined client applies it.
                if !joined {
                    continue;
                }
                if last_applied.is_none_or(|s| seq > s) {
                    attached = extender;
                    lock_physical(&physical)[id] = Some(extender);
                    last_applied = Some(seq);
                }
                // Ack every received transmission (idempotent at the CC);
                // report the *current* attachment, which for the newest
                // sequence is the directive's target.
                let delivered = faulty_send(
                    &plan,
                    MessageKey::ack(id, seq, attempt),
                    &to_cc,
                    ToController::Ack {
                        client: id,
                        seq,
                        extender: attached,
                    },
                );
                if !delivered {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::LinkFaults;
    use wolt_core::baselines::Greedy;
    use wolt_core::AssociationPolicy;
    use wolt_sim::scenario::ScenarioConfig;

    fn lab_scenario(seed: u64) -> Scenario {
        let cfg = ScenarioConfig::lab(7);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Scenario::generate(&cfg, &mut rng).unwrap()
    }

    #[test]
    fn rssi_rig_matches_offline_rssi_policy() {
        let scenario = lab_scenario(1);
        let outcome = run_rig(&scenario, &RigConfig::new(ControllerPolicy::Rssi), 0).unwrap();
        assert_eq!(outcome.directives, 0);
        assert_eq!(outcome.switches, 0);
        let net = scenario.network().unwrap();
        let reference = wolt_core::baselines::Rssi.associate(&net).unwrap();
        assert_eq!(outcome.association, reference);
    }

    #[test]
    fn wolt_rig_produces_complete_valid_association() {
        let scenario = lab_scenario(2);
        let outcome = run_rig(&scenario, &RigConfig::new(ControllerPolicy::Wolt), 0).unwrap();
        assert!(outcome.association.is_complete());
        let net = scenario.network().unwrap();
        assert!(net.validate_association(&outcome.association).is_ok());
        assert!(outcome.aggregate > 0.0);
    }

    #[test]
    fn greedy_rig_matches_offline_greedy_with_zero_estimation_noise() {
        let scenario = lab_scenario(3);
        let config = RigConfig {
            estimator: CapacityEstimator {
                rounds: 1,
                noise_sigma: 0.0,
            },
            ..RigConfig::new(ControllerPolicy::Greedy)
        };
        let outcome = run_rig(&scenario, &config, 0).unwrap();
        let net = scenario.network().unwrap();
        let reference = Greedy::new().associate(&net).unwrap();
        let ref_eval = evaluate(&net, &reference).unwrap();
        assert!(
            (outcome.aggregate - ref_eval.aggregate.value()).abs() < 1e-9,
            "rig {} vs offline {}",
            outcome.aggregate,
            ref_eval.aggregate
        );
    }

    #[test]
    fn wolt_rig_beats_rssi_rig_on_average() {
        let mut wolt_total = 0.0;
        let mut rssi_total = 0.0;
        for seed in 0..8 {
            let scenario = lab_scenario(seed);
            wolt_total += run_rig(&scenario, &RigConfig::new(ControllerPolicy::Wolt), 0)
                .unwrap()
                .aggregate;
            rssi_total += run_rig(&scenario, &RigConfig::new(ControllerPolicy::Rssi), 0)
                .unwrap()
                .aggregate;
        }
        assert!(
            wolt_total > rssi_total,
            "WOLT {wolt_total} vs RSSI {rssi_total}"
        );
    }

    #[test]
    fn directives_track_switches_for_wolt() {
        let scenario = lab_scenario(5);
        let outcome = run_rig(&scenario, &RigConfig::new(ControllerPolicy::Wolt), 0).unwrap();
        assert!(outcome.directives >= outcome.switches);
    }

    #[test]
    fn estimation_noise_changes_little_at_default_sigma() {
        let scenario = lab_scenario(6);
        let a = run_rig(&scenario, &RigConfig::new(ControllerPolicy::Wolt), 1).unwrap();
        let b = run_rig(&scenario, &RigConfig::new(ControllerPolicy::Wolt), 2).unwrap();
        let rel = (a.aggregate - b.aggregate).abs() / a.aggregate.max(b.aggregate);
        assert!(rel < 0.25, "estimation noise too influential: {rel}");
    }

    #[test]
    fn rejects_empty_scenario() {
        let scenario = Scenario {
            extender_positions: vec![],
            capacities: vec![],
            user_positions: vec![],
            radio: wolt_wifi::WifiRadio::office_default(),
        };
        assert!(matches!(
            run_rig(&scenario, &RigConfig::new(ControllerPolicy::Rssi), 0),
            Err(TestbedError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn policy_names_match_paper() {
        assert_eq!(ControllerPolicy::Wolt.name(), "WOLT");
        assert_eq!(ControllerPolicy::Greedy.name(), "Greedy");
        assert_eq!(ControllerPolicy::Rssi.name(), "RSSI");
    }

    #[test]
    fn deterministic_for_fixed_seeds() {
        let scenario = lab_scenario(7);
        let a = run_rig(&scenario, &RigConfig::new(ControllerPolicy::Wolt), 3).unwrap();
        let b = run_rig(&scenario, &RigConfig::new(ControllerPolicy::Wolt), 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn session_with_departures_leaves_them_unassigned() {
        let scenario = lab_scenario(8);
        let events = vec![
            SessionEvent::Join(0),
            SessionEvent::Join(1),
            SessionEvent::Join(2),
            SessionEvent::Leave(1),
        ];
        let outcome = run_session(
            &scenario,
            &RigConfig::new(ControllerPolicy::Wolt),
            &events,
            0,
        )
        .unwrap();
        assert_eq!(outcome.association.target(1), None);
        assert!(outcome.association.target(0).is_some());
        assert!(outcome.association.target(2).is_some());
        assert_eq!(outcome.per_user[1], 0.0);
        assert!(outcome.aggregate > 0.0);
    }

    #[test]
    fn departure_triggers_wolt_reoptimization() {
        // With three clients on two good extenders, removing one lets
        // WOLT re-balance; the CC must be allowed to send directives on a
        // departure (the baselines send none).
        let scenario = lab_scenario(9);
        let events = vec![
            SessionEvent::Join(0),
            SessionEvent::Join(1),
            SessionEvent::Join(2),
            SessionEvent::Join(3),
            SessionEvent::Leave(0),
            SessionEvent::Leave(2),
        ];
        let wolt = run_session(
            &scenario,
            &RigConfig::new(ControllerPolicy::Wolt),
            &events,
            0,
        )
        .unwrap();
        let rssi = run_session(
            &scenario,
            &RigConfig::new(ControllerPolicy::Rssi),
            &events,
            0,
        )
        .unwrap();
        assert_eq!(rssi.directives, 0);
        assert!(wolt.aggregate >= rssi.aggregate - 1e-9);
    }

    #[test]
    fn rejoin_after_leave_is_allowed() {
        let scenario = lab_scenario(10);
        let events = vec![
            SessionEvent::Join(0),
            SessionEvent::Join(1),
            SessionEvent::Leave(0),
            SessionEvent::Join(0),
        ];
        let outcome = run_session(
            &scenario,
            &RigConfig::new(ControllerPolicy::Greedy),
            &events,
            0,
        )
        .unwrap();
        assert!(outcome.association.target(0).is_some());
        assert!(outcome.association.target(1).is_some());
    }

    #[test]
    fn invalid_sessions_rejected() {
        let scenario = lab_scenario(11);
        let config = RigConfig::new(ControllerPolicy::Rssi);
        // Leave before join.
        assert!(matches!(
            run_session(&scenario, &config, &[SessionEvent::Leave(0)], 0),
            Err(TestbedError::InvalidConfig { .. })
        ));
        // Double join.
        assert!(matches!(
            run_session(
                &scenario,
                &config,
                &[SessionEvent::Join(0), SessionEvent::Join(0)],
                0
            ),
            Err(TestbedError::InvalidConfig { .. })
        ));
        // Out of range.
        assert!(matches!(
            run_session(&scenario, &config, &[SessionEvent::Join(99)], 0),
            Err(TestbedError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn jain_only_counts_present_clients() {
        let scenario = lab_scenario(12);
        let events = vec![
            SessionEvent::Join(0),
            SessionEvent::Join(1),
            SessionEvent::Leave(1),
        ];
        let outcome = run_session(
            &scenario,
            &RigConfig::new(ControllerPolicy::Rssi),
            &events,
            0,
        )
        .unwrap();
        // A single present client with positive throughput: Jain = 1.
        assert_eq!(outcome.jain, Some(1.0));
    }

    #[test]
    fn lock_physical_recovers_from_poison() {
        let shared = Arc::new(Mutex::new(vec![Some(1usize), None]));
        let poisoner = Arc::clone(&shared);
        let _ = thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(shared.lock().is_err(), "lock should be poisoned");
        // The state is plain data: recover the guard and keep going.
        lock_physical(&shared)[1] = Some(2);
        assert_eq!(*lock_physical(&shared), vec![Some(1), Some(2)]);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let d = Deadlines::default();
        assert_eq!(d.backoff(1), Duration::from_millis(25));
        assert_eq!(d.backoff(2), Duration::from_millis(50));
        assert_eq!(d.backoff(3), Duration::from_millis(100));
        assert_eq!(d.backoff(4), Duration::from_millis(200));
        assert_eq!(d.backoff(9), Duration::from_millis(200), "capped");
    }

    #[test]
    fn fault_free_plan_reproduces_run_session() {
        let scenario = lab_scenario(13);
        let config = RigConfig::new(ControllerPolicy::Wolt);
        let events = vec![
            SessionEvent::Join(0),
            SessionEvent::Join(1),
            SessionEvent::Join(2),
            SessionEvent::Leave(0),
        ];
        let plain = run_session(&scenario, &config, &events, 0).unwrap();
        let report =
            run_faulty_session(&scenario, &config, &events, 0, &FaultPlan::none()).unwrap();
        assert_eq!(report.outcome, plain);
        assert_eq!(report.survivors, vec![1, 2]);
        assert!(report.declared_dead.is_empty());
        assert!(report.unresponsive.is_empty());
        assert_eq!(report.degraded_solves, 0);
    }

    #[test]
    fn crashed_agent_session_completes_and_masks_casualty() {
        let scenario = lab_scenario(14);
        let config = RigConfig::new(ControllerPolicy::Wolt);
        let events: Vec<SessionEvent> = (0..7).map(SessionEvent::Join).collect();
        let plan = FaultPlan {
            crashed: vec![2],
            ..FaultPlan::none()
        };
        let report = run_faulty_session(&scenario, &config, &events, 0, &plan).unwrap();
        assert_eq!(report.crashed, vec![2]);
        assert!(!report.survivors.contains(&2));
        assert_eq!(report.outcome.association.target(2), None);
        for &i in &report.survivors {
            assert!(
                report.outcome.association.target(i).is_some(),
                "survivor {i} stranded"
            );
        }
        assert!(report.outcome.aggregate > 0.0);
    }

    #[test]
    fn total_loss_yields_bounded_timeout() {
        let scenario = lab_scenario(15);
        let config = RigConfig {
            deadlines: Deadlines {
                event: Duration::from_millis(50),
                event_attempts: 2,
                ..Deadlines::default()
            },
            ..RigConfig::new(ControllerPolicy::Wolt)
        };
        let plan = FaultPlan {
            to_cc: LinkFaults {
                drop: 1.0,
                duplicate: 0.0,
                max_delay: Duration::ZERO,
            },
            ..FaultPlan::none()
        };
        let start = Instant::now();
        let err =
            run_faulty_session(&scenario, &config, &[SessionEvent::Join(0)], 0, &plan).unwrap_err();
        assert!(
            matches!(err, TestbedError::Timeout { ref waiting_for } if waiting_for.contains("client 0")),
            "expected timeout, got {err:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "timeout not bounded: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn fault_plan_validation_enforced_at_session_start() {
        let scenario = lab_scenario(16);
        let config = RigConfig::new(ControllerPolicy::Rssi);
        let out_of_range = FaultPlan {
            crashed: vec![99],
            ..FaultPlan::none()
        };
        assert!(matches!(
            run_faulty_session(&scenario, &config, &[], 0, &out_of_range),
            Err(TestbedError::InvalidConfig { .. })
        ));
        let bad_prob = FaultPlan {
            to_cc: LinkFaults {
                drop: 2.0,
                duplicate: 0.0,
                max_delay: Duration::ZERO,
            },
            ..FaultPlan::none()
        };
        assert!(run_faulty_session(&scenario, &config, &[], 0, &bad_prob).is_err());
        let no_attempts = RigConfig {
            deadlines: Deadlines {
                event_attempts: 0,
                ..Deadlines::default()
            },
            ..config
        };
        assert!(matches!(
            run_faulty_session(&scenario, &no_attempts, &[], 0, &FaultPlan::none()),
            Err(TestbedError::InvalidConfig { .. })
        ));
    }
}
