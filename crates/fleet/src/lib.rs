//! `wolt-fleet` — a sharded multi-site controller: many independent
//! WOLT PLC segments multiplexed behind one daemon process.
//!
//! An enterprise deployment is rarely one PLC segment. Each floor (or
//! building wing) is its own electrically-isolated powerline network
//! with its own extenders, its own users, and its own Central
//! Controller state — but operators want *one* long-running service,
//! one address, one snapshot root, one metrics endpoint. The fleet is
//! exactly that: a [`server::Fleet`] owns one TCP listener and N
//! independent [`wolt_daemon::SessionEngine`]s, one per site.
//!
//! The determinism contract survives multiplexing by construction:
//!
//! - **Routing, not sharing.** Agents declare their site in the
//!   handshake (`hello.site`); the [`router::FleetRouter`] maps the
//!   hello to that site's session inbox. A hello naming a site the
//!   fleet does not host (or no longer hosts) gets the typed
//!   [`wolt_daemon::Envelope::SiteGone`] reject, which agents treat as
//!   fatal — never retried.
//! - **One owner per site.** Sites are partitioned across shard
//!   threads by [`shard::partition`] — a pure function of the sorted
//!   site list and the shard count, independent of registry insertion
//!   order and seeds. A shard steps each of its engines in turn; an
//!   engine is only ever touched by its shard, so every site's decision
//!   sequence is exactly the single-daemon sequence.
//! - **Isolated persistence.** Each site snapshots into its own
//!   subdirectory of the fleet root (`<root>/<site-id>/`), and every
//!   snapshot stamps the site id into its header — a mis-wired root
//!   fails typed ([`wolt_daemon::SnapshotCorrupt::WrongSite`]) instead
//!   of silently adopting another segment's state.
//!
//! The headline invariant, proven by the integration tests: a fleet
//! running N sites produces, per site, a canonical
//! [`wolt_testbed::SessionReport`] byte-identical to N separate
//! single-site daemons — at any shard count, including across a
//! kill/restart from the fleet snapshot root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod router;
pub mod server;
pub mod shard;
pub mod spec;

pub use router::FleetRouter;
pub use server::{Fleet, FleetConfig, FleetOutcome, SiteDef};
pub use spec::FleetSpec;
