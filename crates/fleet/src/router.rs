//! The fleet's connection router and site registry.
//!
//! Every accepted connection's hello names a site; the router maps it
//! to that site's session inbox (or to the typed
//! [`Envelope::SiteGone`] reject). The router is also the fleet's
//! lifecycle ledger: it knows each site's state for `fleet status`,
//! carries out drains, and tells the main thread when every site has
//! finished.
//!
//! The router never touches an engine — shard threads own those
//! exclusively. It only holds each site's inbox *sender* (dropped at
//! detach, so the engine's teardown can prove quiescence) and the
//! immutable greeting the handshake needs.

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};

use wolt_daemon::engine::{HelloDecision, Incoming};
use wolt_daemon::inbox::InboxSender;
use wolt_daemon::wire::{Envelope, SiteStatus};

/// A site's lifecycle state as the router tracks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteState {
    /// Registered; agents still connecting.
    Waiting,
    /// Driving session events.
    Running,
    /// Drain requested: no new agents, finishing in-flight work.
    Draining,
    /// Finished cleanly (report available).
    Done,
    /// Finished with an error.
    Failed,
}

impl SiteState {
    /// The wire rendering used in [`SiteStatus::state`].
    pub fn as_str(self) -> &'static str {
        match self {
            SiteState::Waiting => "waiting",
            SiteState::Running => "running",
            SiteState::Draining => "draining",
            SiteState::Done => "done",
            SiteState::Failed => "failed",
        }
    }
}

struct SiteEntry {
    /// The session inbox; `None` once the site is detached (its reader
    /// tasks can no longer register agents).
    sender: Option<InboxSender<Incoming>>,
    /// The handshake greeting (each client's saved attachment).
    greeting: Arc<Vec<Option<usize>>>,
    /// Whether new agent hellos are routed (false once draining).
    accepting: bool,
    /// Forget the entry entirely once the site finishes (`site remove`
    /// as opposed to `site drain`).
    remove_on_finish: bool,
    state: SiteState,
    users: u64,
    events: u64,
    epochs_done: u64,
}

struct RouterState {
    sites: BTreeMap<String, SiteEntry>,
    /// Sites registered but not yet finished.
    active: usize,
    /// The fleet is past its lifetime for new sites (`site add` refused).
    closed: bool,
}

/// The fleet's site registry: routes hellos, applies lifecycle ops,
/// reports status. Shared between the accept path (reader tasks), the
/// shard threads, and the fleet's main thread.
pub struct FleetRouter {
    state: Mutex<RouterState>,
    all_done: Condvar,
}

impl Default for FleetRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl FleetRouter {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(RouterState {
                sites: BTreeMap::new(),
                active: 0,
                closed: false,
            }),
            all_done: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RouterState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a site and starts routing its agents.
    ///
    /// # Errors
    ///
    /// A human-readable refusal when the id is already registered or the
    /// fleet is shutting down (the `fleet_ack` detail).
    pub fn register(
        &self,
        id: &str,
        greeting: Arc<Vec<Option<usize>>>,
        sender: InboxSender<Incoming>,
        events: u64,
        epochs_done: u64,
    ) -> Result<(), String> {
        let mut state = self.lock();
        if state.closed {
            return Err("the fleet is shutting down".into());
        }
        if state.sites.contains_key(id) {
            return Err(format!("site {id:?} is already registered"));
        }
        let users = greeting.len() as u64;
        state.sites.insert(
            id.to_string(),
            SiteEntry {
                sender: Some(sender),
                greeting,
                accepting: true,
                remove_on_finish: false,
                state: SiteState::Waiting,
                users,
                events,
                epochs_done,
            },
        );
        state.active += 1;
        Ok(())
    }

    /// Routes one agent hello: the declared site's inbox when the site
    /// is accepting, the typed [`Envelope::SiteGone`] reject when it is
    /// unknown, draining, removed — or when the hello named no site at
    /// all (a fleet hosts no anonymous segment).
    pub fn route_hello(&self, client: usize, site: Option<&str>) -> HelloDecision {
        let name = site.unwrap_or("");
        let state = self.lock();
        match state.sites.get(name) {
            Some(entry) if entry.accepting => {
                if client >= entry.greeting.len() {
                    return HelloDecision::Close;
                }
                let sender = entry
                    .sender
                    .clone()
                    .expect("an accepting site always has a sender");
                HelloDecision::Accept {
                    sender,
                    attached: entry.greeting[client],
                }
            }
            _ => HelloDecision::Reject(Envelope::SiteGone {
                site: name.to_string(),
            }),
        }
    }

    /// Drains a site: stop accepting its agents, ask its session to
    /// stop (it finishes the in-flight event and persists first), keep
    /// its status entry. Draining an already-draining or finished site
    /// is a no-op success.
    ///
    /// # Errors
    ///
    /// A refusal naming the unknown site.
    pub fn drain(&self, id: &str) -> Result<(), String> {
        self.drain_inner(id, false)
    }

    /// [`FleetRouter::drain`], and additionally forget the site's
    /// status entry once it finishes.
    ///
    /// # Errors
    ///
    /// A refusal naming the unknown site.
    pub fn remove(&self, id: &str) -> Result<(), String> {
        self.drain_inner(id, true)
    }

    fn drain_inner(&self, id: &str, remove: bool) -> Result<(), String> {
        let mut state = self.lock();
        let Some(entry) = state.sites.get_mut(id) else {
            return Err(format!("unknown site {id:?}"));
        };
        entry.accepting = false;
        entry.remove_on_finish |= remove;
        if matches!(entry.state, SiteState::Done | SiteState::Failed) {
            if remove {
                state.sites.remove(id);
            }
            return Ok(());
        }
        entry.state = SiteState::Draining;
        if let Some(sender) = &entry.sender {
            let _ = sender.send(Incoming::Stop {
                reason: if remove {
                    format!("site {id} removed")
                } else {
                    format!("site {id} drained")
                },
            });
        }
        Ok(())
    }

    /// Asks every live site's session to stop (the operator
    /// [`Envelope::Shutdown`] applied fleet-wide). Sites stay routable
    /// until their shard detaches them.
    pub fn stop_all(&self, reason: &str) {
        let state = self.lock();
        for entry in state.sites.values() {
            if let Some(sender) = &entry.sender {
                let _ = sender.send(Incoming::Stop {
                    reason: reason.to_string(),
                });
            }
        }
    }

    /// Shard-thread progress note after each engine step. `running`
    /// upgrades Waiting→Running; a drain in progress is never
    /// downgraded.
    pub fn note_progress(&self, id: &str, epochs_done: u64, running: bool) {
        let mut state = self.lock();
        if let Some(entry) = state.sites.get_mut(id) {
            entry.epochs_done = epochs_done;
            if running && entry.state == SiteState::Waiting {
                entry.state = SiteState::Running;
            }
        }
    }

    /// Stops routing a site's agents and drops its inbox sender, so the
    /// engine's stray-reaping can observe disconnect once the site's
    /// last reader exits. Called by the owning shard right after the
    /// engine finishes driving.
    pub fn detach(&self, id: &str) {
        let mut state = self.lock();
        if let Some(entry) = state.sites.get_mut(id) {
            entry.accepting = false;
            entry.sender = None;
        }
    }

    /// Records a site's terminal state, forgetting the entry when the
    /// site was removed. Wakes [`FleetRouter::wait_all_done`] when this
    /// was the last active site.
    pub fn finish_site(&self, id: &str, epochs_done: u64, ok: bool) {
        let mut state = self.lock();
        if let Some(entry) = state.sites.get_mut(id) {
            entry.accepting = false;
            entry.sender = None;
            entry.epochs_done = epochs_done;
            entry.state = if ok {
                SiteState::Done
            } else {
                SiteState::Failed
            };
            if entry.remove_on_finish {
                state.sites.remove(id);
            }
        }
        state.active = state.active.saturating_sub(1);
        if state.active == 0 {
            self.all_done.notify_all();
        }
    }

    /// Blocks until every registered site has finished, then closes the
    /// registry (further [`FleetRouter::register`] calls are refused) —
    /// atomically, so an add cannot slip in between "last site done"
    /// and shutdown.
    pub fn wait_all_done(&self) {
        let mut state = self.lock();
        while state.active > 0 {
            state = self.all_done.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        state.closed = true;
    }

    /// Per-site status, in site-id order (the `fleet status` reply).
    pub fn status(&self) -> Vec<SiteStatus> {
        let state = self.lock();
        state
            .sites
            .iter()
            .map(|(id, entry)| SiteStatus {
                site: id.clone(),
                state: entry.state.as_str().to_string(),
                users: entry.users,
                epochs_done: entry.epochs_done,
                events: entry.events,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolt_daemon::engine::incoming_sheddable;
    use wolt_daemon::inbox;

    fn sender() -> (InboxSender<Incoming>, wolt_daemon::inbox::Inbox<Incoming>) {
        inbox::channel(0, incoming_sheddable)
    }

    fn greeting(n: usize) -> Arc<Vec<Option<usize>>> {
        Arc::new(vec![None; n])
    }

    #[test]
    fn routes_known_sites_and_rejects_everything_else() {
        let router = FleetRouter::new();
        let (tx, _rx) = sender();
        router.register("alpha", greeting(2), tx, 2, 0).unwrap();

        assert!(matches!(
            router.route_hello(1, Some("alpha")),
            HelloDecision::Accept { .. }
        ));
        // Out-of-range client for a known site: silent close.
        assert!(matches!(
            router.route_hello(2, Some("alpha")),
            HelloDecision::Close
        ));
        // Unknown site and site-less hello: typed reject.
        assert!(matches!(
            router.route_hello(0, Some("beta")),
            HelloDecision::Reject(Envelope::SiteGone { site }) if site == "beta"
        ));
        assert!(matches!(
            router.route_hello(0, None),
            HelloDecision::Reject(Envelope::SiteGone { site }) if site.is_empty()
        ));
    }

    #[test]
    fn drain_stops_routing_and_delivers_a_stop() {
        let router = FleetRouter::new();
        let (tx, rx) = sender();
        router.register("alpha", greeting(1), tx, 1, 0).unwrap();
        router.drain("alpha").unwrap();
        assert!(matches!(
            router.route_hello(0, Some("alpha")),
            HelloDecision::Reject(Envelope::SiteGone { .. })
        ));
        match rx.recv_timeout(std::time::Duration::from_millis(100)) {
            Ok(Incoming::Stop { reason }) => assert!(reason.contains("drained")),
            other => panic!("expected a stop, got {:?}", other.is_ok()),
        }
        assert_eq!(router.status()[0].state, "draining");
        assert!(router.drain("ghost").is_err());
    }

    #[test]
    fn remove_forgets_the_entry_once_finished() {
        let router = FleetRouter::new();
        let (tx, _rx) = sender();
        router.register("alpha", greeting(1), tx, 1, 0).unwrap();
        router.remove("alpha").unwrap();
        assert_eq!(router.status().len(), 1);
        router.finish_site("alpha", 0, true);
        assert!(router.status().is_empty());
    }

    #[test]
    fn register_refuses_duplicates_and_closed_registry() {
        let router = FleetRouter::new();
        let (tx, _rx) = sender();
        router.register("alpha", greeting(1), tx, 1, 0).unwrap();
        let (tx2, _rx2) = sender();
        assert!(router.register("alpha", greeting(1), tx2, 1, 0).is_err());
        router.finish_site("alpha", 1, true);
        router.wait_all_done();
        let (tx3, _rx3) = sender();
        assert!(router.register("beta", greeting(1), tx3, 1, 0).is_err());
    }

    #[test]
    fn status_is_sorted_by_site_id() {
        let router = FleetRouter::new();
        for id in ["zeta", "alpha", "mid"] {
            let (tx, rx) = sender();
            std::mem::forget(rx);
            router.register(id, greeting(1), tx, 1, 0).unwrap();
        }
        let ids: Vec<String> = router.status().into_iter().map(|s| s.site).collect();
        assert_eq!(ids, vec!["alpha", "mid", "zeta"]);
    }
}
