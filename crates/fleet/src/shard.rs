//! Deterministic site→shard assignment.
//!
//! The partition is a pure function of the *sorted* site list and the
//! shard count: sort, dedup, then deal round-robin. No hashes, no
//! seeds, no dependence on the order sites were registered — so the
//! same configuration lands the same site on the same shard index on
//! every run and every machine, and the determinism matrix can vary
//! `WOLT_THREADS` freely without moving any site's *owner semantics*
//! (one thread steps it exclusively either way).

/// Partitions `ids` across `shards` buckets: the sorted, deduplicated
/// site list is dealt round-robin (site at sorted index `i` goes to
/// bucket `i % shards`). Always returns exactly `shards` buckets (empty
/// ones included) so callers can zip buckets with shard threads.
///
/// # Panics
///
/// Panics when `shards` is zero — resolve the shard count (e.g. via
/// [`wolt_support::pool::resolve_threads`]) before partitioning.
pub fn partition(ids: &[String], shards: usize) -> Vec<Vec<String>> {
    assert!(shards > 0, "cannot partition across zero shards");
    let mut sorted: Vec<String> = ids.to_vec();
    sorted.sort();
    sorted.dedup();
    let mut buckets: Vec<Vec<String>> = (0..shards).map(|_| Vec::new()).collect();
    for (i, id) in sorted.into_iter().enumerate() {
        buckets[i % shards].push(id);
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolt_support::check::Runner;
    use wolt_support::rng::RngCore as _;

    fn random_ids(rng: &mut wolt_support::rng::ChaCha8Rng, max: usize) -> Vec<String> {
        let n = (rng.next_u64() as usize) % (max + 1);
        (0..n)
            .map(|_| format!("site-{:02}", rng.next_u64() % 40))
            .collect()
    }

    #[test]
    fn assignment_is_invariant_under_insertion_order() {
        Runner::new("assignment_is_invariant_under_insertion_order").run(
            |rng| {
                let ids = random_ids(rng, 24);
                let shards = 1 + (rng.next_u64() as usize) % 8;
                // A deterministic permutation of the same ids.
                let mut shuffled = ids.clone();
                for i in (1..shuffled.len()).rev() {
                    let j = (rng.next_u64() as usize) % (i + 1);
                    shuffled.swap(i, j);
                }
                (ids, shuffled, shards)
            },
            |(ids, shuffled, shards)| {
                if partition(ids, *shards) == partition(shuffled, *shards) {
                    Ok(())
                } else {
                    Err("permuting the registry order moved a site".into())
                }
            },
        );
    }

    #[test]
    fn every_site_lands_in_exactly_one_bucket() {
        Runner::new("every_site_lands_in_exactly_one_bucket").run(
            |rng| {
                let ids = random_ids(rng, 24);
                let shards = 1 + (rng.next_u64() as usize) % 8;
                (ids, shards)
            },
            |(ids, shards)| {
                let buckets = partition(ids, *shards);
                if buckets.len() != *shards {
                    return Err(format!("expected {shards} buckets, got {}", buckets.len()));
                }
                let mut seen: Vec<String> = buckets.concat();
                seen.sort();
                let mut expected = ids.clone();
                expected.sort();
                expected.dedup();
                if seen != expected {
                    return Err("buckets do not cover the deduped site set exactly".into());
                }
                Ok(())
            },
        );
    }

    #[test]
    fn load_is_balanced_within_one() {
        Runner::new("load_is_balanced_within_one").run(
            |rng| {
                let ids = random_ids(rng, 24);
                let shards = 1 + (rng.next_u64() as usize) % 8;
                (ids, shards)
            },
            |(ids, shards)| {
                let buckets = partition(ids, *shards);
                let min = buckets.iter().map(Vec::len).min().unwrap_or(0);
                let max = buckets.iter().map(Vec::len).max().unwrap_or(0);
                if max - min <= 1 {
                    Ok(())
                } else {
                    Err(format!("bucket sizes spread {min}..{max}"))
                }
            },
        );
    }

    #[test]
    fn dealt_in_sorted_order() {
        let ids: Vec<String> = ["c", "a", "b", "d"].iter().map(|s| s.to_string()).collect();
        assert_eq!(
            partition(&ids, 2),
            vec![
                vec!["a".to_string(), "c".into()],
                vec!["b".into(), "d".into()]
            ]
        );
        assert_eq!(
            partition(&ids, 1),
            vec![vec!["a", "b", "c", "d"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()]
        );
    }
}
