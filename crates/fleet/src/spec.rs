//! Fleet spec files: the JSON document `wolt serve --sites` loads, and
//! the validation + materialization shared with the wire-level
//! [`wolt_daemon::wire::FleetOp::Add`] path.
//!
//! A spec never carries a scenario — like the single-site
//! `wolt serve`/`wolt agent` pair, both sides regenerate it
//! deterministically from `(preset, users, seed)`:
//!
//! ```json
//! {
//!   "sites": [
//!     {"id": "floor-1", "preset": "lab", "users": 4, "seed": 11, "policy": "wolt"},
//!     {"id": "floor-2", "preset": "lab", "users": 3, "seed": 12, "policy": "greedy"}
//!   ]
//! }
//! ```

use wolt_daemon::wire::SiteSpec;
use wolt_daemon::DaemonError;
use wolt_sim::{Scenario, ScenarioConfig};
use wolt_support::json::{FromJson as _, Json};
use wolt_support::rng::{ChaCha8Rng, SeedableRng};
use wolt_testbed::{ControllerPolicy, SessionEvent};

use crate::server::SiteDef;

/// The longest site id accepted (bytes).
pub const MAX_SITE_ID_BYTES: usize = 64;

/// A parsed `--sites` spec file: the fleet's initial site list.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// The sites, in file order (the fleet sorts by id internally).
    pub sites: Vec<SiteSpec>,
}

impl FleetSpec {
    /// Parses and validates a spec document: at least one site, unique
    /// filesystem-safe ids, at least one user per site.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Protocol`] for malformed JSON or a wrong shape;
    /// [`DaemonError::InvalidConfig`] for a spec that parses but
    /// violates the fleet's rules.
    pub fn parse(text: &str) -> Result<Self, DaemonError> {
        let json = Json::parse(text)?;
        let sites = Vec::<SiteSpec>::from_json(json.field("sites")?)?;
        let spec = Self { sites };
        spec.validate()?;
        Ok(spec)
    }

    /// The rules a site list must satisfy before the fleet will host it.
    ///
    /// # Errors
    ///
    /// [`DaemonError::InvalidConfig`] naming the offending site.
    pub fn validate(&self) -> Result<(), DaemonError> {
        if self.sites.is_empty() {
            return Err(DaemonError::InvalidConfig {
                context: "a fleet needs at least one site".into(),
            });
        }
        let mut seen: Vec<&str> = Vec::new();
        for site in &self.sites {
            validate_site_id(&site.id)?;
            if site.users == 0 {
                return Err(DaemonError::InvalidConfig {
                    context: format!("site {:?} has zero users", site.id),
                });
            }
            if seen.contains(&site.id.as_str()) {
                return Err(DaemonError::InvalidConfig {
                    context: format!("duplicate site id {:?}", site.id),
                });
            }
            seen.push(&site.id);
        }
        Ok(())
    }

    /// Materializes every site into its runnable definition, in file
    /// order.
    ///
    /// # Errors
    ///
    /// As [`materialize`].
    pub fn materialize(&self) -> Result<Vec<SiteDef>, DaemonError> {
        self.sites.iter().map(materialize).collect()
    }
}

/// Checks a site id is filesystem-safe — it names the site's snapshot
/// subdirectory under the fleet root: `[A-Za-z0-9._-]+`, at most
/// [`MAX_SITE_ID_BYTES`] bytes, and not `.` or `..`.
///
/// # Errors
///
/// [`DaemonError::InvalidConfig`] describing the violation.
pub fn validate_site_id(id: &str) -> Result<(), DaemonError> {
    let bad = |context: String| Err(DaemonError::InvalidConfig { context });
    if id.is_empty() {
        return bad("site id must not be empty".into());
    }
    if id.len() > MAX_SITE_ID_BYTES {
        return bad(format!(
            "site id {:?}… is longer than {MAX_SITE_ID_BYTES} bytes",
            &id[..MAX_SITE_ID_BYTES.min(id.len())]
        ));
    }
    if id == "." || id == ".." {
        return bad(format!("site id {id:?} is a reserved path name"));
    }
    if let Some(c) = id
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')))
    {
        return bad(format!(
            "site id {id:?} contains {c:?}; allowed: [A-Za-z0-9._-]"
        ));
    }
    Ok(())
}

/// Turns one wire-level [`SiteSpec`] into a runnable [`SiteDef`]:
/// regenerates the scenario from `(preset, users, seed)` exactly as the
/// single-site `wolt serve` does (the seed doubles as the
/// capacity-noise seed), parses the policy, and schedules one join per
/// user.
///
/// # Errors
///
/// [`DaemonError::InvalidConfig`] for an invalid id, unknown preset or
/// policy, or a scenario the generator rejects.
pub fn materialize(spec: &SiteSpec) -> Result<SiteDef, DaemonError> {
    validate_site_id(&spec.id)?;
    let policy = match spec.policy.to_ascii_lowercase().as_str() {
        "wolt" => ControllerPolicy::Wolt,
        "greedy" => ControllerPolicy::Greedy,
        "rssi" => ControllerPolicy::Rssi,
        other => {
            return Err(DaemonError::InvalidConfig {
                context: format!(
                    "site {:?}: unknown policy {other:?} (try wolt | greedy | rssi)",
                    spec.id
                ),
            })
        }
    };
    let config = match spec.preset.to_ascii_lowercase().as_str() {
        "lab" => ScenarioConfig::lab(spec.users),
        "enterprise" => ScenarioConfig::enterprise(spec.users),
        other => {
            return Err(DaemonError::InvalidConfig {
                context: format!(
                    "site {:?}: unknown preset {other:?} (try lab | enterprise)",
                    spec.id
                ),
            })
        }
    };
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let scenario =
        Scenario::generate(&config, &mut rng).map_err(|e| DaemonError::InvalidConfig {
            context: format!("site {:?}: scenario generation: {e}", spec.id),
        })?;
    let events: Vec<SessionEvent> = (0..spec.users).map(SessionEvent::Join).collect();
    Ok(SiteDef {
        id: spec.id.clone(),
        scenario,
        events,
        policy,
        noise_seed: spec.seed,
        stop_after: spec.stop_after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_text() -> &'static str {
        r#"{"sites": [
            {"id": "floor-1", "preset": "lab", "users": 4, "seed": 11, "policy": "wolt"},
            {"id": "floor-2", "preset": "enterprise", "users": 3, "seed": 12, "policy": "greedy", "stop_after": 2}
        ]}"#
    }

    #[test]
    fn parses_and_materializes_a_two_site_spec() {
        let spec = FleetSpec::parse(spec_text()).unwrap();
        assert_eq!(spec.sites.len(), 2);
        assert_eq!(spec.sites[1].stop_after, Some(2));
        let defs = spec.materialize().unwrap();
        assert_eq!(defs[0].scenario.user_positions.len(), 4);
        assert_eq!(defs[0].events.len(), 4);
        assert_eq!(defs[1].stop_after, Some(2));
    }

    #[test]
    fn materialized_scenario_matches_the_single_site_recipe() {
        // The agent side regenerates from (preset, users, seed); the
        // fleet must produce the identical scenario.
        let spec = FleetSpec::parse(spec_text()).unwrap();
        let def = materialize(&spec.sites[0]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let expected = Scenario::generate(&ScenarioConfig::lab(4), &mut rng).unwrap();
        assert_eq!(def.scenario.rate(0, 0), expected.rate(0, 0));
        assert_eq!(def.scenario.capacities, expected.capacities);
    }

    #[test]
    fn rejects_duplicate_empty_and_unsafe_ids() {
        let dup = r#"{"sites": [
            {"id": "a", "preset": "lab", "users": 1, "seed": 1, "policy": "wolt"},
            {"id": "a", "preset": "lab", "users": 1, "seed": 2, "policy": "wolt"}
        ]}"#;
        assert!(FleetSpec::parse(dup).is_err());
        assert!(validate_site_id("").is_err());
        assert!(validate_site_id(".").is_err());
        assert!(validate_site_id("..").is_err());
        assert!(validate_site_id("a/b").is_err());
        assert!(validate_site_id("a b").is_err());
        assert!(validate_site_id(&"x".repeat(65)).is_err());
        assert!(validate_site_id("floor-3.annex_B").is_ok());
    }

    #[test]
    fn rejects_unknown_policy_preset_and_zero_users() {
        let zero =
            r#"{"sites": [{"id": "a", "preset": "lab", "users": 0, "seed": 1, "policy": "wolt"}]}"#;
        assert!(FleetSpec::parse(zero).is_err());
        let bad_policy = wolt_daemon::wire::SiteSpec {
            id: "a".into(),
            preset: "lab".into(),
            users: 1,
            seed: 1,
            policy: "dijkstra".into(),
            stop_after: None,
        };
        assert!(materialize(&bad_policy).is_err());
        let bad_preset = wolt_daemon::wire::SiteSpec {
            preset: "metropolitan".into(),
            policy: "wolt".into(),
            ..bad_policy
        };
        assert!(materialize(&bad_preset).is_err());
        assert!(FleetSpec::parse(r#"{"sites": []}"#).is_err());
    }
}
