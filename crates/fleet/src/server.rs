//! The fleet server: one TCP listener, one snapshot root, N independent
//! per-site session engines stepped on a small set of shard threads.
//!
//! # Execution model
//!
//! Every site is a [`SessionEngine`] — exactly the state machine the
//! single-site daemon runs, created with the site's id (which stamps
//! its snapshot store and its `site.<id>.*` metrics). Sites are
//! partitioned across `shards` threads by [`crate::shard::partition`];
//! each shard round-robins [`SessionEngine::step`] over its sites, so
//! one thread owns each engine exclusively and a site's decision
//! sequence is independent of every other site's schedule. That is the
//! whole determinism argument: N sites behind one fleet produce, per
//! site, the same canonical report as N separate daemons, at any shard
//! count.
//!
//! # Lifecycle
//!
//! The [`crate::router::FleetRouter`] routes agent hellos and carries
//! the `site add` / `site drain` / `site remove` operations arriving
//! over the wire ([`wolt_daemon::wire::FleetOp`]). A drained site stops
//! accepting agents, finishes its in-flight event, persists, and
//! detaches; survivors never notice. When the last site finishes the
//! fleet closes its registry (late adds are refused, not lost), lingers
//! if configured, and tears down the accept path.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use wolt_daemon::engine::{self, EngineStep, SessionEngine};
use wolt_daemon::wire::{self, Envelope, FleetOp, SiteSpec};
use wolt_daemon::{DaemonConfig, DaemonError, DaemonOutcome};
use wolt_sim::Scenario;
use wolt_support::obs;
use wolt_support::pool::resolve_threads;
use wolt_testbed::{ControllerPolicy, Deadlines, SessionEvent};

use crate::router::FleetRouter;
use crate::{shard, spec};

/// How long a shard waits for a finished site's reader tasks to drain
/// before assembling its outcome anyway.
const REAP_BUDGET: Duration = Duration::from_secs(2);

/// One site, fully materialized: everything a [`SessionEngine`] needs.
#[derive(Debug, Clone)]
pub struct SiteDef {
    /// Unique, filesystem-safe site id (see
    /// [`crate::spec::validate_site_id`]).
    pub id: String,
    /// The site's network scenario.
    pub scenario: Scenario,
    /// The site's session events.
    pub events: Vec<SessionEvent>,
    /// Association policy at this site's controller.
    pub policy: ControllerPolicy,
    /// Capacity-estimation noise seed.
    pub noise_seed: u64,
    /// Stop this site after this many completed events (`None` runs to
    /// completion).
    pub stop_after: Option<usize>,
}

/// Fleet-wide configuration. Per-site knobs (policy, seeds, events)
/// live in each [`SiteDef`]; everything here applies to the shared
/// process.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Shard threads stepping the sites; `0` resolves like the rest of
    /// the workspace (`WOLT_THREADS`, then available parallelism).
    pub shards: usize,
    /// Fleet snapshot root; each site persists under
    /// `<root>/<site-id>/`. `None` disables persistence.
    pub snapshot_root: Option<PathBuf>,
    /// Snapshot generations kept per site.
    pub snapshot_keep: usize,
    /// Deadline and retry budgets, shared by every site.
    pub deadlines: Deadlines,
    /// Per-site budget for all of its agents to connect.
    pub connect_deadline: Duration,
    /// Listener grace period after the last site finishes.
    pub linger: Duration,
    /// Process-wide concurrent-connection cap (`0` = unlimited).
    pub max_connections: usize,
    /// Per-site session-inbox bound (`0` = unbounded).
    pub inbox_cap: usize,
    /// Mid-frame stall budget per connection.
    pub read_stall: Duration,
    /// Reader-pool workers; `0` sizes to total users + shards + 2.
    pub workers: usize,
    /// Drain-what's-queued telemetry coalescing at every site's engine
    /// (see [`DaemonConfig::coalesce`]). On by default.
    pub coalesce: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        let single = DaemonConfig::new(ControllerPolicy::Wolt);
        Self {
            shards: 0,
            snapshot_root: None,
            snapshot_keep: single.snapshot_keep,
            deadlines: single.deadlines,
            connect_deadline: single.connect_deadline,
            linger: Duration::ZERO,
            max_connections: 0,
            inbox_cap: 0,
            read_stall: single.read_stall,
            workers: 0,
            coalesce: single.coalesce,
        }
    }
}

/// The per-engine daemon config a fleet site runs under.
fn daemon_config_for(def: &SiteDef, config: &FleetConfig) -> DaemonConfig {
    let mut c = DaemonConfig::new(def.policy);
    c.deadlines = config.deadlines;
    c.noise_seed = def.noise_seed;
    c.snapshot_dir = config.snapshot_root.as_ref().map(|root| root.join(&def.id));
    c.snapshot_keep = config.snapshot_keep;
    c.stop_after = def.stop_after;
    c.connect_deadline = config.connect_deadline;
    c.inbox_cap = config.inbox_cap;
    c.read_stall = config.read_stall;
    c.coalesce = config.coalesce;
    c
}

/// What one fleet run produced: each site's outcome (or error), keyed
/// by site id.
#[derive(Debug)]
pub struct FleetOutcome {
    /// Per-site results, in site-id order.
    pub sites: BTreeMap<String, Result<DaemonOutcome, DaemonError>>,
}

impl FleetOutcome {
    /// The canonical fleet report: each successful site's
    /// [`wolt_testbed::SessionReport::canonical`] rendering, keyed by
    /// site id. This is the map the headline invariant is stated over —
    /// each value must be byte-identical to the canonical report of a
    /// single-site daemon run of the same site.
    pub fn canonical_reports(&self) -> BTreeMap<String, String> {
        self.sites
            .iter()
            .filter_map(|(id, r)| {
                r.as_ref()
                    .ok()
                    .map(|outcome| (id.clone(), outcome.report.canonical()))
            })
            .collect()
    }

    /// Whether every site finished every configured event cleanly.
    pub fn all_completed(&self) -> bool {
        !self.sites.is_empty()
            && self
                .sites
                .values()
                .all(|r| r.as_ref().map(|o| o.completed).unwrap_or(false))
    }
}

/// One site riding a shard: the id plus its exclusively-owned engine.
struct SiteRun {
    id: String,
    engine: SessionEngine,
}

type Outcomes = Arc<Mutex<BTreeMap<String, Result<DaemonOutcome, DaemonError>>>>;

/// The multi-site controller behind one listening socket.
pub struct Fleet {
    listener: TcpListener,
    defs: Vec<SiteDef>,
    config: FleetConfig,
}

impl Fleet {
    /// Validates the site list (non-empty, unique filesystem-safe ids)
    /// and binds the fleet's listening socket.
    ///
    /// # Errors
    ///
    /// [`DaemonError::InvalidConfig`] for an invalid site list;
    /// [`DaemonError::Io`] when the address cannot be bound.
    pub fn bind(
        addr: impl ToSocketAddrs,
        defs: Vec<SiteDef>,
        config: FleetConfig,
    ) -> Result<Self, DaemonError> {
        if defs.is_empty() {
            return Err(DaemonError::InvalidConfig {
                context: "a fleet needs at least one site".into(),
            });
        }
        let mut seen: Vec<&str> = Vec::new();
        for def in &defs {
            spec::validate_site_id(&def.id)?;
            if seen.contains(&def.id.as_str()) {
                return Err(DaemonError::InvalidConfig {
                    context: format!("duplicate site id {:?}", def.id),
                });
            }
            seen.push(&def.id);
        }
        let listener = TcpListener::bind(addr)?;
        Ok(Self {
            listener,
            defs,
            config,
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the OS failure to report the socket address.
    pub fn local_addr(&self) -> Result<SocketAddr, DaemonError> {
        Ok(self.listener.local_addr()?)
    }

    /// Runs every site to completion (or drain/stop) and returns the
    /// per-site outcomes.
    ///
    /// # Errors
    ///
    /// [`DaemonError::SnapshotCorrupt`] /
    /// [`DaemonError::Protocol`] when a site's snapshot store cannot be
    /// restored at startup; [`DaemonError::Io`] for listener failures.
    /// Failures *during* a site's session do not fail the fleet — they
    /// land in that site's slot of the [`FleetOutcome`].
    pub fn run(self) -> Result<FleetOutcome, DaemonError> {
        let shards_n = if self.config.shards > 0 {
            self.config.shards
        } else {
            resolve_threads(None)
        };
        let router = Arc::new(FleetRouter::new());
        let outcomes: Outcomes = Arc::new(Mutex::new(BTreeMap::new()));
        let stop = Arc::new(AtomicBool::new(false));

        // Materialize every engine up front (restoring snapshots), in
        // sorted-id order so store errors surface deterministically.
        let mut defs = self.defs;
        defs.sort_by(|a, b| a.id.cmp(&b.id));
        let total_users: usize = defs.iter().map(|d| d.scenario.user_positions.len()).sum();
        let mut runs: BTreeMap<String, SiteRun> = BTreeMap::new();
        for def in &defs {
            let dconfig = daemon_config_for(def, &self.config);
            let (engine, tx) =
                SessionEngine::new(&def.id, def.scenario.clone(), def.events.clone(), dconfig)?;
            router
                .register(
                    &def.id,
                    engine.greeting(),
                    tx,
                    engine.n_events() as u64,
                    engine.epochs_done() as u64,
                )
                .map_err(|context| DaemonError::InvalidConfig { context })?;
            runs.insert(
                def.id.clone(),
                SiteRun {
                    id: def.id.clone(),
                    engine,
                },
            );
        }

        // Deterministic initial partition; dynamic adds later go to the
        // least-loaded shard (ties toward the lowest index).
        let ids: Vec<String> = runs.keys().cloned().collect();
        let assignment = shard::partition(&ids, shards_n);
        let counts: Arc<Vec<AtomicUsize>> =
            Arc::new((0..shards_n).map(|_| AtomicUsize::new(0)).collect());
        let intakes: Arc<Mutex<Vec<mpsc::Sender<SiteRun>>>> =
            Arc::new(Mutex::new(Vec::with_capacity(shards_n)));
        let mut shard_threads = Vec::with_capacity(shards_n);
        for (k, bucket) in assignment.into_iter().enumerate() {
            let initial: Vec<SiteRun> = bucket
                .into_iter()
                .map(|id| runs.remove(&id).expect("partition covers the registry"))
                .collect();
            counts[k].store(initial.len(), Ordering::Relaxed);
            let (tx, rx) = mpsc::channel::<SiteRun>();
            intakes.lock().unwrap_or_else(|e| e.into_inner()).push(tx);
            let router = Arc::clone(&router);
            let outcomes = Arc::clone(&outcomes);
            let stop = Arc::clone(&stop);
            let counts = Arc::clone(&counts);
            shard_threads.push(thread::spawn(move || {
                shard_loop(initial, rx, &stop, &router, &outcomes, &counts[k]);
            }));
        }
        debug_assert!(runs.is_empty());

        let workers = if self.config.workers > 0 {
            self.config.workers
        } else {
            total_users + shards_n + 2
        };
        let handler: Arc<dyn Fn(TcpStream) + Send + Sync> = {
            let stop = Arc::clone(&stop);
            let router = Arc::clone(&router);
            let intakes = Arc::clone(&intakes);
            let counts = Arc::clone(&counts);
            let config = self.config.clone();
            let read_stall = self.config.read_stall;
            Arc::new(move |stream| {
                let route = |client: usize, site: Option<&str>| router.route_hello(client, site);
                let control = |stream: &mut TcpStream, envelope: Envelope| -> bool {
                    match envelope {
                        Envelope::Shutdown { reason } => {
                            obs::trace("fleet", format!("operator stop: {reason}"));
                            router.stop_all(&reason);
                            false
                        }
                        Envelope::MetricsRequest => {
                            obs::counter_inc("daemon.metrics_requests");
                            let reply = Envelope::Metrics {
                                metrics: obs::snapshot(),
                            };
                            send_reply(stream, &reply)
                        }
                        Envelope::Fleet(op) => {
                            let reply = match &op {
                                FleetOp::Status => Envelope::FleetStatus {
                                    sites: router.status(),
                                },
                                FleetOp::Drain { site } => ack(&op, router.drain(site)),
                                FleetOp::Remove { site } => ack(&op, router.remove(site)),
                                FleetOp::Add { spec } => {
                                    ack(&op, add_site(spec, &config, &router, &intakes, &counts))
                                }
                            };
                            send_reply(stream, &reply)
                        }
                        _ => false,
                    }
                };
                engine::serve_connection(stream, &stop, read_stall, &route, &control);
            })
        };
        let acceptor = engine::spawn_acceptor(
            self.listener,
            Arc::clone(&stop),
            workers,
            self.config.max_connections,
            handler,
        )?;

        // The fleet is done when every site is: drained, completed,
        // failed, or timed out waiting for its agents — each of those is
        // a terminal engine state, so this wait is bounded.
        router.wait_all_done();
        if !self.config.linger.is_zero() {
            thread::sleep(self.config.linger);
        }
        stop.store(true, Ordering::Relaxed);
        intakes.lock().unwrap_or_else(|e| e.into_inner()).clear();
        for t in shard_threads {
            let _ = t.join();
        }
        let _ = acceptor.join();

        let sites = std::mem::take(&mut *outcomes.lock().unwrap_or_else(|e| e.into_inner()));
        Ok(FleetOutcome { sites })
    }
}

/// Builds the `fleet_ack` for a mutation's result.
fn ack(op: &FleetOp, result: Result<(), String>) -> Envelope {
    let (ok, detail) = match result {
        Ok(()) => (true, String::new()),
        Err(why) => (false, why),
    };
    Envelope::FleetAck {
        op: op.name().to_string(),
        site: op.site().to_string(),
        ok,
        detail,
    }
}

/// Sends a control reply; `false` (stop serving) on a dead connection.
fn send_reply(stream: &mut TcpStream, reply: &Envelope) -> bool {
    match wire::send_counted(stream, reply) {
        Ok(sent) => {
            engine::note_frame_out(sent);
            true
        }
        Err(_) => false,
    }
}

/// The wire-level `site add`: materialize, build the engine (restoring
/// any prior snapshot under the fleet root), register with the router,
/// and hand the site to the least-loaded shard.
fn add_site(
    spec: &SiteSpec,
    config: &FleetConfig,
    router: &FleetRouter,
    intakes: &Mutex<Vec<mpsc::Sender<SiteRun>>>,
    counts: &[AtomicUsize],
) -> Result<(), String> {
    let def = spec::materialize(spec).map_err(|e| e.to_string())?;
    let dconfig = daemon_config_for(&def, config);
    let (engine, tx) = SessionEngine::new(&def.id, def.scenario, def.events, dconfig)
        .map_err(|e| e.to_string())?;
    router.register(
        &def.id,
        engine.greeting(),
        tx,
        engine.n_events() as u64,
        engine.epochs_done() as u64,
    )?;
    let k = counts
        .iter()
        .enumerate()
        .min_by_key(|(i, c)| (c.load(Ordering::Relaxed), *i))
        .map(|(i, _)| i)
        .expect("a fleet always has at least one shard");
    let delivered = intakes
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(k)
        .map(|intake| {
            intake
                .send(SiteRun {
                    id: def.id.clone(),
                    engine,
                })
                .is_ok()
        })
        .unwrap_or(false);
    if !delivered {
        router.finish_site(&def.id, 0, false);
        return Err("the fleet is shutting down".into());
    }
    counts[k].fetch_add(1, Ordering::Relaxed);
    obs::counter_inc("fleet.sites_added");
    Ok(())
}

/// One shard thread: round-robin one engine step per site, retire sites
/// as they finish, absorb dynamically added sites from the intake.
fn shard_loop(
    mut sites: Vec<SiteRun>,
    intake: mpsc::Receiver<SiteRun>,
    stop: &AtomicBool,
    router: &FleetRouter,
    outcomes: &Outcomes,
    count: &AtomicUsize,
) {
    loop {
        while let Ok(run) = intake.try_recv() {
            sites.push(run);
        }
        if sites.is_empty() {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            match intake.recv_timeout(Duration::from_millis(20)) {
                Ok(run) => sites.push(run),
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            }
            continue;
        }
        let mut i = 0;
        while i < sites.len() {
            let run = &mut sites[i];
            match run.engine.step() {
                Ok(EngineStep::Finished) => {
                    let run = sites.remove(i);
                    retire(run, router, outcomes, None);
                    count.fetch_sub(1, Ordering::Relaxed);
                }
                Ok(progress) => {
                    router.note_progress(
                        &run.id,
                        run.engine.epochs_done() as u64,
                        progress == EngineStep::Progressed,
                    );
                    i += 1;
                }
                Err(e) => {
                    let run = sites.remove(i);
                    retire(run, router, outcomes, Some(e));
                    count.fetch_sub(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Tears one finished (or failed) site down without blocking its shard
/// siblings for long: dismiss agents, stop routing, drain stray
/// registrations, assemble the outcome.
fn retire(mut run: SiteRun, router: &FleetRouter, outcomes: &Outcomes, error: Option<DaemonError>) {
    run.engine.dismiss_agents();
    // Drop the router's sender first so the inbox can actually reach
    // disconnect once this site's reader tasks exit.
    router.detach(&run.id);
    let deadline = Instant::now() + REAP_BUDGET;
    while Instant::now() < deadline {
        if run.engine.reap_strays(Duration::from_millis(20)) {
            break;
        }
    }
    let epochs_done = run.engine.epochs_done() as u64;
    let result = match error {
        Some(e) => Err(e),
        None => run.engine.finish(),
    };
    router.finish_site(&run.id, epochs_done, result.is_ok());
    outcomes
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(run.id, result);
}
