//! Discrete-event simulation core: a time-ordered event queue.
//!
//! The dynamic experiments sample their churn from a continuous-time
//! birth–death process; this module provides the engine: events are
//! scheduled at absolute times and popped in time order (FIFO among
//! simultaneous events), with a monotone clock. [`crate::dynamics`] builds
//! the Poisson arrival/departure process on top of it.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: a payload with an absolute firing time.
#[derive(Debug, Clone, PartialEq)]
struct Scheduled<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E: PartialEq> Eq for Scheduled<E> {}

impl<E: PartialEq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E: PartialEq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time pops
        // first, breaking ties by insertion order (stable replay).
        // `total_cmp` keeps this a genuine total order: non-finite times
        // are rejected at scheduling time, so the comparator itself must
        // never be able to panic mid-heap-operation (which would leave the
        // queue in an inconsistent state).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event queue with a monotone clock.
///
/// # Example
///
/// ```
/// use wolt_sim::events::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "second");
/// q.schedule(1.0, "first");
/// assert_eq!(q.pop(), Some((1.0, "first")));
/// assert_eq!(q.pop(), Some((2.0, "second")));
/// assert_eq!(q.now(), 2.0);
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: f64,
    seq: u64,
}

impl<E: PartialEq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: PartialEq> EventQueue<E> {
    /// An empty queue with the clock at 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: 0.0,
            seq: 0,
        }
    }

    /// Current simulation time: the firing time of the last popped event.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is non-finite or earlier than the current clock
    /// (events cannot fire in the past).
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(time.is_finite(), "event time must be finite");
        assert!(
            time >= self.now,
            "cannot schedule at {time} before the clock ({})",
            self.now
        );
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules `event` at `now() + delay`.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or non-finite.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "delay must be finite and non-negative"
        );
        self.schedule(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Pops the earliest event only if it fires at or before `horizon`.
    /// The clock does not advance past `horizon` on a `None`.
    pub fn pop_before(&mut self, horizon: f64) -> Option<(f64, E)> {
        if self.heap.peek().is_some_and(|s| s.time <= horizon) {
            self.pop()
        } else {
            None
        }
    }

    /// The firing time of the next event without popping it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 'c');
        q.schedule(1.0, 'a');
        q.schedule(2.0, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(5.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(1.0, ());
        q.schedule(4.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 1.0);
        q.schedule_in(0.5, ());
        assert_eq!(q.pop(), Some((1.5, ())));
        q.pop();
        assert_eq!(q.now(), 4.0);
    }

    #[test]
    fn pop_before_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 'a');
        q.schedule(5.0, 'b');
        assert_eq!(q.pop_before(2.0), Some((1.0, 'a')));
        assert_eq!(q.pop_before(2.0), None);
        assert_eq!(q.now(), 1.0, "clock must not jump past the horizon");
        assert_eq!(q.pop_before(10.0), Some((5.0, 'b')));
    }

    #[test]
    fn peek_does_not_pop() {
        let mut q = EventQueue::new();
        q.schedule(2.5, 'x');
        assert_eq!(q.peek_time(), Some(2.5));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "before the clock")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_time_rejected_at_scheduling() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_time_rejected_at_scheduling() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(f64::INFINITY, ());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_delay_rejected_at_scheduling() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule_in(f64::NAN, ());
    }

    #[test]
    fn negative_zero_time_orders_like_zero() {
        // `total_cmp` puts -0.0 before +0.0; both are valid times and must
        // pop before anything later, with insertion order preserved among
        // genuinely equal times.
        let mut q = EventQueue::new();
        q.schedule(0.0, 'a');
        q.schedule(-0.0, 'b');
        q.schedule(1.0, 'c');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['b', 'a', 'c']);
    }
}
