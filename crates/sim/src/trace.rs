//! Experiment trace recording and export.
//!
//! The figure binaries print CSV to stdout; for programmatic consumers
//! (plotting scripts, regression dashboards) [`ExperimentTrace`]
//! accumulates the same records with full metadata and serializes them to
//! JSON or CSV in one shot.
use wolt_support::json::{FromJson, Json, JsonError, ToJson};

use crate::experiment::{EpochRecord, TrialRecord};

/// A named, reproducible experiment run: configuration fingerprint plus
/// every record it produced.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExperimentTrace {
    /// Experiment identifier (e.g. "fig6a").
    pub name: String,
    /// Free-form description of the setup (knobs, seeds, calibration).
    pub setup: String,
    /// Static (seed × policy) records.
    pub trials: Vec<TrialRecord>,
    /// Dynamic per-epoch records, tagged by policy.
    pub epochs: Vec<(String, EpochRecord)>,
}

impl ExperimentTrace {
    /// New empty trace.
    pub fn new(name: impl Into<String>, setup: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            setup: setup.into(),
            trials: Vec::new(),
            epochs: Vec::new(),
        }
    }

    /// Appends static trial records.
    pub fn record_trials(&mut self, records: impl IntoIterator<Item = TrialRecord>) {
        self.trials.extend(records);
    }

    /// Appends one dynamic run's epoch records under a policy label.
    pub fn record_epochs(
        &mut self,
        policy: impl Into<String>,
        records: impl IntoIterator<Item = EpochRecord>,
    ) {
        let policy = policy.into();
        self.epochs
            .extend(records.into_iter().map(|r| (policy.clone(), r)));
    }

    /// Serializes the whole trace as pretty JSON.
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("setup", self.setup.to_json()),
            ("trials", self.trials.to_json()),
            ("epochs", self.epochs.to_json()),
        ])
        .to_pretty()
    }

    /// Parses a trace back from JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed input.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let value = Json::parse(text)?;
        Ok(Self {
            name: String::from_json(value.field("name")?)?,
            setup: String::from_json(value.field("setup")?)?,
            trials: Vec::<TrialRecord>::from_json(value.field("trials")?)?,
            epochs: Vec::<(String, EpochRecord)>::from_json(value.field("epochs")?)?,
        })
    }

    /// Renders the static trials as CSV (`seed,policy,aggregate,jain`).
    pub fn trials_csv(&self) -> String {
        let mut out = String::from("seed,policy,aggregate_mbps,jain\n");
        for t in &self.trials {
            out.push_str(&format!(
                "{},{},{:.4},{}\n",
                t.seed,
                t.policy,
                t.aggregate,
                t.jain.map_or_else(|| "".into(), |j| format!("{j:.4}")),
            ));
        }
        out
    }

    /// Renders the dynamic records as CSV.
    pub fn epochs_csv(&self) -> String {
        let mut out =
            String::from("policy,epoch,users,arrivals,departures,aggregate_mbps,reassignments\n");
        for (policy, r) in &self.epochs {
            out.push_str(&format!(
                "{},{},{},{},{},{:.4},{}\n",
                policy, r.epoch, r.users, r.arrivals, r.departures, r.aggregate, r.reassignments,
            ));
        }
        out
    }

    /// Mean aggregate of the static trials for one policy, if any exist.
    pub fn mean_aggregate(&self, policy: &str) -> Option<f64> {
        let values: Vec<f64> = self
            .trials
            .iter()
            .filter(|t| t.policy == policy)
            .map(|t| t.aggregate)
            .collect();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::run_static_trials;
    use crate::scenario::ScenarioConfig;
    use wolt_core::baselines::Rssi;
    use wolt_core::AssociationPolicy;

    fn sample_trace() -> ExperimentTrace {
        let mut trace = ExperimentTrace::new("smoke", "2 seeds, RSSI only");
        let policies: Vec<&dyn AssociationPolicy> = vec![&Rssi];
        let records =
            run_static_trials(&ScenarioConfig::enterprise(8), &policies, &[1, 2]).unwrap();
        trace.record_trials(records);
        trace
    }

    #[test]
    fn json_round_trip() {
        // Floats survive one JSON round trip only up to shortest-repr
        // rounding, so compare the canonical re-serialization.
        let trace = sample_trace();
        let back = ExperimentTrace::from_json(&trace.to_json()).unwrap();
        assert_eq!(trace.to_json(), back.to_json());
        assert_eq!(trace.trials.len(), back.trials.len());
    }

    #[test]
    fn csv_has_one_row_per_trial_plus_header() {
        let trace = sample_trace();
        let csv = trace.trials_csv();
        assert_eq!(csv.lines().count(), 1 + trace.trials.len());
        assert!(csv.starts_with("seed,policy"));
        assert!(csv.contains("RSSI"));
    }

    #[test]
    fn mean_aggregate_filters_by_policy() {
        let trace = sample_trace();
        assert!(trace.mean_aggregate("RSSI").unwrap() > 0.0);
        assert_eq!(trace.mean_aggregate("WOLT"), None);
    }

    #[test]
    fn epoch_records_round_trip() {
        use crate::dynamics::DynamicsConfig;
        use crate::experiment::{DynamicSimulation, OnlinePolicy};
        let sim = DynamicSimulation::new(ScenarioConfig::enterprise(8), DynamicsConfig::default());
        let mut trace = ExperimentTrace::new("dyn", "tiny run");
        trace.record_epochs("WOLT", sim.run(OnlinePolicy::Wolt, 2, 1).unwrap());
        assert_eq!(trace.epochs.len(), 2);
        let csv = trace.epochs_csv();
        assert_eq!(csv.lines().count(), 3);
        // One JSON round trip can perturb floats by an ULP (shortest-repr
        // re-rounding); compare structurally with tolerance.
        let back = ExperimentTrace::from_json(&trace.to_json()).unwrap();
        assert_eq!(back.epochs.len(), trace.epochs.len());
        for ((p1, r1), (p2, r2)) in trace.epochs.iter().zip(&back.epochs) {
            assert_eq!(p1, p2);
            assert_eq!(r1.epoch, r2.epoch);
            assert_eq!(r1.users, r2.users);
            assert!((r1.aggregate - r2.aggregate).abs() < 1e-9);
            match (r1.jain, r2.jain) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9),
                (a, b) => assert_eq!(a.is_some(), b.is_some()),
            }
        }
    }

    #[test]
    fn empty_trace_is_valid() {
        let trace = ExperimentTrace::default();
        assert_eq!(trace.trials_csv().lines().count(), 1);
        assert_eq!(trace.mean_aggregate("anything"), None);
    }
}
