//! Summary statistics and CDFs for experiment records.

/// Basic summary statistics of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
}

/// Summarizes a sample. Returns `None` for an empty slice or one
/// containing non-finite values.
///
/// # Example
///
/// ```
/// use wolt_sim::metrics::summarize;
///
/// let s = summarize(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
pub fn summarize(samples: &[f64]) -> Option<Summary> {
    if samples.is_empty() || samples.iter().any(|s| !s.is_finite()) {
        return None;
    }
    let count = samples.len();
    let mean = samples.iter().sum::<f64>() / count as f64;
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / count as f64;
    let mut sorted = samples.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    Some(Summary {
        count,
        mean,
        std_dev: var.sqrt(),
        min: sorted[0],
        max: sorted[count - 1],
        median: percentile_sorted(&sorted, 0.5),
    })
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample, linear interpolation.
/// Returns `None` for empty/non-finite input or `q` outside `[0, 1]`.
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() || samples.iter().any(|s| !s.is_finite()) || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    Some(percentile_sorted(&sorted, q))
}

fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Empirical CDF: sorted `(value, cumulative_probability)` points, one per
/// sample. Returns an empty vector for empty input.
///
/// # Example
///
/// ```
/// use wolt_sim::metrics::empirical_cdf;
///
/// let cdf = empirical_cdf(&[3.0, 1.0, 2.0]);
/// assert_eq!(cdf[0], (1.0, 1.0 / 3.0));
/// assert_eq!(cdf[2], (3.0, 1.0));
/// ```
pub fn empirical_cdf(samples: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let n = sorted.len() as f64;
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count, 8);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 2.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.5);
    }

    #[test]
    fn summary_of_singleton() {
        let s = summarize(&[42.0]).unwrap();
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 42.0);
    }

    #[test]
    fn summary_rejects_bad_input() {
        assert!(summarize(&[]).is_none());
        assert!(summarize(&[1.0, f64::NAN]).is_none());
        assert!(summarize(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn percentiles_interpolate() {
        let data = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&data, 0.0), Some(10.0));
        assert_eq!(percentile(&data, 1.0), Some(40.0));
        assert_eq!(percentile(&data, 0.5), Some(25.0));
        assert!((percentile(&data, 0.25).unwrap() - 17.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_rejects_bad_q() {
        assert!(percentile(&[1.0], -0.1).is_none());
        assert!(percentile(&[1.0], 1.1).is_none());
        assert!(percentile(&[], 0.5).is_none());
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let cdf = empirical_cdf(&[5.0, 1.0, 3.0, 3.0, 2.0]);
        assert_eq!(cdf.len(), 5);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }

    #[test]
    fn cdf_of_empty_is_empty() {
        assert!(empirical_cdf(&[]).is_empty());
    }
}
