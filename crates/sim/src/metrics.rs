//! Summary statistics and CDFs for experiment records.
//!
//! Every routine validates its sample up front and reports violations as
//! [`SimError::BadSample`] instead of panicking (or silently returning
//! `None`): a NaN smuggled into a throughput vector by an upstream bug
//! surfaces as a diagnosable error at the experiment layer, never as a
//! sort-comparator panic halfway through a report.

use crate::SimError;

/// Basic summary statistics of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
}

fn validate(samples: &[f64]) -> Result<(), SimError> {
    if samples.is_empty() {
        return Err(SimError::BadSample {
            context: "empty sample",
        });
    }
    if samples.iter().any(|s| !s.is_finite()) {
        return Err(SimError::BadSample {
            context: "sample contains a non-finite value",
        });
    }
    Ok(())
}

/// Summarizes a sample.
///
/// # Errors
///
/// Returns [`SimError::BadSample`] for an empty slice or one containing a
/// non-finite value.
///
/// # Example
///
/// ```
/// use wolt_sim::metrics::summarize;
///
/// # fn main() -> Result<(), wolt_sim::SimError> {
/// let s = summarize(&[1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// # Ok(())
/// # }
/// ```
pub fn summarize(samples: &[f64]) -> Result<Summary, SimError> {
    validate(samples)?;
    let count = samples.len();
    let mean = samples.iter().sum::<f64>() / count as f64;
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / count as f64;
    let mut sorted = samples.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    Ok(Summary {
        count,
        mean,
        std_dev: var.sqrt(),
        min: sorted[0],
        max: sorted[count - 1],
        median: percentile_sorted(&sorted, 0.5),
    })
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample, linear interpolation.
///
/// # Errors
///
/// Returns [`SimError::BadSample`] for empty/non-finite input or a `q`
/// outside `[0, 1]` (including NaN).
pub fn percentile(samples: &[f64], q: f64) -> Result<f64, SimError> {
    validate(samples)?;
    if !(0.0..=1.0).contains(&q) {
        return Err(SimError::BadSample {
            context: "quantile outside [0, 1]",
        });
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    Ok(percentile_sorted(&sorted, q))
}

fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Empirical CDF: sorted `(value, cumulative_probability)` points, one per
/// sample. An empty sample yields an empty vector (a CDF with no mass is
/// well-defined, unlike an empty mean).
///
/// # Errors
///
/// Returns [`SimError::BadSample`] when the sample contains a non-finite
/// value.
///
/// # Example
///
/// ```
/// use wolt_sim::metrics::empirical_cdf;
///
/// # fn main() -> Result<(), wolt_sim::SimError> {
/// let cdf = empirical_cdf(&[3.0, 1.0, 2.0])?;
/// assert_eq!(cdf[0], (1.0, 1.0 / 3.0));
/// assert_eq!(cdf[2], (3.0, 1.0));
/// # Ok(())
/// # }
/// ```
pub fn empirical_cdf(samples: &[f64]) -> Result<Vec<(f64, f64)>, SimError> {
    if samples.iter().any(|s| !s.is_finite()) {
        return Err(SimError::BadSample {
            context: "sample contains a non-finite value",
        });
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    let n = sorted.len() as f64;
    Ok(sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count, 8);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 2.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.5);
    }

    #[test]
    fn summary_of_singleton() {
        let s = summarize(&[42.0]).unwrap();
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 42.0);
    }

    #[test]
    fn nan_sample_is_an_error_not_a_panic() {
        // Regression: these used to be `Option` (losing the reason) and
        // the CDF sort would panic outright on NaN.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                summarize(&[1.0, bad]),
                Err(SimError::BadSample {
                    context: "sample contains a non-finite value"
                })
            );
            assert_eq!(
                percentile(&[1.0, bad], 0.5),
                Err(SimError::BadSample {
                    context: "sample contains a non-finite value"
                })
            );
            assert_eq!(
                empirical_cdf(&[1.0, bad]),
                Err(SimError::BadSample {
                    context: "sample contains a non-finite value"
                })
            );
        }
    }

    #[test]
    fn empty_sample_is_an_error() {
        assert!(matches!(summarize(&[]), Err(SimError::BadSample { .. })));
        assert!(matches!(
            percentile(&[], 0.5),
            Err(SimError::BadSample { .. })
        ));
    }

    #[test]
    fn percentiles_interpolate() {
        let data = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&data, 0.0), Ok(10.0));
        assert_eq!(percentile(&data, 1.0), Ok(40.0));
        assert_eq!(percentile(&data, 0.5), Ok(25.0));
        assert!((percentile(&data, 0.25).unwrap() - 17.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_rejects_bad_q() {
        assert!(percentile(&[1.0], -0.1).is_err());
        assert!(percentile(&[1.0], 1.1).is_err());
        assert!(percentile(&[1.0], f64::NAN).is_err());
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let cdf = empirical_cdf(&[5.0, 1.0, 3.0, 3.0, 2.0]).unwrap();
        assert_eq!(cdf.len(), 5);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }

    #[test]
    fn cdf_of_empty_is_empty() {
        assert!(empirical_cdf(&[]).unwrap().is_empty());
    }
}
