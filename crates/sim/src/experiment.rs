//! Experiment drivers: static seeded trials and the dynamic epoch loop.
//!
//! * [`run_static_trials`] powers the paper's Fig. 6a (100 seeded trials,
//!   CDF of aggregate throughput) and the Jain's-fairness comparison of
//!   §V-E.
//! * [`DynamicSimulation`] powers Fig. 6b/6c: a Poisson-churned population
//!   re-associated at every epoch boundary, with re-assignment counting.

use wolt_core::baselines::Rssi;
use wolt_core::{evaluate, Association, AssociationPolicy, IncrementalEvaluator, Network, Wolt};
use wolt_support::json::{FromJson, Json, JsonError, ToJson};
use wolt_support::pool;
use wolt_support::rng::{ChaCha8Rng, SeedableRng};

use crate::dynamics::{sample_epoch, DynamicsConfig};
use crate::perturb::{
    apply_link_flaps, apply_mobility, drift_capacities, sample_alive_extenders,
    CapacityDriftConfig, LinkFlapConfig, MobilityConfig, OutageConfig,
};
use crate::scenario::{Scenario, ScenarioConfig};
use crate::SimError;

/// One (seed × policy) data point of a static experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// Seed the scenario was generated from.
    pub seed: u64,
    /// Policy name.
    pub policy: String,
    /// Aggregate network throughput (Mbit/s).
    pub aggregate: f64,
    /// Jain's fairness index over per-user throughputs.
    pub jain: Option<f64>,
    /// Per-user throughputs (Mbit/s).
    pub per_user: Vec<f64>,
}

impl ToJson for TrialRecord {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seed", self.seed.to_json()),
            ("policy", self.policy.to_json()),
            ("aggregate", self.aggregate.to_json()),
            ("jain", self.jain.to_json()),
            ("per_user", self.per_user.to_json()),
        ])
    }
}

impl FromJson for TrialRecord {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            seed: u64::from_json(value.field("seed")?)?,
            policy: String::from_json(value.field("policy")?)?,
            aggregate: f64::from_json(value.field("aggregate")?)?,
            jain: Option::<f64>::from_json(value.field("jain")?)?,
            per_user: Vec::<f64>::from_json(value.field("per_user")?)?,
        })
    }
}

/// Runs each policy on freshly generated scenarios for every seed.
///
/// All policies see the *same* scenario per seed, so differences are
/// attributable to the association decisions alone.
///
/// Thread count comes from `WOLT_THREADS` or the machine's parallelism
/// (see [`wolt_support::pool::resolve_threads`]); use
/// [`run_static_trials_with_threads`] for an explicit count. Records are
/// identical at any thread count.
///
/// # Errors
///
/// Propagates scenario generation, association, and evaluation failures.
pub fn run_static_trials(
    config: &ScenarioConfig,
    policies: &[&dyn AssociationPolicy],
    seeds: &[u64],
) -> Result<Vec<TrialRecord>, SimError> {
    run_static_trials_with_threads(config, policies, seeds, pool::resolve_threads(None))
}

/// [`run_static_trials`] with an explicit worker-thread count.
///
/// Each seed is an independent trial (its own scenario and RNG stream), so
/// seeds fan out over the order-preserving [`pool::par_map`]: the record
/// vector — seeds in input order, policies in slice order within each seed
/// — is byte-identical at any `threads`, including 1.
///
/// # Errors
///
/// Propagates scenario generation, association, and evaluation failures;
/// with several failing seeds, the error reported is the earliest seed's
/// (input order), regardless of completion order.
pub fn run_static_trials_with_threads(
    config: &ScenarioConfig,
    policies: &[&dyn AssociationPolicy],
    seeds: &[u64],
    threads: usize,
) -> Result<Vec<TrialRecord>, SimError> {
    let per_seed = pool::par_map(threads, seeds, |_, &seed| -> Result<_, SimError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let scenario = Scenario::generate(config, &mut rng)?;
        let network = scenario.network()?;
        let mut records = Vec::with_capacity(policies.len());
        for policy in policies {
            let assoc = policy.associate(&network)?;
            let eval = evaluate(&network, &assoc)?;
            records.push(TrialRecord {
                seed,
                policy: policy.name().to_string(),
                aggregate: eval.aggregate.value(),
                jain: wolt_core::fairness::jain_index(&eval.per_user),
                per_user: eval.per_user.iter().map(|t| t.value()).collect(),
            });
        }
        Ok(records)
    });
    let mut records = Vec::with_capacity(policies.len() * seeds.len());
    for result in per_seed {
        records.extend(result?);
    }
    Ok(records)
}

/// The online policies of the paper's dynamic experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnlinePolicy {
    /// WOLT re-runs its full two-phase optimization at every epoch end,
    /// re-assigning existing users when beneficial.
    Wolt,
    /// Greedy assigns each user once, on arrival, and never moves anyone.
    GreedyOnline,
    /// RSSI: every user sticks with its strongest-signal extender.
    Rssi,
}

impl OnlinePolicy {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            OnlinePolicy::Wolt => "WOLT",
            OnlinePolicy::GreedyOnline => "Greedy",
            OnlinePolicy::Rssi => "RSSI",
        }
    }
}

/// One epoch of a dynamic run.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Epoch number (1-based, matching the paper's figures).
    pub epoch: usize,
    /// Resident users after this epoch's churn.
    pub users: usize,
    /// Arrivals during this epoch.
    pub arrivals: usize,
    /// Departures during this epoch.
    pub departures: usize,
    /// Aggregate throughput at epoch end (Mbit/s).
    pub aggregate: f64,
    /// Jain's fairness at epoch end.
    pub jain: Option<f64>,
    /// Users resident across the epoch boundary whose extender changed
    /// (always 0 for the never-reassigning policies, absent perturbations).
    pub reassignments: usize,
    /// Extenders down this epoch (failure injection; 0 without it).
    pub down_extenders: usize,
    /// Users who moved this epoch (mobility; 0 without it).
    pub moved_users: usize,
    /// PLC links that flapped this epoch (failure injection; 0 without
    /// it).
    pub flapped_links: usize,
}

impl ToJson for EpochRecord {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("epoch", self.epoch.to_json()),
            ("users", self.users.to_json()),
            ("arrivals", self.arrivals.to_json()),
            ("departures", self.departures.to_json()),
            ("aggregate", self.aggregate.to_json()),
            ("jain", self.jain.to_json()),
            ("reassignments", self.reassignments.to_json()),
            ("down_extenders", self.down_extenders.to_json()),
            ("moved_users", self.moved_users.to_json()),
            ("flapped_links", self.flapped_links.to_json()),
        ])
    }
}

impl FromJson for EpochRecord {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        // Perturbation counters default to zero when absent, so traces
        // written before failure injection existed still load.
        let opt_usize = |key: &str| -> Result<usize, JsonError> {
            match value.get(key) {
                Some(v) => usize::from_json(v),
                None => Ok(0),
            }
        };
        Ok(Self {
            epoch: usize::from_json(value.field("epoch")?)?,
            users: usize::from_json(value.field("users")?)?,
            arrivals: usize::from_json(value.field("arrivals")?)?,
            departures: usize::from_json(value.field("departures")?)?,
            aggregate: f64::from_json(value.field("aggregate")?)?,
            jain: Option::<f64>::from_json(value.field("jain")?)?,
            reassignments: usize::from_json(value.field("reassignments")?)?,
            down_extenders: opt_usize("down_extenders")?,
            moved_users: opt_usize("moved_users")?,
            flapped_links: opt_usize("flapped_links")?,
        })
    }
}

/// Dynamic epoch-driven simulation (Fig. 6b/6c), optionally perturbed by
/// user mobility and extender outages (failure injection beyond the
/// paper).
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicSimulation {
    /// Scenario (plane, extenders, radio) configuration. `users` is the
    /// *initial* population.
    pub scenario: ScenarioConfig,
    /// Churn configuration.
    pub dynamics: DynamicsConfig,
    /// Optional per-epoch user mobility.
    pub mobility: Option<MobilityConfig>,
    /// Optional per-epoch extender outages.
    pub outages: Option<OutageConfig>,
    /// Optional per-epoch PLC capacity drift.
    pub capacity_drift: Option<CapacityDriftConfig>,
    /// Optional per-epoch PLC link flaps (mid-epoch capacity collapse
    /// and recovery).
    pub link_flaps: Option<LinkFlapConfig>,
}

impl DynamicSimulation {
    /// Simulation with no mobility and no outages (the paper's setting).
    pub fn new(scenario: ScenarioConfig, dynamics: DynamicsConfig) -> Self {
        Self {
            scenario,
            dynamics,
            mobility: None,
            outages: None,
            capacity_drift: None,
            link_flaps: None,
        }
    }

    /// Enables per-epoch user mobility.
    pub fn with_mobility(mut self, mobility: MobilityConfig) -> Self {
        self.mobility = Some(mobility);
        self
    }

    /// Enables per-epoch extender outages.
    pub fn with_outages(mut self, outages: OutageConfig) -> Self {
        self.outages = Some(outages);
        self
    }

    /// Enables per-epoch PLC capacity drift.
    pub fn with_capacity_drift(mut self, drift: CapacityDriftConfig) -> Self {
        self.capacity_drift = Some(drift);
        self
    }

    /// Enables per-epoch PLC link flaps.
    pub fn with_link_flaps(mut self, flaps: LinkFlapConfig) -> Self {
        self.link_flaps = Some(flaps);
        self
    }

    /// Runs `epochs` epochs under `policy`, returning one record per
    /// epoch.
    ///
    /// Epoch 1 is the initial population already associated (as in the
    /// paper's Fig. 6b, which starts at |U| = 36); churn applies from
    /// epoch 2 on.
    ///
    /// # Errors
    ///
    /// Propagates scenario/association/evaluation failures.
    pub fn run(
        &self,
        policy: OnlinePolicy,
        epochs: usize,
        seed: u64,
    ) -> Result<Vec<EpochRecord>, SimError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut scenario = Scenario::generate(&self.scenario, &mut rng)?;
        let nominal_capacities = scenario.capacities.clone();

        // Stable user identities across epochs (positions vector order
        // changes as users depart).
        let mut next_id: u64 = scenario.user_positions.len() as u64;
        let mut ids: Vec<u64> = (0..next_id).collect();
        // Current association by position index (parallel to ids).
        let mut targets: Vec<Option<usize>> = vec![None; ids.len()];

        let mut records = Vec::with_capacity(epochs);
        for epoch in 1..=epochs {
            let (arrivals, departures, moved_users) = if epoch == 1 {
                (0usize, 0usize, 0usize)
            } else {
                let churn = sample_epoch(&self.dynamics, ids.len(), &mut rng)?;
                for &idx in &churn.departures {
                    scenario.remove_user(idx);
                    ids.remove(idx);
                    targets.remove(idx);
                }
                for _ in 0..churn.arrivals {
                    let p = scenario.sample_arrival(&self.scenario, &mut rng);
                    scenario.push_user(p);
                    ids.push(next_id);
                    next_id += 1;
                    targets.push(None);
                }
                let moved = match &self.mobility {
                    Some(m) => apply_mobility(&mut scenario, m, &self.scenario, &mut rng)?,
                    None => 0,
                };
                (churn.arrivals, churn.departures.len(), moved)
            };
            if let (Some(drift), true) = (&self.capacity_drift, epoch > 1) {
                scenario.capacities = drift_capacities(&nominal_capacities, drift, &mut rng)?;
            }
            let flapped_links = match (&self.link_flaps, epoch > 1) {
                (Some(flaps), true) => {
                    // Flaps modulate this epoch's (possibly drifted)
                    // capacities; without drift, start from nominal so a
                    // link's degradation never compounds across epochs.
                    let base = if self.capacity_drift.is_some() {
                        scenario.capacities.clone()
                    } else {
                        nominal_capacities.clone()
                    };
                    let (caps, flapped) = apply_link_flaps(&base, flaps, &mut rng)?;
                    scenario.capacities = caps;
                    flapped
                }
                _ => 0,
            };
            let all_extenders = scenario.extender_positions.len();
            let alive: Vec<usize> = match (&self.outages, epoch) {
                (Some(cfg), e) if e > 1 => sample_alive_extenders(&scenario, cfg, &mut rng)?,
                _ => (0..all_extenders).collect(),
            };
            let down_extenders = all_extenders - alive.len();

            // A heavily-departing network can empty out entirely; record a
            // zero epoch rather than failing.
            if ids.is_empty() {
                records.push(EpochRecord {
                    epoch,
                    users: 0,
                    arrivals,
                    departures,
                    aggregate: 0.0,
                    jain: None,
                    reassignments: 0,
                    down_extenders,
                    moved_users,
                    flapped_links,
                });
                continue;
            }

            let network = scenario.network_for_extenders(&alive)?;
            let previous: Vec<(u64, Option<usize>)> =
                ids.iter().copied().zip(targets.iter().copied()).collect();

            // Translate current targets (original extender indices) into
            // the alive-extender view; users on a dead extender become
            // unassigned and must be re-placed.
            let view_of: std::collections::HashMap<usize, usize> = alive
                .iter()
                .enumerate()
                .map(|(view, &orig)| (orig, view))
                .collect();
            let view_targets: Vec<Option<usize>> = targets
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    t.and_then(|orig| view_of.get(&orig).copied())
                        // Mobility can carry a user out of range of its
                        // old extender; it must then be re-placed.
                        .filter(|&view| network.reachable(i, view))
                })
                .collect();

            let assoc = self.associate_epoch(policy, &network, &view_targets)?;
            targets = assoc.iter().map(|t| t.map(|view| alive[view])).collect();

            // Re-assignments: users resident before and after the epoch
            // whose extender changed (new arrivals had no prior target).
            let reassignments = previous
                .iter()
                .zip(&targets)
                .filter(|((_, old), new)| old.is_some() && new.is_some() && old != *new)
                .count();

            let eval = evaluate(&network, &assoc).map_err(SimError::from)?;
            records.push(EpochRecord {
                epoch,
                users: ids.len(),
                arrivals,
                departures,
                aggregate: eval.aggregate.value(),
                jain: wolt_core::fairness::jain_index(&eval.per_user),
                reassignments,
                down_extenders,
                moved_users,
                flapped_links,
            });
        }
        Ok(records)
    }

    /// Epoch-boundary association under the chosen online policy.
    fn associate_epoch(
        &self,
        policy: OnlinePolicy,
        network: &Network,
        current: &[Option<usize>],
    ) -> Result<Association, SimError> {
        match policy {
            // WOLT and RSSI recompute from scratch (RSSI's result is
            // per-user stable, so recomputing never moves anyone).
            OnlinePolicy::Wolt => Ok(Wolt::new().associate(network)?),
            OnlinePolicy::Rssi => Ok(Rssi.associate(network)?),
            OnlinePolicy::GreedyOnline => {
                // Existing users keep their extender; new arrivals are
                // placed one at a time by greedy aggregate maximization,
                // each candidate scored by an incremental probe instead of
                // a full clone-and-evaluate.
                let assoc = Association::from_targets(current.to_vec());
                let arrivals: Vec<usize> = assoc.unassigned_users();
                if arrivals.is_empty() {
                    return Ok(assoc);
                }
                let mut evaluator = IncrementalEvaluator::new(network, &assoc)?;
                for i in arrivals {
                    let mut best: Option<(usize, f64)> = None;
                    for j in network.reachable_extenders(i) {
                        let Ok(value) = evaluator.probe_move(i, Some(j)) else {
                            continue; // full cell — not a candidate
                        };
                        let v = value.value();
                        if best.is_none_or(|(_, b)| v > b) {
                            best = Some((j, v));
                        }
                    }
                    let (j, _) = best.ok_or(SimError::Layer {
                        context: format!("greedy: user {i} has no feasible extender"),
                    })?;
                    evaluator.apply_move(i, Some(j))?;
                }
                Ok(evaluator.into_association())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use wolt_core::baselines::Greedy;

    fn small_dynamic() -> DynamicSimulation {
        DynamicSimulation::new(
            ScenarioConfig::enterprise(12),
            DynamicsConfig {
                arrival_rate: 3.0,
                departure_rate: 1.0,
                epoch_length: 3.0,
            },
        )
    }

    #[test]
    fn static_trials_produce_one_record_per_seed_policy() {
        let cfg = ScenarioConfig::enterprise(10);
        let greedy = Greedy::new();
        let policies: Vec<&dyn AssociationPolicy> = vec![&Rssi, &greedy];
        let records = run_static_trials(&cfg, &policies, &[1, 2, 3]).unwrap();
        assert_eq!(records.len(), 6);
        assert!(records.iter().all(|r| r.aggregate > 0.0));
        assert!(records.iter().all(|r| r.per_user.len() == 10));
    }

    #[test]
    fn static_trials_thread_count_invariant() {
        // The acceptance contract: records (floats included) identical at
        // any worker-thread count.
        let cfg = ScenarioConfig::enterprise(10);
        let wolt = Wolt::new();
        let greedy = Greedy::new();
        let policies: Vec<&dyn AssociationPolicy> = vec![&wolt, &Rssi, &greedy];
        let seeds: Vec<u64> = (0..6).collect();
        let seq = run_static_trials_with_threads(&cfg, &policies, &seeds, 1).unwrap();
        for threads in [2, 8] {
            let par = run_static_trials_with_threads(&cfg, &policies, &seeds, threads).unwrap();
            assert_eq!(par, seq, "threads={threads} changed trial records");
        }
    }

    #[test]
    fn static_trials_same_seed_same_scenario() {
        let cfg = ScenarioConfig::enterprise(8);
        let policies: Vec<&dyn AssociationPolicy> = vec![&Rssi];
        let a = run_static_trials(&cfg, &policies, &[42]).unwrap();
        let b = run_static_trials(&cfg, &policies, &[42]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn wolt_beats_rssi_on_average() {
        let cfg = ScenarioConfig::enterprise(20);
        let wolt = Wolt::new();
        let policies: Vec<&dyn AssociationPolicy> = vec![&wolt, &Rssi];
        let seeds: Vec<u64> = (0..8).collect();
        let records = run_static_trials(&cfg, &policies, &seeds).unwrap();
        let mean = |name: &str| {
            let vals: Vec<f64> = records
                .iter()
                .filter(|r| r.policy == name)
                .map(|r| r.aggregate)
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(
            mean("WOLT") > mean("RSSI"),
            "WOLT {} vs RSSI {}",
            mean("WOLT"),
            mean("RSSI")
        );
    }

    #[test]
    fn dynamic_run_produces_epoch_records() {
        let sim = small_dynamic();
        let records = sim.run(OnlinePolicy::Wolt, 3, 5).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].epoch, 1);
        assert_eq!(records[0].arrivals, 0);
        assert_eq!(records[0].reassignments, 0);
        assert!(records.iter().all(|r| r.aggregate > 0.0));
    }

    #[test]
    fn dynamic_population_grows_with_positive_drift() {
        let sim = small_dynamic();
        let records = sim.run(OnlinePolicy::Rssi, 4, 11).unwrap();
        assert!(
            records.last().unwrap().users > records[0].users,
            "population did not grow: {records:?}"
        );
    }

    #[test]
    fn greedy_online_never_reassigns() {
        let sim = small_dynamic();
        let records = sim.run(OnlinePolicy::GreedyOnline, 4, 9).unwrap();
        assert!(records.iter().all(|r| r.reassignments == 0));
    }

    #[test]
    fn rssi_never_reassigns() {
        let sim = small_dynamic();
        let records = sim.run(OnlinePolicy::Rssi, 4, 9).unwrap();
        assert!(records.iter().all(|r| r.reassignments == 0));
    }

    #[test]
    fn dynamic_deterministic_per_seed() {
        let sim = small_dynamic();
        let a = sim.run(OnlinePolicy::GreedyOnline, 3, 21).unwrap();
        let b = sim.run(OnlinePolicy::GreedyOnline, 3, 21).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn policy_names_match_paper() {
        assert_eq!(OnlinePolicy::Wolt.name(), "WOLT");
        assert_eq!(OnlinePolicy::GreedyOnline.name(), "Greedy");
        assert_eq!(OnlinePolicy::Rssi.name(), "RSSI");
    }

    #[test]
    fn link_flaps_are_counted_and_deterministic() {
        let sim = small_dynamic().with_link_flaps(LinkFlapConfig {
            probability: 0.6,
            degraded_fraction: 0.2,
            max_dwell: 0.8,
        });
        let a = sim.run(OnlinePolicy::Wolt, 5, 17).unwrap();
        let b = sim.run(OnlinePolicy::Wolt, 5, 17).unwrap();
        assert_eq!(a, b);
        assert_eq!(a[0].flapped_links, 0, "epoch 1 is unperturbed");
        assert!(
            a.iter().any(|r| r.flapped_links > 0),
            "no link ever flapped at p=0.6: {a:?}"
        );
        assert!(a.iter().all(|r| r.aggregate > 0.0));
    }

    #[test]
    fn link_flaps_never_compound_across_epochs() {
        // Without drift, every epoch restarts from nominal capacities:
        // even at p=1 with a deep collapse, the effective capacity stays
        // within one flap of nominal instead of decaying to the floor.
        let sim = small_dynamic().with_link_flaps(LinkFlapConfig {
            probability: 1.0,
            degraded_fraction: 0.5,
            max_dwell: 0.5,
        });
        let clean = small_dynamic();
        let flapped = sim.run(OnlinePolicy::Rssi, 6, 23).unwrap();
        let baseline = clean.run(OnlinePolicy::Rssi, 6, 23).unwrap();
        for (f, b) in flapped.iter().zip(&baseline) {
            // One flap removes at most dwell·(1-fraction) = 25% of any
            // link; PLC redistribution makes the aggregate effect even
            // smaller. Compounding would push this toward the 5% floor.
            assert!(
                f.aggregate > 0.5 * b.aggregate,
                "epoch {}: flapped {} vs baseline {}",
                f.epoch,
                f.aggregate,
                b.aggregate
            );
        }
    }

    #[test]
    fn epoch_record_json_roundtrip_and_legacy_default() {
        let record = EpochRecord {
            epoch: 3,
            users: 9,
            arrivals: 2,
            departures: 1,
            aggregate: 123.5,
            jain: Some(0.9),
            reassignments: 4,
            down_extenders: 1,
            moved_users: 2,
            flapped_links: 3,
        };
        let json = record.to_json();
        assert_eq!(EpochRecord::from_json(&json).unwrap(), record);
        // Traces written before link flaps existed must still load.
        let legacy = Json::obj(vec![
            ("epoch", 1usize.to_json()),
            ("users", 5usize.to_json()),
            ("arrivals", 0usize.to_json()),
            ("departures", 0usize.to_json()),
            ("aggregate", 50.0f64.to_json()),
            ("jain", Option::<f64>::None.to_json()),
            ("reassignments", 0usize.to_json()),
        ]);
        let parsed = EpochRecord::from_json(&legacy).unwrap();
        assert_eq!(parsed.flapped_links, 0);
        assert_eq!(parsed.down_extenders, 0);
    }
}
