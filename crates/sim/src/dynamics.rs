//! Poisson user arrival/departure dynamics.
//!
//! The paper's online experiments (§V-A, Fig. 6b/6c) drive the network
//! with "user association requests arriv\[ing\] and depart\[ing\] the network
//! according to Poisson distribution with arrival rate of 3 and departure
//! rate of 1", growing the population 36 → 66 → 102 across epochs (a net
//! of ≈ +33 users per epoch). We model a birth–death process: arrivals are
//! a Poisson process of rate `λ = 3` per time unit, departures of rate
//! `μ = 1` per time unit (each removing a uniformly random resident), and
//! an epoch spans enough time units for the net drift `(λ − μ) ·
//! epoch_length` to match the paper's ≈ 33.

use wolt_support::rng::Rng;

use crate::SimError;

/// Birth–death configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicsConfig {
    /// Poisson arrival rate λ (users per time unit).
    pub arrival_rate: f64,
    /// Poisson departure rate μ (departures per time unit; no-ops when the
    /// network is empty).
    pub departure_rate: f64,
    /// Time units per epoch.
    pub epoch_length: f64,
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        // λ=3, μ=1 as in the paper; 16.5 time units/epoch nets ≈ +33
        // users, reproducing the 36 → 66 → 102 trajectory of Fig. 6b.
        Self {
            arrival_rate: 3.0,
            departure_rate: 1.0,
            epoch_length: 16.5,
        }
    }
}

impl DynamicsConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for negative/non-finite rates
    /// or a non-positive epoch length.
    pub fn validate(&self) -> Result<(), SimError> {
        if !(self.arrival_rate.is_finite() && self.arrival_rate >= 0.0) {
            return Err(SimError::InvalidConfig {
                context: "arrival rate must be finite and non-negative",
            });
        }
        if !(self.departure_rate.is_finite() && self.departure_rate >= 0.0) {
            return Err(SimError::InvalidConfig {
                context: "departure rate must be finite and non-negative",
            });
        }
        if !(self.epoch_length.is_finite() && self.epoch_length > 0.0) {
            return Err(SimError::InvalidConfig {
                context: "epoch length must be finite and positive",
            });
        }
        Ok(())
    }

    /// Expected net population change per epoch: `(λ − μ) · epoch_length`.
    pub fn expected_drift(&self) -> f64 {
        (self.arrival_rate - self.departure_rate) * self.epoch_length
    }
}

/// The churn of one epoch: how many users arrive and which residents
/// leave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochChurn {
    /// Number of new arrivals this epoch.
    pub arrivals: usize,
    /// Indices (into the resident list *at epoch start*) of departing
    /// users, strictly decreasing so they can be removed in order.
    pub departures: Vec<usize>,
}

/// The two event types of the birth–death process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChurnEvent {
    Arrival,
    Departure,
}

/// Samples one epoch of churn for a population of `residents` users by
/// running the continuous-time birth–death process on the discrete-event
/// queue: arrival events fire as a Poisson process of rate λ, departure
/// events of rate μ (each removing a uniformly random remaining
/// epoch-start resident; events hitting an empty pool are dropped —
/// intra-epoch arrivals stay at least until the next boundary, where the
/// paper re-associates anyway).
///
/// Departure indices refer to the epoch-start resident list and are
/// returned in strictly decreasing order so they can be removed in order.
///
/// # Errors
///
/// Propagates [`DynamicsConfig::validate`].
pub fn sample_epoch<R: Rng + ?Sized>(
    config: &DynamicsConfig,
    residents: usize,
    rng: &mut R,
) -> Result<EpochChurn, SimError> {
    config.validate()?;

    let mut queue: crate::events::EventQueue<ChurnEvent> = crate::events::EventQueue::new();
    let exponential = |rng: &mut R, rate: f64| -> Option<f64> {
        if rate <= 0.0 {
            return None;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        Some(-u.ln() / rate)
    };
    if let Some(dt) = exponential(rng, config.arrival_rate) {
        queue.schedule(dt.min(config.epoch_length + 1.0), ChurnEvent::Arrival);
    }
    if let Some(dt) = exponential(rng, config.departure_rate) {
        queue.schedule(dt.min(config.epoch_length + 1.0), ChurnEvent::Departure);
    }

    let mut arrivals = 0usize;
    let mut pool: Vec<usize> = (0..residents).collect();
    let mut departures = Vec::new();
    while let Some((_, event)) = queue.pop_before(config.epoch_length) {
        match event {
            ChurnEvent::Arrival => {
                arrivals += 1;
                if let Some(dt) = exponential(rng, config.arrival_rate) {
                    queue.schedule_in(dt, ChurnEvent::Arrival);
                }
            }
            ChurnEvent::Departure => {
                if !pool.is_empty() {
                    let k = rng.gen_range(0..pool.len());
                    departures.push(pool.swap_remove(k));
                }
                if let Some(dt) = exponential(rng, config.departure_rate) {
                    queue.schedule_in(dt, ChurnEvent::Departure);
                }
            }
        }
    }
    departures.sort_unstable_by(|a, b| b.cmp(a));

    Ok(EpochChurn {
        arrivals,
        departures,
    })
}

/// Knuth's Poisson sampler — fine for λ up to a few hundred, which covers
/// an epoch's λ·T ≈ 50. The event-driven [`sample_epoch`] generates its
/// counts from exponential inter-event times instead; this closed-form
/// sampler remains public for batch uses (and anchors the statistical
/// tests below).
pub fn poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen_range(0.0..1.0);
        if p <= l {
            return k;
        }
        k += 1;
        // Numerical guard: for the λ values we use this never triggers.
        if k > 100_000 {
            return k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolt_support::rng::ChaCha8Rng;
    use wolt_support::rng::SeedableRng;

    #[test]
    fn default_matches_paper_trajectory() {
        let cfg = DynamicsConfig::default();
        assert_eq!(cfg.arrival_rate, 3.0);
        assert_eq!(cfg.departure_rate, 1.0);
        assert!((cfg.expected_drift() - 33.0).abs() < 0.1);
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 20_000;
        for lambda in [0.5, 3.0, 20.0, 50.0] {
            let mean: f64 = (0..n)
                .map(|_| poisson(lambda, &mut rng) as f64)
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - lambda).abs() / lambda < 0.05,
                "lambda {lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn poisson_variance_matches_lambda() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let n = 20_000;
        let lambda = 10.0;
        let samples: Vec<f64> = (0..n).map(|_| poisson(lambda, &mut rng) as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((var - lambda).abs() / lambda < 0.1, "variance {var}");
    }

    #[test]
    fn zero_lambda_yields_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        assert_eq!(poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn churn_grows_population_like_the_paper() {
        let cfg = DynamicsConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(2020);
        let trials = 300;
        let mut total_growth = 0i64;
        for _ in 0..trials {
            let churn = sample_epoch(&cfg, 36, &mut rng).unwrap();
            total_growth += churn.arrivals as i64 - churn.departures.len() as i64;
        }
        let mean_growth = total_growth as f64 / trials as f64;
        assert!(
            (mean_growth - 33.0).abs() < 2.0,
            "mean epoch growth {mean_growth}"
        );
    }

    #[test]
    fn departures_are_unique_valid_and_decreasing() {
        let cfg = DynamicsConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for residents in [0usize, 1, 5, 40] {
            let churn = sample_epoch(&cfg, residents, &mut rng).unwrap();
            let mut seen = std::collections::BTreeSet::new();
            let mut prev = usize::MAX;
            for &d in &churn.departures {
                assert!(d < residents, "departure index {d} out of range");
                assert!(seen.insert(d), "duplicate departure {d}");
                assert!(d < prev, "departures not strictly decreasing");
                prev = d;
            }
            assert!(churn.departures.len() <= residents);
        }
    }

    #[test]
    fn empty_network_survives_departure_events() {
        let cfg = DynamicsConfig {
            arrival_rate: 0.0,
            departure_rate: 10.0,
            epoch_length: 5.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let churn = sample_epoch(&cfg, 0, &mut rng).unwrap();
        assert_eq!(churn.arrivals, 0);
        assert!(churn.departures.is_empty());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let bad_arrival = DynamicsConfig {
            arrival_rate: -1.0,
            ..DynamicsConfig::default()
        };
        assert!(bad_arrival.validate().is_err());
        let bad_departure = DynamicsConfig {
            departure_rate: f64::NAN,
            ..DynamicsConfig::default()
        };
        assert!(bad_departure.validate().is_err());
        let bad_epoch = DynamicsConfig {
            epoch_length: 0.0,
            ..DynamicsConfig::default()
        };
        assert!(bad_epoch.validate().is_err());
    }
}
