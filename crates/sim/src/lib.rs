//! Discrete-event enterprise network simulator for WOLT.
//!
//! Reproduces the paper's simulation methodology (§V-A, §V-E):
//!
//! * [`scenario`] — the 100 m × 100 m enterprise floor with 15 extenders,
//!   building-calibrated PLC capacities, and distance-derived WiFi rates
//!   (plus the 2408 m² lab configuration used to mirror the testbed).
//! * [`dynamics`] — Poisson user arrivals (λ = 3) and departures (μ = 1),
//!   scaled so each epoch nets ≈ +33 users (the paper's 36 → 66 → 102
//!   trajectory).
//! * [`experiment`] — seeded static trials (Fig. 6a's CDF, the §V-E
//!   fairness numbers) and the dynamic epoch loop with re-assignment
//!   accounting (Fig. 6b/6c).
//! * [`metrics`] — summaries, percentiles, and empirical CDFs.
//!
//! # Example
//!
//! Compare WOLT against the greedy baseline on one seeded enterprise
//! scenario:
//!
//! ```
//! use wolt_core::{baselines::Greedy, AssociationPolicy, Wolt};
//! use wolt_sim::experiment::run_static_trials;
//! use wolt_sim::scenario::ScenarioConfig;
//!
//! # fn main() -> Result<(), wolt_sim::SimError> {
//! let config = ScenarioConfig::enterprise(24);
//! let wolt = Wolt::new();
//! let greedy = Greedy::new();
//! let policies: Vec<&dyn AssociationPolicy> = vec![&wolt, &greedy];
//! let records = run_static_trials(&config, &policies, &[7])?;
//! assert_eq!(records.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamics;
pub mod events;
pub mod experiment;
pub mod flowsim;
pub mod metrics;
pub mod perturb;
pub mod scenario;
pub mod trace;

mod error;

pub use error::SimError;
pub use experiment::{DynamicSimulation, EpochRecord, OnlinePolicy, TrialRecord};
pub use scenario::{Scenario, ScenarioConfig};
