//! Flow-level queueing simulator: the physical two-hop pipeline.
//!
//! The analytic [`wolt_core::evaluate`] computes steady-state throughputs
//! directly from the sharing laws. This module *earns* those numbers: it
//! simulates the actual downlink pipeline over time —
//!
//! ```text
//! CC ──(PLC, time-fair airtime)──► extender queue ──(WiFi, throughput-fair)──► user
//! ```
//!
//! — with finite per-user queues at each extender, time-stepped service on
//! both hops, and saturated sources (the paper's iperf traffic). Back-
//! pressure emerges naturally: when a cell's WiFi side cannot drain what
//! the PLC side delivers, the extender's queues fill, the PLC stops
//! pushing (its demand is the queues' free space), and the freed airtime
//! flows to other extenders — exactly the redistribution the paper
//! measured in Fig. 3c. The long-run per-user throughputs converge to the
//! analytic model, which is the fidelity check `fig4c`-style arguments
//! rest on.

use wolt_core::{Association, Network};
use wolt_plc::timeshare::{allocate_time_fair, ExtenderDemand};
use wolt_units::{Mbps, Seconds};

use crate::SimError;

/// Flow-simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSimConfig {
    /// Tick length (seconds of simulated time).
    pub tick: Seconds,
    /// Total simulated duration, including warmup.
    pub duration: Seconds,
    /// Initial fraction of the duration discarded as warmup.
    pub warmup_fraction: f64,
    /// Per-user queue capacity at the extender, in bits.
    pub queue_bits: f64,
}

impl Default for FlowSimConfig {
    fn default() -> Self {
        Self {
            tick: Seconds::new(0.005),
            duration: Seconds::new(8.0),
            warmup_fraction: 0.25,
            queue_bits: 4.0 * 1500.0 * 8.0 * 20.0, // ~80 full-size frames
        }
    }
}

impl FlowSimConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for non-positive durations, a
    /// warmup fraction outside `[0, 1)`, or a non-positive queue size.
    pub fn validate(&self) -> Result<(), SimError> {
        if !(self.tick.value() > 0.0 && self.tick.value().is_finite()) {
            return Err(SimError::InvalidConfig {
                context: "tick must be finite and positive",
            });
        }
        if self.duration.value().partial_cmp(&self.tick.value())
            != Some(std::cmp::Ordering::Greater)
        {
            return Err(SimError::InvalidConfig {
                context: "duration must exceed one tick",
            });
        }
        if !(self.warmup_fraction.is_finite() && (0.0..1.0).contains(&self.warmup_fraction)) {
            return Err(SimError::InvalidConfig {
                context: "warmup fraction must be in [0, 1)",
            });
        }
        if !(self.queue_bits.is_finite() && self.queue_bits > 0.0) {
            return Err(SimError::InvalidConfig {
                context: "queue size must be finite and positive",
            });
        }
        Ok(())
    }
}

/// Measured outcome of a flow simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSimOutcome {
    /// Long-run per-user goodput (bits delivered to the user / measured
    /// time), zero for unassigned users.
    pub per_user: Vec<Mbps>,
    /// Sum of per-user goodputs.
    pub aggregate: Mbps,
    /// Peak queue occupancy observed per user, as a fraction of capacity.
    pub peak_queue_fill: Vec<f64>,
    /// Number of ticks simulated after warmup.
    pub measured_ticks: usize,
}

/// Runs the two-hop queueing simulation for a (possibly partial)
/// association.
///
/// # Errors
///
/// Propagates association-validation failures and config errors.
pub fn simulate_flows(
    net: &Network,
    assoc: &Association,
    config: &FlowSimConfig,
) -> Result<FlowSimOutcome, SimError> {
    config.validate()?;
    net.validate_association(assoc).map_err(SimError::from)?;

    let n_users = net.users();
    let n_ext = net.extenders();
    let dt = config.tick.value();

    // Members and rates per extender.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_ext];
    for (i, t) in assoc.iter().enumerate() {
        if let Some(j) = t {
            members[j].push(i);
        }
    }
    let rate = |i: usize, j: usize| net.rate(i, j).expect("validated").value();

    // Per-user queue at the serving extender, in bits.
    let mut queue = vec![0.0f64; n_users];
    let mut delivered = vec![0.0f64; n_users];
    let mut peak_fill = vec![0.0f64; n_users];

    let total_ticks = (config.duration.value() / dt).floor() as usize;
    let warmup_ticks = (total_ticks as f64 * config.warmup_fraction).floor() as usize;
    let mut measured_ticks = 0usize;

    for tick_idx in 0..total_ticks {
        // ---- PLC hop: push bits from the CC toward the extenders.
        // Each extender's instantaneous demand is the rate at which its
        // queues can absorb data this tick.
        let entries: Vec<ExtenderDemand> = (0..n_ext)
            .map(|j| {
                let free_bits: f64 = members[j]
                    .iter()
                    .map(|&i| config.queue_bits - queue[i])
                    .sum();
                ExtenderDemand {
                    capacity: net.capacity(j),
                    // Mbit/s of absorption this tick.
                    demand: Mbps::new((free_bits / dt / 1e6).max(0.0)),
                }
            })
            .collect();
        let alloc = allocate_time_fair(&entries).map_err(SimError::from)?;
        #[allow(clippy::needless_range_loop)]
        // members/entries/alloc are parallel per-extender arrays
        for j in 0..n_ext {
            let inflow_bits = alloc.throughput[j].value() * 1e6 * dt;
            if inflow_bits <= 0.0 || members[j].is_empty() {
                continue;
            }
            // Split the inflow across the extender's users in proportion
            // to their free queue space (the CC serves flows fairly and
            // back-pressure throttles the full ones).
            let free: Vec<f64> = members[j]
                .iter()
                .map(|&i| (config.queue_bits - queue[i]).max(0.0))
                .collect();
            let free_total: f64 = free.iter().sum();
            if free_total <= 0.0 {
                continue;
            }
            for (slot, &i) in members[j].iter().enumerate() {
                let share = inflow_bits * free[slot] / free_total;
                queue[i] = (queue[i] + share).min(config.queue_bits);
            }
        }

        // ---- WiFi hop: each cell drains its queues throughput-fairly.
        #[allow(clippy::needless_range_loop)]
        // members/entries/alloc are parallel per-extender arrays
        for j in 0..n_ext {
            if members[j].is_empty() {
                continue;
            }
            let drained = fair_cell_drain(
                &members[j]
                    .iter()
                    .map(|&i| (queue[i], rate(i, j)))
                    .collect::<Vec<_>>(),
                dt,
            );
            for (slot, &i) in members[j].iter().enumerate() {
                queue[i] -= drained[slot];
                if tick_idx >= warmup_ticks {
                    delivered[i] += drained[slot];
                }
            }
        }

        if tick_idx >= warmup_ticks {
            measured_ticks += 1;
        }
        for i in 0..n_users {
            peak_fill[i] = peak_fill[i].max(queue[i] / config.queue_bits);
        }
    }

    let measured_s = measured_ticks as f64 * dt;
    let per_user: Vec<Mbps> = delivered
        .iter()
        .map(|&bits| {
            Mbps::new(if measured_s > 0.0 {
                bits / 1e6 / measured_s
            } else {
                0.0
            })
        })
        .collect();
    let aggregate = per_user.iter().copied().sum();

    Ok(FlowSimOutcome {
        per_user,
        aggregate,
        peak_queue_fill: peak_fill,
        measured_ticks,
    })
}

/// Throughput-fair drain of one WiFi cell for one tick.
///
/// `queues[k] = (backlog_bits, rate_mbps)` for each member. All backlogged
/// members receive the same drained volume unless their queue runs dry, in
/// which case the freed airtime raises the equal share of the rest
/// (water-filling over the cell's airtime budget of one tick).
fn fair_cell_drain(queues: &[(f64, f64)], dt: f64) -> Vec<f64> {
    let n = queues.len();
    let mut drained = vec![0.0f64; n];
    let mut airtime = dt; // seconds of cell airtime left this tick
    let mut active: Vec<usize> = (0..n).filter(|&k| queues[k].0 > 0.0).collect();

    while !active.is_empty() && airtime > 1e-15 {
        // Equal-throughput rate achievable with the remaining airtime:
        // each active user gets x bits where Σ x / r_k = airtime.
        let inv_sum: f64 = active.iter().map(|&k| 1.0 / (queues[k].1 * 1e6)).sum();
        let x = airtime / inv_sum; // bits per active user
                                   // Users whose remaining backlog is below x finish early.
        let finishing: Vec<usize> = active
            .iter()
            .copied()
            .filter(|&k| queues[k].0 - drained[k] <= x)
            .collect();
        if finishing.is_empty() {
            for &k in &active {
                drained[k] += x;
            }
            break;
        }
        // Serve the finishing users to empty, charge their airtime, and
        // re-run with the survivors.
        for &k in &finishing {
            let remaining = queues[k].0 - drained[k];
            drained[k] = queues[k].0;
            airtime -= remaining / (queues[k].1 * 1e6);
        }
        active.retain(|k| !finishing.contains(k));
    }
    drained
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolt_core::evaluate;

    fn fig3_network() -> Network {
        Network::from_raw(vec![60.0, 20.0], vec![vec![15.0, 10.0], vec![40.0, 20.0]]).unwrap()
    }

    fn run(net: &Network, assoc: &Association) -> FlowSimOutcome {
        simulate_flows(net, assoc, &FlowSimConfig::default()).unwrap()
    }

    fn assert_matches_analytic(net: &Network, assoc: &Association, tol: f64) {
        let analytic = evaluate(net, assoc).unwrap();
        let flows = run(net, assoc);
        for i in 0..net.users() {
            let a = analytic.per_user[i].value();
            let f = flows.per_user[i].value();
            let err = (a - f).abs() / a.max(1e-9);
            assert!(
                err < tol || (a < 1e-9 && f < 1e-9),
                "user {i}: analytic {a} vs flow {f}"
            );
        }
    }

    #[test]
    fn fig3_optimal_association_converges_to_40() {
        let net = fig3_network();
        let assoc = Association::complete(vec![1, 0]);
        let flows = run(&net, &assoc);
        assert!(
            (flows.aggregate.value() - 40.0).abs() < 1.5,
            "aggregate {}",
            flows.aggregate
        );
        assert_matches_analytic(&net, &assoc, 0.05);
    }

    #[test]
    fn fig3_greedy_association_reproduces_redistribution() {
        // The queue back-pressure must reproduce the 15 + 15 split that
        // the paper measured on hardware (Fig. 3c).
        let net = fig3_network();
        let assoc = Association::complete(vec![0, 1]);
        let flows = run(&net, &assoc);
        assert!(
            (flows.per_user[0].value() - 15.0).abs() < 1.0,
            "user 1: {}",
            flows.per_user[0]
        );
        assert!(
            (flows.per_user[1].value() - 15.0).abs() < 1.0,
            "user 2: {}",
            flows.per_user[1]
        );
    }

    #[test]
    fn fig3_rssi_association_reproduces_wifi_fair_split() {
        let net = fig3_network();
        let assoc = Association::complete(vec![0, 0]);
        assert_matches_analytic(&net, &assoc, 0.05);
    }

    #[test]
    fn matches_analytic_on_a_larger_network() {
        let net = Network::from_raw(
            vec![100.0, 50.0, 70.0],
            vec![
                vec![20.0, 5.0, 8.0],
                vec![30.0, 12.0, 9.0],
                vec![6.0, 25.0, 14.0],
                vec![11.0, 7.0, 40.0],
                vec![18.0, 9.0, 22.0],
            ],
        )
        .unwrap();
        let assoc = Association::complete(vec![0, 0, 1, 2, 2]);
        assert_matches_analytic(&net, &assoc, 0.06);
    }

    #[test]
    fn unassigned_users_receive_nothing() {
        let net = fig3_network();
        let assoc = Association::from_targets(vec![Some(0), None]);
        let flows = run(&net, &assoc);
        assert_eq!(flows.per_user[1], Mbps::ZERO);
        assert!(flows.per_user[0].value() > 10.0);
    }

    #[test]
    fn queues_fill_when_plc_outruns_wifi() {
        // Extender with a fat PLC link but a slow WiFi user: the queue
        // must hit (near) capacity and stay bounded.
        let net = Network::from_raw(vec![200.0], vec![vec![5.0]]).unwrap();
        let assoc = Association::complete(vec![0]);
        let flows = run(&net, &assoc);
        assert!(flows.peak_queue_fill[0] > 0.9, "queue never filled");
        // Goodput equals the WiFi bottleneck.
        assert!((flows.per_user[0].value() - 5.0).abs() < 0.3);
    }

    #[test]
    fn queues_stay_small_when_wifi_outruns_plc() {
        let net = Network::from_raw(vec![10.0], vec![vec![50.0]]).unwrap();
        let assoc = Association::complete(vec![0]);
        let flows = run(&net, &assoc);
        assert!(
            flows.peak_queue_fill[0] < 0.5,
            "queue built up despite a fast WiFi side: {}",
            flows.peak_queue_fill[0]
        );
        assert!((flows.per_user[0].value() - 10.0).abs() < 0.5);
    }

    #[test]
    fn conservation_holds() {
        let net = fig3_network();
        let assoc = Association::complete(vec![1, 0]);
        let flows = run(&net, &assoc);
        let sum: f64 = flows.per_user.iter().map(|t| t.value()).sum();
        assert!((sum - flows.aggregate.value()).abs() < 1e-9);
    }

    #[test]
    fn config_validation() {
        let bad_tick = FlowSimConfig {
            tick: Seconds::ZERO,
            ..FlowSimConfig::default()
        };
        assert!(bad_tick.validate().is_err());
        let bad_warmup = FlowSimConfig {
            warmup_fraction: 1.0,
            ..FlowSimConfig::default()
        };
        assert!(bad_warmup.validate().is_err());
        let bad_queue = FlowSimConfig {
            queue_bits: 0.0,
            ..FlowSimConfig::default()
        };
        assert!(bad_queue.validate().is_err());
        let bad_duration = FlowSimConfig {
            duration: Seconds::new(0.001),
            ..FlowSimConfig::default()
        };
        assert!(bad_duration.validate().is_err());
    }

    #[test]
    fn fair_cell_drain_equalizes_backlogged_users() {
        // Two deep queues with different rates drain the same volume.
        let drained = fair_cell_drain(&[(1e9, 10.0), (1e9, 40.0)], 0.01);
        assert!((drained[0] - drained[1]).abs() < 1e-6);
        // Airtime check: Σ drained/r == dt.
        let airtime = drained[0] / 10e6 + drained[1] / 40e6;
        assert!((airtime - 0.01).abs() < 1e-9);
    }

    #[test]
    fn fair_cell_drain_redistributes_after_a_queue_empties() {
        // A tiny queue finishes early; the deep one uses the leftover
        // airtime at its own rate.
        let dt = 0.01;
        let tiny = 100.0; // bits
        let drained = fair_cell_drain(&[(tiny, 10.0), (1e9, 40.0)], dt);
        assert_eq!(drained[0], tiny);
        let airtime_left = dt - tiny / 10e6;
        assert!((drained[1] - airtime_left * 40e6).abs() < 1e-3);
    }

    #[test]
    fn fair_cell_drain_handles_empty_and_zero_cases() {
        assert!(fair_cell_drain(&[], 0.01).is_empty());
        let drained = fair_cell_drain(&[(0.0, 10.0)], 0.01);
        assert_eq!(drained, vec![0.0]);
    }
}
