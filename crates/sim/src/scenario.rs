//! Enterprise scenario generation.
//!
//! The paper's simulation setting (§V-A): "A 100 m × 100 m 2D plane with 15
//! extenders and two hundred users is created. The users are geographically
//! randomly distributed in the plane. The distance between every user and
//! extender is computed and the corresponding WiFi channel is estimated",
//! with PLC link capacities "calibrated … measured from different outlets
//! in a university building".
//!
//! [`ScenarioConfig`] captures those knobs; [`Scenario::generate`] samples
//! extender outlets (capacities from the `wolt-plc` building model or an
//! explicit list), places users, and [`Scenario::network`] assembles the
//! `wolt-core` rate matrix from the `wolt-wifi` radio model.

use wolt_core::Network;
use wolt_plc::capacity::sample_outlet_capacities;
use wolt_plc::channel::PlcChannelModel;
use wolt_plc::topology::BuildingConfig;
use wolt_support::rng::Rng;
use wolt_units::{Mbps, Point};
use wolt_wifi::WifiRadio;

use crate::SimError;

/// How extenders are positioned on the floor plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtenderPlacement {
    /// Jittered grid covering the plane (outlets are spread through a
    /// building, and an installer plugs extenders roughly evenly).
    Grid,
    /// Uniformly random positions.
    UniformRandom,
}

/// How extender PLC capacities are chosen.
#[derive(Debug, Clone, PartialEq)]
pub enum CapacitySource {
    /// Sample from a random `wolt-plc` building (the calibrated default).
    Building(BuildingConfig),
    /// Use these capacities verbatim (testbed replication).
    Explicit(Vec<Mbps>),
}

/// Scenario generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Plane width in metres.
    pub width: f64,
    /// Plane height in metres.
    pub height: f64,
    /// Number of extenders.
    pub extenders: usize,
    /// Number of users.
    pub users: usize,
    /// Extender placement strategy.
    pub placement: ExtenderPlacement,
    /// PLC capacity source.
    pub capacities: CapacitySource,
    /// WiFi radio model shared by all extenders.
    pub radio: WifiRadio,
    /// Attempts to re-place a user who lands outside all coverage.
    pub placement_retries: usize,
}

impl ScenarioConfig {
    /// The paper's enterprise simulation: 100 m × 100 m, 15 extenders at
    /// random outlets, building-sampled PLC capacities, and the
    /// Aironet-1200-class 802.11b radio its channel model cites. In this
    /// calibration the WiFi side is usually the bottleneck (per-user rates
    /// ≤ 7.2 Mbit/s vs per-extender PLC shares of 4–11 Mbit/s), which is
    /// the regime where the paper's Fig. 6 results live.
    pub fn enterprise(users: usize) -> Self {
        Self {
            width: 100.0,
            height: 100.0,
            extenders: 15,
            users,
            placement: ExtenderPlacement::UniformRandom,
            capacities: CapacitySource::Building(BuildingConfig::default()),
            radio: WifiRadio::enterprise_80211b(),
            placement_retries: 64,
        }
    }

    /// The paper's testbed scale: 3 extenders and 7 users in a
    /// 2408 m² lab (§V-D) — modelled as a 43.4 m × 55.5 m cluttered room
    /// with the 802.11n extender radio of the TL-WPA8630 testbed.
    pub fn lab(users: usize) -> Self {
        Self {
            width: 43.4,
            height: 55.5,
            extenders: 3,
            users,
            placement: ExtenderPlacement::UniformRandom,
            capacities: CapacitySource::Building(BuildingConfig::default()),
            radio: WifiRadio::lab_80211n(),
            placement_retries: 64,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for non-positive dimensions,
    /// zero extenders/users, or an explicit capacity list of the wrong
    /// length.
    pub fn validate(&self) -> Result<(), SimError> {
        let valid_dim = |d: f64| d.is_finite() && d > 0.0;
        if !valid_dim(self.width) || !valid_dim(self.height) {
            return Err(SimError::InvalidConfig {
                context: "plane dimensions must be finite and positive",
            });
        }
        if self.extenders == 0 {
            return Err(SimError::InvalidConfig {
                context: "need at least one extender",
            });
        }
        if self.users == 0 {
            return Err(SimError::InvalidConfig {
                context: "need at least one user",
            });
        }
        if let CapacitySource::Explicit(caps) = &self.capacities {
            if caps.len() != self.extenders {
                return Err(SimError::InvalidConfig {
                    context: "explicit capacity list length != extender count",
                });
            }
            if caps.iter().any(|c| !c.is_usable()) {
                return Err(SimError::InvalidConfig {
                    context: "explicit capacities must be usable",
                });
            }
        }
        self.radio.validate().map_err(SimError::from)?;
        Ok(())
    }
}

/// A concrete sampled scenario: extender positions + capacities and user
/// positions, ready to be turned into a [`Network`].
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Extender positions.
    pub extender_positions: Vec<Point>,
    /// Extender PLC isolation capacities (`c_j`).
    pub capacities: Vec<Mbps>,
    /// User positions.
    pub user_positions: Vec<Point>,
    /// Radio model used for rate estimation.
    pub radio: WifiRadio,
}

impl Scenario {
    /// Samples a scenario from `config` using `rng`.
    ///
    /// Users who land out of all coverage are re-sampled up to
    /// `placement_retries` times, then snapped next to the first extender
    /// (an out-of-coverage user physically walks toward an AP).
    ///
    /// # Errors
    ///
    /// Propagates config validation and capacity-sampling failures.
    pub fn generate<R: Rng + ?Sized>(
        config: &ScenarioConfig,
        rng: &mut R,
    ) -> Result<Self, SimError> {
        config.validate()?;

        let extender_positions = match config.placement {
            ExtenderPlacement::Grid => jittered_grid(config, rng),
            ExtenderPlacement::UniformRandom => (0..config.extenders)
                .map(|_| uniform_point(config, rng))
                .collect(),
        };

        let capacities = match &config.capacities {
            CapacitySource::Explicit(caps) => caps.clone(),
            CapacitySource::Building(building) => sample_outlet_capacities(
                rng,
                config.extenders,
                building,
                &PlcChannelModel::homeplug_av2(),
            )?,
        };

        let mut user_positions = Vec::with_capacity(config.users);
        for _ in 0..config.users {
            user_positions.push(place_user(config, &extender_positions, rng));
        }

        Ok(Self {
            extender_positions,
            capacities,
            user_positions,
            radio: config.radio.clone(),
        })
    }

    /// Achievable WiFi rate between user `i`'s position and extender `j`,
    /// if in range.
    pub fn rate(&self, i: usize, j: usize) -> Option<Mbps> {
        let d = self.user_positions[i].distance_to(self.extender_positions[j]);
        self.radio.rate_at_distance(d)
    }

    /// Builds the [`Network`] (rate matrix + capacities) for the current
    /// user population.
    ///
    /// # Errors
    ///
    /// Propagates `wolt-core` network-validation failures.
    pub fn network(&self) -> Result<Network, SimError> {
        let rates: Vec<Vec<f64>> = (0..self.user_positions.len())
            .map(|i| {
                (0..self.extender_positions.len())
                    .map(|j| self.rate(i, j).map_or(0.0, |r| r.value()))
                    .collect()
            })
            .collect();
        Network::from_raw(self.capacities.iter().map(|c| c.value()).collect(), rates)
            .map_err(SimError::from)
    }

    /// Builds a [`Network`] restricted to the extenders in `alive`
    /// (failure injection: unplugged extenders vanish from the network).
    /// Column `k` of the result corresponds to extender `alive[k]`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an empty or out-of-range
    /// `alive` list and propagates network-validation failures (e.g. a
    /// user covered only by dead extenders).
    pub fn network_for_extenders(&self, alive: &[usize]) -> Result<Network, SimError> {
        if alive.is_empty() {
            return Err(SimError::InvalidConfig {
                context: "need at least one alive extender",
            });
        }
        if alive.iter().any(|&j| j >= self.extender_positions.len()) {
            return Err(SimError::InvalidConfig {
                context: "alive extender index out of range",
            });
        }
        let rates: Vec<Vec<f64>> = (0..self.user_positions.len())
            .map(|i| {
                alive
                    .iter()
                    .map(|&j| self.rate(i, j).map_or(0.0, |r| r.value()))
                    .collect()
            })
            .collect();
        Network::from_raw(
            alive.iter().map(|&j| self.capacities[j].value()).collect(),
            rates,
        )
        .map_err(SimError::from)
    }

    /// True when every user can reach at least one extender in `alive`.
    pub fn covers_all_users(&self, alive: &[usize]) -> bool {
        (0..self.user_positions.len()).all(|i| alive.iter().any(|&j| self.rate(i, j).is_some()))
    }

    /// Adds a user at `position` (used by the dynamic simulation).
    pub fn push_user(&mut self, position: Point) {
        self.user_positions.push(position);
    }

    /// Removes user `i`, shifting later indices down.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn remove_user(&mut self, i: usize) {
        self.user_positions.remove(i);
    }

    /// Samples a position for a new arrival under `config`'s rules.
    pub fn sample_arrival<R: Rng + ?Sized>(&self, config: &ScenarioConfig, rng: &mut R) -> Point {
        place_user(config, &self.extender_positions, rng)
    }
}

fn uniform_point<R: Rng + ?Sized>(config: &ScenarioConfig, rng: &mut R) -> Point {
    Point::new(
        rng.gen_range(0.0..config.width),
        rng.gen_range(0.0..config.height),
    )
}

/// Jittered grid: the most even r×c factorization of the extender count,
/// each point displaced by up to a quarter cell.
fn jittered_grid<R: Rng + ?Sized>(config: &ScenarioConfig, rng: &mut R) -> Vec<Point> {
    let n = config.extenders;
    let cols = (n as f64).sqrt().ceil() as usize;
    let rows = n.div_ceil(cols);
    let cell_w = config.width / cols as f64;
    let cell_h = config.height / rows as f64;
    (0..n)
        .map(|k| {
            let (r, c) = (k / cols, k % cols);
            let cx = (c as f64 + 0.5) * cell_w;
            let cy = (r as f64 + 0.5) * cell_h;
            let jx = rng.gen_range(-0.25..0.25) * cell_w;
            let jy = rng.gen_range(-0.25..0.25) * cell_h;
            Point::new(
                (cx + jx).clamp(0.0, config.width),
                (cy + jy).clamp(0.0, config.height),
            )
        })
        .collect()
}

fn place_user<R: Rng + ?Sized>(config: &ScenarioConfig, extenders: &[Point], rng: &mut R) -> Point {
    let in_coverage = |p: Point| {
        extenders
            .iter()
            .any(|&e| config.radio.rate_at_distance(p.distance_to(e)).is_some())
    };
    for _ in 0..config.placement_retries.max(1) {
        let p = uniform_point(config, rng);
        if in_coverage(p) {
            return p;
        }
    }
    // Snap next to the first extender: guaranteed coverage.
    Point::new(extenders[0].x, extenders[0].y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolt_support::rng::ChaCha8Rng;
    use wolt_support::rng::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn enterprise_scenario_generates() {
        let cfg = ScenarioConfig::enterprise(36);
        let s = Scenario::generate(&cfg, &mut rng(1)).unwrap();
        assert_eq!(s.extender_positions.len(), 15);
        assert_eq!(s.capacities.len(), 15);
        assert_eq!(s.user_positions.len(), 36);
    }

    #[test]
    fn network_builds_and_validates() {
        let cfg = ScenarioConfig::enterprise(36);
        let s = Scenario::generate(&cfg, &mut rng(2)).unwrap();
        let net = s.network().unwrap();
        assert_eq!(net.extenders(), 15);
        assert_eq!(net.users(), 36);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ScenarioConfig::enterprise(10);
        let a = Scenario::generate(&cfg, &mut rng(7)).unwrap();
        let b = Scenario::generate(&cfg, &mut rng(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = ScenarioConfig::enterprise(10);
        let a = Scenario::generate(&cfg, &mut rng(1)).unwrap();
        let b = Scenario::generate(&cfg, &mut rng(2)).unwrap();
        assert_ne!(a.user_positions, b.user_positions);
    }

    #[test]
    fn positions_stay_on_plane() {
        let cfg = ScenarioConfig::enterprise(50);
        let s = Scenario::generate(&cfg, &mut rng(3)).unwrap();
        for p in s.extender_positions.iter().chain(&s.user_positions) {
            assert!((0.0..=cfg.width).contains(&p.x));
            assert!((0.0..=cfg.height).contains(&p.y));
        }
    }

    #[test]
    fn grid_placement_covers_the_plane() {
        let cfg = ScenarioConfig {
            placement: ExtenderPlacement::Grid,
            ..ScenarioConfig::enterprise(10)
        };
        let s = Scenario::generate(&cfg, &mut rng(4)).unwrap();
        // With a jittered 4x4-ish grid over 100x100, some extender must be
        // in each quadrant.
        for (qx, qy) in [(0.0, 0.0), (50.0, 0.0), (0.0, 50.0), (50.0, 50.0)] {
            assert!(
                s.extender_positions
                    .iter()
                    .any(|p| p.x >= qx && p.x < qx + 50.0 && p.y >= qy && p.y < qy + 50.0),
                "no extender in quadrant ({qx},{qy})"
            );
        }
    }

    #[test]
    fn capacities_are_heterogeneous_and_usable() {
        let cfg = ScenarioConfig::enterprise(10);
        let s = Scenario::generate(&cfg, &mut rng(5)).unwrap();
        assert!(s.capacities.iter().all(|c| c.is_usable()));
        let min = s
            .capacities
            .iter()
            .map(|c| c.value())
            .fold(f64::INFINITY, f64::min);
        let max = s.capacities.iter().map(|c| c.value()).fold(0.0, f64::max);
        assert!(max > min, "no PLC heterogeneity");
    }

    #[test]
    fn explicit_capacities_used_verbatim() {
        let caps = vec![Mbps::new(60.0), Mbps::new(100.0), Mbps::new(160.0)];
        let cfg = ScenarioConfig {
            capacities: CapacitySource::Explicit(caps.clone()),
            ..ScenarioConfig::lab(7)
        };
        let s = Scenario::generate(&cfg, &mut rng(6)).unwrap();
        assert_eq!(s.capacities, caps);
    }

    #[test]
    fn lab_scenario_matches_testbed_scale() {
        let cfg = ScenarioConfig::lab(7);
        let s = Scenario::generate(&cfg, &mut rng(8)).unwrap();
        assert_eq!(s.extender_positions.len(), 3);
        assert_eq!(s.user_positions.len(), 7);
        // 2408 m² lab.
        assert!((cfg.width * cfg.height - 2408.0).abs() < 10.0);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = ScenarioConfig::enterprise(10);
        cfg.width = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = ScenarioConfig::enterprise(10);
        cfg.extenders = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = ScenarioConfig::enterprise(0);
        cfg.users = 0;
        assert!(cfg.validate().is_err());

        let cfg = ScenarioConfig {
            capacities: CapacitySource::Explicit(vec![Mbps::new(10.0)]),
            ..ScenarioConfig::enterprise(10)
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn push_and_remove_users() {
        let cfg = ScenarioConfig::lab(3);
        let mut s = Scenario::generate(&cfg, &mut rng(9)).unwrap();
        let p = s.sample_arrival(&cfg, &mut rng(10));
        s.push_user(p);
        assert_eq!(s.user_positions.len(), 4);
        s.remove_user(0);
        assert_eq!(s.user_positions.len(), 3);
        assert!(s.network().is_ok());
    }

    #[test]
    fn every_generated_user_is_in_coverage() {
        let cfg = ScenarioConfig::enterprise(100);
        let s = Scenario::generate(&cfg, &mut rng(11)).unwrap();
        for i in 0..100 {
            assert!(
                (0..15).any(|j| s.rate(i, j).is_some()),
                "user {i} out of coverage"
            );
        }
    }
}
