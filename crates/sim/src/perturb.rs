//! Environment perturbations: user mobility and extender outages.
//!
//! The paper's dynamic experiments only churn the *user population*; two
//! perturbations its future-work discussion implies are modelled here:
//!
//! * **Mobility** — laptops move between epochs (the paper physically
//!   "moved the laptops around to create 25 different topologies"; here
//!   they drift continuously), changing every `r_ij` and forcing
//!   re-association to stay optimal.
//! * **Outages** — PLC extenders are plug-and-play and get unplugged. An
//!   outage removes the extender from the network for the epoch; users
//!   must be re-associated around it. Outage sets that would strand a
//!   user (no surviving extender in range) are rejected, mirroring an
//!   installer keeping minimum coverage.
//! * **Link flaps** — a PLC link collapses to a degraded fraction of its
//!   nominal capacity mid-epoch (appliance interference) and recovers;
//!   the epoch sees the time-averaged effective capacity.

use wolt_support::rng::Rng;
use wolt_units::Point;

use crate::scenario::{Scenario, ScenarioConfig};
use crate::SimError;

/// Random-step user mobility between epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobilityConfig {
    /// Maximum displacement per epoch along each axis, in metres.
    pub max_step: f64,
}

impl MobilityConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a negative or non-finite
    /// step.
    pub fn validate(&self) -> Result<(), SimError> {
        if !(self.max_step.is_finite() && self.max_step >= 0.0) {
            return Err(SimError::InvalidConfig {
                context: "mobility step must be finite and non-negative",
            });
        }
        Ok(())
    }
}

/// Moves every user by an independent uniform step in
/// `[-max_step, max_step]²`, clamped to the plane. A move that would
/// leave the user outside all coverage is cancelled (the user stays put —
/// people do not walk out of WiFi range and stay there).
///
/// # Errors
///
/// Propagates [`MobilityConfig::validate`].
pub fn apply_mobility<R: Rng + ?Sized>(
    scenario: &mut Scenario,
    mobility: &MobilityConfig,
    config: &ScenarioConfig,
    rng: &mut R,
) -> Result<usize, SimError> {
    mobility.validate()?;
    if mobility.max_step == 0.0 {
        return Ok(0);
    }
    let mut moved = 0;
    for i in 0..scenario.user_positions.len() {
        let old = scenario.user_positions[i];
        let candidate = Point::new(
            (old.x + rng.gen_range(-mobility.max_step..=mobility.max_step))
                .clamp(0.0, config.width),
            (old.y + rng.gen_range(-mobility.max_step..=mobility.max_step))
                .clamp(0.0, config.height),
        );
        scenario.user_positions[i] = candidate;
        let covered = (0..scenario.extender_positions.len()).any(|j| scenario.rate(i, j).is_some());
        if covered {
            moved += 1;
        } else {
            scenario.user_positions[i] = old;
        }
    }
    Ok(moved)
}

/// Per-epoch PLC capacity drift.
///
/// PLC link quality fluctuates with appliance noise (the cyclo-stationary
/// interference the paper's §II cites); between epochs each extender's
/// effective capacity wanders multiplicatively around its nominal value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityDriftConfig {
    /// Relative standard deviation of the per-epoch multiplicative factor.
    pub sigma: f64,
}

impl CapacityDriftConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a negative or non-finite σ.
    pub fn validate(&self) -> Result<(), SimError> {
        if !(self.sigma.is_finite() && self.sigma >= 0.0) {
            return Err(SimError::InvalidConfig {
                context: "capacity drift sigma must be finite and non-negative",
            });
        }
        Ok(())
    }
}

/// Returns this epoch's effective capacities: each nominal capacity scaled
/// by an independent factor `max(0.05, 1 + σ·z)` with `z` standard normal
/// clamped to ±3σ (same shape as the channel model's measurement noise).
///
/// # Errors
///
/// Propagates [`CapacityDriftConfig::validate`].
pub fn drift_capacities<R: Rng + ?Sized>(
    nominal: &[wolt_units::Mbps],
    drift: &CapacityDriftConfig,
    rng: &mut R,
) -> Result<Vec<wolt_units::Mbps>, SimError> {
    drift.validate()?;
    if drift.sigma == 0.0 {
        return Ok(nominal.to_vec());
    }
    Ok(nominal
        .iter()
        .map(|&c| {
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            c * (1.0 + drift.sigma * z.clamp(-3.0, 3.0)).max(0.05)
        })
        .collect())
}

/// Per-epoch PLC link flaps.
///
/// Unlike [drift](CapacityDriftConfig) (small multiplicative wander) or
/// [outages](OutageConfig) (the extender disappears entirely), a *flap*
/// is the paper's §II interference story at its worst: an appliance
/// switches on mid-epoch, the powerline link collapses to a fraction of
/// its nominal capacity for part of the epoch, then recovers. The
/// epoch-averaged effective capacity interpolates between nominal and
/// the degraded floor by the fraction of the epoch spent degraded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFlapConfig {
    /// Probability that any given extender's PLC link flaps this epoch.
    pub probability: f64,
    /// Capacity fraction while degraded, in `[0, 1]` (0 = dead link
    /// during the flap, 1 = no degradation).
    pub degraded_fraction: f64,
    /// Maximum fraction of the epoch spent degraded, in `(0, 1]`; the
    /// actual dwell is uniform in `(0, max_dwell]`.
    pub max_dwell: f64,
}

impl LinkFlapConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a probability or degraded
    /// fraction outside `[0, 1]`, or a dwell outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), SimError> {
        if !(self.probability.is_finite() && (0.0..=1.0).contains(&self.probability)) {
            return Err(SimError::InvalidConfig {
                context: "link flap probability must be in [0, 1]",
            });
        }
        if !(self.degraded_fraction.is_finite() && (0.0..=1.0).contains(&self.degraded_fraction)) {
            return Err(SimError::InvalidConfig {
                context: "link flap degraded fraction must be in [0, 1]",
            });
        }
        if !(self.max_dwell.is_finite() && 0.0 < self.max_dwell && self.max_dwell <= 1.0) {
            return Err(SimError::InvalidConfig {
                context: "link flap max dwell must be in (0, 1]",
            });
        }
        Ok(())
    }
}

/// Returns this epoch's effective capacities under link flaps, plus how
/// many links flapped. A flapped link's capacity is scaled by
/// `1 - dwell · (1 - degraded_fraction)` with `dwell` uniform in
/// `(0, max_dwell]`, floored at 5% of nominal (same floor as
/// [`drift_capacities`]) so the extender never becomes unusable — the
/// link recovers within the epoch.
///
/// # Errors
///
/// Propagates [`LinkFlapConfig::validate`].
pub fn apply_link_flaps<R: Rng + ?Sized>(
    nominal: &[wolt_units::Mbps],
    flaps: &LinkFlapConfig,
    rng: &mut R,
) -> Result<(Vec<wolt_units::Mbps>, usize), SimError> {
    flaps.validate()?;
    if flaps.probability == 0.0 {
        return Ok((nominal.to_vec(), 0));
    }
    let mut flapped = 0usize;
    let capacities = nominal
        .iter()
        .map(|&c| {
            if rng.gen_range(0.0..1.0) >= flaps.probability {
                return c;
            }
            flapped += 1;
            let dwell = rng.gen_range(f64::MIN_POSITIVE..=flaps.max_dwell);
            let factor = 1.0 - dwell * (1.0 - flaps.degraded_fraction);
            c * factor.max(0.05)
        })
        .collect();
    Ok((capacities, flapped))
}

/// Random extender outages per epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageConfig {
    /// Probability that any given extender is down for an epoch.
    pub probability: f64,
    /// Hard cap on simultaneous outages.
    pub max_concurrent: usize,
}

impl OutageConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a probability outside
    /// `[0, 1]`.
    pub fn validate(&self) -> Result<(), SimError> {
        if !(self.probability.is_finite() && (0.0..=1.0).contains(&self.probability)) {
            return Err(SimError::InvalidConfig {
                context: "outage probability must be in [0, 1]",
            });
        }
        Ok(())
    }
}

/// Samples the set of extenders that stay *alive* this epoch. Candidate
/// outages that would strand any user are re-admitted (coverage is
/// preserved), and at most `max_concurrent` extenders go down.
///
/// The returned list is sorted and always non-empty.
///
/// # Errors
///
/// Propagates [`OutageConfig::validate`].
pub fn sample_alive_extenders<R: Rng + ?Sized>(
    scenario: &Scenario,
    outages: &OutageConfig,
    rng: &mut R,
) -> Result<Vec<usize>, SimError> {
    outages.validate()?;
    let n = scenario.extender_positions.len();
    let mut down: Vec<usize> = (0..n)
        .filter(|_| rng.gen_range(0.0..1.0) < outages.probability)
        .collect();
    down.truncate(outages.max_concurrent);

    // Re-admit outages that would break coverage (or empty the network),
    // most recently drawn first.
    loop {
        let alive: Vec<usize> = (0..n).filter(|j| !down.contains(j)).collect();
        if !alive.is_empty() && scenario.covers_all_users(&alive) {
            return Ok(alive);
        }
        down.pop()
            .expect("restoring all extenders always restores coverage");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolt_support::rng::ChaCha8Rng;
    use wolt_support::rng::SeedableRng;

    fn scenario(seed: u64) -> (Scenario, ScenarioConfig) {
        let config = ScenarioConfig::enterprise(20);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (
            Scenario::generate(&config, &mut rng).expect("generates"),
            config,
        )
    }

    #[test]
    fn mobility_moves_users_within_plane() {
        let (mut s, config) = scenario(1);
        let before = s.user_positions.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let moved =
            apply_mobility(&mut s, &MobilityConfig { max_step: 5.0 }, &config, &mut rng).unwrap();
        assert!(moved > 0);
        assert_ne!(before, s.user_positions);
        for p in &s.user_positions {
            assert!((0.0..=config.width).contains(&p.x));
            assert!((0.0..=config.height).contains(&p.y));
        }
    }

    #[test]
    fn mobility_preserves_coverage() {
        let (mut s, config) = scenario(3);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..10 {
            apply_mobility(
                &mut s,
                &MobilityConfig { max_step: 30.0 },
                &config,
                &mut rng,
            )
            .unwrap();
            let alive: Vec<usize> = (0..s.extender_positions.len()).collect();
            assert!(s.covers_all_users(&alive));
        }
    }

    #[test]
    fn zero_step_is_identity() {
        let (mut s, config) = scenario(5);
        let before = s.user_positions.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let moved =
            apply_mobility(&mut s, &MobilityConfig { max_step: 0.0 }, &config, &mut rng).unwrap();
        assert_eq!(moved, 0);
        assert_eq!(before, s.user_positions);
    }

    #[test]
    fn mobility_validates() {
        let (mut s, config) = scenario(7);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        assert!(apply_mobility(
            &mut s,
            &MobilityConfig { max_step: -1.0 },
            &config,
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn capacity_drift_centres_on_nominal() {
        use wolt_units::Mbps;
        let nominal = vec![Mbps::new(100.0); 4];
        let drift = CapacityDriftConfig { sigma: 0.1 };
        let mut rng = ChaCha8Rng::seed_from_u64(40);
        let n = 4000;
        let mut total = 0.0;
        for _ in 0..n {
            let drifted = drift_capacities(&nominal, &drift, &mut rng).unwrap();
            total += drifted.iter().map(|c| c.value()).sum::<f64>() / 4.0;
        }
        let mean = total / n as f64;
        assert!((mean - 100.0).abs() < 1.0, "drift mean {mean}");
    }

    #[test]
    fn capacity_drift_zero_sigma_identity() {
        use wolt_units::Mbps;
        let nominal = vec![Mbps::new(60.0), Mbps::new(160.0)];
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let drifted =
            drift_capacities(&nominal, &CapacityDriftConfig { sigma: 0.0 }, &mut rng).unwrap();
        assert_eq!(drifted, nominal);
    }

    #[test]
    fn capacity_drift_stays_usable_and_validates() {
        use wolt_units::Mbps;
        let nominal = vec![Mbps::new(10.0)];
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            let drifted =
                drift_capacities(&nominal, &CapacityDriftConfig { sigma: 0.8 }, &mut rng).unwrap();
            assert!(drifted[0].is_usable());
        }
        assert!(
            drift_capacities(&nominal, &CapacityDriftConfig { sigma: -0.1 }, &mut rng).is_err()
        );
    }

    #[test]
    fn link_flaps_degrade_but_keep_links_usable() {
        use wolt_units::Mbps;
        let nominal = vec![Mbps::new(100.0); 8];
        let flaps = LinkFlapConfig {
            probability: 1.0,
            degraded_fraction: 0.0,
            max_dwell: 1.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(50);
        for _ in 0..200 {
            let (caps, flapped) = apply_link_flaps(&nominal, &flaps, &mut rng).unwrap();
            assert_eq!(flapped, 8);
            for c in &caps {
                assert!(c.is_usable());
                assert!(c.value() <= 100.0);
                // Worst case: dwell 1 at fraction 0 hits the 5% floor.
                assert!(c.value() >= 5.0 - 1e-9);
            }
        }
    }

    #[test]
    fn link_flaps_zero_probability_identity() {
        use wolt_units::Mbps;
        let nominal = vec![Mbps::new(60.0), Mbps::new(160.0)];
        let mut rng = ChaCha8Rng::seed_from_u64(51);
        let flaps = LinkFlapConfig {
            probability: 0.0,
            degraded_fraction: 0.5,
            max_dwell: 0.5,
        };
        let (caps, flapped) = apply_link_flaps(&nominal, &flaps, &mut rng).unwrap();
        assert_eq!(caps, nominal);
        assert_eq!(flapped, 0);
    }

    #[test]
    fn link_flaps_respect_degraded_floor() {
        use wolt_units::Mbps;
        let nominal = vec![Mbps::new(100.0); 4];
        let flaps = LinkFlapConfig {
            probability: 1.0,
            degraded_fraction: 0.6,
            max_dwell: 0.5,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(52);
        for _ in 0..200 {
            let (caps, _) = apply_link_flaps(&nominal, &flaps, &mut rng).unwrap();
            for c in &caps {
                // factor = 1 - dwell·(1-0.6) ≥ 1 - 0.5·0.4 = 0.8
                assert!(c.value() >= 80.0 - 1e-9 && c.value() <= 100.0);
            }
        }
    }

    #[test]
    fn link_flap_config_validated() {
        use wolt_units::Mbps;
        let nominal = vec![Mbps::new(100.0)];
        let mut rng = ChaCha8Rng::seed_from_u64(53);
        for bad in [
            LinkFlapConfig {
                probability: 1.5,
                degraded_fraction: 0.5,
                max_dwell: 0.5,
            },
            LinkFlapConfig {
                probability: 0.5,
                degraded_fraction: -0.1,
                max_dwell: 0.5,
            },
            LinkFlapConfig {
                probability: 0.5,
                degraded_fraction: 0.5,
                max_dwell: 0.0,
            },
        ] {
            assert!(
                apply_link_flaps(&nominal, &bad, &mut rng).is_err(),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn outages_preserve_coverage() {
        let (s, _) = scenario(9);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        for _ in 0..20 {
            let alive = sample_alive_extenders(
                &s,
                &OutageConfig {
                    probability: 0.4,
                    max_concurrent: 5,
                },
                &mut rng,
            )
            .unwrap();
            assert!(!alive.is_empty());
            assert!(s.covers_all_users(&alive));
            assert!(alive.len() >= s.extender_positions.len() - 5);
        }
    }

    #[test]
    fn zero_probability_keeps_everyone_alive() {
        let (s, _) = scenario(11);
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let alive = sample_alive_extenders(
            &s,
            &OutageConfig {
                probability: 0.0,
                max_concurrent: 3,
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(alive.len(), s.extender_positions.len());
    }

    #[test]
    fn outage_probability_validated() {
        let (s, _) = scenario(13);
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        assert!(sample_alive_extenders(
            &s,
            &OutageConfig {
                probability: 1.5,
                max_concurrent: 1
            },
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn network_for_extenders_maps_columns() {
        let (s, _) = scenario(15);
        let alive = vec![2usize, 5, 9];
        if s.covers_all_users(&alive) {
            let net = s.network_for_extenders(&alive).unwrap();
            assert_eq!(net.extenders(), 3);
            for (k, &j) in alive.iter().enumerate() {
                assert_eq!(net.capacity(k), s.capacities[j]);
            }
        }
        // Invalid inputs rejected.
        assert!(s.network_for_extenders(&[]).is_err());
        assert!(s.network_for_extenders(&[99]).is_err());
    }
}
