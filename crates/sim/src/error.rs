use std::error::Error;
use std::fmt;

use wolt_core::CoreError;
use wolt_plc::PlcError;
use wolt_wifi::WifiError;

/// Errors produced by the network simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration parameter was outside its valid range.
    InvalidConfig {
        /// Human-readable description of the parameter and its constraint.
        context: &'static str,
    },
    /// A generated user could not be placed in range of any extender.
    PlacementFailed {
        /// Number of attempts made before giving up.
        attempts: usize,
    },
    /// An underlying layer failed.
    Layer {
        /// Description of the failing call.
        context: String,
    },
    /// A metrics routine received an empty sample, a non-finite sample
    /// value, or an out-of-range quantile.
    BadSample {
        /// Which precondition the sample violated.
        context: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { context } => write!(f, "invalid config: {context}"),
            SimError::PlacementFailed { attempts } => {
                write!(
                    f,
                    "could not place user in coverage after {attempts} attempts"
                )
            }
            SimError::Layer { context } => write!(f, "layer failure: {context}"),
            SimError::BadSample { context } => write!(f, "bad sample: {context}"),
        }
    }
}

impl Error for SimError {}

impl From<CoreError> for SimError {
    fn from(e: CoreError) -> Self {
        SimError::Layer {
            context: format!("core: {e}"),
        }
    }
}

impl From<WifiError> for SimError {
    fn from(e: WifiError) -> Self {
        SimError::Layer {
            context: format!("wifi: {e}"),
        }
    }
}

impl From<PlcError> for SimError {
    fn from(e: PlcError) -> Self {
        SimError::Layer {
            context: format!("plc: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(SimError::PlacementFailed { attempts: 3 }
            .to_string()
            .contains("3 attempts"));
        let e: SimError = CoreError::UnreachableUser { user: 0 }.into();
        assert!(e.to_string().contains("core"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
