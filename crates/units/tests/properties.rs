//! Property-based tests for the physical-quantity newtypes.

use proptest::prelude::*;
use wolt_units::{Db, Dbm, Mbps, Meters, Point};

proptest! {
    /// Addition and subtraction are inverses.
    #[test]
    fn add_sub_inverse(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let x = Mbps::new(a);
        let y = Mbps::new(b);
        let round = (x + y) - y;
        prop_assert!((round.value() - a).abs() < 1e-6);
    }

    /// Scalar multiplication distributes over addition.
    #[test]
    fn scalar_mul_distributes(a in -1e3f64..1e3, b in -1e3f64..1e3, k in -1e3f64..1e3) {
        let lhs = (Mbps::new(a) + Mbps::new(b)) * k;
        let rhs = Mbps::new(a) * k + Mbps::new(b) * k;
        prop_assert!((lhs.value() - rhs.value()).abs() < 1e-6);
    }

    /// Ratio of like quantities is dimensionless and consistent.
    #[test]
    fn ratio_consistent(a in 1.0f64..1e6, k in 0.1f64..100.0) {
        let q = Mbps::new(a);
        prop_assert!(((q * k) / q - k).abs() < 1e-9);
    }

    /// min/max/clamp agree with raw float semantics.
    #[test]
    fn ordering_ops(a in -1e3f64..1e3, b in -1e3f64..1e3) {
        let (x, y) = (Mbps::new(a), Mbps::new(b));
        prop_assert_eq!(x.min(y).value(), a.min(b));
        prop_assert_eq!(x.max(y).value(), a.max(b));
        let (lo, hi) = (a.min(b), a.max(b));
        let mid = Mbps::new((a + b) / 2.0);
        let clamped = mid.clamp(Mbps::new(lo), Mbps::new(hi));
        prop_assert!(clamped.value() >= lo - 1e-12 && clamped.value() <= hi + 1e-12);
    }

    /// Sum over an iterator equals the fold.
    #[test]
    fn sum_matches_fold(values in proptest::collection::vec(-1e3f64..1e3, 0..20)) {
        let total: Mbps = values.iter().map(|&v| Mbps::new(v)).sum();
        let folded: f64 = values.iter().sum();
        prop_assert!((total.value() - folded).abs() < 1e-6);
    }

    /// Path-loss arithmetic: subtracting a loss then adding it back via Db
    /// round-trips.
    #[test]
    fn loss_round_trip(tx in -30.0f64..30.0, loss in 0.0f64..120.0) {
        let rx = Dbm::new(tx).minus_loss(Db::new(loss));
        prop_assert!((rx.value() - (tx - loss)).abs() < 1e-12);
    }

    /// Distance is a metric on sampled points: symmetric, zero iff equal,
    /// triangle inequality.
    #[test]
    fn distance_is_a_metric(
        ax in -100.0f64..100.0, ay in -100.0f64..100.0,
        bx in -100.0f64..100.0, by in -100.0f64..100.0,
        cx in -100.0f64..100.0, cy in -100.0f64..100.0,
    ) {
        let (a, b, c) = (Point::new(ax, ay), Point::new(bx, by), Point::new(cx, cy));
        prop_assert!((a.distance_to(b).value() - b.distance_to(a).value()).abs() < 1e-9);
        prop_assert_eq!(a.distance_to(a), Meters::ZERO);
        prop_assert!(
            a.distance_to(c).value() <= a.distance_to(b).value() + b.distance_to(c).value() + 1e-9
        );
    }

    /// Usability is exactly "strictly positive and finite".
    #[test]
    fn usability_definition(v in -1e6f64..1e6) {
        prop_assert_eq!(Mbps::new(v).is_usable(), v > 0.0);
    }

    /// Serde transparently round-trips values.
    #[test]
    fn serde_round_trip(v in -1e6f64..1e6) {
        let q = Mbps::new(v);
        let json = serde_json::to_string(&q).expect("serializes");
        let back: Mbps = serde_json::from_str(&json).expect("parses");
        prop_assert!((back.value() - v).abs() <= v.abs() * 1e-12);
    }
}
