//! Property-based tests for the physical-quantity newtypes, on the
//! in-tree `wolt_support::check` harness.

use wolt_support::check::Runner;
use wolt_support::json::{FromJson, Json, ToJson};
use wolt_support::rng::Rng;
use wolt_units::{Db, Dbm, Mbps, Meters, Point};

/// Addition and subtraction are inverses.
#[test]
fn add_sub_inverse() {
    Runner::new("add_sub_inverse").run(
        |rng| (rng.gen_range(-1e6..1e6), rng.gen_range(-1e6..1e6)),
        |&(a, b)| {
            let round = (Mbps::new(a) + Mbps::new(b)) - Mbps::new(b);
            if (round.value() - a).abs() < 1e-6 {
                Ok(())
            } else {
                Err(format!("({a} + {b}) - {b} drifted to {}", round.value()))
            }
        },
    );
}

/// Scalar multiplication distributes over addition.
#[test]
fn scalar_mul_distributes() {
    Runner::new("scalar_mul_distributes").run(
        |rng| {
            (
                rng.gen_range(-1e3..1e3),
                rng.gen_range(-1e3..1e3),
                rng.gen_range(-1e3..1e3),
            )
        },
        |&(a, b, k)| {
            let lhs = (Mbps::new(a) + Mbps::new(b)) * k;
            let rhs = Mbps::new(a) * k + Mbps::new(b) * k;
            if (lhs.value() - rhs.value()).abs() < 1e-6 {
                Ok(())
            } else {
                Err(format!(
                    "distribution failed: {} vs {}",
                    lhs.value(),
                    rhs.value()
                ))
            }
        },
    );
}

/// Ratio of like quantities is dimensionless and consistent.
#[test]
fn ratio_consistent() {
    Runner::new("ratio_consistent").run(
        |rng| (rng.gen_range(1.0..1e6), rng.gen_range(0.1..100.0)),
        |&(a, k)| {
            let q = Mbps::new(a);
            if ((q * k) / q - k).abs() < 1e-9 {
                Ok(())
            } else {
                Err(format!("(q*{k})/q != {k} for q = {a}"))
            }
        },
    );
}

/// min/max/clamp agree with raw float semantics.
#[test]
fn ordering_ops() {
    Runner::new("ordering_ops").run(
        |rng| (rng.gen_range(-1e3..1e3), rng.gen_range(-1e3..1e3)),
        |&(a, b)| {
            let (x, y) = (Mbps::new(a), Mbps::new(b));
            if x.min(y).value() != a.min(b) || x.max(y).value() != a.max(b) {
                return Err(format!("min/max disagree with f64 for {a}, {b}"));
            }
            let (lo, hi) = (a.min(b), a.max(b));
            let clamped = Mbps::new((a + b) / 2.0).clamp(Mbps::new(lo), Mbps::new(hi));
            if clamped.value() >= lo - 1e-12 && clamped.value() <= hi + 1e-12 {
                Ok(())
            } else {
                Err(format!("clamp escaped [{lo}, {hi}]: {}", clamped.value()))
            }
        },
    );
}

/// Sum over an iterator equals the fold.
#[test]
fn sum_matches_fold() {
    Runner::new("sum_matches_fold").run(
        |rng| {
            let n = rng.gen_range(0..20usize);
            (0..n)
                .map(|_| rng.gen_range(-1e3..1e3))
                .collect::<Vec<f64>>()
        },
        |values| {
            let total: Mbps = values.iter().map(|&v| Mbps::new(v)).sum();
            let folded: f64 = values.iter().sum();
            if (total.value() - folded).abs() < 1e-6 {
                Ok(())
            } else {
                Err(format!("sum {} != fold {folded}", total.value()))
            }
        },
    );
}

/// Path-loss arithmetic: subtracting a loss round-trips.
#[test]
fn loss_round_trip() {
    Runner::new("loss_round_trip").run(
        |rng| (rng.gen_range(-30.0..30.0), rng.gen_range(0.0..120.0)),
        |&(tx, loss)| {
            let rx = Dbm::new(tx).minus_loss(Db::new(loss));
            if (rx.value() - (tx - loss)).abs() < 1e-12 {
                Ok(())
            } else {
                Err(format!("{tx} dBm - {loss} dB gave {}", rx.value()))
            }
        },
    );
}

/// Distance is a metric on sampled points: symmetric, zero iff equal,
/// triangle inequality.
#[test]
fn distance_is_a_metric() {
    Runner::new("distance_is_a_metric").run(
        |rng| {
            let mut point =
                || Point::new(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0));
            (point(), point(), point())
        },
        |&(a, b, c)| {
            if (a.distance_to(b).value() - b.distance_to(a).value()).abs() >= 1e-9 {
                return Err("asymmetric distance".into());
            }
            if a.distance_to(a) != Meters::ZERO {
                return Err("nonzero self-distance".into());
            }
            if a.distance_to(c).value() > a.distance_to(b).value() + b.distance_to(c).value() + 1e-9
            {
                return Err("triangle inequality violated".into());
            }
            Ok(())
        },
    );
}

/// Usability is exactly "strictly positive and finite".
#[test]
fn usability_definition() {
    Runner::new("usability_definition").run(
        |rng| rng.gen_range(-1e6..1e6),
        |&v| {
            if Mbps::new(v).is_usable() == (v > 0.0) {
                Ok(())
            } else {
                Err(format!("is_usable({v}) mismatch"))
            }
        },
    );
}

/// JSON transparently round-trips values.
#[test]
fn json_round_trip() {
    Runner::new("json_round_trip").run(
        |rng| rng.gen_range(-1e6..1e6),
        |&v| {
            let q = Mbps::new(v);
            let text = q.to_json().to_compact();
            let back = Mbps::from_json(&Json::parse(&text).expect("parses")).expect("converts");
            if (back.value() - v).abs() <= v.abs() * 1e-12 {
                Ok(())
            } else {
                Err(format!("{v} round-tripped to {}", back.value()))
            }
        },
    );
}
