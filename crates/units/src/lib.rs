//! Physical-quantity newtypes shared across the WOLT workspace.
//!
//! The WOLT paper mixes several scalar quantities that are all "just
//! numbers" — link rates in Mbit/s, received signal strength in dBm,
//! distances in metres, airtime fractions — and confusing them produces
//! plausible-looking nonsense (e.g. feeding an RSSI into a throughput sum).
//! Following the newtype guidance of the Rust API guidelines (C-NEWTYPE),
//! this crate gives each quantity its own type with only the arithmetic
//! that is physically meaningful.
//!
//! # Example
//!
//! ```
//! use wolt_units::{Mbps, Meters};
//!
//! let backhaul = Mbps::new(60.0);
//! let half_airtime = backhaul * 0.5;
//! assert_eq!(half_airtime, Mbps::new(30.0));
//!
//! let d = Meters::new(3.0) + Meters::new(4.0);
//! assert_eq!(d.value(), 7.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};
use wolt_support::json::{FromJson, Json, JsonError, ToJson};

/// Implements the shared boilerplate for a scalar quantity newtype.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Wraps a raw value.
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Raw value.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// True if the value is finite (not NaN or infinite).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Elementwise minimum.
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Elementwise maximum.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps into `[lo, hi]`.
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Absolute value.
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.3} {}", self.0, $unit)
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl From<$name> for f64 {
            fn from(q: $name) -> f64 {
                q.0
            }
        }

        impl ToJson for $name {
            /// Serializes transparently as the bare number.
            fn to_json(&self) -> Json {
                Json::Num(self.0)
            }
        }

        impl FromJson for $name {
            fn from_json(value: &Json) -> Result<Self, JsonError> {
                f64::from_json(value).map(Self)
            }
        }
    };
}

quantity!(
    /// A data rate or throughput in megabits per second.
    ///
    /// Used for WiFi PHY rates `r_ij`, PLC rates `c_j`, and all throughputs
    /// `T` in the paper's notation (Table I).
    Mbps,
    "Mbit/s"
);

quantity!(
    /// A power level in dBm (decibels relative to one milliwatt).
    ///
    /// Used for transmit power and received signal strength (RSSI).
    Dbm,
    "dBm"
);

quantity!(
    /// A gain or loss in decibels.
    Db,
    "dB"
);

quantity!(
    /// A distance in metres.
    Meters,
    "m"
);

quantity!(
    /// A duration in seconds (simulation time, not wall clock).
    Seconds,
    "s"
);

impl Dbm {
    /// Applies a path loss: received power = transmitted power − loss.
    pub fn minus_loss(self, loss: Db) -> Dbm {
        Dbm(self.0 - loss.value())
    }
}

impl Mbps {
    /// True when the rate is strictly positive and finite (a usable link).
    pub fn is_usable(self) -> bool {
        self.0 > 0.0 && self.0.is_finite()
    }
}

/// A point on the 2-D floor plan (coordinates in metres).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// X coordinate in metres.
    pub x: f64,
    /// Y coordinate in metres.
    pub y: f64,
}

impl Point {
    /// Creates a point from metre coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    ///
    /// # Example
    ///
    /// ```
    /// use wolt_units::{Meters, Point};
    ///
    /// let d = Point::new(0.0, 0.0).distance_to(Point::new(3.0, 4.0));
    /// assert_eq!(d, Meters::new(5.0));
    /// ```
    pub fn distance_to(self, other: Point) -> Meters {
        Meters::new(((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt())
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2}) m", self.x, self.y)
    }
}

impl ToJson for Point {
    fn to_json(&self) -> Json {
        Json::obj([("x", Json::Num(self.x)), ("y", Json::Num(self.y))])
    }
}

impl FromJson for Point {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            x: f64::from_json(value.field("x")?)?,
            y: f64::from_json(value.field("y")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves() {
        assert_eq!(Mbps::new(2.0) + Mbps::new(3.0), Mbps::new(5.0));
        assert_eq!(Mbps::new(5.0) - Mbps::new(3.0), Mbps::new(2.0));
        assert_eq!(Mbps::new(5.0) * 2.0, Mbps::new(10.0));
        assert_eq!(2.0 * Mbps::new(5.0), Mbps::new(10.0));
        assert_eq!(Mbps::new(10.0) / 2.0, Mbps::new(5.0));
        assert_eq!(Mbps::new(10.0) / Mbps::new(5.0), 2.0);
        assert_eq!(-Mbps::new(1.0), Mbps::new(-1.0));
    }

    #[test]
    fn add_sub_assign() {
        let mut r = Mbps::new(1.0);
        r += Mbps::new(2.0);
        assert_eq!(r, Mbps::new(3.0));
        r -= Mbps::new(1.5);
        assert_eq!(r, Mbps::new(1.5));
    }

    #[test]
    fn sum_over_iterators() {
        let rates = [Mbps::new(1.0), Mbps::new(2.0), Mbps::new(3.0)];
        let total: Mbps = rates.iter().sum();
        assert_eq!(total, Mbps::new(6.0));
        let total2: Mbps = rates.into_iter().sum();
        assert_eq!(total2, Mbps::new(6.0));
    }

    #[test]
    fn min_max_clamp() {
        assert_eq!(Mbps::new(3.0).min(Mbps::new(2.0)), Mbps::new(2.0));
        assert_eq!(Mbps::new(3.0).max(Mbps::new(2.0)), Mbps::new(3.0));
        assert_eq!(
            Mbps::new(7.0).clamp(Mbps::ZERO, Mbps::new(5.0)),
            Mbps::new(5.0)
        );
    }

    #[test]
    fn rssi_minus_loss() {
        let rx = Dbm::new(20.0).minus_loss(Db::new(75.0));
        assert_eq!(rx, Dbm::new(-55.0));
    }

    #[test]
    fn usability() {
        assert!(Mbps::new(1.0).is_usable());
        assert!(!Mbps::ZERO.is_usable());
        assert!(!Mbps::new(-5.0).is_usable());
        assert!(!Mbps::new(f64::INFINITY).is_usable());
    }

    #[test]
    fn point_distance() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(4.0, 5.0);
        assert_eq!(a.distance_to(b), Meters::new(5.0));
        assert_eq!(a.distance_to(a), Meters::ZERO);
    }

    #[test]
    fn display_includes_units() {
        assert_eq!(Mbps::new(1.5).to_string(), "1.500 Mbit/s");
        assert_eq!(Dbm::new(-70.0).to_string(), "-70.000 dBm");
        assert_eq!(Meters::new(2.0).to_string(), "2.000 m");
        assert_eq!(Point::new(1.0, 2.0).to_string(), "(1.00, 2.00) m");
    }

    #[test]
    fn json_is_transparent() {
        let json = Mbps::new(42.0).to_json().to_compact();
        assert_eq!(json, "42.0");
        let back = Mbps::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, Mbps::new(42.0));
        let p = Point::new(1.5, -2.0);
        let back = Point::from_json(&Json::parse(&p.to_json().to_compact()).unwrap()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn conversions() {
        let m: Mbps = 3.0.into();
        assert_eq!(m, Mbps::new(3.0));
        let raw: f64 = m.into();
        assert_eq!(raw, 3.0);
    }
}
