//! Property-based tests for the optimization substrate, on the in-tree
//! `wolt_support::check` harness.

use wolt_opt::auction::auction_assignment;
use wolt_opt::brute;
use wolt_opt::hungarian::max_weight_assignment;
use wolt_opt::simplex::{is_on_simplex, project_simplex, project_simplex_masked};
use wolt_opt::Matrix;
use wolt_support::check::Runner;
use wolt_support::rng::{ChaCha8Rng, Rng};

fn small_matrix(rng: &mut ChaCha8Rng) -> Matrix {
    let r = rng.gen_range(1..=5usize);
    let c = rng.gen_range(1..=5usize);
    Matrix::from_fn(r, c, |_, _| rng.gen_range(0.0..1000.0)).expect("well-formed dims")
}

fn small_vec(rng: &mut ChaCha8Rng, len_lo: usize, len_hi: usize, bound: f64) -> Vec<f64> {
    let n = rng.gen_range(len_lo..len_hi);
    (0..n).map(|_| rng.gen_range(-bound..bound)).collect()
}

/// The Hungarian solver returns a matching: each row and column used at
/// most once, exactly min(rows, cols) pairs on all-finite matrices.
#[test]
fn hungarian_returns_valid_matching() {
    Runner::new("hungarian_returns_valid_matching").run(small_matrix, |m| {
        let a = max_weight_assignment(m);
        if a.len() != m.rows().min(m.cols()) {
            return Err(format!(
                "matching size {} != min(rows, cols) {}",
                a.len(),
                m.rows().min(m.cols())
            ));
        }
        let mut rows_seen = vec![false; m.rows()];
        let mut cols_seen = vec![false; m.cols()];
        for &(r, c) in &a.pairs {
            if rows_seen[r] {
                return Err(format!("row {r} matched twice"));
            }
            if cols_seen[c] {
                return Err(format!("col {c} matched twice"));
            }
            rows_seen[r] = true;
            cols_seen[c] = true;
        }
        let sum: f64 = a.pairs.iter().map(|&(r, c)| m[(r, c)]).sum();
        if (sum - a.total).abs() < 1e-9 {
            Ok(())
        } else {
            Err(format!("reported total {} != pair sum {sum}", a.total))
        }
    });
}

/// Hungarian matches brute force exactly on small instances.
#[test]
fn hungarian_is_optimal() {
    Runner::new("hungarian_is_optimal").run(small_matrix, |m| {
        let hung = max_weight_assignment(m);
        let (_, best) = brute::best_perfect_matching(m);
        if (hung.total - best).abs() < 1e-6 {
            Ok(())
        } else {
            Err(format!("hungarian={} brute={best}", hung.total))
        }
    });
}

/// The auction algorithm agrees with the Hungarian optimum to within
/// its n·ε guarantee (and in practice exactly, for tiny ε).
#[test]
fn auction_matches_hungarian() {
    Runner::new("auction_matches_hungarian").run(small_matrix, |m| {
        let hung = max_weight_assignment(m);
        let auc = auction_assignment(m, 1e-7);
        if hung.total - auc.total > m.rows() as f64 * 1e-7 + 1e-6 {
            return Err(format!("hungarian={} auction={}", hung.total, auc.total));
        }
        // The auction result is itself a valid matching.
        let mut cols = std::collections::BTreeSet::new();
        for &(_, c) in &auc.pairs {
            if !cols.insert(c) {
                return Err(format!("column {c} used twice"));
            }
        }
        Ok(())
    });
}

/// Hungarian total is invariant under transposition.
#[test]
fn hungarian_transpose_invariant() {
    Runner::new("hungarian_transpose_invariant").run(small_matrix, |m| {
        let a = max_weight_assignment(m);
        let b = max_weight_assignment(&m.transposed());
        if (a.total - b.total).abs() < 1e-6 {
            Ok(())
        } else {
            Err(format!("direct={} transposed={}", a.total, b.total))
        }
    });
}

/// Adding a constant to every utility shifts the optimum by
/// `constant * matching size` but preserves the argmax.
#[test]
fn hungarian_shift_invariant() {
    Runner::new("hungarian_shift_invariant").run(
        |rng| (small_matrix(rng), rng.gen_range(0.0..100.0)),
        |(m, shift)| {
            let a = max_weight_assignment(m);
            let shifted = Matrix::from_fn(m.rows(), m.cols(), |i, j| m[(i, j)] + shift).unwrap();
            let b = max_weight_assignment(&shifted);
            let k = m.rows().min(m.cols()) as f64;
            if (b.total - (a.total + shift * k)).abs() < 1e-6 {
                Ok(())
            } else {
                Err(format!(
                    "shifted total {} != {} + {shift} * {k}",
                    b.total, a.total
                ))
            }
        },
    );
}

/// Simplex projection always lands on the simplex.
#[test]
fn projection_feasible() {
    Runner::new("projection_feasible").run(
        |rng| small_vec(rng, 1, 10, 100.0),
        |v| {
            let mut x = v.clone();
            project_simplex(&mut x);
            if is_on_simplex(&x, 1e-9) {
                Ok(())
            } else {
                Err(format!("projection left the simplex: {x:?}"))
            }
        },
    );
}

/// Projection is idempotent.
#[test]
fn projection_idempotent() {
    Runner::new("projection_idempotent").run(
        |rng| small_vec(rng, 1, 10, 100.0),
        |v| {
            let mut x = v.clone();
            project_simplex(&mut x);
            let once = x.clone();
            project_simplex(&mut x);
            for (a, b) in once.iter().zip(&x) {
                if (a - b).abs() >= 1e-9 {
                    return Err(format!("second projection moved {a} to {b}"));
                }
            }
            Ok(())
        },
    );
}

/// Projection preserves coordinate order (it is a monotone map).
#[test]
fn projection_monotone() {
    Runner::new("projection_monotone").run(
        |rng| small_vec(rng, 2, 8, 50.0),
        |v| {
            let mut x = v.clone();
            project_simplex(&mut x);
            for i in 0..v.len() {
                for j in 0..v.len() {
                    if v[i] > v[j] && x[i] < x[j] - 1e-12 {
                        return Err(format!(
                            "order inverted: v[{i}]={} > v[{j}]={} but x[{i}]={} < x[{j}]={}",
                            v[i], v[j], x[i], x[j]
                        ));
                    }
                }
            }
            Ok(())
        },
    );
}

/// Masked projection puts zero mass on masked-out coordinates and is
/// feasible on the rest.
#[test]
fn masked_projection_feasible() {
    Runner::new("masked_projection_feasible").run(
        |rng| {
            let v = small_vec(rng, 2, 8, 50.0);
            let seed = rng.gen_range(0..1000u64);
            (v, seed)
        },
        |(v, seed)| {
            // Derive a mask with at least one allowed coordinate.
            let mut mask: Vec<bool> = v
                .iter()
                .enumerate()
                .map(|(i, _)| (seed >> (i % 10)) & 1 == 1)
                .collect();
            if !mask.iter().any(|&b| b) {
                mask[0] = true;
            }
            let mut x = v.clone();
            project_simplex_masked(&mut x, &mask);
            if !is_on_simplex(&x, 1e-9) {
                return Err(format!("masked projection left the simplex: {x:?}"));
            }
            for (xi, mi) in x.iter().zip(&mask) {
                if !mi && *xi != 0.0 {
                    return Err(format!("masked-out coordinate carries mass {xi}"));
                }
            }
            Ok(())
        },
    );
}
