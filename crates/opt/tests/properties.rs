//! Property-based tests for the optimization substrate.

use proptest::prelude::*;
use wolt_opt::auction::auction_assignment;
use wolt_opt::brute;
use wolt_opt::hungarian::max_weight_assignment;
use wolt_opt::simplex::{is_on_simplex, project_simplex, project_simplex_masked};
use wolt_opt::Matrix;

fn small_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..=5, 1usize..=5).prop_flat_map(|(r, c)| {
        proptest::collection::vec(proptest::collection::vec(0.0f64..1000.0, c), r)
            .prop_map(|rows| Matrix::from_rows(&rows).expect("well-formed rows"))
    })
}

proptest! {
    /// The Hungarian solver returns a matching: each row and column used at
    /// most once, exactly min(rows, cols) pairs on all-finite matrices.
    #[test]
    fn hungarian_returns_valid_matching(m in small_matrix()) {
        let a = max_weight_assignment(&m);
        prop_assert_eq!(a.len(), m.rows().min(m.cols()));
        let mut rows_seen = vec![false; m.rows()];
        let mut cols_seen = vec![false; m.cols()];
        for &(r, c) in &a.pairs {
            prop_assert!(!rows_seen[r], "row {} matched twice", r);
            prop_assert!(!cols_seen[c], "col {} matched twice", c);
            rows_seen[r] = true;
            cols_seen[c] = true;
        }
        let sum: f64 = a.pairs.iter().map(|&(r, c)| m[(r, c)]).sum();
        prop_assert!((sum - a.total).abs() < 1e-9);
    }

    /// Hungarian matches brute force exactly on small instances.
    #[test]
    fn hungarian_is_optimal(m in small_matrix()) {
        let hung = max_weight_assignment(&m);
        let (_, best) = brute::best_perfect_matching(&m);
        prop_assert!((hung.total - best).abs() < 1e-6,
            "hungarian={} brute={}", hung.total, best);
    }

    /// The auction algorithm agrees with the Hungarian optimum to within
    /// its n·ε guarantee (and in practice exactly, for tiny ε).
    #[test]
    fn auction_matches_hungarian(m in small_matrix()) {
        let hung = max_weight_assignment(&m);
        let auc = auction_assignment(&m, 1e-7);
        prop_assert!(hung.total - auc.total <= m.rows() as f64 * 1e-7 + 1e-6,
            "hungarian={} auction={}", hung.total, auc.total);
        // The auction result is itself a valid matching.
        let mut cols = std::collections::BTreeSet::new();
        for &(_, c) in &auc.pairs {
            prop_assert!(cols.insert(c), "column {} used twice", c);
        }
    }

    /// Hungarian total is invariant under transposition.
    #[test]
    fn hungarian_transpose_invariant(m in small_matrix()) {
        let a = max_weight_assignment(&m);
        let b = max_weight_assignment(&m.transposed());
        prop_assert!((a.total - b.total).abs() < 1e-6);
    }

    /// Adding a constant to every utility shifts the optimum by
    /// `constant * matching size` but preserves the argmax.
    #[test]
    fn hungarian_shift_invariant(m in small_matrix(), shift in 0.0f64..100.0) {
        let a = max_weight_assignment(&m);
        let shifted = Matrix::from_fn(m.rows(), m.cols(), |i, j| m[(i, j)] + shift).unwrap();
        let b = max_weight_assignment(&shifted);
        let k = m.rows().min(m.cols()) as f64;
        prop_assert!((b.total - (a.total + shift * k)).abs() < 1e-6);
    }

    /// Simplex projection always lands on the simplex.
    #[test]
    fn projection_feasible(v in proptest::collection::vec(-100.0f64..100.0, 1..10)) {
        let mut x = v;
        project_simplex(&mut x);
        prop_assert!(is_on_simplex(&x, 1e-9));
    }

    /// Projection is idempotent.
    #[test]
    fn projection_idempotent(v in proptest::collection::vec(-100.0f64..100.0, 1..10)) {
        let mut x = v;
        project_simplex(&mut x);
        let once = x.clone();
        project_simplex(&mut x);
        for (a, b) in once.iter().zip(&x) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Projection preserves coordinate order (it is a monotone map).
    #[test]
    fn projection_monotone(v in proptest::collection::vec(-50.0f64..50.0, 2..8)) {
        let mut x = v.clone();
        project_simplex(&mut x);
        for i in 0..v.len() {
            for j in 0..v.len() {
                if v[i] > v[j] {
                    prop_assert!(x[i] >= x[j] - 1e-12);
                }
            }
        }
    }

    /// Masked projection puts zero mass on masked-out coordinates and is
    /// feasible on the rest.
    #[test]
    fn masked_projection_feasible(
        v in proptest::collection::vec(-50.0f64..50.0, 2..8),
        seed in 0u64..1000,
    ) {
        // Derive a mask with at least one allowed coordinate.
        let mut mask: Vec<bool> = v.iter().enumerate()
            .map(|(i, _)| (seed >> (i % 10)) & 1 == 1)
            .collect();
        if !mask.iter().any(|&b| b) {
            mask[0] = true;
        }
        let mut x = v;
        project_simplex_masked(&mut x, &mask);
        prop_assert!(is_on_simplex(&x, 1e-9));
        for (xi, mi) in x.iter().zip(&mask) {
            if !mi {
                prop_assert_eq!(*xi, 0.0);
            }
        }
    }
}
