//! Optimization substrate for the WOLT PLC-WiFi association framework.
//!
//! The WOLT paper (ICDCS 2020) reduces its Phase-I association problem to a
//! *maximum-weight assignment problem* (Theorem 2) and solves its Phase-II
//! problem — a nonlinear program over products of probability simplices —
//! numerically with an interior-point method (stopping when the objective
//! improves by less than `1e-5`). This crate provides from-scratch
//! implementations of everything those two phases need:
//!
//! * [`hungarian`] — a rectangular maximum-weight assignment solver built on
//!   the O(n³) shortest-augmenting-path (Jonker–Volgenant style) Hungarian
//!   algorithm with dual potentials.
//! * [`simplex`] — exact Euclidean projection onto the probability simplex
//!   (and masked variants for restricted support sets).
//! * [`gradient`] — a projected-gradient ascent solver with Armijo
//!   backtracking over per-row simplices, the stand-in for the paper's
//!   interior-point solver (same feasible set, same stopping rule).
//! * [`brute`] — exhaustive search over integral assignments, used as the
//!   optimality oracle on small instances (the paper's "optimal" policy of
//!   Fig. 3d) and to validate the polynomial-time algorithms in tests.
//! * [`matrix`] — a small dense row-major matrix used for utility/rate
//!   tables.
//!
//! # Example
//!
//! Solve the Phase-I utility matrix from the paper's Fig. 3 case study
//! (2 users × 2 extenders, utilities `u_ij = min(c_j/|A|, r_ij)`):
//!
//! ```
//! use wolt_opt::{hungarian::max_weight_assignment, matrix::Matrix};
//!
//! # fn main() -> Result<(), wolt_opt::OptError> {
//! // rows = users, cols = extenders
//! let utilities = Matrix::from_rows(&[
//!     vec![15.0, 10.0], // user 1: min(60/2, 15), min(20/2, 10)
//!     vec![30.0, 10.0], // user 2: min(60/2, 40), min(20/2, 20)
//! ])?;
//! let assignment = max_weight_assignment(&utilities);
//! assert_eq!(assignment.total, 40.0); // user 2 -> ext 1, user 1 -> ext 2
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auction;
pub mod brute;
pub mod dynamic;
pub mod gradient;
pub mod hungarian;
pub mod matrix;
pub mod simplex;

mod error;

pub use error::OptError;
pub use gradient::{Objective, ProjectedGradient, SolveReport};
pub use hungarian::{max_weight_assignment, Assignment};
pub use matrix::Matrix;
