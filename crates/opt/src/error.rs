use std::error::Error;
use std::fmt;

/// Errors produced by the optimization substrate.
///
/// All variants carry enough context to diagnose the failing call without a
/// debugger; the `Display` form is lowercase and concise per Rust API
/// guidelines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OptError {
    /// A matrix was constructed from rows of unequal length.
    RaggedRows {
        /// Length of the first row (the expected width).
        expected: usize,
        /// Length of the offending row.
        found: usize,
        /// Index of the offending row.
        row: usize,
    },
    /// A matrix dimension was zero where a non-empty matrix is required.
    EmptyMatrix,
    /// Dimensions of two related inputs disagree.
    DimensionMismatch {
        /// Human-readable description of what disagreed.
        context: &'static str,
    },
    /// A numeric input was NaN or infinite where a finite value is required.
    NonFiniteInput {
        /// Human-readable description of which input was non-finite.
        context: &'static str,
    },
    /// The solver exhausted its iteration budget before converging.
    DidNotConverge {
        /// Number of iterations performed.
        iterations: usize,
    },
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::RaggedRows {
                expected,
                found,
                row,
            } => write!(
                f,
                "ragged rows: row {row} has length {found}, expected {expected}"
            ),
            OptError::EmptyMatrix => write!(f, "matrix must have at least one row and column"),
            OptError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            OptError::NonFiniteInput { context } => {
                write!(f, "non-finite input: {context}")
            }
            OptError::DidNotConverge { iterations } => {
                write!(f, "solver did not converge within {iterations} iterations")
            }
        }
    }
}

impl Error for OptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = OptError::EmptyMatrix;
        let s = e.to_string();
        assert!(s.starts_with("matrix"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OptError>();
    }

    #[test]
    fn ragged_rows_reports_indices() {
        let e = OptError::RaggedRows {
            expected: 3,
            found: 2,
            row: 1,
        };
        assert!(e.to_string().contains("row 1"));
        assert!(e.to_string().contains("length 2"));
    }
}
