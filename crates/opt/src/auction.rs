//! Bertsekas auction algorithm for the assignment problem.
//!
//! An alternative to the Hungarian solver for WOLT's Phase I. The auction
//! algorithm has users *bid* for extenders: each unassigned user raises
//! the price of its most valuable extender by its bidding increment (the
//! value gap to its second-best choice plus ε), displacing the previous
//! holder. With ε-scaling it terminates with an assignment within
//! `n·ε` of optimal; choosing `ε < gap/n` for integer-scaled utilities
//! makes it exact, but for WOLT's real-valued utilities we simply report
//! the achieved total and let callers compare (tests cross-check it
//! against the Hungarian optimum).
//!
//! The auction is often faster in practice on dense instances and is
//! embarrassingly parallel per bidding round; it is included both as a
//! performance alternative and as an independent oracle for the Hungarian
//! implementation.

use crate::hungarian::Assignment;
use crate::Matrix;

/// Solves the maximum-weight assignment problem with the auction
/// algorithm, to within `n·epsilon` of optimal.
///
/// Semantics match [`crate::max_weight_assignment`]: rectangular matrices
/// are handled by orienting so rows ≤ columns, `NEG_INFINITY`/NaN cells
/// are infeasible, and unmatchable rows stay unmatched.
///
/// # Panics
///
/// Panics if `epsilon` is not finite and positive.
///
/// # Example
///
/// ```
/// use wolt_opt::auction::auction_assignment;
/// use wolt_opt::Matrix;
///
/// # fn main() -> Result<(), wolt_opt::OptError> {
/// let u = Matrix::from_rows(&[vec![3.0, 1.0], vec![2.0, 4.0]])?;
/// let a = auction_assignment(&u, 1e-6);
/// assert_eq!(a.pairs, vec![(0, 0), (1, 1)]);
/// # Ok(())
/// # }
/// ```
pub fn auction_assignment(utility: &Matrix, epsilon: f64) -> Assignment {
    assert!(
        epsilon.is_finite() && epsilon > 0.0,
        "epsilon must be finite and positive"
    );
    if utility.rows() <= utility.cols() {
        solve_oriented(utility, false, epsilon)
    } else {
        solve_oriented(&utility.transposed(), true, epsilon)
    }
}

fn solve_oriented(utility: &Matrix, flipped: bool, epsilon: f64) -> Assignment {
    let n = utility.rows();
    let m = utility.cols();
    debug_assert!(n <= m);

    let value = |i: usize, j: usize| -> f64 {
        let u = utility[(i, j)];
        if u.is_finite() {
            u
        } else {
            f64::NEG_INFINITY
        }
    };

    let mut price = vec![0.0f64; m];
    let mut owner: Vec<Option<usize>> = vec![None; m]; // column -> row
    let mut assigned: Vec<Option<usize>> = vec![None; n]; // row -> column
    let mut queue: Vec<usize> = (0..n).collect();

    // Bound the loop defensively: the auction terminates in
    // O(n · max_gap / epsilon) rounds; anything past a generous cap means
    // the instance is fully infeasible for the remaining bidders.
    let span = utility.max_finite().unwrap_or(0.0)
        - utility
            .iter()
            .map(|(_, _, v)| v)
            .filter(|v| v.is_finite())
            .fold(f64::INFINITY, f64::min)
            .min(0.0);
    let max_rounds = ((span / epsilon) as usize + m + 2) * (n + 1) * 4;

    let mut rounds = 0usize;
    while let Some(&bidder) = queue.last() {
        rounds += 1;
        if rounds > max_rounds {
            // Remaining bidders cannot profitably bid (all-infeasible
            // rows); leave them unassigned.
            break;
        }

        // Find the bidder's best and second-best net values.
        let mut best: Option<(usize, f64)> = None;
        let mut second: f64 = f64::NEG_INFINITY;
        #[allow(clippy::needless_range_loop)]
        // parallel arrays indexed together; zip would obscure it
        for j in 0..m {
            let v = value(bidder, j);
            if v == f64::NEG_INFINITY {
                continue;
            }
            let net = v - price[j];
            match best {
                None => best = Some((j, net)),
                Some((_, b)) if net > b => {
                    second = b;
                    best = Some((j, net));
                }
                Some(_) => second = second.max(net),
            }
        }
        let Some((target, best_net)) = best else {
            // Fully infeasible row: it can never be matched.
            queue.pop();
            continue;
        };
        // Bidding increment: gap to the runner-up plus epsilon.
        let increment = if second == f64::NEG_INFINITY {
            epsilon + best_net.max(0.0) // sole option: just take it
        } else {
            best_net - second + epsilon
        };
        price[target] += increment;

        queue.pop();
        if let Some(previous) = owner[target] {
            assigned[previous] = None;
            queue.push(previous);
        }
        owner[target] = Some(bidder);
        assigned[bidder] = Some(target);
    }

    // Collect matches, dropping infeasible leftovers (shouldn't occur —
    // infeasible cells are never bid on).
    let mut pairs: Vec<(usize, usize)> = assigned
        .iter()
        .enumerate()
        .filter_map(|(i, &j)| j.map(|j| (i, j)))
        .filter(|&(i, j)| utility[(i, j)].is_finite())
        .collect();
    if flipped {
        for p in &mut pairs {
            *p = (p.1, p.0);
        }
    }
    pairs.sort_unstable();

    let (out_rows, out_cols) = if flipped { (m, n) } else { (n, m) };
    let lookup = |i: usize, j: usize| {
        if flipped {
            utility[(j, i)]
        } else {
            utility[(i, j)]
        }
    };
    let mut row_to_col = vec![None; out_rows];
    let mut col_to_row = vec![None; out_cols];
    let mut total = 0.0;
    for &(r, c) in &pairs {
        row_to_col[r] = Some(c);
        col_to_row[c] = Some(r);
        total += lookup(r, c);
    }
    Assignment {
        pairs,
        total,
        row_to_col,
        col_to_row,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_weight_assignment;
    use wolt_support::rng::ChaCha8Rng;
    use wolt_support::rng::{Rng, SeedableRng};

    fn matrix(rows: &[Vec<f64>]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn trivial_and_diagonal() {
        let a = auction_assignment(&matrix(&[vec![5.0]]), 1e-6);
        assert_eq!(a.pairs, vec![(0, 0)]);
        let a = auction_assignment(
            &matrix(&[
                vec![10.0, 1.0, 1.0],
                vec![1.0, 10.0, 1.0],
                vec![1.0, 1.0, 10.0],
            ]),
            1e-6,
        );
        assert_eq!(a.total, 30.0);
    }

    #[test]
    fn matches_hungarian_on_random_instances() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        for _ in 0..40 {
            let n = rng.gen_range(2..=7);
            let m = rng.gen_range(n..=8);
            let mat = Matrix::from_fn(n, m, |_, _| rng.gen_range(0.0..100.0)).unwrap();
            let hungarian = max_weight_assignment(&mat);
            let auction = auction_assignment(&mat, 1e-7);
            // Auction is (n·ε)-optimal; with ε = 1e-7 and continuous
            // utilities it should land on the same total.
            assert!(
                (hungarian.total - auction.total).abs() < 1e-3,
                "hungarian {} vs auction {} on {mat}",
                hungarian.total,
                auction.total
            );
        }
    }

    #[test]
    fn rectangular_more_rows() {
        let mat = matrix(&[vec![1.0, 1.0], vec![5.0, 6.0], vec![7.0, 2.0]]);
        let a = auction_assignment(&mat, 1e-7);
        assert_eq!(a.len(), 2);
        assert!((a.total - 13.0).abs() < 1e-3);
    }

    #[test]
    fn infeasible_cells_avoided() {
        let ninf = f64::NEG_INFINITY;
        let a = auction_assignment(&matrix(&[vec![ninf, 4.0], vec![3.0, ninf]]), 1e-7);
        assert_eq!(a.pairs, vec![(0, 1), (1, 0)]);
        assert_eq!(a.total, 7.0);
    }

    #[test]
    fn fully_infeasible_row_left_unmatched() {
        let ninf = f64::NEG_INFINITY;
        let a = auction_assignment(&matrix(&[vec![ninf, ninf], vec![3.0, 5.0]]), 1e-7);
        assert_eq!(a.len(), 1);
        assert_eq!(a.row_to_col[0], None);
        assert_eq!(a.total, 5.0);
    }

    #[test]
    fn epsilon_controls_accuracy() {
        // A coarse epsilon may be suboptimal but still within n·ε.
        let mat = matrix(&[vec![10.0, 9.5], vec![9.5, 9.0]]);
        let exact = max_weight_assignment(&mat).total;
        let coarse = auction_assignment(&mat, 0.2).total;
        assert!(exact - coarse <= 2.0 * 0.2 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        let _ = auction_assignment(&matrix(&[vec![1.0]]), 0.0);
    }

    #[test]
    fn contested_column_resolves() {
        // Both rows want column 0; prices must separate them.
        let mat = matrix(&[vec![10.0, 1.0], vec![10.0, 2.0]]);
        let a = auction_assignment(&mat, 1e-7);
        assert_eq!(a.len(), 2);
        assert!((a.total - 12.0).abs() < 1e-3);
    }
}
