//! Projected-gradient ascent over products of probability simplices.
//!
//! The WOLT paper solves its Phase-II nonlinear program (Problem 2) with a
//! numerical solver "which uses the interior point method; the solver stops
//! when the improvement in the aggregate throughput is less than e−5". We
//! substitute projected-gradient ascent with Armijo backtracking: the
//! feasible region (one probability simplex per unassigned user, optionally
//! masked to the extenders the user can actually reach) and the stopping
//! rule (absolute objective improvement below `tol`, default `1e-5`) are
//! identical, and Theorem 3 of the paper guarantees the optimum the solver
//! approaches is integral.
//!
//! The solver is generic over an [`Objective`]; `wolt-core` implements the
//! Phase-II WiFi-throughput objective on top of it.

use crate::simplex::{is_on_simplex, project_simplex, project_simplex_masked};
use crate::OptError;

/// A differentiable objective over a block variable `x`, where `x[i]` is the
/// decision row of user `i` (a point on the probability simplex over
/// extenders).
pub trait Objective {
    /// Objective value at `x` (to be maximized).
    fn value(&self, x: &[Vec<f64>]) -> f64;

    /// Writes the gradient at `x` into `grad` (same shape as `x`).
    ///
    /// Implementations may assume `grad` was zeroed or will be fully
    /// overwritten; the solver always passes a buffer of the right shape.
    fn gradient(&self, x: &[Vec<f64>], grad: &mut [Vec<f64>]);
}

/// Outcome of a [`ProjectedGradient::maximize`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// The final (feasible) iterate.
    pub x: Vec<Vec<f64>>,
    /// Objective value at `x`.
    pub value: f64,
    /// Number of outer iterations performed.
    pub iterations: usize,
    /// True if the stopping rule (improvement < `tol`) fired before the
    /// iteration budget ran out.
    pub converged: bool,
}

/// Projected-gradient ascent solver configuration.
///
/// Construct with [`ProjectedGradient::new`] and adjust fields via the
/// builder-style methods.
///
/// # Example
///
/// Maximize `-(x0 - 0.9)²` over the 1-simplex in two variables; the optimum
/// puts as much mass as possible on coordinate 0:
///
/// ```
/// use wolt_opt::{Objective, ProjectedGradient};
///
/// struct Pull;
/// impl Objective for Pull {
///     fn value(&self, x: &[Vec<f64>]) -> f64 {
///         -(x[0][0] - 0.9_f64).powi(2)
///     }
///     fn gradient(&self, x: &[Vec<f64>], g: &mut [Vec<f64>]) {
///         g[0][0] = -2.0 * (x[0][0] - 0.9);
///         g[0][1] = 0.0;
///     }
/// }
///
/// # fn main() -> Result<(), wolt_opt::OptError> {
/// let report = ProjectedGradient::new().maximize(&Pull, vec![vec![0.5, 0.5]], None)?;
/// assert!((report.x[0][0] - 0.9).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectedGradient {
    /// Initial step size tried at each iteration.
    pub step: f64,
    /// Stop when the objective improves by less than this between
    /// iterations (the paper uses 1e-5).
    pub tol: f64,
    /// Maximum number of outer iterations.
    pub max_iters: usize,
    /// Multiplicative step shrink factor for backtracking (0 < beta < 1).
    pub backtrack: f64,
    /// Maximum number of backtracking halvings per iteration.
    pub max_backtracks: usize,
}

impl Default for ProjectedGradient {
    fn default() -> Self {
        Self::new()
    }
}

impl ProjectedGradient {
    /// Solver with the paper's stopping tolerance (`1e-5`) and sensible
    /// defaults for the remaining knobs.
    pub fn new() -> Self {
        Self {
            step: 1.0,
            tol: 1e-5,
            max_iters: 5_000,
            backtrack: 0.5,
            max_backtracks: 40,
        }
    }

    /// Sets the stopping tolerance.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the iteration budget.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Sets the initial step size.
    pub fn with_step(mut self, step: f64) -> Self {
        self.step = step;
        self
    }

    /// Maximizes `objective` starting from `x0`, each row constrained to the
    /// probability simplex (restricted to `masks[i]` when provided).
    ///
    /// `x0` rows need not be feasible; they are projected first.
    ///
    /// # Errors
    ///
    /// * [`OptError::DimensionMismatch`] if `masks` is provided with a shape
    ///   different from `x0`, or any row of `x0` is empty.
    /// * [`OptError::NonFiniteInput`] if `x0` contains non-finite values or
    ///   the objective evaluates to a non-finite value at the start.
    pub fn maximize<O: Objective>(
        &self,
        objective: &O,
        x0: Vec<Vec<f64>>,
        masks: Option<&[Vec<bool>]>,
    ) -> Result<SolveReport, OptError> {
        let mut x = x0;
        if x.iter().any(|row| row.is_empty()) {
            return Err(OptError::DimensionMismatch {
                context: "x0 contains an empty row",
            });
        }
        if x.iter().flatten().any(|v| !v.is_finite()) {
            return Err(OptError::NonFiniteInput { context: "x0" });
        }
        if let Some(masks) = masks {
            if masks.len() != x.len()
                || masks
                    .iter()
                    .zip(&x)
                    .any(|(mask, row)| mask.len() != row.len())
            {
                return Err(OptError::DimensionMismatch {
                    context: "masks shape differs from x0",
                });
            }
        }

        let project = |x: &mut Vec<Vec<f64>>| {
            for (i, row) in x.iter_mut().enumerate() {
                match masks {
                    Some(masks) => project_simplex_masked(row, &masks[i]),
                    None => project_simplex(row),
                }
            }
        };
        project(&mut x);

        let mut value = objective.value(&x);
        if !value.is_finite() {
            return Err(OptError::NonFiniteInput {
                context: "objective at the projected start point",
            });
        }

        let mut grad: Vec<Vec<f64>> = x.iter().map(|row| vec![0.0; row.len()]).collect();
        let mut iterations = 0;

        while iterations < self.max_iters {
            iterations += 1;
            objective.gradient(&x, &mut grad);

            // Backtracking line search along the projected-gradient arc.
            let mut step = self.step;
            let mut accepted = None;
            for _ in 0..=self.max_backtracks {
                let mut candidate = x.clone();
                for (row, grow) in candidate.iter_mut().zip(&grad) {
                    for (xv, gv) in row.iter_mut().zip(grow) {
                        *xv += step * gv;
                    }
                }
                project(&mut candidate);
                let cand_value = objective.value(&candidate);
                if cand_value.is_finite() && cand_value > value {
                    accepted = Some((candidate, cand_value));
                    break;
                }
                step *= self.backtrack;
            }

            match accepted {
                Some((candidate, cand_value)) => {
                    let improvement = cand_value - value;
                    x = candidate;
                    value = cand_value;
                    if improvement < self.tol {
                        return Ok(SolveReport {
                            x,
                            value,
                            iterations,
                            converged: true,
                        });
                    }
                }
                // No ascent direction found at any step size: stationary
                // point of the projected problem.
                None => {
                    return Ok(SolveReport {
                        x,
                        value,
                        iterations,
                        converged: true,
                    })
                }
            }
        }

        Ok(SolveReport {
            x,
            value,
            iterations,
            converged: false,
        })
    }
}

/// Debug helper: asserts every row of `x` is feasible.
pub fn assert_feasible(x: &[Vec<f64>], masks: Option<&[Vec<bool>]>, tol: f64) -> bool {
    x.iter().enumerate().all(|(i, row)| {
        is_on_simplex(row, tol)
            && masks.is_none_or(|m| {
                row.iter()
                    .zip(&m[i])
                    .all(|(&v, &allowed)| allowed || v.abs() <= tol)
            })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Concave quadratic: maximize -Σ (x - target)². The unconstrained
    /// optimum is `target`; the constrained optimum is its projection.
    struct Quadratic {
        target: Vec<Vec<f64>>,
    }

    impl Objective for Quadratic {
        fn value(&self, x: &[Vec<f64>]) -> f64 {
            -x.iter()
                .zip(&self.target)
                .flat_map(|(row, trow)| row.iter().zip(trow))
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f64>()
        }
        fn gradient(&self, x: &[Vec<f64>], g: &mut [Vec<f64>]) {
            for ((grow, xrow), trow) in g.iter_mut().zip(x).zip(&self.target) {
                for ((gv, xv), tv) in grow.iter_mut().zip(xrow).zip(trow) {
                    *gv = -2.0 * (xv - tv);
                }
            }
        }
    }

    #[test]
    fn reaches_interior_optimum() {
        let obj = Quadratic {
            target: vec![vec![0.3, 0.7]],
        };
        let report = ProjectedGradient::new()
            .maximize(&obj, vec![vec![1.0, 0.0]], None)
            .unwrap();
        assert!(report.converged);
        assert!((report.x[0][0] - 0.3).abs() < 1e-3, "{:?}", report.x);
        assert!((report.x[0][1] - 0.7).abs() < 1e-3);
    }

    #[test]
    fn clamps_to_vertex_when_target_outside() {
        let obj = Quadratic {
            target: vec![vec![5.0, -5.0]],
        };
        let report = ProjectedGradient::new()
            .maximize(&obj, vec![vec![0.5, 0.5]], None)
            .unwrap();
        assert!((report.x[0][0] - 1.0).abs() < 1e-6);
        assert!(report.x[0][1].abs() < 1e-6);
    }

    #[test]
    fn handles_multiple_rows_independently() {
        let obj = Quadratic {
            target: vec![vec![0.9, 0.1], vec![0.2, 0.8]],
        };
        let report = ProjectedGradient::new()
            .maximize(&obj, vec![vec![0.5, 0.5], vec![0.5, 0.5]], None)
            .unwrap();
        assert!((report.x[0][0] - 0.9).abs() < 1e-3);
        assert!((report.x[1][1] - 0.8).abs() < 1e-3);
    }

    #[test]
    fn respects_masks() {
        let obj = Quadratic {
            target: vec![vec![1.0, 0.0, 0.0]],
        };
        // Coordinate 0 (the target) is masked out: the best feasible point
        // splits between the remaining coordinates, and the masked one
        // stays exactly zero.
        let masks = vec![vec![false, true, true]];
        let report = ProjectedGradient::new()
            .maximize(&obj, vec![vec![0.0, 0.5, 0.5]], Some(&masks))
            .unwrap();
        assert_eq!(report.x[0][0], 0.0);
        assert!(assert_feasible(&report.x, Some(&masks), 1e-9));
    }

    #[test]
    fn projects_infeasible_start() {
        let obj = Quadratic {
            target: vec![vec![0.5, 0.5]],
        };
        let report = ProjectedGradient::new()
            .maximize(&obj, vec![vec![10.0, -3.0]], None)
            .unwrap();
        assert!(is_on_simplex(&report.x[0], 1e-9));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let obj = Quadratic {
            target: vec![vec![0.5, 0.5]],
        };
        let masks = vec![vec![true]];
        let err = ProjectedGradient::new()
            .maximize(&obj, vec![vec![0.5, 0.5]], Some(&masks))
            .unwrap_err();
        assert!(matches!(err, OptError::DimensionMismatch { .. }));
    }

    #[test]
    fn rejects_non_finite_start() {
        let obj = Quadratic {
            target: vec![vec![0.5, 0.5]],
        };
        let err = ProjectedGradient::new()
            .maximize(&obj, vec![vec![f64::NAN, 0.5]], None)
            .unwrap_err();
        assert!(matches!(err, OptError::NonFiniteInput { .. }));
    }

    #[test]
    fn iteration_budget_reported() {
        let obj = Quadratic {
            target: vec![vec![0.3, 0.7]],
        };
        let report = ProjectedGradient::new()
            .with_max_iters(1)
            .with_tol(0.0)
            .maximize(&obj, vec![vec![1.0, 0.0]], None)
            .unwrap();
        assert_eq!(report.iterations, 1);
    }

    #[test]
    fn stationary_start_converges_immediately() {
        let obj = Quadratic {
            target: vec![vec![0.5, 0.5]],
        };
        let report = ProjectedGradient::new()
            .maximize(&obj, vec![vec![0.5, 0.5]], None)
            .unwrap();
        assert!(report.converged);
        assert!(report.value.abs() < 1e-12);
    }
}
