//! Euclidean projection onto the probability simplex.
//!
//! WOLT's Phase II (Problem 2 in the paper) relaxes each user's association
//! indicator row `x_i· ∈ {0,1}^|A|` with `Σ_j x_ij = 1` to the probability
//! simplex `{x ≥ 0, Σx = 1}`. Our projected-gradient solver (the stand-in
//! for the paper's interior-point method) needs an exact projection back
//! onto that simplex after every gradient step; this module implements the
//! standard O(n log n) sort-based algorithm (Held, Wolfe & Crowder 1974;
//! popularized by Duchi et al. 2008).
//!
//! The masked variant supports restricted candidate sets: a user that is out
//! of WiFi range of extender `j` must keep `x_ij = 0`, so the projection is
//! performed on the sub-vector of reachable extenders only.

/// Projects `v` in place onto the probability simplex
/// `{x : x_i ≥ 0, Σ x_i = 1}`.
///
/// # Panics
///
/// Panics if `v` is empty or contains non-finite values.
///
/// # Example
///
/// ```
/// use wolt_opt::simplex::project_simplex;
///
/// let mut v = vec![0.8, 0.8];
/// project_simplex(&mut v);
/// assert!((v[0] - 0.5).abs() < 1e-12);
/// assert!((v[1] - 0.5).abs() < 1e-12);
/// ```
pub fn project_simplex(v: &mut [f64]) {
    assert!(!v.is_empty(), "cannot project an empty vector");
    assert!(
        v.iter().all(|x| x.is_finite()),
        "cannot project non-finite values"
    );

    // Fast path: already on the simplex.
    let sum: f64 = v.iter().sum();
    if (sum - 1.0).abs() < 1e-12 && v.iter().all(|&x| x >= 0.0) {
        return;
    }

    let mut sorted: Vec<f64> = v.to_vec();
    sorted.sort_unstable_by(|a, b| b.partial_cmp(a).expect("finite values compare"));

    // Find the threshold tau = (prefix_sum(rho) - 1) / rho for the largest
    // rho with sorted[rho-1] - tau > 0.
    let mut prefix = 0.0;
    let mut tau = 0.0;
    for (k, &u) in sorted.iter().enumerate() {
        prefix += u;
        let candidate = (prefix - 1.0) / (k + 1) as f64;
        if u - candidate > 0.0 {
            tau = candidate;
        }
    }

    for x in v.iter_mut() {
        *x = (*x - tau).max(0.0);
    }
}

/// Projects `v` in place onto the simplex restricted to the coordinates
/// where `mask` is `true`; masked-out coordinates are set to exactly `0`.
///
/// # Panics
///
/// Panics if `v` and `mask` have different lengths, if no coordinate is
/// unmasked, or if any unmasked value is non-finite.
pub fn project_simplex_masked(v: &mut [f64], mask: &[bool]) {
    assert_eq!(v.len(), mask.len(), "vector and mask lengths must match");
    let active: Vec<usize> = (0..v.len()).filter(|&i| mask[i]).collect();
    assert!(
        !active.is_empty(),
        "cannot project onto simplex with no allowed coordinate"
    );

    let mut sub: Vec<f64> = active.iter().map(|&i| v[i]).collect();
    project_simplex(&mut sub);
    for x in v.iter_mut() {
        *x = 0.0;
    }
    for (slot, &i) in active.iter().enumerate() {
        v[i] = sub[slot];
    }
}

/// Returns `true` if `x` lies on the probability simplex up to `tol`:
/// all coordinates ≥ `-tol` and the sum within `tol` of 1.
pub fn is_on_simplex(x: &[f64], tol: f64) -> bool {
    if x.is_empty() {
        return false;
    }
    let sum: f64 = x.iter().sum();
    (sum - 1.0).abs() <= tol && x.iter().all(|&v| v >= -tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn identity_on_simplex_points() {
        let mut v = vec![0.2, 0.3, 0.5];
        project_simplex(&mut v);
        assert_close(v[0], 0.2);
        assert_close(v[1], 0.3);
        assert_close(v[2], 0.5);
    }

    #[test]
    fn uniform_from_equal_values() {
        let mut v = vec![10.0; 4];
        project_simplex(&mut v);
        for &x in &v {
            assert_close(x, 0.25);
        }
    }

    #[test]
    fn single_coordinate_becomes_one() {
        let mut v = vec![-3.7];
        project_simplex(&mut v);
        assert_close(v[0], 1.0);
    }

    #[test]
    fn dominant_coordinate_saturates() {
        let mut v = vec![100.0, 0.0, 0.0];
        project_simplex(&mut v);
        assert_close(v[0], 1.0);
        assert_close(v[1], 0.0);
        assert_close(v[2], 0.0);
    }

    #[test]
    fn negative_values_clamped() {
        let mut v = vec![-1.0, 0.5, 0.6];
        project_simplex(&mut v);
        assert_close(v[0], 0.0);
        assert!(is_on_simplex(&v, 1e-12));
        // Remaining mass split to keep the relative order: 0.45 / 0.55.
        assert_close(v[1], 0.45);
        assert_close(v[2], 0.55);
    }

    #[test]
    fn result_always_on_simplex() {
        let cases = [
            vec![0.1, 0.9, 2.3, -4.0],
            vec![1e6, -1e6],
            vec![0.0, 0.0, 0.0],
            vec![1.0, 1.0, 1.0, 1.0, 1.0],
        ];
        for case in cases {
            let mut v = case.clone();
            project_simplex(&mut v);
            assert!(is_on_simplex(&v, 1e-9), "{case:?} -> {v:?}");
        }
    }

    #[test]
    fn projection_is_idempotent() {
        let mut v = vec![3.0, -1.0, 0.2, 0.9];
        project_simplex(&mut v);
        let once = v.clone();
        project_simplex(&mut v);
        for (a, b) in once.iter().zip(&v) {
            assert_close(*a, *b);
        }
    }

    #[test]
    fn projection_minimizes_distance_vs_grid() {
        // Check the optimality of the projection against a dense grid
        // search over the 2-simplex.
        let target = [0.9, -0.3, 0.7];
        let mut v = target.to_vec();
        project_simplex(&mut v);
        let proj_dist: f64 = target.iter().zip(&v).map(|(t, p)| (t - p).powi(2)).sum();
        let steps = 200;
        for i in 0..=steps {
            for j in 0..=(steps - i) {
                let x = [
                    i as f64 / steps as f64,
                    j as f64 / steps as f64,
                    (steps - i - j) as f64 / steps as f64,
                ];
                let d: f64 = target.iter().zip(&x).map(|(t, p)| (t - p).powi(2)).sum();
                assert!(proj_dist <= d + 1e-6, "grid point {x:?} beats projection");
            }
        }
    }

    #[test]
    fn masked_projection_zeroes_masked_coordinates() {
        let mut v = vec![5.0, 5.0, 5.0];
        project_simplex_masked(&mut v, &[true, false, true]);
        assert_close(v[1], 0.0);
        assert_close(v[0], 0.5);
        assert_close(v[2], 0.5);
    }

    #[test]
    fn masked_projection_single_allowed() {
        let mut v = vec![0.0, -9.0];
        project_simplex_masked(&mut v, &[false, true]);
        assert_close(v[0], 0.0);
        assert_close(v[1], 1.0);
    }

    #[test]
    #[should_panic(expected = "no allowed coordinate")]
    fn masked_projection_rejects_empty_mask() {
        let mut v = vec![1.0, 2.0];
        project_simplex_masked(&mut v, &[false, false]);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn masked_projection_rejects_length_mismatch() {
        let mut v = vec![1.0];
        project_simplex_masked(&mut v, &[true, true]);
    }

    #[test]
    fn is_on_simplex_detects_violations() {
        assert!(is_on_simplex(&[1.0], 1e-9));
        assert!(is_on_simplex(&[0.5, 0.5], 1e-9));
        assert!(!is_on_simplex(&[0.5, 0.6], 1e-9));
        assert!(!is_on_simplex(&[1.5, -0.5], 1e-9));
        assert!(!is_on_simplex(&[], 1e-9));
    }
}
