//! Dynamic (incremental) Hungarian assignment.
//!
//! The WOLT paper cites Mills-Tettey, Stentz & Dias, *"The dynamic
//! Hungarian algorithm for the assignment problem with changing costs"*
//! (its reference [25]) as the way to keep Phase I cheap under churn:
//! when one user arrives, departs, or changes its rates, the optimal
//! matching can be **repaired** with a single augmentation instead of a
//! full O(n³) re-solve.
//!
//! [`IncrementalAssignment`] keeps the shortest-augmenting-path solver's
//! dual potentials alive across mutations:
//!
//! * [`add_row`](IncrementalAssignment::add_row) — one O(rows·cols)
//!   augmentation (exactly the batch solver's per-row step);
//! * [`update_row`](IncrementalAssignment::update_row) — unmatch the row,
//!   restore its dual feasibility, re-augment (Mills-Tettey's repair);
//!   falls back to a rebuild in the rare case the augmenting chain
//!   abandons the freed column with a non-zero dual;
//! * [`remove_row`](IncrementalAssignment::remove_row) — frees the row's
//!   column and rebuilds internally: a departure leaves an unmatched
//!   column whose (negative) dual violates complementary slackness, so
//!   the remaining matching is *not* automatically optimal. Mills-Tettey's
//!   full deletion repair is future work; since the paper's churn is
//!   dominated by arrivals and rate changes (Fig. 6c counts arrivals),
//!   the incremental wins land where they matter.
//!
//! Utilities are *maximized*, matching [`crate::max_weight_assignment`];
//! `NEG_INFINITY`/NaN cells are infeasible and internally carry a large
//! finite penalty, so finite utilities must stay below ≈ 1e12 in
//! magnitude. Every mutation keeps the matching optimal for the current
//! row set, which the tests verify against full re-solves over random
//! mutation sequences.

use crate::hungarian::Assignment;
use crate::{max_weight_assignment, Matrix, OptError};

/// Internal minimization cost for an infeasible cell. Large enough to
/// dominate any realistic utility, small enough to keep arithmetic exact.
const FORBIDDEN_COST: f64 = 1e15;

/// A maximum-weight assignment maintained under row insertions, updates,
/// and deletions. Holds at most `cols` live rows (the WOLT Phase-I shape:
/// one candidate user per extender).
///
/// # Example
///
/// ```
/// use wolt_opt::dynamic::IncrementalAssignment;
///
/// # fn main() -> Result<(), wolt_opt::OptError> {
/// let mut inc = IncrementalAssignment::new(2); // two extenders
/// let u1 = inc.add_row(vec![15.0, 10.0])?;     // user 1 arrives
/// let u2 = inc.add_row(vec![30.0, 10.0])?;     // user 2 arrives
/// assert_eq!(inc.column_of(u2), Some(0));      // Fig. 3 Phase-I pairing
/// assert_eq!(inc.column_of(u1), Some(1));
/// assert!((inc.total() - 40.0).abs() < 1e-9);
///
/// inc.remove_row(u2)?;                          // user 2 departs
/// inc.update_row(u1, vec![15.0, 35.0])?;        // user 1 moved closer to ext 2
/// assert_eq!(inc.column_of(u1), Some(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalAssignment {
    cols: usize,
    /// Per-row utilities; `None` marks removed rows (ids stay stable).
    rows: Vec<Option<Vec<f64>>>,
    /// Dual potential per row id (meaningful for live rows).
    pot_row: Vec<f64>,
    /// Dual potential per column.
    pot_col: Vec<f64>,
    /// Matched row of each column (may be a forbidden-cell match, which
    /// the accessors report as unmatched).
    col_to_row: Vec<Option<usize>>,
    /// Matched column of each row.
    row_to_col: Vec<Option<usize>>,
}

impl IncrementalAssignment {
    /// An empty matching over `cols` columns (extenders).
    ///
    /// # Panics
    ///
    /// Panics if `cols` is zero.
    pub fn new(cols: usize) -> Self {
        assert!(cols > 0, "need at least one column");
        Self {
            cols,
            rows: Vec::new(),
            pot_row: Vec::new(),
            pot_col: vec![0.0; cols],
            col_to_row: vec![None; cols],
            row_to_col: Vec::new(),
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of live rows.
    pub fn live_rows(&self) -> usize {
        self.rows.iter().filter(|r| r.is_some()).count()
    }

    /// The column matched to `row` on a *feasible* cell, if any.
    pub fn column_of(&self, row: usize) -> Option<usize> {
        let col = self.row_to_col.get(row).copied().flatten()?;
        self.feasible(row, col).then_some(col)
    }

    /// The row matched to `col` on a feasible cell, if any.
    pub fn row_of(&self, col: usize) -> Option<usize> {
        let row = self.col_to_row.get(col).copied().flatten()?;
        self.feasible(row, col).then_some(row)
    }

    /// Total utility of the current (feasible) matching.
    pub fn total(&self) -> f64 {
        self.feasible_pairs()
            .map(|(r, c)| self.rows[r].as_ref().expect("matched rows live")[c])
            .sum()
    }

    /// Matched feasible `(row, col)` pairs in row order.
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        self.feasible_pairs().collect()
    }

    /// Snapshot as an [`Assignment`] (same shape as the batch solver's
    /// output; removed and unmatched rows appear as `None`).
    pub fn snapshot(&self) -> Assignment {
        let pairs = self.pairs();
        let mut row_to_col = vec![None; self.rows.len()];
        let mut col_to_row = vec![None; self.cols];
        for &(r, c) in &pairs {
            row_to_col[r] = Some(c);
            col_to_row[c] = Some(r);
        }
        Assignment {
            total: self.total(),
            pairs,
            row_to_col,
            col_to_row,
        }
    }

    /// Inserts a row (a newly arrived user's utilities) and re-optimizes
    /// with one augmentation. Returns the new row's stable id.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::DimensionMismatch`] for a wrong-length row or
    /// when the matching is already full (`live_rows() == cols()` — the
    /// Phase-I relaxation never holds more candidates than extenders).
    pub fn add_row(&mut self, utilities: Vec<f64>) -> Result<usize, OptError> {
        if utilities.len() != self.cols {
            return Err(OptError::DimensionMismatch {
                context: "row length differs from column count",
            });
        }
        if self.live_rows() >= self.cols {
            return Err(OptError::DimensionMismatch {
                context: "matching is full (live rows == columns)",
            });
        }
        let id = self.rows.len();
        self.rows.push(Some(utilities));
        self.row_to_col.push(None);
        self.pot_row.push(0.0);
        self.insert_row(id);
        Ok(id)
    }

    /// Replaces `row`'s utilities (rates changed) and repairs the
    /// matching: unmatch, restore the row's dual feasibility, re-augment.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::DimensionMismatch`] for an unknown/removed row
    /// or wrong-length utilities.
    pub fn update_row(&mut self, row: usize, utilities: Vec<f64>) -> Result<(), OptError> {
        if utilities.len() != self.cols {
            return Err(OptError::DimensionMismatch {
                context: "row length differs from column count",
            });
        }
        if self.rows.get(row).is_none_or(|r| r.is_none()) {
            return Err(OptError::DimensionMismatch {
                context: "unknown or removed row",
            });
        }
        let freed = self.row_to_col[row].take();
        if let Some(col) = freed {
            self.col_to_row[col] = None;
        }
        self.rows[row] = Some(utilities);
        self.insert_row(row);
        // Complementary slackness check: unmatched columns must carry a
        // zero dual. Insertions never touch the duals of columns they
        // leave unmatched, so the only way to violate this is the freshly
        // freed column being abandoned by the augmenting chain — repair
        // with a rebuild (rare; the chain usually re-takes the column).
        if let Some(col) = freed {
            if self.col_to_row[col].is_none() && self.pot_col[col] < -1e-12 {
                self.rebuild();
            }
        }
        Ok(())
    }

    /// Removes `row` (user departed) and re-optimizes the remaining rows.
    ///
    /// A departure frees a column whose dual may be negative, which
    /// breaks complementary slackness — the remaining matching can be
    /// suboptimal. Until the full Mills-Tettey deletion repair is
    /// implemented, this rebuilds the matching over the live rows
    /// (O(n²·m), the batch cost); arrivals and updates keep their O(n·m)
    /// single-augmentation repairs.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::DimensionMismatch`] for an unknown/removed row.
    pub fn remove_row(&mut self, row: usize) -> Result<(), OptError> {
        if self.rows.get(row).is_none_or(|r| r.is_none()) {
            return Err(OptError::DimensionMismatch {
                context: "unknown or removed row",
            });
        }
        if let Some(col) = self.row_to_col[row].take() {
            self.col_to_row[col] = None;
        }
        self.rows[row] = None;
        self.rebuild();
        Ok(())
    }

    /// Resets duals and matching and re-inserts every live row.
    fn rebuild(&mut self) {
        self.pot_col = vec![0.0; self.cols];
        self.col_to_row = vec![None; self.cols];
        for t in &mut self.row_to_col {
            *t = None;
        }
        let live: Vec<usize> = (0..self.rows.len())
            .filter(|&i| self.rows[i].is_some())
            .collect();
        for i in live {
            self.insert_row(i);
        }
    }

    fn feasible(&self, row: usize, col: usize) -> bool {
        self.rows[row].as_ref().is_some_and(|r| r[col].is_finite())
    }

    fn feasible_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.row_to_col
            .iter()
            .enumerate()
            .filter_map(|(r, c)| c.map(|c| (r, c)))
            .filter(|&(r, c)| self.feasible(r, c))
    }

    /// Minimization cost of cell `(row, col)`.
    fn cost(&self, row: usize, col: usize) -> f64 {
        let u = self.rows[row].as_ref().expect("live row")[col];
        if u.is_finite() {
            -u
        } else {
            FORBIDDEN_COST
        }
    }

    /// The shortest-augmenting-path row insertion — the batch solver's
    /// per-row step, operating on the persistent potentials. `row` must be
    /// live and unmatched, and at least one column must be free (both
    /// guaranteed by the callers).
    fn insert_row(&mut self, row: usize) {
        // Restore dual feasibility for this row's edges: reduced costs
        // cost − pot_row − pot_col must be ≥ 0. (For a fresh row this is
        // the Mills-Tettey potential repair; for add_row it simply
        // initializes the potential.)
        let min_reduced = (0..self.cols)
            .map(|j| self.cost(row, j) - self.pot_col[j])
            .fold(f64::INFINITY, f64::min);
        self.pot_row[row] = min_reduced;

        let inf = f64::INFINITY;
        // Predecessor column in the alternating tree (None = reached
        // directly from `row`).
        let mut way: Vec<Option<usize>> = vec![None; self.cols];
        let mut min_to_col = vec![inf; self.cols];
        let mut used = vec![false; self.cols];
        // The virtual root: `current` is the row whose edges we relax;
        // `current_col` is the tree column it hangs off (None for root).
        let mut current_row = row;
        let mut current_col: Option<usize> = None;

        let final_col = loop {
            if let Some(j) = current_col {
                used[j] = true;
            }
            let mut delta = inf;
            let mut next_col = None;
            for j in 0..self.cols {
                if used[j] {
                    continue;
                }
                let reduced =
                    self.cost(current_row, j) - self.pot_row[current_row] - self.pot_col[j];
                if reduced < min_to_col[j] {
                    min_to_col[j] = reduced;
                    way[j] = current_col;
                }
                if min_to_col[j] < delta {
                    delta = min_to_col[j];
                    next_col = Some(j);
                }
            }
            let j1 = next_col.expect("a free column always exists for live insertions");

            // Dual update over the tree (root row + every used column and
            // its matched row) — the e-maxx potential step.
            self.pot_row[row] += delta;
            for j in 0..self.cols {
                if used[j] {
                    self.pot_col[j] -= delta;
                    if let Some(r) = self.col_to_row[j] {
                        self.pot_row[r] += delta;
                    }
                } else {
                    min_to_col[j] -= delta;
                }
            }

            match self.col_to_row[j1] {
                None => break j1,
                Some(r) => {
                    current_row = r;
                    current_col = Some(j1);
                }
            }
        };

        // Unwind the alternating path from the free column back to `row`.
        let mut col = final_col;
        loop {
            match way[col] {
                None => {
                    self.col_to_row[col] = Some(row);
                    self.row_to_col[row] = Some(col);
                    break;
                }
                Some(prev_col) => {
                    let moved_row =
                        self.col_to_row[prev_col].expect("interior tree columns are matched");
                    self.col_to_row[col] = Some(moved_row);
                    self.row_to_col[moved_row] = Some(col);
                    col = prev_col;
                }
            }
        }
    }
}

/// Convenience: rebuilds the current live rows as a dense [`Matrix`]
/// (removed rows excluded) and solves from scratch — the oracle the tests
/// compare against.
///
/// # Errors
///
/// Returns [`OptError::EmptyMatrix`] when no live rows remain.
pub fn resolve_from_scratch(inc: &IncrementalAssignment) -> Result<Assignment, OptError> {
    let live: Vec<Vec<f64>> = inc.rows.iter().flatten().cloned().collect();
    if live.is_empty() {
        return Err(OptError::EmptyMatrix);
    }
    let matrix = Matrix::from_rows(&live)?;
    Ok(max_weight_assignment(&matrix))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolt_support::rng::ChaCha8Rng;
    use wolt_support::rng::{Rng, SeedableRng};

    fn assert_matches_batch(inc: &IncrementalAssignment) {
        let batch = resolve_from_scratch(inc).expect("live rows exist");
        let incremental = inc.total();
        assert!(
            (incremental - batch.total).abs() < 1e-6,
            "incremental {incremental} != batch {}",
            batch.total
        );
    }

    #[test]
    fn sequential_adds_match_batch() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..30 {
            let cols = rng.gen_range(2..=6);
            let rows = rng.gen_range(1..=cols);
            let mut inc = IncrementalAssignment::new(cols);
            for _ in 0..rows {
                let row: Vec<f64> = (0..cols).map(|_| rng.gen_range(0.0..100.0)).collect();
                inc.add_row(row).unwrap();
                assert_matches_batch(&inc);
            }
        }
    }

    #[test]
    fn fig3_example_pairs_correctly() {
        let mut inc = IncrementalAssignment::new(2);
        let u1 = inc.add_row(vec![15.0, 10.0]).unwrap();
        let u2 = inc.add_row(vec![30.0, 10.0]).unwrap();
        assert_eq!(inc.column_of(u2), Some(0));
        assert_eq!(inc.column_of(u1), Some(1));
        assert!((inc.total() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn update_repairs_optimally() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..30 {
            let cols = rng.gen_range(2..=6);
            let mut inc = IncrementalAssignment::new(cols);
            let mut ids = Vec::new();
            for _ in 0..cols {
                ids.push(
                    inc.add_row((0..cols).map(|_| rng.gen_range(0.0..100.0)).collect())
                        .unwrap(),
                );
            }
            for _ in 0..8 {
                let &victim = ids.get(rng.gen_range(0..ids.len())).unwrap();
                inc.update_row(
                    victim,
                    (0..cols).map(|_| rng.gen_range(0.0..100.0)).collect(),
                )
                .unwrap();
                assert_matches_batch(&inc);
            }
        }
    }

    #[test]
    fn remove_keeps_remaining_matching_optimal() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..30 {
            let cols = rng.gen_range(2..=6);
            let mut inc = IncrementalAssignment::new(cols);
            let mut ids = Vec::new();
            for _ in 0..cols {
                ids.push(
                    inc.add_row((0..cols).map(|_| rng.gen_range(0.0..100.0)).collect())
                        .unwrap(),
                );
            }
            while ids.len() > 1 {
                let victim = ids.swap_remove(rng.gen_range(0..ids.len()));
                inc.remove_row(victim).unwrap();
                assert_matches_batch(&inc);
            }
        }
    }

    #[test]
    fn mixed_mutation_sequences_match_batch() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..15 {
            let cols = rng.gen_range(2..=5);
            let mut inc = IncrementalAssignment::new(cols);
            let mut live: Vec<usize> = Vec::new();
            for _ in 0..30 {
                let roll: f64 = rng.gen_range(0.0..1.0);
                if live.is_empty() || (roll < 0.5 && live.len() < cols) {
                    let id = inc
                        .add_row((0..cols).map(|_| rng.gen_range(0.0..100.0)).collect())
                        .unwrap();
                    live.push(id);
                } else if roll < 0.75 {
                    let &victim = live.get(rng.gen_range(0..live.len())).unwrap();
                    inc.update_row(
                        victim,
                        (0..cols).map(|_| rng.gen_range(0.0..100.0)).collect(),
                    )
                    .unwrap();
                } else {
                    let victim = live.swap_remove(rng.gen_range(0..live.len()));
                    inc.remove_row(victim).unwrap();
                }
                if !live.is_empty() {
                    assert_matches_batch(&inc);
                }
            }
        }
    }

    #[test]
    fn infeasible_cells_respected() {
        let ninf = f64::NEG_INFINITY;
        let mut inc = IncrementalAssignment::new(2);
        let a = inc.add_row(vec![ninf, 4.0]).unwrap();
        let b = inc.add_row(vec![3.0, ninf]).unwrap();
        assert_eq!(inc.column_of(a), Some(1));
        assert_eq!(inc.column_of(b), Some(0));
        assert!((inc.total() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn fully_infeasible_row_reports_unmatched() {
        let ninf = f64::NEG_INFINITY;
        let mut inc = IncrementalAssignment::new(2);
        let dead = inc.add_row(vec![ninf, ninf]).unwrap();
        let live = inc.add_row(vec![3.0, 5.0]).unwrap();
        assert_eq!(inc.column_of(dead), None);
        assert_eq!(inc.column_of(live), Some(1));
        assert!((inc.total() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_matches_accessors() {
        let mut inc = IncrementalAssignment::new(3);
        inc.add_row(vec![5.0, 1.0, 2.0]).unwrap();
        inc.add_row(vec![1.0, 7.0, 2.0]).unwrap();
        let snap = inc.snapshot();
        assert_eq!(snap.pairs, inc.pairs());
        assert!((snap.total - inc.total()).abs() < 1e-12);
        for &(r, c) in &snap.pairs {
            assert_eq!(inc.row_of(c), Some(r));
        }
    }

    #[test]
    fn full_matching_rejects_further_adds() {
        let mut inc = IncrementalAssignment::new(2);
        inc.add_row(vec![1.0, 2.0]).unwrap();
        inc.add_row(vec![3.0, 4.0]).unwrap();
        assert!(inc.add_row(vec![5.0, 6.0]).is_err());
        // Removing one opens a slot again.
        inc.remove_row(0).unwrap();
        assert!(inc.add_row(vec![5.0, 6.0]).is_ok());
        assert_matches_batch(&inc);
    }

    #[test]
    fn api_errors() {
        let mut inc = IncrementalAssignment::new(2);
        assert!(inc.add_row(vec![1.0]).is_err());
        assert!(inc.update_row(0, vec![1.0, 2.0]).is_err());
        assert!(inc.remove_row(0).is_err());
        let id = inc.add_row(vec![1.0, 2.0]).unwrap();
        inc.remove_row(id).unwrap();
        assert!(inc.remove_row(id).is_err(), "double remove must error");
        assert!(inc.update_row(id, vec![1.0, 2.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn zero_columns_panics() {
        let _ = IncrementalAssignment::new(0);
    }

    #[test]
    fn potentials_survive_long_churn() {
        // A long adversarial churn run: correctness must not decay with
        // accumulated potential updates.
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let cols = 6;
        let mut inc = IncrementalAssignment::new(cols);
        let mut live: Vec<usize> = Vec::new();
        for step in 0..300 {
            if live.len() < cols && (live.is_empty() || rng.gen_bool(0.45)) {
                live.push(
                    inc.add_row((0..cols).map(|_| rng.gen_range(0.0..1000.0)).collect())
                        .unwrap(),
                );
            } else if rng.gen_bool(0.6) {
                let &victim = live.get(rng.gen_range(0..live.len())).unwrap();
                inc.update_row(
                    victim,
                    (0..cols).map(|_| rng.gen_range(0.0..1000.0)).collect(),
                )
                .unwrap();
            } else {
                let victim = live.swap_remove(rng.gen_range(0..live.len()));
                inc.remove_row(victim).unwrap();
            }
            if !live.is_empty() && step % 10 == 0 {
                assert_matches_batch(&inc);
            }
        }
    }
}
