//! A small dense row-major `f64` matrix.
//!
//! Utility tables in WOLT are dense (every user has a candidate utility for
//! every extender, `-inf`/`0` standing in for unreachable pairs), so a flat
//! `Vec<f64>` with row-major indexing is the right representation: cache
//! friendly for the row scans the Hungarian algorithm performs, and trivially
//! serializable for experiment records.

use crate::OptError;
use std::fmt;
use std::ops::{Index, IndexMut};
use wolt_support::json::{FromJson, Json, JsonError, ToJson};

/// Dense row-major matrix of `f64` values.
///
/// In WOLT, rows index users and columns index extenders, so `m[(i, j)]`
/// reads "the utility (or rate) of user `i` on extender `j`".
///
/// # Example
///
/// ```
/// use wolt_opt::Matrix;
///
/// # fn main() -> Result<(), wolt_opt::OptError> {
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with `fill`.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::EmptyMatrix`] if either dimension is zero.
    pub fn filled(rows: usize, cols: usize, fill: f64) -> Result<Self, OptError> {
        if rows == 0 || cols == 0 {
            return Err(OptError::EmptyMatrix);
        }
        Ok(Self {
            rows,
            cols,
            data: vec![fill; rows * cols],
        })
    }

    /// Creates a matrix of zeros.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::EmptyMatrix`] if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self, OptError> {
        Self::filled(rows, cols, 0.0)
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::EmptyMatrix`] if `rows` is empty or the first row
    /// is empty, and [`OptError::RaggedRows`] if row lengths differ.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, OptError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(OptError::EmptyMatrix);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (idx, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(OptError::RaggedRows {
                    expected: cols,
                    found: row.len(),
                    row: idx,
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix by evaluating `f(row, col)` at every cell.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::EmptyMatrix`] if either dimension is zero.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(
        rows: usize,
        cols: usize,
        mut f: F,
    ) -> Result<Self, OptError> {
        if rows == 0 || cols == 0 {
            return Err(OptError::EmptyMatrix);
        }
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Value at `(row, col)`, or `None` if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Iterator over `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(k, &v)| (k / cols, k % cols, v))
    }

    /// Largest finite value in the matrix, or `None` if no cell is finite.
    pub fn max_finite(&self) -> Option<f64> {
        self.data
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Transposed copy of the matrix.
    pub fn transposed(&self) -> Matrix {
        let mut data = vec![0.0; self.data.len()];
        for i in 0..self.rows {
            for j in 0..self.cols {
                data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        Matrix {
            rows: self.cols,
            cols: self.rows,
            data,
        }
    }

    /// True if every cell is finite (no NaN or infinity).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl ToJson for Matrix {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rows", self.rows.to_json()),
            ("cols", self.cols.to_json()),
            ("data", self.data.to_json()),
        ])
    }
}

impl FromJson for Matrix {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let rows = usize::from_json(value.field("rows")?)?;
        let cols = usize::from_json(value.field("cols")?)?;
        let data: Vec<f64> = Vec::from_json(value.field("data")?)?;
        if rows == 0 || cols == 0 {
            return Err(JsonError::shape("matrix dimensions must be positive"));
        }
        if rows.checked_mul(cols) != Some(data.len()) {
            return Err(JsonError::shape(format!(
                "matrix data length {} != {rows} x {cols}",
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (row, col): (usize, usize)) -> &f64 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds ({} x {})",
            self.rows,
            self.cols
        );
        &self.data[row * self.cols + col]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut f64 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds ({} x {})",
            self.rows,
            self.cols
        );
        &mut self.data[row * self.cols + col]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.3}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_round_trips() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert_eq!(
            err,
            OptError::RaggedRows {
                expected: 1,
                found: 2,
                row: 1
            }
        );
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(Matrix::from_rows(&[]).unwrap_err(), OptError::EmptyMatrix);
        assert_eq!(Matrix::zeros(0, 3).unwrap_err(), OptError::EmptyMatrix);
        assert_eq!(Matrix::zeros(3, 0).unwrap_err(), OptError::EmptyMatrix);
    }

    #[test]
    fn from_fn_fills_cells() {
        let m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64).unwrap();
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(0, 1)], 1.0);
        assert_eq!(m[(1, 0)], 10.0);
        assert_eq!(m[(1, 1)], 11.0);
    }

    #[test]
    fn transpose_involutive() {
        let m = Matrix::from_fn(3, 2, |i, j| (i + 2 * j) as f64).unwrap();
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed()[(1, 2)], m[(2, 1)]);
    }

    #[test]
    fn get_bounds_checked() {
        let m = Matrix::zeros(2, 2).unwrap();
        assert_eq!(m.get(1, 1), Some(0.0));
        assert_eq!(m.get(2, 0), None);
        assert_eq!(m.get(0, 2), None);
    }

    #[test]
    fn max_finite_skips_infinities() {
        let m = Matrix::from_rows(&[vec![f64::NEG_INFINITY, 3.0], vec![1.0, f64::NAN]]).unwrap();
        assert_eq!(m.max_finite(), Some(3.0));
    }

    #[test]
    fn max_finite_none_when_all_nonfinite() {
        let m = Matrix::from_rows(&[vec![f64::INFINITY, f64::NAN]]).unwrap();
        assert_eq!(m.max_finite(), None);
    }

    #[test]
    fn iter_visits_all_cells_in_row_major_order() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64).unwrap();
        let triples: Vec<_> = m.iter().collect();
        assert_eq!(triples.len(), 6);
        assert_eq!(triples[0], (0, 0, 0.0));
        assert_eq!(triples[4], (1, 1, 4.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_panics_out_of_bounds() {
        let m = Matrix::zeros(2, 2).unwrap();
        let _ = m[(2, 0)];
    }

    #[test]
    fn json_round_trip() {
        let m = Matrix::from_fn(2, 2, |i, j| (i + j) as f64).unwrap();
        let json = m.to_json().to_compact();
        let back = Matrix::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(m, back);
        // Shape violations are rejected, not trusted.
        let bad = Json::parse(r#"{"rows":2,"cols":2,"data":[1.0]}"#).unwrap();
        assert!(Matrix::from_json(&bad).is_err());
        let empty = Json::parse(r#"{"rows":0,"cols":0,"data":[]}"#).unwrap();
        assert!(Matrix::from_json(&empty).is_err());
    }
}
