//! Exhaustive search oracles.
//!
//! The WOLT paper motivates its polynomial-time algorithm by noting that the
//! brute-force optimum is out of reach at enterprise scale (30 users on 10
//! extenders is already ≈ 30¹⁰ candidate associations) but still uses brute
//! force at small scale: the "optimal association" of the Fig. 3 case study
//! is found "by a brute force search". This module provides those oracles:
//!
//! * [`best_perfect_matching`] — exhaustive counterpart of the Hungarian
//!   solver (one user per extender), used to validate it in tests.
//! * [`best_full_assignment`] — exhaustive search over *complete*
//!   associations (every user connected somewhere) with an arbitrary
//!   objective callback; this is the optimality oracle for Problem 1.
//!
//! Both are exponential; callers should keep instances to a handful of users
//! and extenders (the implementations assert generous but finite limits to
//! avoid accidental 10²⁰-step loops).

use crate::Matrix;

/// Exhaustively finds the maximum-weight matching of exactly
/// `min(rows, cols)` pairs (skipping rows only when there are more rows than
/// columns, i.e. the same semantics as [`crate::max_weight_assignment`] on a
/// fully-feasible matrix).
///
/// Returns the matched `(row, col)` pairs (sorted by row) and the total
/// weight.
///
/// # Panics
///
/// Panics if the matrix has more than 20 columns or 20 rows (the search is
/// exponential) or contains non-finite entries.
pub fn best_perfect_matching(utility: &Matrix) -> (Vec<(usize, usize)>, f64) {
    let (rows, cols) = (utility.rows(), utility.cols());
    assert!(
        rows <= 20 && cols <= 20,
        "brute-force matching limited to 20x20 (got {rows}x{cols})"
    );
    assert!(
        utility.is_finite(),
        "brute-force matching requires finite utilities"
    );
    let target = rows.min(cols);

    struct Search<'a> {
        utility: &'a Matrix,
        rows: usize,
        cols: usize,
        target: usize,
        best_total: f64,
        best_pairs: Vec<(usize, usize)>,
        current: Vec<(usize, usize)>,
    }

    impl Search<'_> {
        fn recurse(&mut self, row: usize, used_cols: u32, matched: usize, total: f64) {
            if row == self.rows {
                if matched == self.target && total > self.best_total {
                    self.best_total = total;
                    self.best_pairs = self.current.clone();
                }
                return;
            }
            // Option 1: match this row to any free column.
            for col in 0..self.cols {
                if used_cols & (1 << col) == 0 {
                    self.current.push((row, col));
                    self.recurse(
                        row + 1,
                        used_cols | (1 << col),
                        matched + 1,
                        total + self.utility[(row, col)],
                    );
                    self.current.pop();
                }
            }
            // Option 2: skip this row, but only if enough rows remain to
            // still reach the target matching size.
            let remaining_after = self.rows - row - 1;
            if matched + remaining_after >= self.target {
                self.recurse(row + 1, used_cols, matched, total);
            }
        }
    }

    let mut search = Search {
        utility,
        rows,
        cols,
        target,
        best_total: f64::NEG_INFINITY,
        best_pairs: Vec::new(),
        current: Vec::with_capacity(target),
    };
    search.recurse(0, 0, 0, 0.0);
    (search.best_pairs, search.best_total)
}

/// Exhaustively searches over all `n_ext.pow(n_users)` complete
/// associations, maximizing `objective`.
///
/// `objective` receives a slice `assignment` where `assignment[i]` is the
/// extender index of user `i`. Returns the best assignment found and its
/// objective value. Ties are broken in favour of the lexicographically
/// smallest assignment (the first one enumerated).
///
/// # Panics
///
/// Panics if `n_users == 0`, `n_ext == 0`, or the search space exceeds
/// 10⁸ candidates.
///
/// # Example
///
/// ```
/// use wolt_opt::brute::best_full_assignment;
///
/// // 2 users, 2 extenders; reward spreading the users out.
/// let (best, value) = best_full_assignment(2, 2, |a| {
///     if a[0] != a[1] { 1.0 } else { 0.0 }
/// });
/// assert_eq!(value, 1.0);
/// assert_ne!(best[0], best[1]);
/// ```
pub fn best_full_assignment<F>(n_users: usize, n_ext: usize, mut objective: F) -> (Vec<usize>, f64)
where
    F: FnMut(&[usize]) -> f64,
{
    assert!(n_users > 0, "need at least one user");
    assert!(n_ext > 0, "need at least one extender");
    let space = (n_ext as f64).powi(n_users as i32);
    assert!(
        space <= 1e8,
        "search space {space:.0} exceeds the 1e8 brute-force limit"
    );

    let mut assignment = vec![0usize; n_users];
    let mut best = assignment.clone();
    let mut best_value = objective(&assignment);

    // Base-n_ext odometer over assignments.
    loop {
        // Increment.
        let mut pos = 0;
        loop {
            if pos == n_users {
                return (best, best_value);
            }
            assignment[pos] += 1;
            if assignment[pos] < n_ext {
                break;
            }
            assignment[pos] = 0;
            pos += 1;
        }
        let value = objective(&assignment);
        if value > best_value {
            best_value = value;
            best = assignment.clone();
        }
    }
}

/// Parallel variant of [`best_full_assignment`]: partitions the search
/// space on the most-significant odometer digit (user `n_users - 1`'s
/// extender) into `n_ext` independent chunks mapped over
/// [`wolt_support::pool::par_map`], then merges chunk winners **in chunk
/// order with a strict comparison** — exactly the sequential enumeration
/// order — so the result (including tie-breaks toward the lexicographically
/// smallest assignment) is identical at any thread count.
///
/// `objective` must be `Fn + Sync` rather than `FnMut`, since chunks call
/// it concurrently.
///
/// # Panics
///
/// As [`best_full_assignment`].
///
/// # Example
///
/// ```
/// use wolt_opt::brute::{best_full_assignment, best_full_assignment_parallel};
///
/// let objective = |a: &[usize]| a.iter().map(|&j| (j as f64).sin()).sum::<f64>();
/// let seq = best_full_assignment(4, 3, objective);
/// let par = best_full_assignment_parallel(8, 4, 3, objective);
/// assert_eq!(seq, par);
/// ```
pub fn best_full_assignment_parallel<F>(
    threads: usize,
    n_users: usize,
    n_ext: usize,
    objective: F,
) -> (Vec<usize>, f64)
where
    F: Fn(&[usize]) -> f64 + Sync,
{
    assert!(n_users > 0, "need at least one user");
    assert!(n_ext > 0, "need at least one extender");
    let space = (n_ext as f64).powi(n_users as i32);
    assert!(
        space <= 1e8,
        "search space {space:.0} exceeds the 1e8 brute-force limit"
    );

    // Each chunk fixes the most-significant digit (which the sequential
    // odometer varies *last*) and enumerates the remaining prefix in the
    // sequential order, so chunk d's candidates are exactly the d-th
    // contiguous block of the sequential enumeration.
    let digits: Vec<usize> = (0..n_ext).collect();
    let chunk_bests = wolt_support::pool::par_map(threads, &digits, |_, &d| {
        let mut assignment = vec![0usize; n_users];
        assignment[n_users - 1] = d;
        let mut best = assignment.clone();
        let mut best_value = objective(&assignment);
        if n_users == 1 {
            return (best, best_value);
        }
        let prefix = n_users - 1;
        loop {
            let mut pos = 0;
            loop {
                if pos == prefix {
                    return (best, best_value);
                }
                assignment[pos] += 1;
                if assignment[pos] < n_ext {
                    break;
                }
                assignment[pos] = 0;
                pos += 1;
            }
            let value = objective(&assignment);
            if value > best_value {
                best_value = value;
                best = assignment.clone();
            }
        }
    });

    // Merge in chunk (= enumeration) order; strict `>` keeps the earliest
    // chunk's winner on ties, matching the sequential tie-break.
    chunk_bests
        .into_iter()
        .reduce(|acc, cand| if cand.1 > acc.1 { cand } else { acc })
        .expect("n_ext >= 1 chunks")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching_trivial() {
        let m = Matrix::from_rows(&[vec![3.0]]).unwrap();
        let (pairs, total) = best_perfect_matching(&m);
        assert_eq!(pairs, vec![(0, 0)]);
        assert_eq!(total, 3.0);
    }

    #[test]
    fn perfect_matching_picks_antidiagonal() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![10.0, 1.0]]).unwrap();
        let (pairs, total) = best_perfect_matching(&m);
        assert_eq!(total, 20.0);
        assert_eq!(pairs, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn perfect_matching_skips_worst_row_when_rows_exceed_cols() {
        let m = Matrix::from_rows(&[vec![1.0], vec![9.0], vec![4.0]]).unwrap();
        let (pairs, total) = best_perfect_matching(&m);
        assert_eq!(pairs, vec![(1, 0)]);
        assert_eq!(total, 9.0);
    }

    #[test]
    fn perfect_matching_uses_subset_of_cols_when_cols_exceed_rows() {
        let m = Matrix::from_rows(&[vec![1.0, 5.0, 3.0], vec![2.0, 6.0, 4.0]]).unwrap();
        let (pairs, total) = best_perfect_matching(&m);
        assert_eq!(pairs.len(), 2);
        assert_eq!(total, 9.0); // (0,1)=5 + (1,2)=4
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn perfect_matching_rejects_non_finite() {
        let m = Matrix::from_rows(&[vec![f64::NEG_INFINITY]]).unwrap();
        let _ = best_perfect_matching(&m);
    }

    #[test]
    fn full_assignment_enumerates_whole_space() {
        let mut seen = 0usize;
        let _ = best_full_assignment(3, 2, |_| {
            seen += 1;
            0.0
        });
        assert_eq!(seen, 8); // 2^3
    }

    #[test]
    fn full_assignment_finds_unique_optimum() {
        // Reward exactly the assignment [1, 0, 2].
        let (best, value) = best_full_assignment(3, 3, |a| if a == [1, 0, 2] { 10.0 } else { 0.0 });
        assert_eq!(best, vec![1, 0, 2]);
        assert_eq!(value, 10.0);
    }

    #[test]
    fn full_assignment_single_extender() {
        let (best, value) = best_full_assignment(4, 1, |a| a.len() as f64);
        assert_eq!(best, vec![0, 0, 0, 0]);
        assert_eq!(value, 4.0);
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn full_assignment_rejects_zero_users() {
        let _ = best_full_assignment(0, 2, |_| 0.0);
    }

    #[test]
    #[should_panic(expected = "brute-force limit")]
    fn full_assignment_rejects_huge_space() {
        let _ = best_full_assignment(30, 10, |_| 0.0);
    }

    #[test]
    fn parallel_matches_sequential_incl_tie_breaks() {
        // An objective with massive tie plateaus: parallel must return the
        // exact same (lexicographically-smallest) winner as sequential at
        // every thread count.
        let objective = |a: &[usize]| a.iter().filter(|&&j| j == 1).count() as f64;
        let seq = best_full_assignment(5, 3, objective);
        for threads in [1, 2, 4, 8] {
            let par = best_full_assignment_parallel(threads, 5, 3, objective);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn parallel_matches_sequential_float_objective() {
        let objective = |a: &[usize]| {
            a.iter()
                .enumerate()
                .map(|(i, &j)| ((i + 1) as f64 * (j as f64 + 0.5)).sin())
                .sum::<f64>()
        };
        let seq = best_full_assignment(6, 4, objective);
        for threads in [2, 3, 16] {
            let par = best_full_assignment_parallel(threads, 6, 4, objective);
            assert_eq!(par.0, seq.0, "threads={threads}");
            assert_eq!(par.1.to_bits(), seq.1.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn parallel_single_user_covers_all_digits() {
        let (best, value) = best_full_assignment_parallel(4, 1, 5, |a| a[0] as f64);
        assert_eq!(best, vec![4]);
        assert_eq!(value, 4.0);
    }

    #[test]
    fn parallel_enumerates_whole_space() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let seen = AtomicUsize::new(0);
        let _ = best_full_assignment_parallel(4, 3, 2, |_| {
            seen.fetch_add(1, Ordering::Relaxed);
            0.0
        });
        assert_eq!(seen.load(Ordering::Relaxed), 8); // 2^3
    }
}
