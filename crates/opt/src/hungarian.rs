//! Rectangular maximum-weight assignment via the Hungarian algorithm.
//!
//! WOLT's Phase I (Theorem 2 of the paper) is *exactly* an assignment
//! problem: pick which user serves each extender so that the sum of
//! utilities `u_ij = min(c_j/|A|, r_ij)` is maximal, with each extender
//! receiving exactly one user and each user serving at most one extender.
//! The paper cites the Hungarian algorithm and its O(|A|³) runtime; this
//! module implements the shortest-augmenting-path formulation with dual
//! potentials (Jonker–Volgenant style), which achieves that bound.
//!
//! The public entry point, [`max_weight_assignment`], accepts rectangular
//! matrices (more users than extenders or vice versa) and utilities of
//! `f64::NEG_INFINITY`/NaN meaning "this (user, extender) pair is
//! infeasible" (e.g. the user is out of WiFi range of the extender).

use crate::Matrix;

/// Result of a maximum-weight assignment.
///
/// Produced by [`max_weight_assignment`]. `pairs` lists the matched
/// `(row, col)` pairs; `row_to_col`/`col_to_row` give O(1) lookups in both
/// directions (`None` for unmatched rows/columns, which occur when the
/// matrix is rectangular or when a row has no feasible column).
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Matched `(row, col)` pairs, in increasing row order.
    pub pairs: Vec<(usize, usize)>,
    /// Sum of utilities over `pairs`.
    pub total: f64,
    /// For each row, the matched column (if any).
    pub row_to_col: Vec<Option<usize>>,
    /// For each column, the matched row (if any).
    pub col_to_row: Vec<Option<usize>>,
}

impl Assignment {
    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no pair was matched.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Solves the maximum-weight assignment problem on a rectangular utility
/// matrix.
///
/// Rows that cannot be feasibly matched (all their utilities are
/// `NEG_INFINITY`/NaN, or the matrix has more rows than columns) are left
/// unmatched. The returned [`Assignment`] always matches
/// `min(rows, cols)` pairs minus any forced-infeasible ones.
///
/// Runs in O(n³) time for an n×n matrix (O(min² · max) for rectangular
/// inputs after the internal orientation step).
///
/// # Example
///
/// ```
/// use wolt_opt::{hungarian::max_weight_assignment, Matrix};
///
/// # fn main() -> Result<(), wolt_opt::OptError> {
/// let u = Matrix::from_rows(&[vec![3.0, 1.0], vec![2.0, 4.0]])?;
/// let a = max_weight_assignment(&u);
/// assert_eq!(a.pairs, vec![(0, 0), (1, 1)]);
/// assert_eq!(a.total, 7.0);
/// # Ok(())
/// # }
/// ```
pub fn max_weight_assignment(utility: &Matrix) -> Assignment {
    let (rows, cols) = (utility.rows(), utility.cols());
    // The augmenting-path core requires rows <= cols; transpose otherwise
    // and flip the matched pairs back afterwards.
    if rows <= cols {
        solve_oriented(utility, false)
    } else {
        solve_oriented(&utility.transposed(), true)
    }
}

/// Core solver for `rows <= cols`. `flipped` records whether the input was
/// transposed, so the output can be mapped back to original coordinates.
fn solve_oriented(utility: &Matrix, flipped: bool) -> Assignment {
    let n = utility.rows();
    let m = utility.cols();
    debug_assert!(n <= m);

    // Convert maximization over utilities into minimization over costs.
    // Infeasible cells get a large *finite* penalty so the algorithm can
    // always complete a perfect matching on the n rows; pairs that end up
    // on a penalty cell are stripped from the result afterwards.
    let max_u = utility.max_finite().unwrap_or(0.0);
    let min_u = utility
        .iter()
        .map(|(_, _, v)| v)
        .filter(|v| v.is_finite())
        .fold(f64::INFINITY, f64::min);
    let min_u = if min_u.is_finite() { min_u } else { 0.0 };
    let span = (max_u - min_u).max(1.0);
    let forbidden_cost = span * (n + m + 1) as f64;
    let cost = |i: usize, j: usize| -> f64 {
        let u = utility[(i, j)];
        if u.is_finite() {
            max_u - u
        } else {
            forbidden_cost
        }
    };

    // Shortest-augmenting-path Hungarian with potentials (1-indexed, with
    // index 0 used as the virtual source column).
    let inf = f64::INFINITY;
    let mut pot_row = vec![0.0; n + 1];
    let mut pot_col = vec![0.0; m + 1];
    let mut matched_row = vec![0usize; m + 1]; // matched_row[j] = row matched to col j (0 = none)
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        matched_row[0] = i;
        let mut j0 = 0usize;
        let mut min_to_col = vec![inf; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = matched_row[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=m {
                if !used[j] {
                    let cur = cost(i0 - 1, j - 1) - pot_row[i0] - pot_col[j];
                    if cur < min_to_col[j] {
                        min_to_col[j] = cur;
                        way[j] = j0;
                    }
                    if min_to_col[j] < delta {
                        delta = min_to_col[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=m {
                if used[j] {
                    pot_row[matched_row[j]] += delta;
                    pot_col[j] -= delta;
                } else {
                    min_to_col[j] -= delta;
                }
            }
            j0 = j1;
            if matched_row[j0] == 0 {
                break;
            }
        }
        // Unwind the alternating path to augment the matching.
        loop {
            let j1 = way[j0];
            matched_row[j0] = matched_row[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    // Collect matches, dropping pairs that landed on infeasible cells.
    let mut pairs = Vec::with_capacity(n);
    #[allow(clippy::needless_range_loop)] // parallel arrays indexed together; zip would obscure it
    for j in 1..=m {
        let i = matched_row[j];
        if i == 0 {
            continue;
        }
        let (row, col) = (i - 1, j - 1);
        if utility[(row, col)].is_finite() {
            pairs.push((row, col));
        }
    }

    if flipped {
        for p in &mut pairs {
            *p = (p.1, p.0);
        }
    }
    pairs.sort_unstable();

    let (out_rows, out_cols) = if flipped { (m, n) } else { (n, m) };
    let lookup = |i: usize, j: usize| {
        if flipped {
            utility[(j, i)]
        } else {
            utility[(i, j)]
        }
    };
    let mut row_to_col = vec![None; out_rows];
    let mut col_to_row = vec![None; out_cols];
    let mut total = 0.0;
    for &(r, c) in &pairs {
        row_to_col[r] = Some(c);
        col_to_row[c] = Some(r);
        total += lookup(r, c);
    }

    Assignment {
        pairs,
        total,
        row_to_col,
        col_to_row,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;

    fn assignment_for(rows: &[Vec<f64>]) -> Assignment {
        max_weight_assignment(&Matrix::from_rows(rows).unwrap())
    }

    #[test]
    fn one_by_one() {
        let a = assignment_for(&[vec![5.0]]);
        assert_eq!(a.pairs, vec![(0, 0)]);
        assert_eq!(a.total, 5.0);
    }

    #[test]
    fn square_diagonal_dominant() {
        let a = assignment_for(&[
            vec![10.0, 1.0, 1.0],
            vec![1.0, 10.0, 1.0],
            vec![1.0, 1.0, 10.0],
        ]);
        assert_eq!(a.pairs, vec![(0, 0), (1, 1), (2, 2)]);
        assert_eq!(a.total, 30.0);
    }

    #[test]
    fn square_antidiagonal_optimal() {
        let a = assignment_for(&[vec![1.0, 10.0], vec![10.0, 1.0]]);
        assert_eq!(a.pairs, vec![(0, 1), (1, 0)]);
        assert_eq!(a.total, 20.0);
    }

    #[test]
    fn paper_fig3_phase1_utilities() {
        // Fig. 3a rates: c = (60, 20), r = [[15, 10], [40, 20]].
        // Phase I utilities u_ij = min(c_j/2, r_ij):
        //   user 1: min(30,15)=15, min(10,10)=10
        //   user 2: min(30,40)=30, min(10,20)=10
        let a = assignment_for(&[vec![15.0, 10.0], vec![30.0, 10.0]]);
        assert_eq!(a.total, 40.0);
        // The optimal matching puts user 2 (index 1) on extender 1 (index 0).
        assert_eq!(a.row_to_col[1], Some(0));
        assert_eq!(a.row_to_col[0], Some(1));
    }

    #[test]
    fn rectangular_more_rows_selects_best_subset() {
        // 3 users, 2 extenders: only the two best users get matched.
        let a = assignment_for(&[vec![1.0, 1.0], vec![5.0, 6.0], vec![7.0, 2.0]]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.total, 13.0); // user 2 -> ext 1 (6), user 3 -> ext 0 (7)
        assert_eq!(a.row_to_col[0], None);
    }

    #[test]
    fn rectangular_more_cols_matches_all_rows() {
        let a = assignment_for(&[vec![1.0, 9.0, 3.0]]);
        assert_eq!(a.pairs, vec![(0, 1)]);
        assert_eq!(a.total, 9.0);
    }

    #[test]
    fn infeasible_cells_avoided() {
        let ninf = f64::NEG_INFINITY;
        let a = assignment_for(&[vec![ninf, 4.0], vec![3.0, ninf]]);
        assert_eq!(a.pairs, vec![(0, 1), (1, 0)]);
        assert_eq!(a.total, 7.0);
    }

    #[test]
    fn fully_infeasible_row_left_unmatched() {
        let ninf = f64::NEG_INFINITY;
        let a = assignment_for(&[vec![ninf, ninf], vec![3.0, 5.0]]);
        assert_eq!(a.len(), 1);
        assert_eq!(a.row_to_col[0], None);
        assert_eq!(a.total, 5.0);
    }

    #[test]
    fn nan_treated_as_infeasible() {
        let a = assignment_for(&[vec![f64::NAN, 2.0], vec![1.0, f64::NAN]]);
        assert_eq!(a.pairs, vec![(0, 1), (1, 0)]);
        assert_eq!(a.total, 3.0);
    }

    #[test]
    fn negative_utilities_supported() {
        let a = assignment_for(&[vec![-1.0, -5.0], vec![-5.0, -2.0]]);
        assert_eq!(a.pairs, vec![(0, 0), (1, 1)]);
        assert_eq!(a.total, -3.0);
    }

    #[test]
    fn ties_still_produce_valid_matching() {
        let a = assignment_for(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.total, 2.0);
        // Each column used exactly once.
        let mut cols: Vec<_> = a.pairs.iter().map(|p| p.1).collect();
        cols.sort_unstable();
        assert_eq!(cols, vec![0, 1]);
    }

    #[test]
    fn lookups_consistent_with_pairs() {
        let a = assignment_for(&[vec![4.0, 1.0, 2.0], vec![2.0, 8.0, 3.0]]);
        for &(r, c) in &a.pairs {
            assert_eq!(a.row_to_col[r], Some(c));
            assert_eq!(a.col_to_row[c], Some(r));
        }
    }

    #[test]
    fn matches_brute_force_on_random_square_matrices() {
        use wolt_support::rng::{Rng, SeedableRng};
        let mut rng = wolt_support::rng::ChaCha8Rng::seed_from_u64(42);
        for n in 2..=6 {
            for _ in 0..20 {
                let m = Matrix::from_fn(n, n, |_, _| rng.gen_range(0.0..100.0)).unwrap();
                let hung = max_weight_assignment(&m);
                let (_, best) = brute::best_perfect_matching(&m);
                assert!(
                    (hung.total - best).abs() < 1e-6,
                    "hungarian {} != brute {} on {m}",
                    hung.total,
                    best
                );
            }
        }
    }

    #[test]
    fn matches_brute_force_on_random_rectangular_matrices() {
        use wolt_support::rng::{Rng, SeedableRng};
        let mut rng = wolt_support::rng::ChaCha8Rng::seed_from_u64(7);
        for (rows, cols) in [(2usize, 5usize), (5, 2), (3, 4), (4, 3), (6, 3)] {
            for _ in 0..20 {
                let m = Matrix::from_fn(rows, cols, |_, _| rng.gen_range(0.0..50.0)).unwrap();
                let hung = max_weight_assignment(&m);
                let (_, best) = brute::best_perfect_matching(&m);
                assert!(
                    (hung.total - best).abs() < 1e-6,
                    "hungarian {} != brute {} on {m}",
                    hung.total,
                    best
                );
            }
        }
    }
}
