use std::error::Error;
use std::fmt;

use wolt_opt::OptError;
use wolt_plc::PlcError;
use wolt_wifi::WifiError;

/// Errors produced by the WOLT core.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The rate matrix and capacity vector disagree on the number of
    /// extenders, or another pair of related inputs has mismatched shapes.
    DimensionMismatch {
        /// Human-readable description of what disagreed.
        context: &'static str,
    },
    /// An extender capacity was zero, negative, or non-finite.
    UnusableCapacity {
        /// Index of the offending extender.
        extender: usize,
    },
    /// A user cannot reach any extender (all its rates are unusable), so no
    /// complete association exists.
    UnreachableUser {
        /// Index of the offending user.
        user: usize,
    },
    /// An association referenced an extender index outside the network.
    UnknownExtender {
        /// The offending extender index.
        extender: usize,
    },
    /// An association left a user unassigned where a complete association
    /// is required (constraint (7) of Problem 1).
    IncompleteAssociation {
        /// Index of the unassigned user.
        user: usize,
    },
    /// An association connected a user to an extender it cannot reach.
    InfeasibleAssociation {
        /// Index of the offending user.
        user: usize,
        /// The unreachable extender.
        extender: usize,
    },
    /// An association exceeded an extender's user limit `B_j`
    /// (constraint (8) of Problem 1).
    CapacityExceeded {
        /// Index of the overloaded extender.
        extender: usize,
        /// The limit that was exceeded.
        limit: usize,
    },
    /// An underlying substrate failed.
    Substrate {
        /// Description of the failing substrate call.
        context: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            CoreError::UnusableCapacity { extender } => {
                write!(f, "unusable capacity on extender {extender}")
            }
            CoreError::UnreachableUser { user } => {
                write!(f, "user {user} cannot reach any extender")
            }
            CoreError::UnknownExtender { extender } => {
                write!(f, "unknown extender {extender}")
            }
            CoreError::IncompleteAssociation { user } => {
                write!(f, "user {user} left unassigned")
            }
            CoreError::InfeasibleAssociation { user, extender } => {
                write!(f, "user {user} cannot reach extender {extender}")
            }
            CoreError::CapacityExceeded { extender, limit } => {
                write!(f, "extender {extender} exceeds its limit of {limit} users")
            }
            CoreError::Substrate { context } => write!(f, "substrate failure: {context}"),
        }
    }
}

impl Error for CoreError {}

impl From<WifiError> for CoreError {
    fn from(e: WifiError) -> Self {
        CoreError::Substrate {
            context: format!("wifi: {e}"),
        }
    }
}

impl From<PlcError> for CoreError {
    fn from(e: PlcError) -> Self {
        CoreError::Substrate {
            context: format!("plc: {e}"),
        }
    }
}

impl From<OptError> for CoreError {
    fn from(e: OptError) -> Self {
        CoreError::Substrate {
            context: format!("opt: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CoreError::UnreachableUser { user: 2 }.to_string(),
            "user 2 cannot reach any extender"
        );
        assert_eq!(
            CoreError::CapacityExceeded {
                extender: 1,
                limit: 3
            }
            .to_string(),
            "extender 1 exceeds its limit of 3 users"
        );
    }

    #[test]
    fn substrate_errors_convert() {
        let e: CoreError = WifiError::EmptyCell.into();
        assert!(e.to_string().contains("wifi"));
        let e: CoreError = PlcError::UnknownOutlet { outlet: 1 }.into();
        assert!(e.to_string().contains("plc"));
        let e: CoreError = OptError::EmptyMatrix.into();
        assert!(e.to_string().contains("opt"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
