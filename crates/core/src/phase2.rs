//! Phase II of WOLT: assigning the remaining users.
//!
//! After Phase I pins one user per extender, constraint (7) returns: every
//! remaining user (`U2`) must connect somewhere. Problem 2 of the paper
//! assigns them to maximize the *WiFi-side* aggregate Σ_j T_wifi(j) with
//! the Phase-I users fixed — the PLC side is already saturated by Phase I,
//! so additional users mostly reshuffle WiFi contention. The paper solves
//! the fractional relaxation numerically (interior point, stop at 1e-5)
//! and proves (Theorem 3) an integral optimum exists.
//!
//! [`run_phase2`] mirrors that: a projected-gradient solve of the
//! fractional program over per-user simplices, then Theorem-3-style
//! integral extraction (each user lands on its best extender), then a
//! discrete coordinate-ascent polish. [`run_phase2_greedy`] skips the NLP
//! and assigns users purely by marginal gain — the ablation showing what
//! the fractional solve buys.

use wolt_opt::{Objective, ProjectedGradient, SolveReport};
use wolt_wifi::cell::CellLoad;

use crate::{Association, CoreError, IncrementalEvaluator, Network};

/// Configuration for Phase II.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase2Config {
    /// Fractional solver settings (the paper stops at 1e-5 improvement).
    pub solver: ProjectedGradient,
    /// Maximum discrete coordinate-ascent passes after extraction.
    pub polish_passes: usize,
    /// Minimum discrete improvement worth moving a user for.
    pub polish_tol: f64,
}

impl Default for Phase2Config {
    fn default() -> Self {
        Self {
            solver: ProjectedGradient::new(),
            polish_passes: 20,
            polish_tol: 1e-5,
        }
    }
}

/// Result of Phase II.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase2Outcome {
    /// The completed association (Phase-I users untouched).
    pub association: Association,
    /// Report of the fractional solve (`None` when `U2` was empty or the
    /// greedy variant ran).
    pub fractional: Option<SolveReport>,
    /// Final discrete WiFi-side objective Σ_j T_wifi(j).
    pub wifi_objective: f64,
}

/// The fractional Problem-2 objective over `U2` users' simplex rows.
struct Phase2Objective {
    /// Fixed user count per extender (from Phase I).
    fixed_count: Vec<f64>,
    /// Fixed harmonic weight Σ 1/r per extender (from Phase I).
    fixed_weight: Vec<f64>,
    /// `inv_rate[k][j] = 1 / r_{u2[k], j}` (0 where unreachable — masked).
    inv_rate: Vec<Vec<f64>>,
}

impl Phase2Objective {
    /// Per-extender mass `N_j` and weight `S_j` contributed by `x`.
    fn totals(&self, x: &[Vec<f64>]) -> (Vec<f64>, Vec<f64>) {
        let n_ext = self.fixed_count.len();
        let mut mass = self.fixed_count.clone();
        let mut weight = self.fixed_weight.clone();
        for (k, row) in x.iter().enumerate() {
            for j in 0..n_ext {
                mass[j] += row[j];
                weight[j] += row[j] * self.inv_rate[k][j];
            }
        }
        (mass, weight)
    }
}

impl Objective for Phase2Objective {
    fn value(&self, x: &[Vec<f64>]) -> f64 {
        let (mass, weight) = self.totals(x);
        mass.iter()
            .zip(&weight)
            .map(|(&m, &w)| if w > 1e-12 { m / w } else { 0.0 })
            .sum()
    }

    fn gradient(&self, x: &[Vec<f64>], grad: &mut [Vec<f64>]) {
        let (mass, weight) = self.totals(x);
        for (k, grow) in grad.iter_mut().enumerate() {
            for (j, g) in grow.iter_mut().enumerate() {
                let inv_r = self.inv_rate[k][j];
                if inv_r == 0.0 {
                    // Masked (unreachable) coordinate; the projection keeps
                    // it at zero regardless.
                    *g = 0.0;
                    continue;
                }
                let w = weight[j];
                if w > 1e-12 {
                    // d/dx of (m + x)/(w + x/r) at the current point.
                    *g = (w - mass[j] * inv_r) / (w * w);
                } else {
                    // Empty extender: the first unit of mass is worth the
                    // user's full rate.
                    *g = 1.0 / inv_r;
                }
            }
        }
    }
}

/// Runs Phase II with the fractional solve + integral extraction.
///
/// `phase1` must be a (possibly partial) association valid for `net`; its
/// assigned users are treated as fixed.
///
/// # Errors
///
/// Propagates association-validation and solver errors.
pub fn run_phase2(
    net: &Network,
    phase1: &Association,
    config: &Phase2Config,
) -> Result<Phase2Outcome, CoreError> {
    net.validate_association(phase1)?;
    let u2 = phase1.unassigned_users();
    if u2.is_empty() {
        let wifi_objective = wifi_objective(net, phase1);
        return Ok(Phase2Outcome {
            association: phase1.clone(),
            fractional: None,
            wifi_objective,
        });
    }

    let n_ext = net.extenders();
    let (fixed_count, fixed_weight) = fixed_cells(net, phase1);

    let inv_rate: Vec<Vec<f64>> = u2
        .iter()
        .map(|&i| {
            (0..n_ext)
                .map(|j| net.rate(i, j).map_or(0.0, |r| 1.0 / r.value()))
                .collect()
        })
        .collect();
    let masks: Vec<Vec<bool>> = u2
        .iter()
        .map(|&i| (0..n_ext).map(|j| net.reachable(i, j)).collect())
        .collect();

    // Uniform feasible start over each user's reachable extenders.
    let x0: Vec<Vec<f64>> = masks
        .iter()
        .map(|mask| {
            let k = mask.iter().filter(|&&b| b).count() as f64;
            mask.iter()
                .map(|&b| if b { 1.0 / k } else { 0.0 })
                .collect()
        })
        .collect();

    let objective = Phase2Objective {
        fixed_count,
        fixed_weight,
        inv_rate,
    };
    let report = config.solver.maximize(&objective, x0, Some(&masks))?;

    // Theorem-3 integral extraction: each user snaps to its largest
    // fractional coordinate...
    let mut association = phase1.clone();
    for (k, &i) in u2.iter().enumerate() {
        let row = &report.x[k];
        let best = (0..n_ext)
            .filter(|&j| masks[k][j])
            .max_by(|&a, &b| row[a].partial_cmp(&row[b]).expect("finite x"))
            .expect("validated users reach at least one extender");
        association.assign(i, best);
    }
    // ...then a discrete coordinate-ascent polish removes any extraction
    // loss (Theorem 3 guarantees an integral optimum exists).
    polish(net, &mut association, &u2, config)?;

    let wifi_objective = wifi_objective(net, &association);
    Ok(Phase2Outcome {
        association,
        fractional: Some(report),
        wifi_objective,
    })
}

/// Greedy Phase II: assigns each `U2` user (in index order) to the
/// extender with the best marginal WiFi gain, then polishes. No fractional
/// solve.
///
/// # Errors
///
/// Propagates association-validation failures.
pub fn run_phase2_greedy(
    net: &Network,
    phase1: &Association,
    config: &Phase2Config,
) -> Result<Phase2Outcome, CoreError> {
    net.validate_association(phase1)?;
    let u2 = phase1.unassigned_users();
    let mut association = phase1.clone();

    let mut cells = build_cells(net, &association);
    for &i in &u2 {
        let mut best: Option<(usize, f64)> = None;
        for j in net.reachable_extenders(i) {
            let rate = net.rate(i, j).expect("reachable");
            let gain = cells[j].aggregate_if_joined(rate).value() - cells[j].aggregate().value();
            if best.is_none_or(|(_, g)| gain > g) {
                best = Some((j, gain));
            }
        }
        let (j, _) = best.expect("validated users reach at least one extender");
        cells[j].join(net.rate(i, j).expect("reachable"));
        association.assign(i, j);
    }
    polish(net, &mut association, &u2, config)?;

    let wifi_objective = wifi_objective(net, &association);
    Ok(Phase2Outcome {
        association,
        fractional: None,
        wifi_objective,
    })
}

/// Σ_j T_wifi(j) of a (partial) association — Problem 2's objective.
pub fn wifi_objective(net: &Network, assoc: &Association) -> f64 {
    build_cells(net, assoc)
        .iter()
        .map(|c| c.aggregate().value())
        .sum()
}

fn fixed_cells(net: &Network, assoc: &Association) -> (Vec<f64>, Vec<f64>) {
    let mut count = vec![0.0; net.extenders()];
    let mut weight = vec![0.0; net.extenders()];
    for (i, target) in assoc.iter().enumerate() {
        if let Some(j) = target {
            count[j] += 1.0;
            weight[j] += 1.0 / net.rate(i, j).expect("validated").value();
        }
    }
    (count, weight)
}

fn build_cells(net: &Network, assoc: &Association) -> Vec<CellLoad> {
    let mut cells = vec![CellLoad::new(); net.extenders()];
    for (i, target) in assoc.iter().enumerate() {
        if let Some(j) = target {
            cells[j].join(net.rate(i, j).expect("validated"));
        }
    }
    cells
}

/// Discrete coordinate ascent: move one `U2` user at a time to the
/// extender that most improves Σ_j T_wifi(j), until a full pass finds no
/// move worth more than `polish_tol` (or the pass budget runs out).
///
/// Scored through [`IncrementalEvaluator::probe_wifi_delta`] — O(1) per
/// candidate instead of rebuilding cells — with the same float operations
/// as the original direct-cell scoring, so the chosen moves are identical.
/// Candidates that would overflow an extender's user limit are skipped.
fn polish(
    net: &Network,
    assoc: &mut Association,
    movable: &[usize],
    config: &Phase2Config,
) -> Result<(), CoreError> {
    let mut evaluator = IncrementalEvaluator::new(net, assoc)?;
    let mut rounds: u64 = 0;
    for _ in 0..config.polish_passes {
        rounds += 1;
        let mut improved = false;
        for &i in movable {
            let current = evaluator
                .association()
                .target(i)
                .expect("movable users are assigned");
            let mut best: Option<(usize, f64)> = None;
            for j in net.reachable_extenders(i) {
                if j == current {
                    continue;
                }
                let Ok(delta) = evaluator.probe_wifi_delta(i, Some(j)) else {
                    continue; // full cell — inadmissible candidate
                };
                if delta > config.polish_tol && best.is_none_or(|(_, d)| delta > d) {
                    best = Some((j, delta));
                }
            }
            if let Some((j, _)) = best {
                evaluator.apply_move(i, Some(j))?;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    wolt_support::obs::counter_add("core.polish_rounds", rounds);
    *assoc = evaluator.into_association();
    Ok(())
}

/// Warm-started re-solve: coordinate-ascent [`polish`] of an existing
/// *complete* association, with every user movable. Where a cold solve
/// rebuilds the assignment from scratch (Phase I + Phase II), this
/// starts from `start` — typically the previous epoch's plan under
/// slightly shifted telemetry — and only walks users whose move improves
/// Σ_j T_wifi(j) by more than `config.polish_tol`. Moves that would
/// overflow an extender's user limit are skipped, so a valid start stays
/// valid.
///
/// # Errors
///
/// [`CoreError::IncompleteAssociation`] when `start` leaves a user
/// unassigned (warm starts need a full previous plan), plus `start`
/// validation errors against `net`.
pub fn refine_association(
    net: &Network,
    start: &Association,
    config: &Phase2Config,
) -> Result<Association, CoreError> {
    net.validate_association(start)?;
    if let Some(&user) = start.unassigned_users().first() {
        return Err(CoreError::IncompleteAssociation { user });
    }
    let mut assoc = start.clone();
    let movable: Vec<usize> = (0..net.users()).collect();
    polish(net, &mut assoc, &movable, config)?;
    Ok(assoc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase1::run_phase1;

    fn net_3x5() -> Network {
        Network::from_raw(
            vec![100.0, 80.0, 60.0],
            vec![
                vec![30.0, 20.0, 10.0],
                vec![25.0, 35.0, 15.0],
                vec![12.0, 18.0, 40.0],
                vec![22.0, 14.0, 9.0],
                vec![16.0, 21.0, 11.0],
            ],
        )
        .unwrap()
    }

    #[test]
    fn refine_improves_or_preserves_a_complete_start() {
        let net = net_3x5();
        let start = Association::complete(vec![0, 1, 2, 0, 1]);
        net.validate_association(&start).unwrap();
        let refined = refine_association(&net, &start, &Phase2Config::default()).unwrap();
        assert!(refined.is_complete());
        net.validate_association(&refined).unwrap();
        // Coordinate ascent only takes improving moves.
        assert!(wifi_objective(&net, &refined) >= wifi_objective(&net, &start) - 1e-12);
        // A refined association is a fixed point of further refinement.
        let again = refine_association(&net, &refined, &Phase2Config::default()).unwrap();
        assert_eq!(again, refined);
    }

    #[test]
    fn refine_rejects_a_partial_start() {
        let net = net_3x5();
        let start = Association::from_targets(vec![Some(0), None, Some(2), Some(0), Some(1)]);
        assert!(matches!(
            refine_association(&net, &start, &Phase2Config::default()),
            Err(CoreError::IncompleteAssociation { user: 1 })
        ));
    }

    #[test]
    fn completes_the_association() {
        let net = net_3x5();
        let p1 = run_phase1(&net).unwrap();
        let p2 = run_phase2(&net, &p1.association, &Phase2Config::default()).unwrap();
        assert!(p2.association.is_complete());
        assert!(net.validate_association(&p2.association).is_ok());
        // Phase-I users were not moved.
        for &i in &p1.selected_users {
            assert_eq!(p2.association.target(i), p1.association.target(i));
        }
    }

    #[test]
    fn empty_u2_returns_input() {
        let net =
            Network::from_raw(vec![100.0, 80.0], vec![vec![30.0, 20.0], vec![25.0, 35.0]]).unwrap();
        let p1 = run_phase1(&net).unwrap();
        assert!(p1.association.is_complete());
        let p2 = run_phase2(&net, &p1.association, &Phase2Config::default()).unwrap();
        assert_eq!(p2.association, p1.association);
        assert!(p2.fractional.is_none());
    }

    #[test]
    fn fractional_solve_converges() {
        let net = net_3x5();
        let p1 = run_phase1(&net).unwrap();
        let p2 = run_phase2(&net, &p1.association, &Phase2Config::default()).unwrap();
        let report = p2.fractional.expect("u2 non-empty");
        assert!(report.converged);
    }

    #[test]
    fn fractional_solutions_are_near_integral() {
        // Theorem 3: the optimum is integral; the solver should end close
        // to a vertex for generic instances.
        let net = net_3x5();
        let p1 = run_phase1(&net).unwrap();
        let p2 = run_phase2(&net, &p1.association, &Phase2Config::default()).unwrap();
        let report = p2.fractional.expect("u2 non-empty");
        for row in &report.x {
            let max = row.iter().cloned().fold(0.0, f64::max);
            assert!(
                max > 0.9,
                "fractional row not near-integral: {row:?} (max {max})"
            );
        }
    }

    #[test]
    fn phase2_beats_or_matches_greedy_variant() {
        let net = net_3x5();
        let p1 = run_phase1(&net).unwrap();
        let cfg = Phase2Config::default();
        let nlp = run_phase2(&net, &p1.association, &cfg).unwrap();
        let greedy = run_phase2_greedy(&net, &p1.association, &cfg).unwrap();
        // Both polish to local optima of the same objective; the NLP start
        // should never be worse after polishing.
        assert!(nlp.wifi_objective >= greedy.wifi_objective - 1e-6);
    }

    #[test]
    fn phase2_matches_brute_force_on_small_instance() {
        use wolt_opt::brute::best_full_assignment;
        let net = Network::from_raw(
            vec![100.0, 90.0],
            vec![
                vec![30.0, 20.0],
                vec![25.0, 35.0],
                vec![12.0, 18.0],
                vec![22.0, 14.0],
            ],
        )
        .unwrap();
        let p1 = run_phase1(&net).unwrap();
        let p2 = run_phase2(&net, &p1.association, &Phase2Config::default()).unwrap();

        // Brute-force the same restricted problem: Phase-I users fixed,
        // the rest free, objective = Σ T_wifi.
        let u2 = p1.association.unassigned_users();
        let (_, best) = best_full_assignment(u2.len(), net.extenders(), |targets| {
            let mut assoc = p1.association.clone();
            for (k, &i) in u2.iter().enumerate() {
                assoc.assign(i, targets[k]);
            }
            if net.validate_association(&assoc).is_err() {
                return f64::NEG_INFINITY;
            }
            wifi_objective(&net, &assoc)
        });
        assert!(
            (p2.wifi_objective - best).abs() < 1e-6,
            "phase2 {} vs brute {}",
            p2.wifi_objective,
            best
        );
    }

    #[test]
    fn greedy_variant_completes_too() {
        let net = net_3x5();
        let p1 = run_phase1(&net).unwrap();
        let p2 = run_phase2_greedy(&net, &p1.association, &Phase2Config::default()).unwrap();
        assert!(p2.association.is_complete());
        assert!(p2.fractional.is_none());
    }

    #[test]
    fn respects_reachability() {
        // User 3 and 4 can only reach extender 0.
        let net = Network::from_raw(
            vec![100.0, 80.0],
            vec![
                vec![30.0, 20.0],
                vec![25.0, 35.0],
                vec![10.0, 0.0],
                vec![15.0, 0.0],
            ],
        )
        .unwrap();
        let p1 = run_phase1(&net).unwrap();
        let p2 = run_phase2(&net, &p1.association, &Phase2Config::default()).unwrap();
        for i in [2, 3] {
            if p1.association.target(i).is_none() {
                assert_eq!(p2.association.target(i), Some(0));
            }
        }
    }

    #[test]
    fn wifi_objective_counts_all_cells() {
        let net = net_3x5();
        let assoc = Association::complete(vec![0, 1, 2, 0, 1]);
        let direct: f64 = (0..3)
            .map(|j| {
                let users = assoc.users_of(j);
                let rates: Vec<_> = users.iter().map(|&i| net.rate(i, j).unwrap()).collect();
                wolt_wifi::cell::aggregate_throughput(&rates)
                    .unwrap()
                    .value()
            })
            .sum();
        assert!((wifi_objective(&net, &assoc) - direct).abs() < 1e-9);
    }
}
