//! Problem 1 of the paper, as an explicit object.
//!
//! [`crate::evaluate`] scores associations under the physical model; this
//! module makes the *optimization problem* itself a first-class value:
//! the constraint set (Eqs. 4–10), the objective (Eq. 3), and the lemmas
//! the paper proves about it, executable. It exists for three audiences:
//!
//! * tests — Lemma 1's disconnect/connect conditions are checked on
//!   random instances;
//! * diagnostics — [`Problem1::check`] explains exactly which constraint
//!   an association violates;
//! * readers — the code ↔ paper mapping is explicit (each method names
//!   its equation).

use wolt_units::Mbps;

use crate::{evaluate, evaluate_without_redistribution, Association, CoreError, Network};

/// The PLC-WiFi user-assignment problem (Problem 1 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct Problem1 {
    network: Network,
}

/// Which variant of the objective to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectiveModel {
    /// The literal Eq. 3–4 objective: `Σ_j min(T_wifi(j), c_j/A)` with
    /// `A` = active extenders and no airtime redistribution.
    Literal,
    /// The physical model with leftover-airtime redistribution (what the
    /// paper's hardware — and all our experiments — actually do).
    Physical,
}

/// Outcome of a constraint check.
#[derive(Debug, Clone, PartialEq)]
pub enum Feasibility {
    /// All constraints hold.
    Feasible,
    /// Constraint (7): some user is unassigned.
    Unassigned {
        /// The offending user.
        user: usize,
    },
    /// Constraint (8): an extender exceeds its `B_j`.
    OverCapacity {
        /// The overloaded extender.
        extender: usize,
    },
    /// A link outside the feasible set (user out of range, unknown
    /// extender, wrong length).
    InvalidLink {
        /// Explanation from network validation.
        reason: String,
    },
}

impl Problem1 {
    /// Wraps a network as a Problem-1 instance.
    pub fn new(network: Network) -> Self {
        Self { network }
    }

    /// The underlying network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Checks constraints (7)–(10) for `assoc` and reports the first
    /// violation in paper terms.
    pub fn check(&self, assoc: &Association) -> Feasibility {
        if let Err(e) = self.network.validate_association(assoc) {
            return match e {
                CoreError::CapacityExceeded { extender, .. } => {
                    Feasibility::OverCapacity { extender }
                }
                other => Feasibility::InvalidLink {
                    reason: other.to_string(),
                },
            };
        }
        match assoc.require_complete() {
            Ok(()) => Feasibility::Feasible,
            Err(CoreError::IncompleteAssociation { user }) => Feasibility::Unassigned { user },
            Err(other) => Feasibility::InvalidLink {
                reason: other.to_string(),
            },
        }
    }

    /// The objective value (Eq. 3) of a feasible association under the
    /// chosen model.
    ///
    /// # Errors
    ///
    /// Propagates validation/evaluation failures (the association need
    /// not be complete — Phase I evaluates partial ones).
    pub fn objective(&self, assoc: &Association, model: ObjectiveModel) -> Result<Mbps, CoreError> {
        let eval = match model {
            ObjectiveModel::Literal => evaluate_without_redistribution(&self.network, assoc)?,
            ObjectiveModel::Physical => evaluate(&self.network, assoc)?,
        };
        Ok(eval.aggregate)
    }

    /// Lemma 1, first claim: connecting user `i` to extender `j` does not
    /// decrease that cell's WiFi throughput iff `1/r_ij ≤ (1/|N_j|) Σ
    /// 1/r_i'j` over the current members. Returns `None` when the user is
    /// out of range of `j`.
    pub fn lemma1_join_improves(
        &self,
        assoc: &Association,
        user: usize,
        ext: usize,
    ) -> Option<bool> {
        let rate = self.network.rate(user, ext)?;
        let members = assoc.users_of(ext);
        if members.is_empty() {
            // Joining an empty cell trivially raises its throughput.
            return Some(true);
        }
        let mean_inv: f64 = members
            .iter()
            .map(|&m| {
                1.0 / self
                    .network
                    .rate(m, ext)
                    .expect("member is reachable")
                    .value()
            })
            .sum::<f64>()
            / members.len() as f64;
        Some(1.0 / rate.value() <= mean_inv + 1e-12)
    }

    /// Lemma 1, second claim: disconnecting `user` from its extender does
    /// not decrease that cell's WiFi throughput iff the user's `1/r` is at
    /// least the cell's mean `1/r`. Returns `None` if the user is
    /// unassigned.
    pub fn lemma1_leave_improves(&self, assoc: &Association, user: usize) -> Option<bool> {
        let ext = assoc.target(user)?;
        let members = assoc.users_of(ext);
        let mean_inv: f64 = members
            .iter()
            .map(|&m| {
                1.0 / self
                    .network
                    .rate(m, ext)
                    .expect("member is reachable")
                    .value()
            })
            .sum::<f64>()
            / members.len() as f64;
        let user_inv = 1.0
            / self
                .network
                .rate(user, ext)
                .expect("assigned user reachable")
                .value();
        Some(user_inv >= mean_inv - 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolt_wifi::cell::aggregate_throughput;

    fn fig3_problem() -> Problem1 {
        Problem1::new(
            Network::from_raw(vec![60.0, 20.0], vec![vec![15.0, 10.0], vec![40.0, 20.0]]).unwrap(),
        )
    }

    #[test]
    fn feasibility_cases() {
        let p = fig3_problem();
        assert_eq!(
            p.check(&Association::complete(vec![0, 1])),
            Feasibility::Feasible
        );
        assert_eq!(
            p.check(&Association::from_targets(vec![Some(0), None])),
            Feasibility::Unassigned { user: 1 }
        );
        assert!(matches!(
            p.check(&Association::complete(vec![0, 9])),
            Feasibility::InvalidLink { .. }
        ));
        let limited = Problem1::new(
            Network::from_raw(vec![60.0, 20.0], vec![vec![15.0, 10.0], vec![40.0, 20.0]])
                .unwrap()
                .with_user_limits(vec![Some(1), None])
                .unwrap(),
        );
        assert_eq!(
            limited.check(&Association::complete(vec![0, 0])),
            Feasibility::OverCapacity { extender: 0 }
        );
    }

    #[test]
    fn objectives_reproduce_fig3() {
        let p = fig3_problem();
        let greedy = Association::complete(vec![0, 1]);
        let physical = p.objective(&greedy, ObjectiveModel::Physical).unwrap();
        let literal = p.objective(&greedy, ObjectiveModel::Literal).unwrap();
        assert!((physical.value() - 30.0).abs() < 1e-9);
        assert!((literal.value() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn lemma1_join_matches_throughput_change() {
        // Verify the lemma's condition against the actual Eq. 1 change on
        // a grid of candidate rates.
        let members = [20.0, 30.0];
        for candidate in [5.0, 10.0, 20.0, 24.0, 30.0, 60.0] {
            let net = Network::from_raw(
                vec![1000.0],
                vec![vec![members[0]], vec![members[1]], vec![candidate]],
            )
            .unwrap();
            let p = Problem1::new(net);
            let assoc = Association::from_targets(vec![Some(0), Some(0), None]);
            let lemma = p.lemma1_join_improves(&assoc, 2, 0).unwrap();
            let before =
                aggregate_throughput(&[Mbps::new(members[0]), Mbps::new(members[1])]).unwrap();
            let after = aggregate_throughput(&[
                Mbps::new(members[0]),
                Mbps::new(members[1]),
                Mbps::new(candidate),
            ])
            .unwrap();
            assert_eq!(
                lemma,
                after.value() >= before.value() - 1e-9,
                "candidate {candidate}: lemma {lemma} vs actual {} -> {}",
                before,
                after
            );
        }
    }

    #[test]
    fn lemma1_leave_matches_throughput_change() {
        let rates = [10.0, 20.0, 40.0];
        let net =
            Network::from_raw(vec![1000.0], rates.iter().map(|&r| vec![r]).collect()).unwrap();
        let p = Problem1::new(net);
        let assoc = Association::complete(vec![0, 0, 0]);
        for user in 0..3 {
            let lemma = p.lemma1_leave_improves(&assoc, user).unwrap();
            let all: Vec<Mbps> = rates.iter().map(|&r| Mbps::new(r)).collect();
            let without: Vec<Mbps> = rates
                .iter()
                .enumerate()
                .filter(|&(k, _)| k != user)
                .map(|(_, &r)| Mbps::new(r))
                .collect();
            let before = aggregate_throughput(&all).unwrap();
            let after = aggregate_throughput(&without).unwrap();
            assert_eq!(
                lemma,
                after.value() >= before.value() - 1e-9,
                "user {user}: lemma {lemma} vs actual {before} -> {after}"
            );
        }
    }

    #[test]
    fn lemma1_edge_cases() {
        let p = fig3_problem();
        // Joining an empty cell always improves.
        let empty = Association::unassigned(2);
        assert_eq!(p.lemma1_join_improves(&empty, 0, 0), Some(true));
        // Out-of-range join and unassigned leave return None.
        let net =
            Network::from_raw(vec![60.0, 20.0], vec![vec![15.0, 0.0], vec![40.0, 20.0]]).unwrap();
        let p2 = Problem1::new(net);
        assert_eq!(p2.lemma1_join_improves(&empty, 0, 1), None);
        assert_eq!(p2.lemma1_leave_improves(&empty, 0), None);
    }

    #[test]
    fn physical_objective_dominates_literal() {
        let p = fig3_problem();
        for assoc in [
            Association::complete(vec![0, 0]),
            Association::complete(vec![0, 1]),
            Association::complete(vec![1, 0]),
            Association::complete(vec![1, 1]),
        ] {
            let physical = p.objective(&assoc, ObjectiveModel::Physical).unwrap();
            let literal = p.objective(&assoc, ObjectiveModel::Literal).unwrap();
            assert!(physical >= literal - Mbps::new(1e-9));
        }
    }
}
