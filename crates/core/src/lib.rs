//! # WOLT — auto-configuration of integrated enterprise PLC-WiFi networks
//!
//! A from-scratch reproduction of *"WOLT: Auto-Configuration of Integrated
//! Enterprise PLC-WiFi Networks"* (Alhulayyil et al., ICDCS 2020). This
//! crate is the paper's primary contribution: the network model, the
//! NP-hard user-association problem (Problem 1), the two-phase
//! polynomial-time WOLT algorithm (Algorithm 1), and the baselines it is
//! evaluated against.
//!
//! ## The problem
//!
//! WiFi extenders backhauled over power lines expose users to *two*
//! concatenated shared media with different sharing laws:
//!
//! * each extender's **WiFi** cell is *throughput-fair* — every associated
//!   user gets `1/Σ(1/r_i)` (Eq. 1, the 802.11 performance anomaly);
//! * the **PLC** backhaul is *time-fair* — each active extender gets an
//!   equal airtime share of the powerline medium, with unused airtime
//!   redistributed (Eq. 2 + the Fig. 3c refinement).
//!
//! A cell delivers the min of its two segments, so naive strongest-signal
//! association can easily halve the network's aggregate throughput.
//! Choosing the association that maximizes the aggregate is NP-hard
//! (Theorem 1, executable in [`hardness`]).
//!
//! ## The algorithm
//!
//! [`Wolt`] implements Algorithm 1: Phase I ([`phase1`]) relaxes the
//! problem to a maximum-weight assignment with utilities
//! `u_ij = min(c_j/|A|, r_ij)` solved by the Hungarian method; Phase II
//! ([`phase2`]) places the remaining users by solving a nonlinear program
//! whose optimum is provably integral (Theorem 3).
//!
//! ## Quickstart
//!
//! ```
//! use wolt_core::{baselines, evaluate, AssociationPolicy, Network, Wolt};
//!
//! # fn main() -> Result<(), wolt_core::CoreError> {
//! // The paper's Fig. 3 case study: 2 extenders, 2 users.
//! let net = Network::from_raw(
//!     vec![60.0, 20.0],                         // PLC capacities c_j
//!     vec![vec![15.0, 10.0], vec![40.0, 20.0]], // WiFi rates r_ij
//! )?;
//!
//! let wolt = evaluate(&net, &Wolt::new().associate(&net)?)?.aggregate;
//! let rssi = evaluate(&net, &baselines::Rssi.associate(&net)?)?.aggregate;
//! let greedy = evaluate(&net, &baselines::Greedy::new().associate(&net)?)?.aggregate;
//!
//! assert!((wolt.value() - 40.0).abs() < 1e-9);   // Fig. 3d
//! assert!((greedy.value() - 30.0).abs() < 1e-9); // Fig. 3c
//! assert!((rssi.value() - 21.8).abs() < 0.05);   // Fig. 3b
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod fairness;
pub mod hardness;
pub mod incremental;
pub mod online;
pub mod phase1;
pub mod phase2;
pub mod problem;
pub mod report;
pub mod telemetry;

mod algorithm;
mod error;
mod model;
mod policy;
mod throughput;

pub use algorithm::{Phase2Solver, Wolt};
pub use error::CoreError;
pub use incremental::IncrementalEvaluator;
pub use model::{Association, Network};
pub use online::{OnlineOutcome, OnlineWolt};
pub use phase1::{Phase1Solver, Phase1Utility};
pub use policy::AssociationPolicy;
pub use telemetry::{TelemetryCache, TelemetryEntry};
pub use throughput::{evaluate, evaluate_without_redistribution, Evaluation};
