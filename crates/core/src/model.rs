//! Network model: users, extenders, rates, and associations.
//!
//! Mirrors the paper's Table I notation:
//!
//! | Paper | Here |
//! |---|---|
//! | `A` — set of extenders | `Network::extenders()` (indices `0..A`) |
//! | `U` — set of users | `Network::users()` (indices `0..U`) |
//! | `c_j` — PLC rate of extender j | `Network::capacity(j)` |
//! | `r_ij` — WiFi rate of user i at extender j | `Network::rate(i, j)` |
//! | `B_j` — user limit of extender j | `Network::user_limit(j)` |
//! | `x_ij` — association indicator | [`Association`] |
//! | `N_j` — users on extender j | `Association::users_of(j)` |

use wolt_opt::Matrix;
use wolt_support::json::{FromJson, Json, JsonError, ToJson};
use wolt_units::Mbps;

use crate::CoreError;

/// A PLC-WiFi network instance: extender PLC capacities and the user ×
/// extender achievable-WiFi-rate matrix.
///
/// Rates that are zero, negative, or non-finite mean "user cannot reach
/// this extender". Construction validates that every extender has a usable
/// capacity and every user can reach at least one extender.
///
/// # Example
///
/// The paper's Fig. 3a case-study network:
///
/// ```
/// use wolt_core::Network;
/// use wolt_units::Mbps;
///
/// # fn main() -> Result<(), wolt_core::CoreError> {
/// let net = Network::from_raw(
///     vec![60.0, 20.0],                       // c_j
///     vec![vec![15.0, 10.0], vec![40.0, 20.0]], // r_ij
/// )?;
/// assert_eq!(net.extenders(), 2);
/// assert_eq!(net.users(), 2);
/// assert_eq!(net.rate(1, 0), Some(Mbps::new(40.0)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    capacities: Vec<Mbps>,
    rates: Matrix,
    user_limits: Vec<Option<usize>>,
}

impl Network {
    /// Builds a network from capacities `c_j` and the rate matrix `r_ij`
    /// (rows = users, columns = extenders).
    ///
    /// # Errors
    ///
    /// * [`CoreError::DimensionMismatch`] if the matrix width differs from
    ///   the capacity count.
    /// * [`CoreError::UnusableCapacity`] if any `c_j` is unusable.
    /// * [`CoreError::UnreachableUser`] if some user has no usable rate.
    pub fn new(capacities: Vec<Mbps>, rates: Matrix) -> Result<Self, CoreError> {
        if rates.cols() != capacities.len() {
            return Err(CoreError::DimensionMismatch {
                context: "rate matrix width != number of extenders",
            });
        }
        for (j, c) in capacities.iter().enumerate() {
            if !c.is_usable() {
                return Err(CoreError::UnusableCapacity { extender: j });
            }
        }
        for i in 0..rates.rows() {
            let reachable = (0..rates.cols()).any(|j| usable(rates[(i, j)]));
            if !reachable {
                return Err(CoreError::UnreachableUser { user: i });
            }
        }
        let user_limits = vec![None; capacities.len()];
        Ok(Self {
            capacities,
            rates,
            user_limits,
        })
    }

    /// Convenience constructor from raw `f64` values in Mbit/s.
    ///
    /// # Errors
    ///
    /// Same as [`Network::new`], plus matrix-construction errors for ragged
    /// or empty rows.
    pub fn from_raw(capacities: Vec<f64>, rates: Vec<Vec<f64>>) -> Result<Self, CoreError> {
        let matrix = Matrix::from_rows(&rates)?;
        Self::new(capacities.into_iter().map(Mbps::new).collect(), matrix)
    }

    /// Sets per-extender user limits `B_j` (constraint (8) of Problem 1).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if the length differs from
    /// the extender count.
    pub fn with_user_limits(mut self, limits: Vec<Option<usize>>) -> Result<Self, CoreError> {
        if limits.len() != self.capacities.len() {
            return Err(CoreError::DimensionMismatch {
                context: "user limit vector length != number of extenders",
            });
        }
        self.user_limits = limits;
        Ok(self)
    }

    /// Number of extenders `|A|`.
    pub fn extenders(&self) -> usize {
        self.capacities.len()
    }

    /// Number of users `|U|`.
    pub fn users(&self) -> usize {
        self.rates.rows()
    }

    /// PLC isolation capacity `c_j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn capacity(&self, j: usize) -> Mbps {
        self.capacities[j]
    }

    /// All PLC capacities.
    pub fn capacities(&self) -> &[Mbps] {
        &self.capacities
    }

    /// Achievable WiFi rate `r_ij`, or `None` if user `i` cannot reach
    /// extender `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn rate(&self, i: usize, j: usize) -> Option<Mbps> {
        let r = self.rates[(i, j)];
        usable(r).then(|| Mbps::new(r))
    }

    /// The raw rate matrix (unreachable pairs hold non-positive values).
    pub fn rates(&self) -> &Matrix {
        &self.rates
    }

    /// User limit `B_j` (`None` = unlimited).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn user_limit(&self, j: usize) -> Option<usize> {
        self.user_limits[j]
    }

    /// True if user `i` can associate with extender `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn reachable(&self, i: usize, j: usize) -> bool {
        usable(self.rates[(i, j)])
    }

    /// Extenders reachable by user `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn reachable_extenders(&self, i: usize) -> Vec<usize> {
        (0..self.extenders())
            .filter(|&j| self.reachable(i, j))
            .collect()
    }

    /// Validates an association against this network: known extenders,
    /// feasible links, and user limits. Completeness is *not* required
    /// here (Phase I legitimately leaves users out); use
    /// [`Association::require_complete`] for constraint (7).
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`CoreError`].
    pub fn validate_association(&self, assoc: &Association) -> Result<(), CoreError> {
        if assoc.len() != self.users() {
            return Err(CoreError::DimensionMismatch {
                context: "association length != number of users",
            });
        }
        let mut counts = vec![0usize; self.extenders()];
        for (i, target) in assoc.iter().enumerate() {
            if let Some(j) = target {
                if j >= self.extenders() {
                    return Err(CoreError::UnknownExtender { extender: j });
                }
                if !self.reachable(i, j) {
                    return Err(CoreError::InfeasibleAssociation {
                        user: i,
                        extender: j,
                    });
                }
                counts[j] += 1;
            }
        }
        for (j, &count) in counts.iter().enumerate() {
            if let Some(limit) = self.user_limits[j] {
                if count > limit {
                    return Err(CoreError::CapacityExceeded { extender: j, limit });
                }
            }
        }
        Ok(())
    }
}

fn usable(rate: f64) -> bool {
    rate.is_finite() && rate > 0.0
}

impl ToJson for Network {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("capacities", self.capacities.to_json()),
            ("rates", self.rates.to_json()),
            ("user_limits", self.user_limits.to_json()),
        ])
    }
}

impl FromJson for Network {
    /// Deserializes and re-validates: malformed shapes (mismatched
    /// dimensions, unusable capacities, unreachable users) are rejected
    /// with the same checks as [`Network::new`].
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let capacities = Vec::<Mbps>::from_json(value.field("capacities")?)?;
        let rates = Matrix::from_json(value.field("rates")?)?;
        let user_limits = Vec::<Option<usize>>::from_json(value.field("user_limits")?)?;
        Network::new(capacities, rates)
            .and_then(|net| net.with_user_limits(user_limits))
            .map_err(|e| JsonError::shape(format!("invalid network: {e}")))
    }
}

/// An association of users to extenders: `assoc[i] = Some(j)` connects user
/// `i` to extender `j`; `None` leaves the user unassigned.
///
/// This is the paper's `x_ij` in one-hot form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Association {
    targets: Vec<Option<usize>>,
}

impl Association {
    /// An association with all `users` unassigned.
    pub fn unassigned(users: usize) -> Self {
        Self {
            targets: vec![None; users],
        }
    }

    /// Builds from explicit per-user targets.
    pub fn from_targets(targets: Vec<Option<usize>>) -> Self {
        Self { targets }
    }

    /// Builds a complete association from per-user extender indices.
    pub fn complete(targets: Vec<usize>) -> Self {
        Self {
            targets: targets.into_iter().map(Some).collect(),
        }
    }

    /// Number of users covered (assigned or not).
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True when the association covers zero users.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// The extender of user `i`, if assigned.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn target(&self, i: usize) -> Option<usize> {
        self.targets[i]
    }

    /// Assigns user `i` to extender `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn assign(&mut self, i: usize, j: usize) {
        self.targets[i] = Some(j);
    }

    /// Unassigns user `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn unassign(&mut self, i: usize) {
        self.targets[i] = None;
    }

    /// Iterator over per-user targets.
    pub fn iter(&self) -> impl Iterator<Item = Option<usize>> + '_ {
        self.targets.iter().copied()
    }

    /// Indices of users assigned to extender `j` (the paper's `N_j`).
    pub fn users_of(&self, j: usize) -> Vec<usize> {
        (0..self.targets.len())
            .filter(|&i| self.targets[i] == Some(j))
            .collect()
    }

    /// Number of users assigned anywhere.
    pub fn assigned_count(&self) -> usize {
        self.targets.iter().filter(|t| t.is_some()).count()
    }

    /// Indices of unassigned users.
    pub fn unassigned_users(&self) -> Vec<usize> {
        (0..self.targets.len())
            .filter(|&i| self.targets[i].is_none())
            .collect()
    }

    /// True when every user is assigned (constraint (7) of Problem 1).
    pub fn is_complete(&self) -> bool {
        self.targets.iter().all(|t| t.is_some())
    }

    /// Errors unless every user is assigned.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IncompleteAssociation`] naming the first
    /// unassigned user.
    pub fn require_complete(&self) -> Result<(), CoreError> {
        match self.targets.iter().position(|t| t.is_none()) {
            Some(user) => Err(CoreError::IncompleteAssociation { user }),
            None => Ok(()),
        }
    }

    /// Number of users whose target differs from `other` (used for the
    /// paper's Fig. 6c re-assignment counting). Users present in only one
    /// of the two associations are ignored; pass associations over the same
    /// user population for meaningful results.
    pub fn reassignments_from(&self, other: &Association) -> usize {
        self.targets
            .iter()
            .zip(&other.targets)
            .filter(|(a, b)| a.is_some() && b.is_some() && a != b)
            .count()
    }
}

impl FromIterator<Option<usize>> for Association {
    fn from_iter<I: IntoIterator<Item = Option<usize>>>(iter: I) -> Self {
        Self {
            targets: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_network() -> Network {
        Network::from_raw(vec![60.0, 20.0], vec![vec![15.0, 10.0], vec![40.0, 20.0]]).unwrap()
    }

    #[test]
    fn construction_and_lookups() {
        let net = fig3_network();
        assert_eq!(net.extenders(), 2);
        assert_eq!(net.users(), 2);
        assert_eq!(net.capacity(0), Mbps::new(60.0));
        assert_eq!(net.rate(0, 1), Some(Mbps::new(10.0)));
        assert!(net.reachable(1, 1));
    }

    #[test]
    fn zero_rate_means_unreachable() {
        let net =
            Network::from_raw(vec![60.0, 20.0], vec![vec![15.0, 0.0], vec![40.0, 20.0]]).unwrap();
        assert_eq!(net.rate(0, 1), None);
        assert!(!net.reachable(0, 1));
        assert_eq!(net.reachable_extenders(0), vec![0]);
        assert_eq!(net.reachable_extenders(1), vec![0, 1]);
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let err = Network::from_raw(vec![60.0], vec![vec![15.0, 10.0]]).unwrap_err();
        assert!(matches!(err, CoreError::DimensionMismatch { .. }));
    }

    #[test]
    fn rejects_unusable_capacity() {
        let err = Network::from_raw(vec![60.0, 0.0], vec![vec![15.0, 10.0]]).unwrap_err();
        assert_eq!(err, CoreError::UnusableCapacity { extender: 1 });
    }

    #[test]
    fn rejects_unreachable_user() {
        let err = Network::from_raw(vec![60.0, 20.0], vec![vec![15.0, 10.0], vec![0.0, -3.0]])
            .unwrap_err();
        assert_eq!(err, CoreError::UnreachableUser { user: 1 });
    }

    #[test]
    fn user_limits_roundtrip() {
        let net = fig3_network()
            .with_user_limits(vec![Some(1), None])
            .unwrap();
        assert_eq!(net.user_limit(0), Some(1));
        assert_eq!(net.user_limit(1), None);
        let err = fig3_network().with_user_limits(vec![None]).unwrap_err();
        assert!(matches!(err, CoreError::DimensionMismatch { .. }));
    }

    #[test]
    fn association_basics() {
        let mut a = Association::unassigned(3);
        assert!(!a.is_complete());
        assert_eq!(a.assigned_count(), 0);
        a.assign(0, 1);
        a.assign(2, 1);
        assert_eq!(a.users_of(1), vec![0, 2]);
        assert_eq!(a.unassigned_users(), vec![1]);
        a.unassign(0);
        assert_eq!(a.users_of(1), vec![2]);
    }

    #[test]
    fn require_complete_names_first_gap() {
        let a = Association::from_targets(vec![Some(0), None, Some(1)]);
        assert_eq!(
            a.require_complete().unwrap_err(),
            CoreError::IncompleteAssociation { user: 1 }
        );
        let b = Association::complete(vec![0, 1]);
        assert!(b.require_complete().is_ok());
    }

    #[test]
    fn validate_association_checks_everything() {
        let net = fig3_network();
        // Wrong length.
        let too_short = Association::unassigned(1);
        assert!(matches!(
            net.validate_association(&too_short),
            Err(CoreError::DimensionMismatch { .. })
        ));
        // Unknown extender.
        let unknown = Association::from_targets(vec![Some(5), None]);
        assert!(matches!(
            net.validate_association(&unknown),
            Err(CoreError::UnknownExtender { extender: 5 })
        ));
        // Infeasible link.
        let net2 =
            Network::from_raw(vec![60.0, 20.0], vec![vec![15.0, 0.0], vec![40.0, 20.0]]).unwrap();
        let infeasible = Association::from_targets(vec![Some(1), None]);
        assert!(matches!(
            net2.validate_association(&infeasible),
            Err(CoreError::InfeasibleAssociation {
                user: 0,
                extender: 1
            })
        ));
        // Capacity limit.
        let limited = fig3_network()
            .with_user_limits(vec![Some(1), None])
            .unwrap();
        let crowded = Association::complete(vec![0, 0]);
        assert!(matches!(
            limited.validate_association(&crowded),
            Err(CoreError::CapacityExceeded {
                extender: 0,
                limit: 1
            })
        ));
        // A valid association passes.
        let ok = Association::complete(vec![1, 0]);
        assert!(fig3_network().validate_association(&ok).is_ok());
    }

    #[test]
    fn reassignment_count() {
        let a = Association::complete(vec![0, 1, 1]);
        let b = Association::complete(vec![0, 0, 1]);
        assert_eq!(a.reassignments_from(&b), 1);
        let c = Association::from_targets(vec![Some(0), None, Some(1)]);
        assert_eq!(a.reassignments_from(&c), 0);
    }

    #[test]
    fn from_iterator_collects() {
        let a: Association = vec![Some(1), None].into_iter().collect();
        assert_eq!(a.target(0), Some(1));
        assert_eq!(a.target(1), None);
    }

    #[test]
    fn json_round_trip() {
        let net = fig3_network()
            .with_user_limits(vec![Some(3), None])
            .unwrap();
        let json = net.to_json().to_compact();
        let back = Network::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(net, back);
    }

    #[test]
    fn json_rejects_malformed_networks() {
        // Structurally valid JSON that violates the model invariants must
        // not deserialize into a Network.
        let cases = [
            // Rate-matrix width disagrees with the capacity count.
            r#"{"capacities":[60.0],"rates":{"rows":1,"cols":2,"data":[15.0,10.0]},"user_limits":[null]}"#,
            // Unusable (zero) capacity.
            r#"{"capacities":[60.0,0.0],"rates":{"rows":1,"cols":2,"data":[15.0,10.0]},"user_limits":[null,null]}"#,
            // A user with no usable rate anywhere.
            r#"{"capacities":[60.0,20.0],"rates":{"rows":1,"cols":2,"data":[0.0,-3.0]},"user_limits":[null,null]}"#,
            // User-limit vector of the wrong length.
            r#"{"capacities":[60.0,20.0],"rates":{"rows":1,"cols":2,"data":[15.0,10.0]},"user_limits":[null]}"#,
            // Missing field entirely.
            r#"{"capacities":[60.0,20.0],"rates":{"rows":1,"cols":2,"data":[15.0,10.0]}}"#,
        ];
        for text in cases {
            let parsed = Json::parse(text).unwrap();
            assert!(
                Network::from_json(&parsed).is_err(),
                "accepted malformed network: {text}"
            );
        }
    }
}
