//! Fairness metrics.
//!
//! WOLT maximizes aggregate throughput, not fairness, so the paper audits
//! the collateral damage with **Jain's fairness index** (§V-E): WOLT scores
//! 0.66 versus 0.52 for Greedy and 0.65 for RSSI in their simulations —
//! i.e. the throughput-maximizing policy is *not* less fair than the
//! baselines.

use wolt_units::Mbps;

/// Jain's fairness index over per-user throughputs:
/// `(Σ x_i)² / (n · Σ x_i²)`.
///
/// Ranges from `1/n` (one user hogs everything) to `1.0` (perfect
/// equality). Returns `None` for an empty slice or when all throughputs
/// are zero (the index is undefined there).
///
/// # Example
///
/// ```
/// use wolt_core::fairness::jain_index;
/// use wolt_units::Mbps;
///
/// let equal = vec![Mbps::new(5.0); 4];
/// assert_eq!(jain_index(&equal), Some(1.0));
///
/// let skewed = [Mbps::new(10.0), Mbps::ZERO];
/// assert_eq!(jain_index(&skewed), Some(0.5));
/// ```
pub fn jain_index(throughputs: &[Mbps]) -> Option<f64> {
    if throughputs.is_empty() {
        return None;
    }
    let n = throughputs.len() as f64;
    let sum: f64 = throughputs.iter().map(|t| t.value()).sum();
    let sum_sq: f64 = throughputs.iter().map(|t| t.value().powi(2)).sum();
    if sum_sq <= 0.0 {
        return None;
    }
    Some(sum * sum / (n * sum_sq))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(values: &[f64]) -> Vec<Mbps> {
        values.iter().map(|&v| Mbps::new(v)).collect()
    }

    #[test]
    fn perfect_equality_is_one() {
        let idx = jain_index(&mbps(&[7.0, 7.0, 7.0])).unwrap();
        assert!((idx - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_user_is_one() {
        assert_eq!(jain_index(&mbps(&[42.0])), Some(1.0));
    }

    #[test]
    fn monopolist_is_one_over_n() {
        let idx = jain_index(&mbps(&[10.0, 0.0, 0.0, 0.0])).unwrap();
        assert!((idx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn undefined_cases() {
        assert_eq!(jain_index(&[]), None);
        assert_eq!(jain_index(&mbps(&[0.0, 0.0])), None);
    }

    #[test]
    fn scale_invariant() {
        let a = jain_index(&mbps(&[1.0, 2.0, 3.0])).unwrap();
        let b = jain_index(&mbps(&[10.0, 20.0, 30.0])).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn more_skew_means_lower_index() {
        let mild = jain_index(&mbps(&[4.0, 5.0, 6.0])).unwrap();
        let severe = jain_index(&mbps(&[1.0, 1.0, 13.0])).unwrap();
        assert!(mild > severe);
    }

    #[test]
    fn bounded_between_one_over_n_and_one() {
        let cases = [
            vec![3.0, 9.0, 1.0, 0.5],
            vec![100.0, 1.0],
            vec![2.0, 2.0, 2.0, 2.0, 2.0],
        ];
        for c in cases {
            let n = c.len() as f64;
            let idx = jain_index(&mbps(&c)).unwrap();
            assert!(idx >= 1.0 / n - 1e-12);
            assert!(idx <= 1.0 + 1e-12);
        }
    }
}
