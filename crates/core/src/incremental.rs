//! Incremental association evaluation: O(A) probes instead of O(U·A)
//! re-evaluation.
//!
//! Every optimizer in the workspace — Phase-II coordinate-ascent polish,
//! [`crate::OnlineWolt`]'s marginal-gain move loop, the greedy baselines,
//! and brute-force enumeration — scores candidate associations that differ
//! from the current one by a *single user's move*. Calling
//! [`crate::evaluate`] for each candidate re-validates the association,
//! rebuilds every WiFi cell, and re-runs the PLC allocation: O(U·A) work
//! to answer a question about two cells.
//!
//! [`IncrementalEvaluator`] holds the live per-extender [`CellLoad`]
//! harmonic sums and member counts for one association and answers
//! "what if user `i` moved to extender `j` (or disconnected)?" by
//! adjusting only the two touched cells' demands and re-running the
//! O(A·rounds) PLC water-filling — no per-user work at all:
//!
//! * [`IncrementalEvaluator::probe_move`] — hypothetical aggregate, state
//!   untouched;
//! * [`IncrementalEvaluator::probe_move_user`] — the moved user's own
//!   end-to-end throughput (what [`crate::baselines::SelfishGreedy`]
//!   ranks);
//! * [`IncrementalEvaluator::probe_wifi_delta`] — O(1) WiFi-side objective
//!   delta (what Phase-II polish ranks; no PLC involved);
//! * [`IncrementalEvaluator::apply_move`] — commit a move, updating the
//!   two cells and the cached aggregate.
//!
//! # Float contract
//!
//! Cell harmonic weights are maintained incrementally (join adds `1/r`,
//! leave subtracts it), so after a sequence of moves a cell's weight can
//! differ from a freshly rebuilt one by accumulated rounding on the order
//! of 1e-15 relative. The property suite pins probe/apply agreement with a
//! fresh [`crate::evaluate`] to 1e-9 absolute over random move sequences.
//! Results are a pure function of the network and the move sequence —
//! never of wall-clock or thread count — preserving the workspace's
//! byte-determinism guarantee.

use wolt_plc::timeshare::{allocate_time_fair, ExtenderDemand};
use wolt_support::obs;
use wolt_units::Mbps;
use wolt_wifi::cell::CellLoad;

use crate::{Association, CoreError, Evaluation, Network};

/// Probe/apply call counters, cached so the hot search loops pay one
/// atomic add per call instead of a registry lookup.
fn probes_counter() -> &'static obs::Counter {
    static C: std::sync::OnceLock<obs::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| obs::counter("core.incremental_probes"))
}

fn applies_counter() -> &'static obs::Counter {
    static C: std::sync::OnceLock<obs::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| obs::counter("core.incremental_applies"))
}

/// Incrementally-maintained evaluation state for one association on one
/// network (see the module docs).
///
/// # Example
///
/// The Fig. 3 case study: probing user 0's move from extender 0 to 1
/// discovers the optimal association without re-evaluating from scratch.
///
/// ```
/// use wolt_core::{Association, IncrementalEvaluator, Network};
///
/// # fn main() -> Result<(), wolt_core::CoreError> {
/// let net = Network::from_raw(
///     vec![60.0, 20.0],
///     vec![vec![15.0, 10.0], vec![40.0, 20.0]],
/// )?;
/// let greedy = Association::complete(vec![0, 1]); // Fig. 3c, worth 30
/// let mut eval = IncrementalEvaluator::new(&net, &greedy)?;
/// assert!((eval.aggregate().value() - 30.0).abs() < 1e-9);
///
/// // What if user 1 moved to extender 0 and user 0 to extender 1?
/// eval.apply_move(1, Some(0))?;
/// let probed = eval.probe_move(0, Some(1))?;
/// assert!((probed.value() - 40.0).abs() < 1e-9); // Fig. 3d optimum
/// eval.apply_move(0, Some(1))?;
/// assert_eq!(eval.aggregate(), probed);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalEvaluator<'n> {
    net: &'n Network,
    assoc: Association,
    cells: Vec<CellLoad>,
    /// Per-extender demand entries fed to the PLC allocator; `capacity` is
    /// fixed, `demand` mirrors `cells[j].aggregate()`.
    entries: Vec<ExtenderDemand>,
    aggregate: Mbps,
}

/// Outcome of one hypothetical move, shared by the probe methods.
struct Probe {
    aggregate: Mbps,
    user_throughput: Mbps,
}

impl<'n> IncrementalEvaluator<'n> {
    /// Builds the evaluator for `assoc` on `net` (one full O(U + A·rounds)
    /// evaluation; everything after is incremental).
    ///
    /// `assoc` may be partial — unassigned users contribute nothing and
    /// can be placed later with [`IncrementalEvaluator::apply_move`].
    ///
    /// # Errors
    ///
    /// Propagates [`Network::validate_association`] failures and PLC
    /// allocation errors.
    pub fn new(net: &'n Network, assoc: &Association) -> Result<Self, CoreError> {
        net.validate_association(assoc)?;
        let mut cells = vec![CellLoad::new(); net.extenders()];
        for (i, target) in assoc.iter().enumerate() {
            if let Some(j) = target {
                cells[j].join(net.rate(i, j).expect("validated links are reachable"));
            }
        }
        let entries: Vec<ExtenderDemand> = cells
            .iter()
            .enumerate()
            .map(|(j, c)| ExtenderDemand {
                capacity: net.capacity(j),
                demand: c.aggregate(),
            })
            .collect();
        let aggregate = allocate_time_fair(&entries)?.aggregate();
        Ok(Self {
            net,
            assoc: assoc.clone(),
            cells,
            entries,
            aggregate,
        })
    }

    /// The network this evaluator scores against.
    pub fn network(&self) -> &'n Network {
        self.net
    }

    /// The current association.
    pub fn association(&self) -> &Association {
        &self.assoc
    }

    /// Consumes the evaluator, returning the current association.
    pub fn into_association(self) -> Association {
        self.assoc
    }

    /// Aggregate network throughput of the current association.
    pub fn aggregate(&self) -> Mbps {
        self.aggregate
    }

    /// Number of users currently on extender `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn members(&self, j: usize) -> usize {
        self.cells[j].users()
    }

    /// True when extender `j` has a user limit and is at it.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn is_full(&self, j: usize) -> bool {
        self.net
            .user_limit(j)
            .is_some_and(|limit| self.cells[j].users() >= limit)
    }

    /// The WiFi-side objective Σ_j T_wifi(j) of the current association
    /// (Problem 2's objective).
    pub fn wifi_objective(&self) -> f64 {
        self.cells.iter().map(|c| c.aggregate().value()).sum()
    }

    /// Validates that user `i` may occupy `to`, given it currently sits at
    /// `from` (so moving within a full cell is fine).
    fn check_move(&self, i: usize, from: Option<usize>, to: usize) -> Result<(), CoreError> {
        if to >= self.net.extenders() {
            return Err(CoreError::UnknownExtender { extender: to });
        }
        if !self.net.reachable(i, to) {
            return Err(CoreError::InfeasibleAssociation {
                user: i,
                extender: to,
            });
        }
        if from != Some(to) {
            if let Some(limit) = self.net.user_limit(to) {
                if self.cells[to].users() >= limit {
                    return Err(CoreError::CapacityExceeded {
                        extender: to,
                        limit,
                    });
                }
            }
        }
        Ok(())
    }

    /// Runs the shared probe: hypothetical demands for the (at most two)
    /// touched cells, then one PLC water-filling pass.
    fn probe(&mut self, i: usize, to: Option<usize>) -> Result<Probe, CoreError> {
        probes_counter().inc();
        let from = self.assoc.target(i);
        if let Some(j) = to {
            self.check_move(i, from, j)?;
        }
        if from == to {
            // No entries change; the cached aggregate holds. The user's own
            // throughput still needs one allocation pass for the cell
            // breakdown — rare, since optimizers skip `from == to`
            // candidates.
            let user_throughput = match to {
                Some(j) => {
                    let alloc = allocate_time_fair(&self.entries)?;
                    alloc.throughput[j] / self.cells[j].users() as f64
                }
                None => Mbps::ZERO,
            };
            return Ok(Probe {
                aggregate: self.aggregate,
                user_throughput,
            });
        }

        // Temporarily rewrite the touched entries, allocate, restore. The
        // buffer is reused across probes so the hot path allocates nothing
        // beyond the water-filling's own scratch.
        let saved_from = from.map(|j| (j, self.entries[j].demand));
        let saved_to = to.map(|j| (j, self.entries[j].demand));
        if let Some(j) = from {
            let rate = self.net.rate(i, j).expect("current link is reachable");
            self.entries[j].demand = self.cells[j].aggregate_if_left(rate);
        }
        if let Some(j) = to {
            let rate = self.net.rate(i, j).expect("checked above");
            self.entries[j].demand = self.cells[j].aggregate_if_joined(rate);
        }
        let alloc = allocate_time_fair(&self.entries);
        let result = alloc.map(|alloc| {
            let user_throughput = match to {
                Some(j) => {
                    let members = self.cells[j].users() + 1;
                    alloc.throughput[j] / members as f64
                }
                None => Mbps::ZERO,
            };
            Probe {
                aggregate: alloc.aggregate(),
                user_throughput,
            }
        });
        if let Some((j, demand)) = saved_from {
            self.entries[j].demand = demand;
        }
        if let Some((j, demand)) = saved_to {
            self.entries[j].demand = demand;
        }
        result.map_err(CoreError::from)
    }

    /// Aggregate network throughput if user `i` moved to `to`
    /// (`None` = disconnected). State is not modified.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownExtender`], [`CoreError::InfeasibleAssociation`]
    /// or [`CoreError::CapacityExceeded`] when the move is inadmissible;
    /// PLC allocation errors propagate as [`CoreError::Substrate`].
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn probe_move(&mut self, user: usize, to: Option<usize>) -> Result<Mbps, CoreError> {
        self.probe(user, to).map(|p| p.aggregate)
    }

    /// End-to-end throughput user `i` itself would get after moving to
    /// `to` (0 for `None`). State is not modified.
    ///
    /// # Errors
    ///
    /// As [`IncrementalEvaluator::probe_move`].
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn probe_move_user(&mut self, user: usize, to: Option<usize>) -> Result<Mbps, CoreError> {
        self.probe(user, to).map(|p| p.user_throughput)
    }

    /// O(1) change in the WiFi-side objective Σ_j T_wifi(j) if user `i`
    /// moved to `to` — the quantity Phase-II polish ranks. No PLC
    /// water-filling is involved.
    ///
    /// # Errors
    ///
    /// As [`IncrementalEvaluator::probe_move`].
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn probe_wifi_delta(&self, user: usize, to: Option<usize>) -> Result<f64, CoreError> {
        probes_counter().inc();
        let from = self.assoc.target(user);
        if let Some(j) = to {
            self.check_move(user, from, j)?;
        }
        if from == to {
            return Ok(0.0);
        }
        let mut delta = 0.0;
        if let Some(j) = from {
            let rate = self.net.rate(user, j).expect("current link is reachable");
            delta +=
                self.cells[j].aggregate_if_left(rate).value() - self.cells[j].aggregate().value();
        }
        if let Some(j) = to {
            let rate = self.net.rate(user, j).expect("checked above");
            delta +=
                self.cells[j].aggregate_if_joined(rate).value() - self.cells[j].aggregate().value();
        }
        Ok(delta)
    }

    /// Moves user `i` to `to` (`None` = disconnect), updating the two
    /// touched cells and the cached aggregate. Returns the new aggregate.
    ///
    /// # Errors
    ///
    /// As [`IncrementalEvaluator::probe_move`]; on error the state is
    /// unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn apply_move(&mut self, user: usize, to: Option<usize>) -> Result<Mbps, CoreError> {
        applies_counter().inc();
        let from = self.assoc.target(user);
        if let Some(j) = to {
            self.check_move(user, from, j)?;
        }
        if from == to {
            return Ok(self.aggregate);
        }
        if let Some(j) = from {
            let rate = self.net.rate(user, j).expect("current link is reachable");
            self.cells[j].leave(rate);
            self.entries[j].demand = self.cells[j].aggregate();
        }
        if let Some(j) = to {
            let rate = self.net.rate(user, j).expect("checked above");
            self.cells[j].join(rate);
            self.entries[j].demand = self.cells[j].aggregate();
            self.assoc.assign(user, j);
        } else {
            self.assoc.unassign(user);
        }
        self.aggregate = allocate_time_fair(&self.entries)?.aggregate();
        Ok(self.aggregate)
    }

    /// Full [`Evaluation`] of the current association (per-user and
    /// per-extender breakdowns). O(U + A·rounds) — use for final reports,
    /// not inside search loops.
    ///
    /// # Errors
    ///
    /// Propagates PLC allocation errors.
    pub fn evaluation(&self) -> Result<Evaluation, CoreError> {
        let alloc = allocate_time_fair(&self.entries)?;
        let mut per_user = vec![Mbps::ZERO; self.net.users()];
        for (i, target) in self.assoc.iter().enumerate() {
            if let Some(j) = target {
                per_user[i] = alloc.throughput[j] / self.cells[j].users() as f64;
            }
        }
        Ok(Evaluation {
            per_user,
            aggregate: alloc.aggregate(),
            per_extender: alloc.throughput,
            plc_shares: alloc.shares,
            wifi_demand: self.entries.iter().map(|e| e.demand).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;

    fn fig3_network() -> Network {
        Network::from_raw(vec![60.0, 20.0], vec![vec![15.0, 10.0], vec![40.0, 20.0]]).unwrap()
    }

    fn net_3x5() -> Network {
        Network::from_raw(
            vec![100.0, 80.0, 60.0],
            vec![
                vec![30.0, 20.0, 10.0],
                vec![25.0, 35.0, 15.0],
                vec![12.0, 18.0, 40.0],
                vec![22.0, 14.0, 9.0],
                vec![16.0, 21.0, 11.0],
            ],
        )
        .unwrap()
    }

    fn close(a: Mbps, b: Mbps) -> bool {
        (a.value() - b.value()).abs() < 1e-9
    }

    #[test]
    fn construction_matches_full_evaluate() {
        let net = net_3x5();
        for targets in [
            vec![0, 1, 2, 0, 1],
            vec![0, 0, 0, 0, 0],
            vec![2, 2, 1, 0, 1],
        ] {
            let assoc = Association::complete(targets);
            let ev = IncrementalEvaluator::new(&net, &assoc).unwrap();
            let full = evaluate(&net, &assoc).unwrap();
            assert!(close(ev.aggregate(), full.aggregate));
        }
    }

    #[test]
    fn probe_matches_full_evaluate() {
        let net = net_3x5();
        let assoc = Association::complete(vec![0, 1, 2, 0, 1]);
        let mut ev = IncrementalEvaluator::new(&net, &assoc).unwrap();
        for user in 0..net.users() {
            for j in net.reachable_extenders(user) {
                let probed = ev.probe_move(user, Some(j)).unwrap();
                let mut moved = assoc.clone();
                moved.assign(user, j);
                let full = evaluate(&net, &moved).unwrap();
                assert!(
                    close(probed, full.aggregate),
                    "user {user} -> {j}: probed {probed}, full {}",
                    full.aggregate
                );
            }
        }
    }

    #[test]
    fn probe_does_not_mutate() {
        let net = fig3_network();
        let assoc = Association::complete(vec![0, 0]);
        let mut ev = IncrementalEvaluator::new(&net, &assoc).unwrap();
        let before = ev.aggregate();
        let _ = ev.probe_move(0, Some(1)).unwrap();
        let _ = ev.probe_move(1, None).unwrap();
        assert_eq!(ev.aggregate(), before);
        assert_eq!(ev.association(), &assoc);
        // Entries restored: a fresh probe of the same move agrees.
        let a = ev.probe_move(0, Some(1)).unwrap();
        let b = ev.probe_move(0, Some(1)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn apply_matches_probe_and_evaluate() {
        let net = net_3x5();
        let assoc = Association::complete(vec![0, 1, 2, 0, 1]);
        let mut ev = IncrementalEvaluator::new(&net, &assoc).unwrap();
        let probed = ev.probe_move(3, Some(2)).unwrap();
        let applied = ev.apply_move(3, Some(2)).unwrap();
        assert_eq!(probed, applied);
        let mut moved = assoc;
        moved.assign(3, 2);
        let full = evaluate(&net, &moved).unwrap();
        assert!(close(applied, full.aggregate));
        assert_eq!(ev.association(), &moved);
    }

    #[test]
    fn unassigning_works() {
        let net = fig3_network();
        let assoc = Association::complete(vec![0, 0]);
        let mut ev = IncrementalEvaluator::new(&net, &assoc).unwrap();
        let probed = ev.probe_move(1, None).unwrap();
        let partial = Association::from_targets(vec![Some(0), None]);
        let full = evaluate(&net, &partial).unwrap();
        assert!(close(probed, full.aggregate));
        ev.apply_move(1, None).unwrap();
        assert!(close(ev.aggregate(), full.aggregate));
        assert_eq!(ev.association().target(1), None);
        assert_eq!(ev.members(0), 1);
        // And back again.
        ev.apply_move(1, Some(0)).unwrap();
        let back = evaluate(&net, &Association::complete(vec![0, 0])).unwrap();
        assert!(close(ev.aggregate(), back.aggregate));
    }

    #[test]
    fn partial_association_placement() {
        let net = net_3x5();
        let mut ev = IncrementalEvaluator::new(&net, &Association::unassigned(5)).unwrap();
        assert_eq!(ev.aggregate(), Mbps::ZERO);
        for user in 0..5 {
            ev.apply_move(user, Some(user % 3)).unwrap();
        }
        let full = evaluate(&net, &Association::complete(vec![0, 1, 2, 0, 1])).unwrap();
        assert!(close(ev.aggregate(), full.aggregate));
    }

    #[test]
    fn rejects_inadmissible_moves() {
        let net =
            Network::from_raw(vec![60.0, 20.0], vec![vec![15.0, 0.0], vec![40.0, 20.0]]).unwrap();
        let assoc = Association::complete(vec![0, 0]);
        let mut ev = IncrementalEvaluator::new(&net, &assoc).unwrap();
        assert!(matches!(
            ev.probe_move(0, Some(1)),
            Err(CoreError::InfeasibleAssociation {
                user: 0,
                extender: 1
            })
        ));
        assert!(matches!(
            ev.probe_move(0, Some(9)),
            Err(CoreError::UnknownExtender { extender: 9 })
        ));
        // Errors leave state intact.
        assert!(close(
            ev.aggregate(),
            evaluate(&net, &assoc).unwrap().aggregate
        ));
    }

    #[test]
    fn respects_user_limits_but_allows_stay() {
        let net = Network::from_raw(
            vec![100.0, 90.0],
            vec![vec![30.0, 5.0], vec![28.0, 6.0], vec![26.0, 7.0]],
        )
        .unwrap()
        .with_user_limits(vec![Some(2), None])
        .unwrap();
        let assoc = Association::complete(vec![0, 0, 1]);
        let mut ev = IncrementalEvaluator::new(&net, &assoc).unwrap();
        assert!(ev.is_full(0));
        assert!(matches!(
            ev.probe_move(2, Some(0)),
            Err(CoreError::CapacityExceeded {
                extender: 0,
                limit: 2
            })
        ));
        // A no-op "move" within the full cell is fine.
        let stay = ev.probe_move(0, Some(0)).unwrap();
        assert!(close(stay, ev.aggregate()));
    }

    #[test]
    fn wifi_delta_matches_objective_difference() {
        let net = net_3x5();
        let assoc = Association::complete(vec![0, 1, 2, 0, 1]);
        let ev = IncrementalEvaluator::new(&net, &assoc).unwrap();
        for user in 0..5 {
            for j in net.reachable_extenders(user) {
                let delta = ev.probe_wifi_delta(user, Some(j)).unwrap();
                let mut moved = assoc.clone();
                moved.assign(user, j);
                let direct = crate::phase2::wifi_objective(&net, &moved)
                    - crate::phase2::wifi_objective(&net, &assoc);
                assert!(
                    (delta - direct).abs() < 1e-9,
                    "user {user} -> {j}: delta {delta}, direct {direct}"
                );
            }
        }
    }

    #[test]
    fn probe_move_user_matches_per_user_evaluate() {
        let net = net_3x5();
        let assoc = Association::complete(vec![0, 1, 2, 0, 1]);
        let mut ev = IncrementalEvaluator::new(&net, &assoc).unwrap();
        for user in 0..5 {
            for j in net.reachable_extenders(user) {
                let own = ev.probe_move_user(user, Some(j)).unwrap();
                let mut moved = assoc.clone();
                moved.assign(user, j);
                let full = evaluate(&net, &moved).unwrap();
                assert!(
                    close(own, full.per_user[user]),
                    "user {user} -> {j}: own {own}, full {}",
                    full.per_user[user]
                );
            }
        }
    }

    #[test]
    fn evaluation_matches_full_evaluate() {
        let net = net_3x5();
        let assoc = Association::complete(vec![2, 1, 2, 0, 1]);
        let ev = IncrementalEvaluator::new(&net, &assoc).unwrap();
        let incremental = ev.evaluation().unwrap();
        let full = evaluate(&net, &assoc).unwrap();
        assert!(close(incremental.aggregate, full.aggregate));
        for i in 0..5 {
            assert!(close(incremental.per_user[i], full.per_user[i]));
        }
        for j in 0..3 {
            assert!(close(incremental.per_extender[j], full.per_extender[j]));
            assert!(close(incremental.wifi_demand[j], full.wifi_demand[j]));
        }
    }

    #[test]
    fn long_move_sequence_stays_consistent() {
        // Drift check: after many applies the incremental aggregate stays
        // within 1e-9 of a fresh evaluation.
        let net = net_3x5();
        let assoc = Association::complete(vec![0, 0, 0, 0, 0]);
        let mut ev = IncrementalEvaluator::new(&net, &assoc).unwrap();
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..500 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let user = (state % 5) as usize;
            let choice = ((state >> 8) % 4) as usize;
            let to = if choice == 3 { None } else { Some(choice) };
            if to.is_some_and(|j| !net.reachable(user, j)) {
                continue;
            }
            ev.apply_move(user, to).unwrap();
        }
        let fresh = evaluate(&net, ev.association()).unwrap();
        assert!(
            (ev.aggregate().value() - fresh.aggregate.value()).abs() < 1e-9,
            "drift: incremental {} vs fresh {}",
            ev.aggregate(),
            fresh.aggregate
        );
    }

    #[test]
    fn invalid_starting_association_rejected() {
        let net = fig3_network();
        let bogus = Association::from_targets(vec![Some(5), None]);
        assert!(IncrementalEvaluator::new(&net, &bogus).is_err());
    }
}
