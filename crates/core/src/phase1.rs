//! Phase I of WOLT: assignment-problem relaxation.
//!
//! The paper relaxes Problem 1 by (a) dropping "every user must connect"
//! and (b) requiring every extender to serve at least one user. Lemma 2
//! shows an optimal solution of the relaxation puts **exactly one user on
//! each extender**, and Theorem 2 shows the relaxation is then *exactly* a
//! maximum-weight assignment problem with task utilities
//!
//! ```text
//! u_ij = min(c_j / |A|, r_ij)              (Eq. 12)
//! ```
//!
//! — the best throughput user `i` could deliver through extender `j` when
//! all `|A|` extenders split the PLC medium evenly. We build that utility
//! matrix and solve it with the Hungarian algorithm from `wolt-opt`
//! (O(|A|³), the complexity the paper cites).

use wolt_opt::auction::auction_assignment;
use wolt_opt::{max_weight_assignment, Matrix};
use wolt_units::Mbps;

use crate::{Association, CoreError, Network};

/// Which assignment solver Phase I uses. Both are exact (the auction's ε
/// is far below any utility gap); the auction can be faster on dense
/// instances and serves as an independent oracle for the Hungarian
/// implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Phase1Solver {
    /// Shortest-augmenting-path Hungarian algorithm (the paper's choice).
    #[default]
    Hungarian,
    /// Bertsekas auction algorithm with ε = 1e-9.
    Auction,
}

/// Which utility definition Phase I optimizes — the paper's bottleneck-aware
/// `min(c_j/|A|, r_ij)` or two ablations that ignore one side.
///
/// The ablations exist to quantify the paper's central claim: associating
/// on WiFi quality alone (what an Ethernet-backhaul assigner would do)
/// leaves throughput on the table exactly because the PLC side can be the
/// bottleneck.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Phase1Utility {
    /// The paper's Eq. 12: `u_ij = min(c_j/|A|, r_ij)`.
    #[default]
    Paper,
    /// Ablation: `u_ij = r_ij` — PLC-blind, WiFi quality only.
    WifiOnly,
    /// Ablation: `u_ij = c_j/|A|` — WiFi-blind (reachability still
    /// respected), equivalent to spreading users over the best outlets.
    PlcShareOnly,
}

/// Result of Phase I.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase1Outcome {
    /// Partial association: the users of `U1` are assigned, everyone else
    /// is `None`.
    pub association: Association,
    /// The users selected into `U1` (at most one per extender).
    pub selected_users: Vec<usize>,
    /// The utility matrix that was solved (rows = users, cols =
    /// extenders; unreachable pairs are `-inf`).
    pub utilities: Matrix,
    /// Total utility of the optimal matching — the relaxation's objective
    /// value (an upper bound on what Phase I can deliver physically).
    pub utility_total: f64,
}

/// Computes the paper's Phase-I utilities `u_ij = min(c_j/|A|, r_ij)`.
///
/// Unreachable `(i, j)` pairs get `-inf` so the assignment solver never
/// picks them.
///
/// # Errors
///
/// Returns [`CoreError::Substrate`] only on internal matrix-construction
/// failure (cannot happen for a valid [`Network`]).
pub fn phase1_utilities(net: &Network) -> Result<Matrix, CoreError> {
    phase1_utilities_with(net, Phase1Utility::Paper)
}

/// [`phase1_utilities`] with an explicit utility definition (see
/// [`Phase1Utility`]).
///
/// # Errors
///
/// As [`phase1_utilities`].
pub fn phase1_utilities_with(net: &Network, utility: Phase1Utility) -> Result<Matrix, CoreError> {
    let a = net.extenders() as f64;
    let m = Matrix::from_fn(net.users(), net.extenders(), |i, j| match net.rate(i, j) {
        Some(r) => match utility {
            Phase1Utility::Paper => r.min(net.capacity(j) / a).value(),
            Phase1Utility::WifiOnly => r.value(),
            Phase1Utility::PlcShareOnly => (net.capacity(j) / a).value(),
        },
        None => f64::NEG_INFINITY,
    })?;
    Ok(m)
}

/// Runs Phase I: selects `min(|U|, |A|)` users and assigns one to each
/// extender, maximizing the total utility (Theorem 2).
///
/// Extenders that no user can reach stay empty (physically nothing can be
/// done about them; the paper assumes reachability).
///
/// # Errors
///
/// Propagates utility-matrix construction failures.
pub fn run_phase1(net: &Network) -> Result<Phase1Outcome, CoreError> {
    run_phase1_with(net, Phase1Solver::Hungarian)
}

/// [`run_phase1`] with an explicit assignment-solver choice.
///
/// # Errors
///
/// Propagates utility-matrix construction failures.
pub fn run_phase1_with(net: &Network, solver: Phase1Solver) -> Result<Phase1Outcome, CoreError> {
    run_phase1_full(net, solver, Phase1Utility::Paper)
}

/// [`run_phase1`] with explicit solver and utility choices.
///
/// # Errors
///
/// Propagates utility-matrix construction failures.
pub fn run_phase1_full(
    net: &Network,
    solver: Phase1Solver,
    utility: Phase1Utility,
) -> Result<Phase1Outcome, CoreError> {
    let utilities = phase1_utilities_with(net, utility)?;
    let assignment = match solver {
        Phase1Solver::Hungarian => max_weight_assignment(&utilities),
        Phase1Solver::Auction => auction_assignment(&utilities, 1e-9),
    };

    let mut association = Association::unassigned(net.users());
    let mut selected_users = Vec::with_capacity(assignment.len());
    for &(user, ext) in &assignment.pairs {
        association.assign(user, ext);
        selected_users.push(user);
    }
    selected_users.sort_unstable();

    Ok(Phase1Outcome {
        association,
        selected_users,
        utilities,
        utility_total: assignment.total,
    })
}

/// The throughput Phase I's relaxation promises for a single-user cell:
/// `min(c_j/|A|, r_ij)` — exposed for diagnostics and tests.
pub fn single_user_cell_bound(net: &Network, user: usize, ext: usize) -> Option<Mbps> {
    net.rate(user, ext)
        .map(|r| r.min(net.capacity(ext) / net.extenders() as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_network() -> Network {
        Network::from_raw(vec![60.0, 20.0], vec![vec![15.0, 10.0], vec![40.0, 20.0]]).unwrap()
    }

    #[test]
    fn fig3_utilities_match_paper() {
        let u = phase1_utilities(&fig3_network()).unwrap();
        assert_eq!(u[(0, 0)], 15.0); // min(30, 15)
        assert_eq!(u[(0, 1)], 10.0); // min(10, 10)
        assert_eq!(u[(1, 0)], 30.0); // min(30, 40)
        assert_eq!(u[(1, 1)], 10.0); // min(10, 20)
    }

    #[test]
    fn fig3_phase1_recovers_optimal_pairing() {
        let out = run_phase1(&fig3_network()).unwrap();
        // Optimal matching: user 2 → ext 1, user 1 → ext 2, total 40.
        assert_eq!(out.association.target(0), Some(1));
        assert_eq!(out.association.target(1), Some(0));
        assert_eq!(out.utility_total, 40.0);
        assert_eq!(out.selected_users, vec![0, 1]);
    }

    #[test]
    fn one_user_per_extender() {
        let net = Network::from_raw(
            vec![100.0, 80.0, 60.0],
            vec![
                vec![30.0, 20.0, 10.0],
                vec![25.0, 35.0, 15.0],
                vec![12.0, 18.0, 40.0],
                vec![22.0, 14.0, 9.0],
                vec![16.0, 21.0, 11.0],
            ],
        )
        .unwrap();
        let out = run_phase1(&net).unwrap();
        assert_eq!(out.selected_users.len(), 3);
        for j in 0..3 {
            assert_eq!(
                out.association.users_of(j).len(),
                1,
                "extender {j} should serve exactly one Phase-I user"
            );
        }
        // Unselected users remain unassigned.
        assert_eq!(out.association.assigned_count(), 3);
    }

    #[test]
    fn more_extenders_than_users_assigns_all_users() {
        let net = Network::from_raw(
            vec![100.0, 80.0, 60.0],
            vec![vec![30.0, 20.0, 10.0], vec![25.0, 35.0, 15.0]],
        )
        .unwrap();
        let out = run_phase1(&net).unwrap();
        assert_eq!(out.selected_users, vec![0, 1]);
        assert!(out.association.is_complete());
    }

    #[test]
    fn utilities_capped_by_plc_share() {
        // Huge WiFi rates: utilities are capped at c_j/|A|.
        let net = Network::from_raw(
            vec![50.0, 30.0],
            vec![vec![500.0, 500.0], vec![500.0, 500.0]],
        )
        .unwrap();
        let u = phase1_utilities(&net).unwrap();
        assert_eq!(u[(0, 0)], 25.0);
        assert_eq!(u[(0, 1)], 15.0);
    }

    #[test]
    fn unreachable_pairs_never_selected() {
        let net = Network::from_raw(
            vec![100.0, 80.0],
            vec![vec![30.0, 0.0], vec![25.0, 0.0], vec![0.0, 12.0]],
        )
        .unwrap();
        let out = run_phase1(&net).unwrap();
        // Extender 1 is only reachable by user 2.
        assert_eq!(out.association.users_of(1), vec![2]);
        let u = &out.utilities;
        assert_eq!(u[(0, 1)], f64::NEG_INFINITY);
    }

    #[test]
    fn extender_reachable_by_nobody_stays_empty() {
        let net =
            Network::from_raw(vec![100.0, 80.0], vec![vec![30.0, 0.0], vec![25.0, 0.0]]).unwrap();
        let out = run_phase1(&net).unwrap();
        assert!(out.association.users_of(1).is_empty());
        assert_eq!(out.selected_users.len(), 1);
    }

    #[test]
    fn single_user_cell_bound_matches_utilities() {
        let net = fig3_network();
        let u = phase1_utilities(&net).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(
                    single_user_cell_bound(&net, i, j).unwrap().value(),
                    u[(i, j)]
                );
            }
        }
    }

    #[test]
    fn utility_variants_differ_as_specified() {
        let net = fig3_network();
        let paper = phase1_utilities_with(&net, Phase1Utility::Paper).unwrap();
        let wifi = phase1_utilities_with(&net, Phase1Utility::WifiOnly).unwrap();
        let plc = phase1_utilities_with(&net, Phase1Utility::PlcShareOnly).unwrap();
        // User 2 on extender 1: paper caps 40 to the 30 Mbit/s share.
        assert_eq!(paper[(1, 0)], 30.0);
        assert_eq!(wifi[(1, 0)], 40.0);
        assert_eq!(plc[(1, 0)], 30.0);
        // User 1 on extender 1: WiFi (15) is the binding side.
        assert_eq!(paper[(0, 0)], 15.0);
        assert_eq!(wifi[(0, 0)], 15.0);
        assert_eq!(plc[(0, 0)], 30.0);
    }

    #[test]
    fn wifi_only_utility_can_mislead() {
        // Two users, two extenders. Extender 0 has a great WiFi link but a
        // terrible PLC backhaul; the paper utility steers the fast user to
        // the healthy extender while the WiFi-only ablation walks into the
        // bottleneck.
        let net =
            Network::from_raw(vec![8.0, 80.0], vec![vec![45.0, 28.0], vec![5.0, 4.0]]).unwrap();
        let paper = run_phase1_full(&net, Phase1Solver::Hungarian, Phase1Utility::Paper).unwrap();
        let blind =
            run_phase1_full(&net, Phase1Solver::Hungarian, Phase1Utility::WifiOnly).unwrap();
        let eval_paper = crate::evaluate(&net, &paper.association).unwrap();
        let eval_blind = crate::evaluate(&net, &blind.association).unwrap();
        assert!(
            eval_paper.aggregate > eval_blind.aggregate,
            "paper {} should beat wifi-only {}",
            eval_paper.aggregate,
            eval_blind.aggregate
        );
    }

    #[test]
    fn auction_solver_matches_hungarian_solver() {
        let net = Network::from_raw(
            vec![90.0, 45.0, 120.0],
            vec![
                vec![18.0, 25.0, 31.0],
                vec![9.0, 14.0, 27.0],
                vec![33.0, 8.0, 16.0],
                vec![21.0, 19.0, 12.0],
            ],
        )
        .unwrap();
        let hungarian = run_phase1_with(&net, Phase1Solver::Hungarian).unwrap();
        let auction = run_phase1_with(&net, Phase1Solver::Auction).unwrap();
        assert!((hungarian.utility_total - auction.utility_total).abs() < 1e-6);
    }

    #[test]
    fn phase1_maximizes_over_brute_force() {
        use wolt_opt::brute;
        let net = Network::from_raw(
            vec![90.0, 45.0, 120.0],
            vec![
                vec![18.0, 25.0, 31.0],
                vec![9.0, 14.0, 27.0],
                vec![33.0, 8.0, 16.0],
                vec![21.0, 19.0, 12.0],
            ],
        )
        .unwrap();
        let out = run_phase1(&net).unwrap();
        let (_, best) = brute::best_perfect_matching(&out.utilities);
        assert!((out.utility_total - best).abs() < 1e-9);
    }
}
