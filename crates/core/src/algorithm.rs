//! WOLT — Algorithm 1 of the paper.
//!
//! The complete two-phase pipeline:
//!
//! 1. **Phase I** ([`crate::phase1`]): compute utilities
//!    `u_ij = min(c_j/|A|, r_ij)` and solve the resulting maximum-weight
//!    assignment problem with the Hungarian algorithm, pinning one user on
//!    each extender (the set `U1`).
//! 2. **Phase II** ([`crate::phase2`]): assign the remaining users `U2` to
//!    maximize the WiFi-side aggregate with `U1` fixed — a nonlinear
//!    program solved fractionally and extracted integrally (Theorem 3).
//!
//! The paper notes "the re-distribution of PLC capacity allocations when
//! certain PLC links are underutilized is implicitly handled by this
//! approach"; the final association is scored by [`crate::evaluate`], which
//! models that redistribution explicitly.

use wolt_support::obs;

use crate::phase1::{run_phase1_full, Phase1Outcome, Phase1Solver, Phase1Utility};
use crate::phase2::{run_phase2, run_phase2_greedy, Phase2Config, Phase2Outcome};
use crate::{Association, AssociationPolicy, CoreError, Network};

/// How Phase II solves its nonlinear program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase2Solver {
    /// The paper's approach: fractional projected-gradient solve, then
    /// integral extraction and a discrete polish.
    Nlp,
    /// Ablation: pure marginal-gain greedy with the same discrete polish.
    Greedy,
}

/// The WOLT association policy (Algorithm 1).
///
/// # Example
///
/// On the paper's Fig. 3 case study WOLT finds the optimal 40 Mbit/s
/// association:
///
/// ```
/// use wolt_core::{evaluate, AssociationPolicy, Network, Wolt};
///
/// # fn main() -> Result<(), wolt_core::CoreError> {
/// let net = Network::from_raw(
///     vec![60.0, 20.0],
///     vec![vec![15.0, 10.0], vec![40.0, 20.0]],
/// )?;
/// let assoc = Wolt::new().associate(&net)?;
/// let eval = evaluate(&net, &assoc)?;
/// assert!((eval.aggregate.value() - 40.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Wolt {
    phase1_solver: Phase1Solver,
    phase1_utility: Phase1Utility,
    phase2_config: Phase2Config,
    phase2_solver: Phase2Solver,
}

impl Default for Wolt {
    fn default() -> Self {
        Self::new()
    }
}

impl Wolt {
    /// WOLT with the paper's defaults (NLP Phase II, 1e-5 tolerance).
    pub fn new() -> Self {
        Self {
            phase1_solver: Phase1Solver::Hungarian,
            phase1_utility: Phase1Utility::Paper,
            phase2_config: Phase2Config::default(),
            phase2_solver: Phase2Solver::Nlp,
        }
    }

    /// Selects the Phase-I assignment solver (Hungarian or auction).
    pub fn with_phase1_solver(mut self, solver: Phase1Solver) -> Self {
        self.phase1_solver = solver;
        self
    }

    /// Selects the Phase-I utility definition (the paper's Eq. 12 or an
    /// ablation).
    pub fn with_phase1_utility(mut self, utility: Phase1Utility) -> Self {
        self.phase1_utility = utility;
        self
    }

    /// Overrides the Phase-II configuration.
    pub fn with_phase2_config(mut self, config: Phase2Config) -> Self {
        self.phase2_config = config;
        self
    }

    /// Selects the Phase-II solver variant.
    pub fn with_phase2_solver(mut self, solver: Phase2Solver) -> Self {
        self.phase2_solver = solver;
        self
    }

    /// Runs both phases and returns the intermediate outcomes alongside
    /// the final association (useful for diagnostics and the benches).
    ///
    /// # Errors
    ///
    /// Propagates phase errors and the capacity-repair failure described
    /// on [`Wolt::associate`].
    pub fn associate_detailed(
        &self,
        net: &Network,
    ) -> Result<(Phase1Outcome, Phase2Outcome), CoreError> {
        let started = std::time::Instant::now();
        let p1 = run_phase1_full(net, self.phase1_solver, self.phase1_utility)?;
        obs::counter_inc("core.phase1_solves");
        let mut p2 = match self.phase2_solver {
            Phase2Solver::Nlp => run_phase2(net, &p1.association, &self.phase2_config)?,
            Phase2Solver::Greedy => run_phase2_greedy(net, &p1.association, &self.phase2_config)?,
        };
        if let Some(report) = &p2.fractional {
            obs::counter_add("core.phase2_iterations", report.iterations as u64);
        }
        repair_user_limits(net, &mut p2.association)?;
        obs::counter_inc("core.solves");
        obs::observe_duration("core.solve_us", started.elapsed());
        Ok((p1, p2))
    }

    /// Warm-started re-solve: instead of running both phases from
    /// scratch, polish `start` — a complete association from a previous
    /// solve — against the (possibly shifted) `net` via
    /// [`crate::phase2::refine_association`]. Counted as
    /// `core.warm_solves` / `core.warm_solve_us`, *not* `core.solves`,
    /// so the two planning modes stay separable in the metrics.
    ///
    /// This is an optimization-preserving shortcut only when telemetry
    /// moved a little; callers are expected to fall back to
    /// [`Wolt::associate`] when no usable previous plan exists.
    ///
    /// # Errors
    ///
    /// [`CoreError::IncompleteAssociation`] for a partial `start`, plus
    /// `start` validation errors against `net`.
    pub fn warm_associate(
        &self,
        net: &Network,
        start: &Association,
    ) -> Result<Association, CoreError> {
        let started = std::time::Instant::now();
        let assoc = crate::phase2::refine_association(net, start, &self.phase2_config)?;
        obs::counter_inc("core.warm_solves");
        obs::observe_duration("core.warm_solve_us", started.elapsed());
        Ok(assoc)
    }
}

impl AssociationPolicy for Wolt {
    fn name(&self) -> &str {
        match self.phase2_solver {
            Phase2Solver::Nlp => "WOLT",
            Phase2Solver::Greedy => "WOLT-greedy2",
        }
    }

    /// Runs Algorithm 1 end to end.
    ///
    /// The paper relaxes the per-extender user limit `B_j`; when a network
    /// nevertheless carries limits, a repair pass moves users off
    /// over-subscribed extenders with the least WiFi-objective damage.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CapacityExceeded`] if limits make a complete
    /// association impossible, plus any phase errors.
    fn associate(&self, net: &Network) -> Result<Association, CoreError> {
        let (_, p2) = self.associate_detailed(net)?;
        Ok(p2.association)
    }
}

/// Moves users off over-limit extenders (least marginal WiFi loss first)
/// until all `B_j` limits hold.
fn repair_user_limits(net: &Network, assoc: &mut Association) -> Result<(), CoreError> {
    use wolt_wifi::cell::CellLoad;

    let over_limit = |assoc: &Association| {
        (0..net.extenders()).find(|&j| {
            net.user_limit(j)
                .is_some_and(|limit| assoc.users_of(j).len() > limit)
        })
    };
    if over_limit(assoc).is_none() {
        return Ok(());
    }

    let mut cells: Vec<CellLoad> = vec![CellLoad::new(); net.extenders()];
    for (i, t) in assoc.iter().enumerate() {
        if let Some(j) = t {
            cells[j].join(net.rate(i, j).expect("validated"));
        }
    }

    while let Some(j) = over_limit(assoc) {
        let members = assoc.users_of(j);
        // Best (user, destination) move: maximize the WiFi-objective delta.
        let mut best: Option<(usize, usize, f64)> = None;
        for &i in &members {
            let rate_cur = net.rate(i, j).expect("validated");
            let leave_delta =
                cells[j].aggregate_if_left(rate_cur).value() - cells[j].aggregate().value();
            for k in net.reachable_extenders(i) {
                if k == j {
                    continue;
                }
                if net
                    .user_limit(k)
                    .is_some_and(|limit| assoc.users_of(k).len() >= limit)
                {
                    continue;
                }
                let rate_new = net.rate(i, k).expect("reachable");
                let join_delta =
                    cells[k].aggregate_if_joined(rate_new).value() - cells[k].aggregate().value();
                let delta = leave_delta + join_delta;
                if best.is_none_or(|(_, _, d)| delta > d) {
                    best = Some((i, k, delta));
                }
            }
        }
        match best {
            Some((i, k, _)) => {
                cells[j].leave(net.rate(i, j).expect("validated"));
                cells[k].join(net.rate(i, k).expect("reachable"));
                assoc.assign(i, k);
            }
            None => {
                return Err(CoreError::CapacityExceeded {
                    extender: j,
                    limit: net.user_limit(j).expect("over-limit extender has a limit"),
                })
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;

    fn fig3_network() -> Network {
        Network::from_raw(vec![60.0, 20.0], vec![vec![15.0, 10.0], vec![40.0, 20.0]]).unwrap()
    }

    #[test]
    fn fig3_wolt_finds_the_optimum() {
        let assoc = Wolt::new().associate(&fig3_network()).unwrap();
        let eval = evaluate(&fig3_network(), &assoc).unwrap();
        assert!((eval.aggregate.value() - 40.0).abs() < 1e-9);
        assert_eq!(assoc.target(0), Some(1));
        assert_eq!(assoc.target(1), Some(0));
    }

    #[test]
    fn association_is_complete_and_valid() {
        let net = Network::from_raw(
            vec![100.0, 80.0, 60.0],
            vec![
                vec![30.0, 20.0, 10.0],
                vec![25.0, 35.0, 15.0],
                vec![12.0, 18.0, 40.0],
                vec![22.0, 14.0, 9.0],
                vec![16.0, 21.0, 11.0],
                vec![28.0, 13.0, 17.0],
            ],
        )
        .unwrap();
        let assoc = Wolt::new().associate(&net).unwrap();
        assert!(assoc.is_complete());
        assert!(net.validate_association(&assoc).is_ok());
    }

    #[test]
    fn phase1_variants_run_end_to_end() {
        let net = fig3_network();
        for solver in [Phase1Solver::Hungarian, Phase1Solver::Auction] {
            for utility in [
                Phase1Utility::Paper,
                Phase1Utility::WifiOnly,
                Phase1Utility::PlcShareOnly,
            ] {
                let wolt = Wolt::new()
                    .with_phase1_solver(solver)
                    .with_phase1_utility(utility);
                let assoc = wolt.associate(&net).unwrap();
                assert!(assoc.is_complete());
            }
        }
        // The paper utility with either solver recovers the optimum here.
        let auction = Wolt::new().with_phase1_solver(Phase1Solver::Auction);
        let eval = evaluate(&net, &auction.associate(&net).unwrap()).unwrap();
        assert!((eval.aggregate.value() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_phase2_variant_runs() {
        let net = fig3_network();
        let wolt = Wolt::new().with_phase2_solver(Phase2Solver::Greedy);
        assert_eq!(wolt.name(), "WOLT-greedy2");
        let assoc = wolt.associate(&net).unwrap();
        assert!(assoc.is_complete());
    }

    #[test]
    fn respects_user_limits_via_repair() {
        // Three users, two extenders, at most one user per extender 0.
        let net = Network::from_raw(
            vec![100.0, 90.0],
            vec![vec![30.0, 5.0], vec![28.0, 6.0], vec![26.0, 7.0]],
        )
        .unwrap()
        .with_user_limits(vec![Some(1), None])
        .unwrap();
        let assoc = Wolt::new().associate(&net).unwrap();
        assert!(assoc.is_complete());
        assert!(net.validate_association(&assoc).is_ok());
        assert!(assoc.users_of(0).len() <= 1);
    }

    #[test]
    fn impossible_limits_error() {
        let net = Network::from_raw(vec![100.0, 90.0], vec![vec![30.0, 5.0], vec![28.0, 6.0]])
            .unwrap()
            .with_user_limits(vec![Some(0), Some(1)])
            .unwrap();
        let err = Wolt::new().associate(&net).unwrap_err();
        assert!(matches!(err, CoreError::CapacityExceeded { .. }));
    }

    #[test]
    fn detailed_outcome_exposes_phases() {
        let net = fig3_network();
        let (p1, p2) = Wolt::new().associate_detailed(&net).unwrap();
        assert_eq!(p1.selected_users.len(), 2);
        assert!(p2.association.is_complete());
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        use wolt_opt::brute::best_full_assignment;
        // WOLT is a heuristic; on these small, well-separated instances it
        // should land within a few percent of the brute-force optimum.
        let nets = [
            fig3_network(),
            Network::from_raw(
                vec![120.0, 40.0],
                vec![vec![25.0, 12.0], vec![18.0, 22.0], vec![30.0, 8.0]],
            )
            .unwrap(),
            Network::from_raw(
                vec![70.0, 90.0, 50.0],
                vec![
                    vec![20.0, 15.0, 9.0],
                    vec![11.0, 24.0, 13.0],
                    vec![8.0, 16.0, 21.0],
                    vec![17.0, 10.0, 14.0],
                ],
            )
            .unwrap(),
        ];
        for net in &nets {
            let assoc = Wolt::new().associate(net).unwrap();
            let wolt_value = evaluate(net, &assoc).unwrap().aggregate.value();
            let (_, best) = best_full_assignment(net.users(), net.extenders(), |targets| {
                let a = Association::complete(targets.to_vec());
                match evaluate(net, &a) {
                    Ok(e) => e.aggregate.value(),
                    Err(_) => f64::NEG_INFINITY,
                }
            });
            assert!(
                wolt_value >= 0.9 * best,
                "wolt {wolt_value} too far from optimum {best}"
            );
        }
    }
}
