//! Last-known-good client telemetry for a resilient Central Controller.
//!
//! The paper's CC plans on rate estimates that clients *report* over a
//! real network (§V-A): reports can be lost, delayed, or duplicated, and
//! clients vanish without notice. This module gives the controller a
//! cache of the last rates each client reported, smoothed exponentially
//! (successive reports of a noisy link converge instead of whiplashing
//! the planner) and aged with a staleness counter, so the CC can keep
//! planning — degrading to slightly stale data — instead of stalling or
//! panicking when a report goes missing.
//!
//! Duplicate delivery is first-class: a retransmitted or fault-duplicated
//! report carries the epoch of the event that produced it, and
//! [`TelemetryCache::record`] applies each `(client, epoch)` pair at most
//! once. That keeps the smoothed state — and therefore every association
//! decision derived from it — independent of how many copies of a report
//! the network happened to deliver.

use wolt_units::Mbps;

/// What the cache knows about one client.
#[derive(Debug, Clone, PartialEq)]
struct ClientEntry {
    /// Smoothed per-extender achievable rates (`None` = unreachable).
    rates: Vec<Option<Mbps>>,
    /// Epochs elapsed since the last accepted report.
    staleness: u64,
    /// Epoch of the last accepted report (duplicate suppression).
    last_epoch: u64,
}

/// Per-client last-known-good rate cache with exponential smoothing and
/// staleness ages.
#[derive(Debug, Clone)]
pub struct TelemetryCache {
    alpha: f64,
    entries: Vec<Option<ClientEntry>>,
    /// Bumped on every mutation that can change the *rates* a planner
    /// would read (accepted report, forget, eviction) — see
    /// [`version`](Self::version).
    version: u64,
}

impl PartialEq for TelemetryCache {
    /// Equality compares cache *content* (alpha and entries), not
    /// [`version`](Self::version): the version is a session-local
    /// invalidation stamp, deliberately not part of snapshots, so a
    /// restored cache must compare equal to its original.
    fn eq(&self, other: &Self) -> bool {
        self.alpha == other.alpha && self.entries == other.entries
    }
}

impl TelemetryCache {
    /// An empty cache for `clients` clients with smoothing factor
    /// `alpha` ∈ (0, 1]: each accepted report contributes `alpha` of the
    /// new sample and `1 - alpha` of the cached value. `alpha = 1.0`
    /// disables smoothing (the cache holds the latest report verbatim).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]` — a zero or negative weight
    /// would ignore every report, which is never what a controller wants.
    pub fn new(clients: usize, alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && 0.0 < alpha && alpha <= 1.0,
            "smoothing alpha must be in (0, 1], got {alpha}"
        );
        Self {
            alpha,
            entries: vec![None; clients],
            version: 0,
        }
    }

    /// A monotone stamp of the cache's *rate content*: any mutation that
    /// could change what a planner derives from the cache (an accepted
    /// report whose smoothed rates differ from the cached ones, a
    /// [`forget`](Self::forget), an eviction) bumps it, while content
    /// no-ops — rejected duplicates, re-reports of unchanged rates (the
    /// EWMA fixed point), [`advance_epoch`](Self::advance_epoch) aging,
    /// forgetting an unknown client — do not. A planner caching a view
    /// built from these rates can compare versions instead of rates.
    ///
    /// The version is session-local: it is not snapshotted, and a cache
    /// rebuilt via [`from_entries`](Self::from_entries) restarts at a
    /// fresh count (equality ignores it).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of client slots.
    pub fn clients(&self) -> usize {
        self.entries.len()
    }

    /// Accepts a report from `client` produced at `epoch`, unless that
    /// epoch was already applied (a retransmission or network duplicate),
    /// and returns whether the report was applied.
    ///
    /// A first report (or a report from a client previously
    /// [forgotten](Self::forget)) is stored verbatim; later reports are
    /// blended per-extender with weight `alpha`. A reachability change
    /// (`Some` ↔ `None`) takes the new sample outright: averaging a rate
    /// with "out of range" is meaningless.
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range.
    pub fn record(&mut self, client: usize, epoch: u64, rates: &[Option<Mbps>]) -> bool {
        match &mut self.entries[client] {
            Some(entry) => {
                if entry.last_epoch == epoch {
                    wolt_support::obs::counter_inc("cc.telemetry_dups");
                    return false;
                }
                wolt_support::obs::counter_inc("cc.telemetry_hits");
                let mut changed = false;
                for (cached, &new) in entry.rates.iter_mut().zip(rates) {
                    let next = match (*cached, new) {
                        (Some(old), Some(new)) => Some(Mbps::new(
                            self.alpha * new.value() + (1.0 - self.alpha) * old.value(),
                        )),
                        _ => new,
                    };
                    changed |= next != *cached;
                    *cached = next;
                }
                entry.staleness = 0;
                entry.last_epoch = epoch;
                // A re-report of unchanged rates (the EWMA fixed point)
                // leaves the planning content intact: keep the version,
                // so a cached planning view stays reusable across epochs.
                if changed {
                    self.version += 1;
                }
                true
            }
            slot @ None => {
                *slot = Some(ClientEntry {
                    rates: rates.to_vec(),
                    staleness: 0,
                    last_epoch: epoch,
                });
                self.version += 1;
                true
            }
        }
    }

    /// Ages every known client by one epoch.
    pub fn advance_epoch(&mut self) {
        for entry in self.entries.iter_mut().flatten() {
            entry.staleness += 1;
        }
    }

    /// Drops everything known about `client` (departure, or a client the
    /// controller has declared dead).
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range.
    pub fn forget(&mut self, client: usize) {
        if self.entries[client].take().is_some() {
            self.version += 1;
        }
    }

    /// Whether the cache holds rates for `client`.
    pub fn is_known(&self, client: usize) -> bool {
        self.entries.get(client).is_some_and(Option::is_some)
    }

    /// The smoothed last-known-good rates of `client`, if any.
    pub fn rates(&self, client: usize) -> Option<&[Option<Mbps>]> {
        self.entries[client].as_ref().map(|e| e.rates.as_slice())
    }

    /// Epochs since `client` last reported, if it is known.
    pub fn staleness(&self, client: usize) -> Option<u64> {
        self.entries[client].as_ref().map(|e| e.staleness)
    }

    /// Indices of all known clients, ascending.
    pub fn known_clients(&self) -> Vec<usize> {
        (0..self.entries.len())
            .filter(|&i| self.entries[i].is_some())
            .collect()
    }

    /// The smoothing factor this cache was built with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Evicts every client whose last accepted report is more than
    /// `max_staleness` epochs old, returning the evicted indices
    /// ascending. A long-running controller calls this each epoch so the
    /// cache stays bounded by the *live* population: clients that
    /// departed or died silently (and were never explicitly
    /// [forgotten](Self::forget)) age out instead of accumulating.
    pub fn evict_stale(&mut self, max_staleness: u64) -> Vec<usize> {
        let mut evicted = Vec::new();
        for (i, slot) in self.entries.iter_mut().enumerate() {
            if slot.as_ref().is_some_and(|e| e.staleness > max_staleness) {
                *slot = None;
                evicted.push(i);
            }
        }
        wolt_support::obs::counter_add("cc.telemetry_evictions", evicted.len() as u64);
        if !evicted.is_empty() {
            self.version += 1;
        }
        evicted
    }

    /// A copy of every client slot, for snapshotting a controller to
    /// disk. Pair with [`from_entries`](Self::from_entries) to restore.
    pub fn entries(&self) -> Vec<Option<TelemetryEntry>> {
        self.entries
            .iter()
            .map(|slot| {
                slot.as_ref().map(|e| TelemetryEntry {
                    rates: e.rates.clone(),
                    staleness: e.staleness,
                    last_epoch: e.last_epoch,
                })
            })
            .collect()
    }

    /// Rebuilds a cache from a snapshot taken with
    /// [`entries`](Self::entries).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]`, as [`new`](Self::new) does.
    pub fn from_entries(alpha: f64, entries: Vec<Option<TelemetryEntry>>) -> Self {
        let mut cache = Self::new(entries.len(), alpha);
        cache.entries = entries
            .into_iter()
            .map(|slot| {
                slot.map(|e| ClientEntry {
                    rates: e.rates,
                    staleness: e.staleness,
                    last_epoch: e.last_epoch,
                })
            })
            .collect();
        cache
    }
}

/// One client's cache slot as exposed for snapshot/restore.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryEntry {
    /// Smoothed per-extender achievable rates (`None` = unreachable).
    pub rates: Vec<Option<Mbps>>,
    /// Epochs elapsed since the last accepted report.
    pub staleness: u64,
    /// Epoch of the last accepted report.
    pub last_epoch: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mb(v: f64) -> Option<Mbps> {
        Some(Mbps::new(v))
    }

    #[test]
    fn first_report_stored_verbatim() {
        let mut cache = TelemetryCache::new(3, 0.5);
        assert!(cache.record(1, 0, &[mb(10.0), None]));
        assert_eq!(cache.rates(1).unwrap(), &[mb(10.0), None]);
        assert_eq!(cache.staleness(1), Some(0));
        assert!(!cache.is_known(0));
        assert_eq!(cache.known_clients(), vec![1]);
    }

    #[test]
    fn smoothing_blends_toward_new_samples() {
        let mut cache = TelemetryCache::new(1, 0.5);
        cache.record(0, 0, &[mb(10.0)]);
        cache.record(0, 1, &[mb(20.0)]);
        let got = cache.rates(0).unwrap()[0].unwrap().value();
        assert!(
            (got - 15.0).abs() < 1e-12,
            "EWMA(10, 20; 0.5) = 15, got {got}"
        );
        // Repeated identical samples are a fixed point.
        cache.record(0, 2, &[mb(15.0)]);
        assert!((cache.rates(0).unwrap()[0].unwrap().value() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_one_keeps_latest_report() {
        let mut cache = TelemetryCache::new(1, 1.0);
        cache.record(0, 0, &[mb(10.0)]);
        cache.record(0, 1, &[mb(40.0)]);
        assert_eq!(cache.rates(0).unwrap(), &[mb(40.0)]);
    }

    #[test]
    fn duplicate_epoch_is_ignored() {
        let mut cache = TelemetryCache::new(1, 0.5);
        assert!(cache.record(0, 7, &[mb(10.0)]));
        // A duplicated delivery of the same report must not re-smooth.
        assert!(!cache.record(0, 7, &[mb(10.0)]));
        cache.record(0, 8, &[mb(20.0)]);
        assert!(!cache.record(0, 8, &[mb(20.0)]));
        let got = cache.rates(0).unwrap()[0].unwrap().value();
        assert!(
            (got - 15.0).abs() < 1e-12,
            "duplicate shifted EWMA to {got}"
        );
    }

    #[test]
    fn reachability_change_takes_new_sample() {
        let mut cache = TelemetryCache::new(1, 0.25);
        cache.record(0, 0, &[mb(10.0), None]);
        cache.record(0, 1, &[None, mb(30.0)]);
        assert_eq!(cache.rates(0).unwrap(), &[None, mb(30.0)]);
    }

    #[test]
    fn staleness_ages_and_resets() {
        let mut cache = TelemetryCache::new(2, 1.0);
        cache.record(0, 0, &[mb(5.0)]);
        cache.advance_epoch();
        cache.advance_epoch();
        assert_eq!(cache.staleness(0), Some(2));
        assert_eq!(cache.staleness(1), None);
        cache.record(0, 2, &[mb(5.0)]);
        assert_eq!(cache.staleness(0), Some(0));
    }

    #[test]
    fn forget_then_rejoin_starts_fresh() {
        let mut cache = TelemetryCache::new(1, 0.5);
        cache.record(0, 0, &[mb(10.0)]);
        cache.forget(0);
        assert!(!cache.is_known(0));
        assert_eq!(cache.rates(0), None);
        // Rejoin: stored verbatim, not blended with the forgotten value.
        assert!(cache.record(0, 5, &[mb(40.0)]));
        assert_eq!(cache.rates(0).unwrap(), &[mb(40.0)]);
    }

    #[test]
    #[should_panic(expected = "smoothing alpha")]
    fn zero_alpha_rejected() {
        let _ = TelemetryCache::new(1, 0.0);
    }

    #[test]
    fn evict_stale_drops_only_aged_out_clients() {
        // Regression: a long-running controller must not accumulate
        // entries for clients that silently vanished — staleness-bounded
        // eviction keeps the cache bounded by the live population.
        let mut cache = TelemetryCache::new(3, 0.5);
        cache.record(0, 0, &[mb(10.0)]);
        cache.record(1, 0, &[mb(20.0)]);
        for _ in 0..3 {
            cache.advance_epoch();
        }
        // Client 1 keeps reporting; client 0 went silent at epoch 0.
        cache.record(1, 3, &[mb(20.0)]);
        assert_eq!(cache.evict_stale(2), vec![0]);
        assert!(!cache.is_known(0));
        assert!(cache.is_known(1));
        assert_eq!(cache.known_clients(), vec![1]);
        // At the bound (staleness == max) the entry survives.
        cache.advance_epoch();
        cache.advance_epoch();
        assert_eq!(cache.staleness(1), Some(2));
        assert_eq!(cache.evict_stale(2), Vec::<usize>::new());
        assert!(cache.is_known(1));
    }

    #[test]
    fn version_tracks_rate_content_only() {
        let mut cache = TelemetryCache::new(2, 0.5);
        let v0 = cache.version();
        // No-ops leave the version alone…
        cache.advance_epoch();
        cache.forget(0);
        assert_eq!(cache.evict_stale(10), Vec::<usize>::new());
        assert_eq!(cache.version(), v0);
        // …accepted reports bump it…
        assert!(cache.record(0, 0, &[mb(10.0)]));
        let v1 = cache.version();
        assert!(v1 > v0);
        // …a rejected duplicate does not…
        assert!(!cache.record(0, 0, &[mb(10.0)]));
        assert_eq!(cache.version(), v1);
        // …nor does an accepted re-report of unchanged rates (EWMA of
        // identical samples is a fixed point at alpha = 0.5)…
        assert!(cache.record(0, 1, &[mb(10.0)]));
        assert_eq!(cache.version(), v1);
        // …while genuinely new rates do.
        assert!(cache.record(0, 2, &[mb(30.0)]));
        assert!(cache.version() > v1);
        // …and forgetting a known client does.
        let v2 = cache.version();
        cache.forget(0);
        assert!(cache.version() > v2);
        // Eviction of a real entry bumps too.
        cache.record(1, 0, &[mb(5.0)]);
        let v3 = cache.version();
        for _ in 0..3 {
            cache.advance_epoch();
        }
        assert_eq!(cache.evict_stale(1), vec![1]);
        assert!(cache.version() > v3);
    }

    #[test]
    fn snapshot_round_trips_through_entries() {
        let mut cache = TelemetryCache::new(3, 0.5);
        cache.record(0, 4, &[mb(10.0), None]);
        cache.record(2, 5, &[None, mb(30.0)]);
        cache.advance_epoch();
        let restored = TelemetryCache::from_entries(cache.alpha(), cache.entries());
        assert_eq!(restored, cache);
        // The restored cache keeps behaving identically: duplicate
        // suppression and smoothing state survive the round trip.
        assert!(!restored.clone().record(2, 5, &[None, mb(30.0)]));
        let mut a = cache;
        let mut b = restored;
        a.record(0, 6, &[mb(20.0), None]);
        b.record(0, 6, &[mb(20.0), None]);
        assert_eq!(a, b);
    }
}
