//! Baseline association policies the paper compares WOLT against.
//!
//! * [`Rssi`] — "users are associated to the extender that yields the
//!   strongest received signal regardless of (a) the quality of the
//!   extender's PLC link segment, (b) how many users are contending"
//!   (§V-C). This is the factory default of commodity extenders. With a
//!   monotone RSSI→rate table, strongest signal ⇔ highest achievable rate,
//!   so the policy picks `argmax_j r_ij`.
//! * [`Greedy`] — the online centralized baseline (§V-B): each arriving
//!   user is placed on the extender that maximizes the aggregate network
//!   throughput *given everyone already placed*; nobody is ever reassigned.
//! * [`Optimal`] — brute-force search over complete associations (the
//!   oracle behind the paper's Fig. 3d), feasible only at toy scale.
//! * [`SelfishGreedy`] — the §III-B variant where each arrival maximizes
//!   *its own* throughput instead of the aggregate (the behaviour the
//!   paper's Fig. 3c narrative describes).
//! * [`Random`] — a uniformly random reachable extender per user; a sanity
//!   floor for experiments.

use crate::{evaluate, Association, AssociationPolicy, CoreError, IncrementalEvaluator, Network};

/// Strongest-signal association (the commodity default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rssi;

impl AssociationPolicy for Rssi {
    fn name(&self) -> &str {
        "RSSI"
    }

    fn associate(&self, net: &Network) -> Result<Association, CoreError> {
        let mut assoc = Association::unassigned(net.users());
        for i in 0..net.users() {
            let best = best_reachable(net, i, &assoc, |j| {
                net.rate(i, j).expect("reachable").value()
            })?;
            assoc.assign(i, best);
        }
        Ok(assoc)
    }
}

/// Online greedy association: maximize aggregate throughput one arrival at
/// a time, never reassigning earlier users.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Greedy {
    /// Arrival order of the users; `None` means index order `0..U`.
    order: Option<Vec<usize>>,
}

impl Greedy {
    /// Greedy with users arriving in index order.
    pub fn new() -> Self {
        Self::default()
    }

    /// Greedy with an explicit arrival order (a permutation of `0..U`).
    pub fn with_order(order: Vec<usize>) -> Self {
        Self { order: Some(order) }
    }
}

impl AssociationPolicy for Greedy {
    fn name(&self) -> &str {
        "Greedy"
    }

    fn associate(&self, net: &Network) -> Result<Association, CoreError> {
        let order: Vec<usize> = match &self.order {
            Some(o) => {
                if o.len() != net.users() {
                    return Err(CoreError::DimensionMismatch {
                        context: "arrival order length != number of users",
                    });
                }
                o.clone()
            }
            None => (0..net.users()).collect(),
        };

        // Place arrivals through the incremental evaluator: each candidate
        // extender is scored with an O(A·rounds) probe instead of a full
        // clone + O(U·A) re-evaluation.
        let mut evaluator = IncrementalEvaluator::new(net, &Association::unassigned(net.users()))?;
        for &i in &order {
            let mut best: Option<(usize, f64)> = None;
            for j in net.reachable_extenders(i) {
                // Full cells (user limits) and other inadmissible targets
                // are simply not candidates.
                let Ok(value) = evaluator.probe_move(i, Some(j)) else {
                    continue;
                };
                let s = value.value();
                if best.is_none_or(|(_, b)| s > b) {
                    best = Some((j, s));
                }
            }
            let (j, _) = best.ok_or(CoreError::IncompleteAssociation { user: i })?;
            evaluator.apply_move(i, Some(j))?;
        }
        Ok(evaluator.into_association())
    }
}

/// Brute-force optimal association (exponential; toy instances only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Optimal {
    /// Worker threads for the enumeration; `None` resolves from
    /// `WOLT_THREADS` / machine parallelism.
    threads: Option<usize>,
}

impl Optimal {
    /// Optimal with the thread count resolved from the environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Optimal with an explicit worker-thread count (the CLI's
    /// `--threads`). The winning association is identical at any count.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: Some(threads),
        }
    }
}

impl AssociationPolicy for Optimal {
    fn name(&self) -> &str {
        "Optimal"
    }

    /// # Errors
    ///
    /// Besides infeasibility errors, panics from the underlying
    /// brute-force iterator are avoided by pre-checking the search-space
    /// size and returning [`CoreError::DimensionMismatch`] when it exceeds
    /// 10⁸ candidates.
    ///
    /// The enumeration fans out over the deterministic
    /// [`wolt_support::pool`] (thread count from `WOLT_THREADS`, else the
    /// machine's parallelism); the winning association is identical at any
    /// thread count.
    fn associate(&self, net: &Network) -> Result<Association, CoreError> {
        let space = (net.extenders() as f64).powi(net.users() as i32);
        if space > 1e8 {
            return Err(CoreError::DimensionMismatch {
                context: "instance too large for brute-force optimal",
            });
        }
        let threads = wolt_support::pool::resolve_threads(self.threads);
        let (targets, value) = wolt_opt::brute::best_full_assignment_parallel(
            threads,
            net.users(),
            net.extenders(),
            |targets| {
                let assoc = Association::complete(targets.to_vec());
                match evaluate(net, &assoc) {
                    Ok(e) => e.aggregate.value(),
                    Err(_) => f64::NEG_INFINITY,
                }
            },
        );
        if value == f64::NEG_INFINITY {
            // Even the best assignment was infeasible (limits too tight).
            return Err(CoreError::IncompleteAssociation { user: 0 });
        }
        Ok(Association::complete(targets))
    }
}

/// Uniform-random reachable extender per user (seeded, reproducible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Random {
    seed: u64,
}

impl Random {
    /// Random policy with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl AssociationPolicy for Random {
    fn name(&self) -> &str {
        "Random"
    }

    fn associate(&self, net: &Network) -> Result<Association, CoreError> {
        // SplitMix64: tiny, deterministic, and good enough for picking
        // uniform extenders without pulling a rand dependency into core.
        let mut state = self.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut assoc = Association::unassigned(net.users());
        for i in 0..net.users() {
            let reachable = net.reachable_extenders(i);
            debug_assert!(!reachable.is_empty(), "network validation guarantees this");
            let pick = reachable[(next() % reachable.len() as u64) as usize];
            assoc.assign(i, pick);
        }
        Ok(assoc)
    }
}

/// Picks the reachable, non-full extender maximizing `score`; errors if
/// user limits leave no candidate.
fn best_reachable<F: FnMut(usize) -> f64>(
    net: &Network,
    user: usize,
    assoc: &Association,
    mut score: F,
) -> Result<usize, CoreError> {
    let mut best: Option<(usize, f64)> = None;
    for j in net.reachable_extenders(user) {
        if let Some(limit) = net.user_limit(j) {
            if assoc.users_of(j).len() >= limit {
                continue;
            }
        }
        let s = score(j);
        if best.is_none_or(|(_, b)| s > b) {
            best = Some((j, s));
        }
    }
    best.map(|(j, _)| j)
        .ok_or(CoreError::IncompleteAssociation { user })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_network() -> Network {
        Network::from_raw(vec![60.0, 20.0], vec![vec![15.0, 10.0], vec![40.0, 20.0]]).unwrap()
    }

    #[test]
    fn rssi_reproduces_fig3b() {
        // Both users' best WiFi rate is on extender 1 → total ≈ 22.
        let assoc = Rssi.associate(&fig3_network()).unwrap();
        assert_eq!(assoc.target(0), Some(0));
        assert_eq!(assoc.target(1), Some(0));
        let eval = evaluate(&fig3_network(), &assoc).unwrap();
        assert!((eval.aggregate.value() - 240.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_reproduces_fig3c() {
        // User 1 arrives first and grabs extender 1; user 2 then prefers
        // extender 2 → total 30 (with airtime redistribution).
        let assoc = Greedy::new().associate(&fig3_network()).unwrap();
        assert_eq!(assoc.target(0), Some(0));
        assert_eq!(assoc.target(1), Some(1));
        let eval = evaluate(&fig3_network(), &assoc).unwrap();
        assert!((eval.aggregate.value() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn optimal_reproduces_fig3d() {
        let assoc = Optimal::new().associate(&fig3_network()).unwrap();
        let eval = evaluate(&fig3_network(), &assoc).unwrap();
        assert!((eval.aggregate.value() - 40.0).abs() < 1e-9);
        assert_eq!(assoc.target(0), Some(1));
        assert_eq!(assoc.target(1), Some(0));
    }

    #[test]
    fn fig3_ordering_rssi_le_greedy_le_optimal() {
        let net = fig3_network();
        let rssi = evaluate(&net, &Rssi.associate(&net).unwrap())
            .unwrap()
            .aggregate;
        let greedy = evaluate(&net, &Greedy::new().associate(&net).unwrap())
            .unwrap()
            .aggregate;
        let optimal = evaluate(&net, &Optimal::new().associate(&net).unwrap())
            .unwrap()
            .aggregate;
        assert!(rssi <= greedy);
        assert!(greedy <= optimal);
    }

    #[test]
    fn greedy_respects_arrival_order() {
        let net = fig3_network();
        // Reversed arrivals: user 2 first takes extender 1 (its end-to-end
        // best), changing what user 1 sees.
        let assoc = Greedy::with_order(vec![1, 0]).associate(&net).unwrap();
        assert_eq!(assoc.target(1), Some(0));
        assert!(assoc.is_complete());
    }

    #[test]
    fn greedy_rejects_bad_order() {
        let err = Greedy::with_order(vec![0])
            .associate(&fig3_network())
            .unwrap_err();
        assert!(matches!(err, CoreError::DimensionMismatch { .. }));
    }

    #[test]
    fn greedy_never_reassigns() {
        // A third user arriving cannot move the first two.
        let net = Network::from_raw(
            vec![60.0, 20.0],
            vec![vec![15.0, 10.0], vec![40.0, 20.0], vec![35.0, 18.0]],
        )
        .unwrap();
        let two_first = Greedy::with_order(vec![0, 1, 2]).associate(&net).unwrap();
        let fig3 = Greedy::new().associate(&fig3_network()).unwrap();
        assert_eq!(two_first.target(0), fig3.target(0));
        assert_eq!(two_first.target(1), fig3.target(1));
    }

    #[test]
    fn random_is_deterministic_per_seed_and_feasible() {
        let net = fig3_network();
        let a = Random::new(7).associate(&net).unwrap();
        let b = Random::new(7).associate(&net).unwrap();
        assert_eq!(a, b);
        assert!(net.validate_association(&a).is_ok());
        assert!(a.is_complete());
    }

    #[test]
    fn random_covers_extenders_across_seeds() {
        let net = fig3_network();
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..32 {
            let a = Random::new(seed).associate(&net).unwrap();
            seen.insert(a.target(0));
            seen.insert(a.target(1));
        }
        assert!(seen.contains(&Some(0)) && seen.contains(&Some(1)));
    }

    #[test]
    fn policies_respect_user_limits() {
        let net = Network::from_raw(
            vec![100.0, 90.0],
            vec![vec![30.0, 5.0], vec![28.0, 6.0], vec![26.0, 7.0]],
        )
        .unwrap()
        .with_user_limits(vec![Some(1), None])
        .unwrap();
        for policy in [&Rssi as &dyn AssociationPolicy, &Greedy::new()] {
            let assoc = policy.associate(&net).unwrap();
            assert!(
                net.validate_association(&assoc).is_ok(),
                "{} violated limits",
                policy.name()
            );
        }
    }

    #[test]
    fn limits_too_tight_error() {
        let net = Network::from_raw(vec![100.0], vec![vec![30.0], vec![28.0]])
            .unwrap()
            .with_user_limits(vec![Some(1)])
            .unwrap();
        assert!(matches!(
            Rssi.associate(&net),
            Err(CoreError::IncompleteAssociation { user: 1 })
        ));
    }

    #[test]
    fn optimal_rejects_huge_instances() {
        let rates = vec![vec![10.0; 10]; 30];
        let net = Network::from_raw(vec![100.0; 10], rates).unwrap();
        assert!(matches!(
            Optimal::new().associate(&net),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn selfish_greedy_reproduces_fig3c_on_the_case_study() {
        // On the 2-user case study the selfish and aggregate greedies
        // agree: user 1 takes extender 1 (own 15 > 10), user 2 takes
        // extender 2 (own 15 via redistribution > 10.9 sharing ext 1).
        let assoc = SelfishGreedy::new().associate(&fig3_network()).unwrap();
        assert_eq!(assoc.target(0), Some(0));
        assert_eq!(assoc.target(1), Some(1));
        let eval = evaluate(&fig3_network(), &assoc).unwrap();
        assert!((eval.aggregate.value() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn selfish_greedy_falls_into_anomaly_traps() {
        // One extender with a great PLC link and fast cell; a slow user
        // joins it for selfish gain, crushing the cell. The aggregate
        // greedy avoids this.
        let net = Network::from_raw(
            vec![200.0, 40.0],
            vec![vec![50.0, 10.0], vec![50.0, 10.0], vec![2.0, 1.9]],
        )
        .unwrap();
        let selfish = evaluate(&net, &SelfishGreedy::new().associate(&net).unwrap())
            .unwrap()
            .aggregate;
        let aggregate = evaluate(&net, &Greedy::new().associate(&net).unwrap())
            .unwrap()
            .aggregate;
        assert!(
            selfish < aggregate,
            "selfish {selfish} should trail aggregate greedy {aggregate}"
        );
    }

    #[test]
    fn selfish_greedy_respects_order_and_validates() {
        let net = fig3_network();
        let assoc = SelfishGreedy::with_order(vec![1, 0])
            .associate(&net)
            .unwrap();
        assert!(assoc.is_complete());
        assert!(net.validate_association(&assoc).is_ok());
        let err = SelfishGreedy::with_order(vec![0])
            .associate(&net)
            .unwrap_err();
        assert!(matches!(err, CoreError::DimensionMismatch { .. }));
    }

    #[test]
    fn optimal_dominates_everyone_on_small_instances() {
        let net = Network::from_raw(
            vec![70.0, 90.0, 50.0],
            vec![
                vec![20.0, 15.0, 9.0],
                vec![11.0, 24.0, 13.0],
                vec![8.0, 16.0, 21.0],
                vec![17.0, 10.0, 14.0],
            ],
        )
        .unwrap();
        let optimal = evaluate(&net, &Optimal::new().associate(&net).unwrap())
            .unwrap()
            .aggregate;
        for policy in [
            &Rssi as &dyn AssociationPolicy,
            &Greedy::new(),
            &Random::new(3),
        ] {
            let v = evaluate(&net, &policy.associate(&net).unwrap())
                .unwrap()
                .aggregate;
            assert!(
                v <= optimal + wolt_units::Mbps::new(1e-9),
                "{} beat optimal?!",
                policy.name()
            );
        }
    }
}

/// Selfish online greedy: each arriving user connects to the extender
/// maximizing *its own* end-to-end throughput, indifferent to the damage
/// its contention inflicts on others (§III-B of the paper: "users …
/// are associated so as to maximize their own throughputs greedily").
///
/// This is the classic performance-anomaly trap and degrades sharply at
/// scale, which is where the paper's largest WOLT-vs-greedy factors come
/// from.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SelfishGreedy {
    /// Arrival order; `None` means index order.
    order: Option<Vec<usize>>,
}

impl SelfishGreedy {
    /// Selfish greedy with users arriving in index order.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selfish greedy with an explicit arrival order.
    pub fn with_order(order: Vec<usize>) -> Self {
        Self { order: Some(order) }
    }
}

impl AssociationPolicy for SelfishGreedy {
    fn name(&self) -> &str {
        "SelfishGreedy"
    }

    fn associate(&self, net: &Network) -> Result<Association, CoreError> {
        let order: Vec<usize> = match &self.order {
            Some(o) => {
                if o.len() != net.users() {
                    return Err(CoreError::DimensionMismatch {
                        context: "arrival order length != number of users",
                    });
                }
                o.clone()
            }
            None => (0..net.users()).collect(),
        };
        // Each arrival probes its *own* prospective throughput on every
        // reachable extender via the incremental evaluator.
        let mut evaluator = IncrementalEvaluator::new(net, &Association::unassigned(net.users()))?;
        for &i in &order {
            let mut best: Option<(usize, f64)> = None;
            for j in net.reachable_extenders(i) {
                let Ok(own) = evaluator.probe_move_user(i, Some(j)) else {
                    continue; // full cell — not a candidate
                };
                let s = own.value();
                if best.is_none_or(|(_, b)| s > b) {
                    best = Some((j, s));
                }
            }
            let (j, _) = best.ok_or(CoreError::IncompleteAssociation { user: i })?;
            evaluator.apply_move(i, Some(j))?;
        }
        Ok(evaluator.into_association())
    }
}
