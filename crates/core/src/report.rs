//! Human-readable breakdowns of an evaluated association.
//!
//! `evaluate()` returns numbers; operators debugging a deployment want to
//! know *why* — which segment bottlenecks each extender, who shares which
//! cell, where airtime went. [`explain`] renders exactly that, and
//! [`Bottleneck`] classifies each cell the way the paper's §III discussion
//! does (WiFi-bound vs PLC-bound).

use std::fmt::Write as _;

use crate::{Association, CoreError, Evaluation, Network};

/// Which segment limits a cell's end-to-end throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// The cell serves no users.
    Idle,
    /// The WiFi side is the constraint: the cell delivers its full WiFi
    /// demand, which sits below its equal-share PLC entitlement.
    Wifi,
    /// The PLC airtime grant is the constraint (delivered < WiFi demand).
    Plc,
    /// Both constraints bind within 1% of each other.
    Balanced,
}

/// Per-extender diagnostic row.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtenderDiagnostic {
    /// Extender index.
    pub extender: usize,
    /// Users associated with it.
    pub users: Vec<usize>,
    /// PLC isolation capacity (Mbit/s).
    pub capacity_mbps: f64,
    /// Airtime share granted.
    pub plc_share: f64,
    /// WiFi-side demand (Mbit/s).
    pub wifi_demand_mbps: f64,
    /// Delivered end-to-end throughput (Mbit/s).
    pub delivered_mbps: f64,
    /// Which side limits the cell.
    pub bottleneck: Bottleneck,
}

/// Classifies every extender of an evaluated association.
///
/// # Errors
///
/// Propagates association-validation failures (the evaluation must match
/// the association/network it came from; mismatched shapes error).
pub fn diagnose(
    net: &Network,
    assoc: &Association,
    eval: &Evaluation,
) -> Result<Vec<ExtenderDiagnostic>, CoreError> {
    net.validate_association(assoc)?;
    if eval.per_extender.len() != net.extenders() || eval.per_user.len() != net.users() {
        return Err(CoreError::DimensionMismatch {
            context: "evaluation shape differs from network",
        });
    }
    let active = eval
        .wifi_demand
        .iter()
        .filter(|d| d.value() > 0.0)
        .count()
        .max(1);
    Ok((0..net.extenders())
        .map(|j| {
            let users = assoc.users_of(j);
            let demand = eval.wifi_demand[j].value();
            let delivered = eval.per_extender[j].value();
            // The airtime allocator trims satisfied extenders' grants to
            // exactly their demand, so classify against the *entitled*
            // equal share c_j / A instead of the post-trim grant.
            let entitled = net.capacity(j).value() / active as f64;
            let bottleneck = if users.is_empty() {
                Bottleneck::Idle
            } else if delivered < demand * 0.99 {
                Bottleneck::Plc
            } else if demand < entitled * 0.99 {
                Bottleneck::Wifi
            } else {
                Bottleneck::Balanced
            };
            ExtenderDiagnostic {
                extender: j,
                users,
                capacity_mbps: net.capacity(j).value(),
                plc_share: eval.plc_shares[j],
                wifi_demand_mbps: demand,
                delivered_mbps: eval.per_extender[j].value(),
                bottleneck,
            }
        })
        .collect())
}

/// Renders a multi-line human-readable report of an evaluated association.
///
/// # Errors
///
/// Propagates [`diagnose`] failures.
///
/// # Example
///
/// ```
/// use wolt_core::report::explain;
/// use wolt_core::{evaluate, Association, Network};
///
/// # fn main() -> Result<(), wolt_core::CoreError> {
/// let net = Network::from_raw(
///     vec![60.0, 20.0],
///     vec![vec![15.0, 10.0], vec![40.0, 20.0]],
/// )?;
/// let assoc = Association::complete(vec![1, 0]);
/// let eval = evaluate(&net, &assoc)?;
/// let text = explain(&net, &assoc, &eval)?;
/// assert!(text.contains("aggregate"));
/// assert!(text.contains("PLC-bound"));
/// # Ok(())
/// # }
/// ```
pub fn explain(net: &Network, assoc: &Association, eval: &Evaluation) -> Result<String, CoreError> {
    let rows = diagnose(net, assoc, eval)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "aggregate: {:.2} Mbit/s across {} users on {} extenders",
        eval.aggregate.value(),
        assoc.assigned_count(),
        net.extenders()
    );
    for row in &rows {
        let label = match row.bottleneck {
            Bottleneck::Idle => "idle",
            Bottleneck::Wifi => "WiFi-bound",
            Bottleneck::Plc => "PLC-bound",
            Bottleneck::Balanced => "balanced",
        };
        let _ = writeln!(
            out,
            "extender {}: {} | capacity {:.1} Mbit/s x share {:.2} | wifi demand {:.1} | \
             delivers {:.1} | users {:?}",
            row.extender,
            label,
            row.capacity_mbps,
            row.plc_share,
            row.wifi_demand_mbps,
            row.delivered_mbps,
            row.users,
        );
    }
    for (i, t) in eval.per_user.iter().enumerate() {
        let target = assoc
            .target(i)
            .map_or_else(|| "-".to_string(), |j| j.to_string());
        let _ = writeln!(
            out,
            "user {i} -> extender {target}: {:.2} Mbit/s",
            t.value()
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;

    fn fig3() -> (Network, Association, Evaluation) {
        let net =
            Network::from_raw(vec![60.0, 20.0], vec![vec![15.0, 10.0], vec![40.0, 20.0]]).unwrap();
        let assoc = Association::complete(vec![1, 0]);
        let eval = evaluate(&net, &assoc).unwrap();
        (net, assoc, eval)
    }

    #[test]
    fn diagnose_classifies_fig3_optimal() {
        let (net, assoc, eval) = fig3();
        let rows = diagnose(&net, &assoc, &eval).unwrap();
        // Extender 0 serves user 1 (rate 40) on a 30 Mbit/s grant: PLC-bound.
        assert_eq!(rows[0].bottleneck, Bottleneck::Plc);
        assert_eq!(rows[0].users, vec![1]);
        // Extender 1's user demands exactly its 10 Mbit/s half-share:
        // both constraints bind simultaneously.
        assert_eq!(rows[1].bottleneck, Bottleneck::Balanced);
        assert_eq!(rows[1].users, vec![0]);
    }

    #[test]
    fn diagnose_classifies_wifi_bound_cell() {
        // Fig. 3b: both users on extender 0 (the only active one); the
        // 21.8 Mbit/s WiFi cell is far below the 60 Mbit/s entitlement.
        let net =
            Network::from_raw(vec![60.0, 20.0], vec![vec![15.0, 10.0], vec![40.0, 20.0]]).unwrap();
        let assoc = Association::complete(vec![0, 0]);
        let eval = evaluate(&net, &assoc).unwrap();
        let rows = diagnose(&net, &assoc, &eval).unwrap();
        assert_eq!(rows[0].bottleneck, Bottleneck::Wifi);
    }

    #[test]
    fn diagnose_flags_idle_extenders() {
        let net =
            Network::from_raw(vec![60.0, 20.0], vec![vec![15.0, 10.0], vec![40.0, 20.0]]).unwrap();
        let assoc = Association::complete(vec![0, 0]);
        let eval = evaluate(&net, &assoc).unwrap();
        let rows = diagnose(&net, &assoc, &eval).unwrap();
        assert_eq!(rows[1].bottleneck, Bottleneck::Idle);
        assert!(rows[1].users.is_empty());
    }

    #[test]
    fn explain_mentions_every_user_and_extender() {
        let (net, assoc, eval) = fig3();
        let text = explain(&net, &assoc, &eval).unwrap();
        assert!(text.contains("extender 0"));
        assert!(text.contains("extender 1"));
        assert!(text.contains("user 0"));
        assert!(text.contains("user 1"));
        assert!(text.contains("40.00 Mbit/s") || text.contains("aggregate: 40.00"));
    }

    #[test]
    fn diagnose_rejects_mismatched_shapes() {
        let (_net, assoc, eval) = fig3();
        let other = Network::from_raw(vec![60.0], vec![vec![15.0], vec![40.0]]).unwrap();
        assert!(diagnose(&other, &assoc, &eval).is_err());
    }

    #[test]
    fn balanced_cells_detected() {
        // A single extender whose WiFi demand exactly matches its full
        // grant: capacity 30, one user at rate 30.
        let net = Network::from_raw(vec![30.0], vec![vec![30.0]]).unwrap();
        let assoc = Association::complete(vec![0]);
        let eval = evaluate(&net, &assoc).unwrap();
        let rows = diagnose(&net, &assoc, &eval).unwrap();
        assert_eq!(rows[0].bottleneck, Bottleneck::Balanced);
    }
}
