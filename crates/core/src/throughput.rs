//! End-to-end throughput evaluation of an association.
//!
//! This is the physical model every association policy is scored against,
//! combining the two substrates exactly as §III of the paper prescribes:
//!
//! 1. Each extender's WiFi cell is throughput-fair (Eq. 1):
//!    `T_wifi(j) = |N_j| / Σ_{i∈N_j} 1/r_ij`.
//! 2. The PLC backhaul is time-fair across *active* extenders with
//!    leftover-airtime redistribution (Eq. 2 refined by the Fig. 3c
//!    observation), provided by [`wolt_plc::timeshare`].
//! 3. A cell's end-to-end throughput is the min of its two segments, and
//!    the cell's users split it equally (TCP's long-term fair sharing,
//!    which the paper invokes to avoid modelling TCP dynamics).
//!
//! [`evaluate`] implements the full model; [`evaluate_without_redistribution`]
//! is the literal objective (3)–(4) of Problem 1 (plain `c_j/A` with no
//! airtime reuse), kept for ablations.

use wolt_plc::timeshare::{allocate_time_fair, ExtenderDemand};
use wolt_units::Mbps;
use wolt_wifi::cell::CellLoad;

use crate::{Association, CoreError, Network};

/// The result of evaluating an association on a network.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// End-to-end throughput of each user (0 for unassigned users).
    pub per_user: Vec<Mbps>,
    /// End-to-end throughput of each extender's cell.
    pub per_extender: Vec<Mbps>,
    /// WiFi-side demand `T_wifi(j)` of each cell.
    pub wifi_demand: Vec<Mbps>,
    /// PLC airtime share granted to each extender.
    pub plc_shares: Vec<f64>,
    /// Network-wide aggregate throughput (the paper's objective).
    pub aggregate: Mbps,
}

/// Evaluates `assoc` on `net` under the full physical model (time-fair PLC
/// with airtime redistribution).
///
/// Unassigned users contribute nothing; extenders with no users are
/// inactive and take no PLC airtime.
///
/// # Errors
///
/// Propagates [`Network::validate_association`] failures and substrate
/// errors.
///
/// # Example
///
/// The paper's Fig. 3d optimal association is worth 40 Mbit/s:
///
/// ```
/// use wolt_core::{evaluate, Association, Network};
///
/// # fn main() -> Result<(), wolt_core::CoreError> {
/// let net = Network::from_raw(
///     vec![60.0, 20.0],
///     vec![vec![15.0, 10.0], vec![40.0, 20.0]],
/// )?;
/// let optimal = Association::complete(vec![1, 0]); // user 1→ext 2, user 2→ext 1
/// let eval = evaluate(&net, &optimal)?;
/// assert!((eval.aggregate.value() - 40.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn evaluate(net: &Network, assoc: &Association) -> Result<Evaluation, CoreError> {
    net.validate_association(assoc)?;

    let n_ext = net.extenders();
    let mut cells = vec![CellLoad::new(); n_ext];
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_ext];
    for (i, target) in assoc.iter().enumerate() {
        if let Some(j) = target {
            let rate = net
                .rate(i, j)
                .expect("validated association links are reachable");
            cells[j].join(rate);
            members[j].push(i);
        }
    }

    let wifi_demand: Vec<Mbps> = cells.iter().map(CellLoad::aggregate).collect();
    let entries: Vec<ExtenderDemand> = (0..n_ext)
        .map(|j| ExtenderDemand {
            capacity: net.capacity(j),
            demand: wifi_demand[j],
        })
        .collect();
    let alloc = allocate_time_fair(&entries)?;

    let mut per_user = vec![Mbps::ZERO; net.users()];
    #[allow(clippy::needless_range_loop)] // parallel arrays indexed together; zip would obscure it
    for j in 0..n_ext {
        let n = members[j].len();
        if n == 0 {
            continue;
        }
        let share = alloc.throughput[j] / n as f64;
        for &i in &members[j] {
            per_user[i] = share;
        }
    }

    Ok(Evaluation {
        per_user,
        aggregate: alloc.aggregate(),
        per_extender: alloc.throughput.clone(),
        plc_shares: alloc.shares,
        wifi_demand,
    })
}

/// Evaluates `assoc` under the *literal* Problem-1 objective: each active
/// extender is capped at `c_j / A` where `A` is the number of active
/// extenders, with **no** redistribution of unused airtime.
///
/// The physical medium does redistribute (Fig. 3c of the paper), so
/// [`evaluate`] is what experiments use; this variant quantifies how much
/// the redistribution matters (an ablation the paper's model discussion
/// implies).
///
/// # Errors
///
/// Propagates [`Network::validate_association`] failures.
pub fn evaluate_without_redistribution(
    net: &Network,
    assoc: &Association,
) -> Result<Evaluation, CoreError> {
    net.validate_association(assoc)?;

    let n_ext = net.extenders();
    let mut cells = vec![CellLoad::new(); n_ext];
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_ext];
    for (i, target) in assoc.iter().enumerate() {
        if let Some(j) = target {
            let rate = net
                .rate(i, j)
                .expect("validated association links are reachable");
            cells[j].join(rate);
            members[j].push(i);
        }
    }

    let wifi_demand: Vec<Mbps> = cells.iter().map(CellLoad::aggregate).collect();
    let active = wifi_demand.iter().filter(|d| d.value() > 0.0).count();
    let mut per_extender = vec![Mbps::ZERO; n_ext];
    let mut plc_shares = vec![0.0; n_ext];
    let mut per_user = vec![Mbps::ZERO; net.users()];
    if active > 0 {
        let equal = 1.0 / active as f64;
        for j in 0..n_ext {
            if wifi_demand[j].value() > 0.0 {
                plc_shares[j] = equal;
                per_extender[j] = wifi_demand[j].min(net.capacity(j) * equal);
                let n = members[j].len();
                let share = per_extender[j] / n as f64;
                for &i in &members[j] {
                    per_user[i] = share;
                }
            }
        }
    }

    Ok(Evaluation {
        per_user,
        aggregate: per_extender.iter().copied().sum(),
        per_extender,
        plc_shares,
        wifi_demand,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_network() -> Network {
        Network::from_raw(vec![60.0, 20.0], vec![vec![15.0, 10.0], vec![40.0, 20.0]]).unwrap()
    }

    fn close(a: Mbps, b: f64) -> bool {
        (a.value() - b).abs() < 1e-6
    }

    #[test]
    fn fig3b_rssi_association_worth_22() {
        // Both users on extender 1: WiFi-fair cell of (15, 40) ≈ 21.8,
        // extender 2 idle so extender 1 gets the whole PLC medium.
        let eval = evaluate(&fig3_network(), &Association::complete(vec![0, 0])).unwrap();
        assert!(close(eval.aggregate, 240.0 / 11.0)); // 21.81…
        assert!(close(eval.per_user[0], 120.0 / 11.0)); // ~10.9 each
        assert!(close(eval.per_user[1], 120.0 / 11.0));
        assert_eq!(eval.plc_shares[1], 0.0);
    }

    #[test]
    fn fig3c_greedy_association_worth_30() {
        // User 1 → ext 1, user 2 → ext 2. Ext 1's cell demands 15 (< its
        // 30 half-share); the leftover quarter of airtime lets ext 2 reach
        // 15 despite its 10 half-share.
        let eval = evaluate(&fig3_network(), &Association::complete(vec![0, 1])).unwrap();
        assert!(close(eval.per_extender[0], 15.0));
        assert!(close(eval.per_extender[1], 15.0));
        assert!(close(eval.aggregate, 30.0));
        assert!((eval.plc_shares[0] - 0.25).abs() < 1e-9);
        assert!((eval.plc_shares[1] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn fig3d_optimal_association_worth_40() {
        // User 1 → ext 2 (10), user 2 → ext 1 (30, PLC-bottlenecked).
        let eval = evaluate(&fig3_network(), &Association::complete(vec![1, 0])).unwrap();
        assert!(close(eval.per_user[0], 10.0));
        assert!(close(eval.per_user[1], 30.0));
        assert!(close(eval.aggregate, 40.0));
    }

    #[test]
    fn unassigned_users_get_zero() {
        let eval = evaluate(
            &fig3_network(),
            &Association::from_targets(vec![Some(0), None]),
        )
        .unwrap();
        assert!(close(eval.per_user[0], 15.0));
        assert_eq!(eval.per_user[1], Mbps::ZERO);
        assert!(close(eval.aggregate, 15.0));
    }

    #[test]
    fn empty_association_is_zero() {
        let eval = evaluate(&fig3_network(), &Association::unassigned(2)).unwrap();
        assert_eq!(eval.aggregate, Mbps::ZERO);
        assert!(eval.plc_shares.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn aggregate_equals_sum_of_users_and_extenders() {
        let net = Network::from_raw(
            vec![100.0, 50.0, 70.0],
            vec![
                vec![20.0, 5.0, 8.0],
                vec![30.0, 12.0, 9.0],
                vec![6.0, 25.0, 14.0],
                vec![11.0, 7.0, 40.0],
            ],
        )
        .unwrap();
        let assoc = Association::complete(vec![0, 0, 1, 2]);
        let eval = evaluate(&net, &assoc).unwrap();
        let user_sum: Mbps = eval.per_user.iter().copied().sum();
        let ext_sum: Mbps = eval.per_extender.iter().copied().sum();
        assert!((user_sum.value() - eval.aggregate.value()).abs() < 1e-9);
        assert!((ext_sum.value() - eval.aggregate.value()).abs() < 1e-9);
    }

    #[test]
    fn cell_users_share_equally() {
        let net = Network::from_raw(vec![100.0], vec![vec![50.0], vec![10.0], vec![25.0]]).unwrap();
        let eval = evaluate(&net, &Association::complete(vec![0, 0, 0])).unwrap();
        assert!(close(eval.per_user[0], eval.per_user[1].value()));
        assert!(close(eval.per_user[1], eval.per_user[2].value()));
    }

    #[test]
    fn per_extender_bounded_by_both_segments() {
        let net =
            Network::from_raw(vec![40.0, 90.0], vec![vec![60.0, 20.0], vec![35.0, 70.0]]).unwrap();
        let assoc = Association::complete(vec![0, 1]);
        let eval = evaluate(&net, &assoc).unwrap();
        for j in 0..2 {
            assert!(eval.per_extender[j] <= eval.wifi_demand[j] + Mbps::new(1e-9));
            assert!(
                eval.per_extender[j].value() <= net.capacity(j).value() * eval.plc_shares[j] + 1e-9
            );
        }
    }

    #[test]
    fn invalid_association_propagates() {
        let err = evaluate(&fig3_network(), &Association::complete(vec![0, 7])).unwrap_err();
        assert!(matches!(err, CoreError::UnknownExtender { extender: 7 }));
    }

    #[test]
    fn without_redistribution_matches_plain_eq2() {
        // Fig. 3c again, but without redistribution extender 2 is stuck at
        // its 10 Mbit/s half-share: total 25 instead of 30.
        let eval =
            evaluate_without_redistribution(&fig3_network(), &Association::complete(vec![0, 1]))
                .unwrap();
        assert!(close(eval.per_extender[0], 15.0));
        assert!(close(eval.per_extender[1], 10.0));
        assert!(close(eval.aggregate, 25.0));
    }

    #[test]
    fn redistribution_never_hurts() {
        let net = Network::from_raw(
            vec![80.0, 30.0, 120.0],
            vec![
                vec![10.0, 22.0, 14.0],
                vec![33.0, 8.0, 19.0],
                vec![12.0, 16.0, 28.0],
            ],
        )
        .unwrap();
        for targets in [[0, 1, 2], [0, 0, 2], [1, 1, 1], [2, 0, 1]] {
            let assoc = Association::complete(targets.to_vec());
            let with = evaluate(&net, &assoc).unwrap().aggregate;
            let without = evaluate_without_redistribution(&net, &assoc)
                .unwrap()
                .aggregate;
            assert!(
                with.value() >= without.value() - 1e-9,
                "redistribution hurt on {targets:?}: {with} < {without}"
            );
        }
    }

    #[test]
    fn single_extender_no_redistribution_difference() {
        let net = Network::from_raw(vec![50.0], vec![vec![30.0], vec![20.0]]).unwrap();
        let assoc = Association::complete(vec![0, 0]);
        let a = evaluate(&net, &assoc).unwrap().aggregate;
        let b = evaluate_without_redistribution(&net, &assoc)
            .unwrap()
            .aggregate;
        assert!((a.value() - b.value()).abs() < 1e-9);
    }
}
