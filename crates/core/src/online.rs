//! Online WOLT with bounded re-association overhead.
//!
//! The paper's dynamic experiments re-run WOLT at every epoch and observe
//! (Fig. 6c) that it re-assigns up to ≈ 2 existing users per arrival. That
//! overhead is emergent, not controlled; an operator deploying WOLT would
//! want a knob. [`OnlineWolt`] adds two, while keeping Algorithm 1 as the
//! planner:
//!
//! * a **move budget** — at most `k` existing users are re-associated per
//!   reconfiguration;
//! * **hysteresis** — a move is only applied if it improves the aggregate
//!   by at least `min_gain` Mbit/s, so churn cannot be triggered by
//!   negligible gains.
//!
//! New (unassigned) users are always placed — constraint (7) of Problem 1
//! is never compromised — only *re*-assignments of existing users are
//! rationed. Moves are applied greedily in order of marginal gain under
//! the full physical model, so a budget of `usize::MAX` and zero
//! hysteresis converges to a local optimum at least as good as applying
//! the raw WOLT plan move-by-move.

use wolt_units::Mbps;

use crate::{
    evaluate, Association, AssociationPolicy, CoreError, IncrementalEvaluator, Network, Wolt,
};

/// Outcome of one online reconfiguration step.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineOutcome {
    /// The resulting complete association.
    pub association: Association,
    /// Number of previously-assigned users that changed extender.
    pub moves: usize,
    /// Number of previously-unassigned users that were placed.
    pub placements: usize,
    /// Aggregate throughput after reconfiguration (Mbit/s).
    pub aggregate: Mbps,
    /// Aggregate improvement over the starting association (after
    /// placements, before counting moves) — what the moves bought.
    pub gain_from_moves: Mbps,
}

/// WOLT with bounded re-association (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineWolt {
    planner: Wolt,
    min_gain: Mbps,
    move_budget: Option<usize>,
}

impl Default for OnlineWolt {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineWolt {
    /// Unbounded online WOLT (budget ∞, zero hysteresis).
    pub fn new() -> Self {
        Self {
            planner: Wolt::new(),
            min_gain: Mbps::ZERO,
            move_budget: None,
        }
    }

    /// Sets the per-reconfiguration move budget.
    pub fn with_move_budget(mut self, budget: usize) -> Self {
        self.move_budget = Some(budget);
        self
    }

    /// Sets the hysteresis threshold: moves worth less than this are not
    /// applied.
    pub fn with_min_gain(mut self, min_gain: Mbps) -> Self {
        self.min_gain = min_gain;
        self
    }

    /// Uses a customized WOLT planner.
    pub fn with_planner(mut self, planner: Wolt) -> Self {
        self.planner = planner;
        self
    }

    /// Reconfigures the network: places every unassigned user, then
    /// applies up to `move_budget` of the WOLT plan's re-assignments in
    /// decreasing marginal-gain order, skipping moves worth less than
    /// `min_gain`.
    ///
    /// `current` may be partial (new arrivals unassigned) but must be
    /// valid for `net`.
    ///
    /// # Errors
    ///
    /// Propagates association validation and planning errors.
    pub fn reconfigure(
        &self,
        net: &Network,
        current: &Association,
    ) -> Result<OnlineOutcome, CoreError> {
        net.validate_association(current)?;
        let plan = self.planner.associate(net)?;

        // Step 1: place arrivals according to the plan (mandatory).
        let mut working = current.clone();
        let mut placements = 0;
        for i in current.unassigned_users() {
            working.assign(i, plan.target(i).expect("wolt plans are complete"));
            placements += 1;
        }
        // Step 2: ration the re-assignments. Candidates are users whose
        // plan target differs from their current extender, scored by
        // incremental probes — O(A·rounds) each instead of a full O(U·A)
        // re-evaluation per candidate.
        let mut evaluator = IncrementalEvaluator::new(net, &working)?;
        let base_aggregate = evaluator.aggregate();
        let mut budget = self.move_budget.unwrap_or(usize::MAX);
        let mut moves = 0;
        loop {
            if budget == 0 {
                break;
            }
            // Best single move toward the plan.
            let mut best: Option<(usize, usize, Mbps)> = None;
            for i in 0..net.users() {
                let cur = evaluator
                    .association()
                    .target(i)
                    .expect("working is complete");
                let want = plan.target(i).expect("plans are complete");
                if cur == want {
                    continue;
                }
                let value = evaluator.probe_move(i, Some(want))?;
                let gain = value - evaluator.aggregate();
                if gain >= self.min_gain.max(Mbps::new(f64::MIN_POSITIVE))
                    && best.is_none_or(|(_, _, g)| gain > g)
                {
                    best = Some((i, want, gain));
                }
            }
            match best {
                Some((i, want, _)) => {
                    evaluator.apply_move(i, Some(want))?;
                    moves += 1;
                    budget -= 1;
                }
                None => break,
            }
        }
        let working = evaluator.into_association();

        // Re-evaluate exactly (the incremental sum accumulates float dust).
        let aggregate = evaluate(net, &working)?.aggregate;
        Ok(OnlineOutcome {
            gain_from_moves: aggregate - base_aggregate,
            association: working,
            moves,
            placements,
            aggregate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_network() -> Network {
        Network::from_raw(vec![60.0, 20.0], vec![vec![15.0, 10.0], vec![40.0, 20.0]]).unwrap()
    }

    /// A fresh network where the RSSI association is far from optimal.
    fn rssi_start(net: &Network) -> Association {
        crate::baselines::Rssi.associate(net).unwrap()
    }

    #[test]
    fn zero_budget_only_places_arrivals() {
        let net = fig3_network();
        let current = Association::from_targets(vec![Some(0), None]);
        let outcome = OnlineWolt::new()
            .with_move_budget(0)
            .reconfigure(&net, &current)
            .unwrap();
        assert_eq!(outcome.moves, 0);
        assert_eq!(outcome.placements, 1);
        assert!(outcome.association.is_complete());
        // User 0 was not moved.
        assert_eq!(outcome.association.target(0), Some(0));
    }

    #[test]
    fn unbounded_budget_reaches_wolt_quality() {
        let net = fig3_network();
        let outcome = OnlineWolt::new()
            .reconfigure(&net, &rssi_start(&net))
            .unwrap();
        // Full WOLT reaches 40 on the case study; the greedy move
        // application must reach at least the greedy outcome (30) and in
        // this instance the optimum.
        assert!(
            (outcome.aggregate.value() - 40.0).abs() < 1e-9,
            "aggregate {}",
            outcome.aggregate
        );
    }

    #[test]
    fn moves_respect_the_budget() {
        let net = Network::from_raw(
            vec![100.0, 80.0, 60.0],
            vec![
                vec![30.0, 2.0, 2.0],
                vec![28.0, 2.0, 2.0],
                vec![26.0, 2.0, 2.0],
                vec![24.0, 20.0, 2.0],
                vec![22.0, 2.0, 18.0],
            ],
        )
        .unwrap();
        // Everyone starts on extender 0 (their RSSI best).
        let start = Association::complete(vec![0; 5]);
        for budget in 0..=3 {
            let outcome = OnlineWolt::new()
                .with_move_budget(budget)
                .reconfigure(&net, &start)
                .unwrap();
            assert!(
                outcome.moves <= budget,
                "budget {budget}: {}",
                outcome.moves
            );
        }
    }

    #[test]
    fn gain_is_monotone_in_budget() {
        let net = Network::from_raw(
            vec![100.0, 80.0, 60.0],
            vec![
                vec![30.0, 2.0, 2.0],
                vec![28.0, 2.0, 2.0],
                vec![26.0, 2.0, 2.0],
                vec![24.0, 20.0, 2.0],
                vec![22.0, 2.0, 18.0],
            ],
        )
        .unwrap();
        let start = Association::complete(vec![0; 5]);
        let mut prev = 0.0;
        for budget in 0..=4 {
            let outcome = OnlineWolt::new()
                .with_move_budget(budget)
                .reconfigure(&net, &start)
                .unwrap();
            assert!(
                outcome.aggregate.value() >= prev - 1e-9,
                "budget {budget} made things worse"
            );
            prev = outcome.aggregate.value();
        }
    }

    #[test]
    fn moves_never_reduce_aggregate() {
        let net = fig3_network();
        let start = rssi_start(&net);
        let base = evaluate(&net, &start).unwrap().aggregate;
        let outcome = OnlineWolt::new().reconfigure(&net, &start).unwrap();
        assert!(outcome.aggregate >= base);
        assert!(outcome.gain_from_moves.value() >= -1e-9);
    }

    #[test]
    fn hysteresis_suppresses_small_moves() {
        let net = fig3_network();
        let start = rssi_start(&net); // worth 21.8; optimum 40
                                      // A huge threshold suppresses everything.
        let frozen = OnlineWolt::new()
            .with_min_gain(Mbps::new(1000.0))
            .reconfigure(&net, &start)
            .unwrap();
        assert_eq!(frozen.moves, 0);
        assert_eq!(frozen.association, start);
        // A modest threshold still allows the large improvement.
        let moved = OnlineWolt::new()
            .with_min_gain(Mbps::new(1.0))
            .reconfigure(&net, &start)
            .unwrap();
        assert!(moved.moves > 0);
    }

    #[test]
    fn invalid_current_association_rejected() {
        let net = fig3_network();
        let bogus = Association::from_targets(vec![Some(9), None]);
        assert!(OnlineWolt::new().reconfigure(&net, &bogus).is_err());
    }

    #[test]
    fn already_optimal_network_needs_no_moves() {
        let net = fig3_network();
        let optimal = crate::baselines::Optimal::new().associate(&net).unwrap();
        let outcome = OnlineWolt::new().reconfigure(&net, &optimal).unwrap();
        assert_eq!(outcome.moves, 0);
        assert_eq!(outcome.association, optimal);
    }
}
