//! The association-policy abstraction.

use crate::{evaluate, Association, CoreError, Evaluation, Network};

/// A user-association policy: given a network, decide which extender each
/// user connects to.
///
/// Implemented by [`crate::Wolt`] and every baseline in
/// [`crate::baselines`]. Policies must return *complete* associations
/// (constraint (7) of Problem 1) that validate against the network.
///
/// Policies are `Send + Sync` so experiment drivers can fan trials out
/// across the [`wolt_support::pool`] worker threads; implementations are
/// plain configuration data, so this costs nothing.
pub trait AssociationPolicy: Send + Sync {
    /// Short human-readable policy name ("WOLT", "Greedy", "RSSI", …).
    fn name(&self) -> &str;

    /// Computes a complete association for `net`.
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError`] when no feasible complete association
    /// exists (e.g. user limits too tight) or an internal solver fails.
    fn associate(&self, net: &Network) -> Result<Association, CoreError>;

    /// Convenience: associate and evaluate in one call.
    ///
    /// # Errors
    ///
    /// Propagates [`AssociationPolicy::associate`] and evaluation errors.
    fn associate_and_evaluate(&self, net: &Network) -> Result<(Association, Evaluation), CoreError>
    where
        Self: Sized,
    {
        let assoc = self.associate(net)?;
        let eval = evaluate(net, &assoc)?;
        Ok((assoc, eval))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct EveryoneToZero;

    impl AssociationPolicy for EveryoneToZero {
        fn name(&self) -> &str {
            "ToZero"
        }
        fn associate(&self, net: &Network) -> Result<Association, CoreError> {
            Ok(Association::complete(vec![0; net.users()]))
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let policy: Box<dyn AssociationPolicy> = Box::new(EveryoneToZero);
        assert_eq!(policy.name(), "ToZero");
    }

    #[test]
    fn associate_and_evaluate_composes() {
        let net = Network::from_raw(vec![60.0], vec![vec![15.0], vec![40.0]]).unwrap();
        let (assoc, eval) = EveryoneToZero.associate_and_evaluate(&net).unwrap();
        assert!(assoc.is_complete());
        assert!(eval.aggregate.value() > 0.0);
    }
}
