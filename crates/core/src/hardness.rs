//! Executable NP-hardness reduction (Theorem 1 of the paper).
//!
//! Theorem 1 reduces PARTITION to Problem 1: given weights
//! `w_1 … w_M`, build a two-extender instance with unbounded PLC rates,
//! regular users whose "WiFi rates" are `r_i = −1/w_i`, and enough dummy
//! users (rates −∞) to balance the cell sizes. Problem 1's objective then
//! equals `−(n/W_1 + n/(W−W_1))` with `n` users per extender and `W_1` the
//! weight mass on extender 1, which is maximized exactly when
//! `W_1 = W/2` — solving PARTITION.
//!
//! The production [`crate::Network`] type (rightly) rejects negative
//! rates, so this module carries the reduction at the mathematical level:
//! [`PartitionReduction`] builds the reduced objective and
//! [`PartitionReduction::solve`] optimizes it exhaustively, demonstrating
//! on small instances that the Problem-1 optimum *is* the optimal
//! partition. This is test scaffolding made public because it documents
//! the complexity argument; it is not needed to run WOLT.

/// The PARTITION → Problem 1 reduction instance of Theorem 1.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionReduction {
    weights: Vec<f64>,
}

/// A solved partition: side assignment and the achieved imbalance.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSolution {
    /// `true` = the item goes to extender 1's side.
    pub left: Vec<bool>,
    /// `|W_left − W_right|` of the returned split.
    pub imbalance: f64,
    /// The reduced Problem-1 objective value of the returned split.
    pub objective: f64,
}

impl PartitionReduction {
    /// Builds a reduction instance from positive weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` has fewer than two items, more than 24 (the
    /// solver is exhaustive), or contains non-positive/non-finite weights.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(weights.len() >= 2, "need at least two weights to partition");
        assert!(
            weights.len() <= 24,
            "exhaustive reduction limited to 24 items"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "weights must be positive and finite"
        );
        Self { weights }
    }

    /// The weights of the instance.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The reduced Problem-1 objective of a side assignment.
    ///
    /// With regular users of rate `−1/w_i` and dummies of rate `−∞`
    /// padding the smaller side so both extenders hold `n = max(n_1, n_2)`
    /// users, Eq. 1's cell throughput becomes `n_j / Σ_{i∈N_j} 1/r_ij =
    /// −n / W_j`, so the objective is `−n·(1/W_left + 1/W_right)`.
    /// Degenerate one-sided splits score `−∞`.
    pub fn objective(&self, left: &[bool]) -> f64 {
        assert_eq!(
            left.len(),
            self.weights.len(),
            "side vector length mismatch"
        );
        let w_left: f64 = self
            .weights
            .iter()
            .zip(left)
            .filter(|(_, &l)| l)
            .map(|(w, _)| w)
            .sum();
        let w_total: f64 = self.weights.iter().sum();
        let w_right = w_total - w_left;
        if w_left <= 0.0 || w_right <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let n_left = left.iter().filter(|&&l| l).count();
        let n_right = left.len() - n_left;
        // Dummy users pad the smaller cell; they add count but no weight
        // (1/−∞ = 0), exactly as in the paper's construction.
        let n = n_left.max(n_right) as f64;
        -n * (1.0 / w_left + 1.0 / w_right)
    }

    /// Solves PARTITION through the reduction, mirroring the paper's
    /// procedure: for each dummy count `k` (equivalently, each left-side
    /// cardinality `s` — `k` dummies pad the smaller cell so both hold
    /// `max(s, M−s)` users), solve the resulting fixed-size Problem-1
    /// instance exhaustively, then "pick the best solution across all
    /// iterations". Within a size class the objective `−n(1/W₁ + 1/W₂)`
    /// has constant `n`, so maximizing it is exactly balancing the weight
    /// masses; across classes the most balanced candidate wins.
    pub fn solve(&self) -> PartitionSolution {
        let m = self.weights.len();
        let w_total: f64 = self.weights.iter().sum();
        let mut best: Option<(f64, u32, f64)> = None; // (imbalance, mask, objective)
        for s in 1..m {
            // Per-size-class argmax of the reduced objective.
            let mut class_best: Option<(f64, u32)> = None;
            for mask in 0..(1u32 << m) {
                if mask.count_ones() as usize != s {
                    continue;
                }
                let left: Vec<bool> = (0..m).map(|i| mask & (1 << i) != 0).collect();
                let obj = self.objective(&left);
                if class_best.is_none_or(|(o, _)| obj > o) {
                    class_best = Some((obj, mask));
                }
            }
            let (obj, mask) = class_best.expect("size class 1..m is non-empty");
            let w_left: f64 = (0..m)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| self.weights[i])
                .sum();
            let imbalance = (2.0 * w_left - w_total).abs();
            if best.is_none_or(|(b, _, _)| imbalance < b) {
                best = Some((imbalance, mask, obj));
            }
        }
        let (imbalance, mask, objective) = best.expect("m >= 2 gives at least one class");
        PartitionSolution {
            left: (0..m).map(|i| mask & (1 << i) != 0).collect(),
            imbalance,
            objective,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_partitionable_set_balances() {
        let sol = PartitionReduction::new(vec![3.0, 1.0, 1.0, 2.0, 2.0, 1.0]).solve();
        assert_eq!(sol.imbalance, 0.0, "split {:?}", sol.left);
    }

    #[test]
    fn odd_total_leaves_minimal_gap() {
        // Total = 7; best split is 3 vs 4 → imbalance 1.
        let sol = PartitionReduction::new(vec![1.0, 2.0, 4.0]).solve();
        assert_eq!(sol.imbalance, 1.0);
    }

    #[test]
    fn balanced_split_scores_higher_than_skewed() {
        let red = PartitionReduction::new(vec![2.0, 2.0, 2.0, 2.0]);
        let balanced = red.objective(&[true, true, false, false]);
        let skewed = red.objective(&[true, true, true, false]);
        assert!(balanced > skewed);
    }

    #[test]
    fn one_sided_split_is_infeasible() {
        let red = PartitionReduction::new(vec![1.0, 2.0]);
        assert_eq!(red.objective(&[true, true]), f64::NEG_INFINITY);
        assert_eq!(red.objective(&[false, false]), f64::NEG_INFINITY);
    }

    #[test]
    fn objective_symmetry_under_side_flip() {
        let red = PartitionReduction::new(vec![1.0, 5.0, 3.0]);
        let a = red.objective(&[true, false, true]);
        let b = red.objective(&[false, true, false]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn argmax_objective_is_argmin_imbalance() {
        // The crux of Theorem 1: optimizing the reduced Problem-1
        // objective solves PARTITION. Compare against direct imbalance
        // minimization on random-ish instances.
        let instances = [
            vec![7.0, 3.0, 2.0, 5.0, 8.0],
            vec![10.0, 9.0, 8.0, 7.0, 6.0, 5.0],
            vec![1.0, 1.0, 1.0, 1.0, 100.0],
            vec![13.0, 4.0, 4.0, 5.0],
        ];
        for weights in instances {
            let sol = PartitionReduction::new(weights.clone()).solve();
            // Direct exhaustive imbalance minimization.
            let m = weights.len();
            let total: f64 = weights.iter().sum();
            let mut best_gap = f64::INFINITY;
            for mask in 1..((1u32 << m) - 1) {
                let w: f64 = (0..m)
                    .filter(|&i| mask & (1 << i) != 0)
                    .map(|i| weights[i])
                    .sum();
                best_gap = best_gap.min((2.0 * w - total).abs());
            }
            assert!(
                (sol.imbalance - best_gap).abs() < 1e-9,
                "{weights:?}: reduction gap {} vs true {}",
                sol.imbalance,
                best_gap
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_non_positive_weights() {
        let _ = PartitionReduction::new(vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn objective_rejects_wrong_length() {
        PartitionReduction::new(vec![1.0, 2.0]).objective(&[true]);
    }
}
