//! Property-based tests for the WOLT core (model-level invariants; the
//! cross-crate policy properties live in the workspace `tests` package).

use proptest::prelude::*;
use wolt_core::phase1::{phase1_utilities, run_phase1};
use wolt_core::phase2::{run_phase2, wifi_objective, Phase2Config};
use wolt_core::{evaluate, Association, Network};

fn network() -> impl Strategy<Value = Network> {
    (2usize..=4, 2usize..=6)
        .prop_flat_map(|(exts, users)| {
            (
                proptest::collection::vec(20.0f64..200.0, exts),
                proptest::collection::vec(
                    proptest::collection::vec(1.0f64..50.0, exts),
                    users,
                ),
            )
        })
        .prop_map(|(caps, rates)| Network::from_raw(caps, rates).expect("fully reachable"))
}

proptest! {
    /// Phase-I utilities are exactly min(c_j/|A|, r_ij).
    #[test]
    fn utilities_formula(net in network()) {
        let u = phase1_utilities(&net).expect("builds");
        let a = net.extenders() as f64;
        for i in 0..net.users() {
            for j in 0..net.extenders() {
                let expected = net.rate(i, j).expect("reachable").value()
                    .min(net.capacity(j).value() / a);
                prop_assert!((u[(i, j)] - expected).abs() < 1e-12);
            }
        }
    }

    /// Phase I is a matching and Phase II completes it without moving
    /// Phase-I users.
    #[test]
    fn phases_compose(net in network()) {
        let p1 = run_phase1(&net).expect("phase 1 runs");
        let p2 = run_phase2(&net, &p1.association, &Phase2Config::default())
            .expect("phase 2 runs");
        prop_assert!(p2.association.is_complete());
        for &i in &p1.selected_users {
            prop_assert_eq!(p2.association.target(i), p1.association.target(i));
        }
        prop_assert!(net.validate_association(&p2.association).is_ok());
    }

    /// The Phase-II WiFi objective of the final association matches a
    /// recomputation from scratch.
    #[test]
    fn phase2_objective_consistent(net in network()) {
        let p1 = run_phase1(&net).expect("phase 1 runs");
        let p2 = run_phase2(&net, &p1.association, &Phase2Config::default())
            .expect("phase 2 runs");
        let recomputed = wifi_objective(&net, &p2.association);
        prop_assert!((p2.wifi_objective - recomputed).abs() < 1e-9);
    }

    /// Evaluation is permutation-equivariant: relabeling users permutes
    /// per-user throughputs and preserves the aggregate.
    #[test]
    fn evaluation_permutation_equivariant(net in network(), rotate in 1usize..5) {
        let users = net.users();
        let rot = rotate % users;
        // Original association: user i -> extender i % A.
        let assoc = Association::complete(
            (0..users).map(|i| i % net.extenders()).collect());
        let eval = evaluate(&net, &assoc).expect("valid");

        // Rotated network: user (i + rot) % users takes user i's rates.
        let rates: Vec<Vec<f64>> = (0..users)
            .map(|i| {
                let src = (i + rot) % users;
                (0..net.extenders())
                    .map(|j| net.rate(src, j).expect("reachable").value())
                    .collect()
            })
            .collect();
        let net2 = Network::from_raw(
            (0..net.extenders()).map(|j| net.capacity(j).value()).collect(),
            rates,
        ).expect("valid");
        let assoc2 = Association::complete(
            (0..users).map(|i| (i + rot) % users % net.extenders()).collect());
        let eval2 = evaluate(&net2, &assoc2).expect("valid");

        prop_assert!((eval.aggregate.value() - eval2.aggregate.value()).abs() < 1e-9);
        for i in 0..users {
            let moved = eval2.per_user[i].value();
            let original = eval.per_user[(i + rot) % users].value();
            prop_assert!((moved - original).abs() < 1e-9, "user {i} after rotation");
        }
    }

    /// Capacity scaling: multiplying every PLC capacity by k ≥ 1 never
    /// lowers the evaluated aggregate of a fixed association.
    #[test]
    fn capacity_scaling_monotone(net in network(), k in 1.0f64..4.0) {
        let assoc = Association::complete(
            (0..net.users()).map(|i| i % net.extenders()).collect());
        let base = evaluate(&net, &assoc).expect("valid").aggregate;
        let scaled = Network::from_raw(
            (0..net.extenders()).map(|j| net.capacity(j).value() * k).collect(),
            (0..net.users())
                .map(|i| (0..net.extenders())
                    .map(|j| net.rate(i, j).expect("reachable").value())
                    .collect())
                .collect(),
        ).expect("valid");
        let boosted = evaluate(&scaled, &assoc).expect("valid").aggregate;
        prop_assert!(boosted >= base - wolt_units::Mbps::new(1e-9));
    }
}
