//! Property-based tests for the WOLT core (model-level invariants; the
//! cross-crate policy properties live in the workspace `tests` package),
//! on the in-tree `wolt_support::check` harness.

use wolt_core::phase1::{phase1_utilities, run_phase1};
use wolt_core::phase2::{run_phase2, wifi_objective, Phase2Config};
use wolt_core::{evaluate, Association, Network};
use wolt_support::check::Runner;
use wolt_support::rng::{ChaCha8Rng, Rng};

fn network(rng: &mut ChaCha8Rng) -> Network {
    let exts = rng.gen_range(2..=4usize);
    let users = rng.gen_range(2..=6usize);
    let caps: Vec<f64> = (0..exts).map(|_| rng.gen_range(20.0..200.0)).collect();
    let rates: Vec<Vec<f64>> = (0..users)
        .map(|_| (0..exts).map(|_| rng.gen_range(1.0..50.0)).collect())
        .collect();
    Network::from_raw(caps, rates).expect("fully reachable")
}

/// Phase-I utilities are exactly min(c_j/|A|, r_ij).
#[test]
fn utilities_formula() {
    Runner::new("utilities_formula").run(network, |net| {
        let u = phase1_utilities(net).expect("builds");
        let a = net.extenders() as f64;
        for i in 0..net.users() {
            for j in 0..net.extenders() {
                let expected = net
                    .rate(i, j)
                    .expect("reachable")
                    .value()
                    .min(net.capacity(j).value() / a);
                if (u[(i, j)] - expected).abs() >= 1e-12 {
                    return Err(format!(
                        "u[({i}, {j})] = {} != min(c/A, r) = {expected}",
                        u[(i, j)]
                    ));
                }
            }
        }
        Ok(())
    });
}

/// Phase I is a matching and Phase II completes it without moving
/// Phase-I users.
#[test]
fn phases_compose() {
    Runner::new("phases_compose").run(network, |net| {
        let p1 = run_phase1(net).expect("phase 1 runs");
        let p2 = run_phase2(net, &p1.association, &Phase2Config::default()).expect("phase 2 runs");
        if !p2.association.is_complete() {
            return Err("phase 2 left a user unassigned".into());
        }
        for &i in &p1.selected_users {
            if p2.association.target(i) != p1.association.target(i) {
                return Err(format!("phase 2 moved phase-1 user {i}"));
            }
        }
        if net.validate_association(&p2.association).is_err() {
            return Err("final association is invalid".into());
        }
        Ok(())
    });
}

/// The Phase-II WiFi objective of the final association matches a
/// recomputation from scratch.
#[test]
fn phase2_objective_consistent() {
    Runner::new("phase2_objective_consistent").run(network, |net| {
        let p1 = run_phase1(net).expect("phase 1 runs");
        let p2 = run_phase2(net, &p1.association, &Phase2Config::default()).expect("phase 2 runs");
        let recomputed = wifi_objective(net, &p2.association);
        if (p2.wifi_objective - recomputed).abs() < 1e-9 {
            Ok(())
        } else {
            Err(format!(
                "stored objective {} != recomputed {recomputed}",
                p2.wifi_objective
            ))
        }
    });
}

/// Evaluation is permutation-equivariant: relabeling users permutes
/// per-user throughputs and preserves the aggregate.
#[test]
fn evaluation_permutation_equivariant() {
    Runner::new("evaluation_permutation_equivariant").run(
        |rng| (network(rng), rng.gen_range(1..5usize)),
        |(net, rotate)| {
            let users = net.users();
            let rot = rotate % users;
            // Original association: user i -> extender i % A.
            let assoc = Association::complete((0..users).map(|i| i % net.extenders()).collect());
            let eval = evaluate(net, &assoc).expect("valid");

            // Rotated network: user (i + rot) % users takes user i's rates.
            let rates: Vec<Vec<f64>> = (0..users)
                .map(|i| {
                    let src = (i + rot) % users;
                    (0..net.extenders())
                        .map(|j| net.rate(src, j).expect("reachable").value())
                        .collect()
                })
                .collect();
            let net2 = Network::from_raw(
                (0..net.extenders())
                    .map(|j| net.capacity(j).value())
                    .collect(),
                rates,
            )
            .expect("valid");
            let assoc2 = Association::complete(
                (0..users)
                    .map(|i| (i + rot) % users % net.extenders())
                    .collect(),
            );
            let eval2 = evaluate(&net2, &assoc2).expect("valid");

            if (eval.aggregate.value() - eval2.aggregate.value()).abs() >= 1e-9 {
                return Err("rotation changed the aggregate".into());
            }
            for i in 0..users {
                let moved = eval2.per_user[i].value();
                let original = eval.per_user[(i + rot) % users].value();
                if (moved - original).abs() >= 1e-9 {
                    return Err(format!("user {i} throughput changed after rotation"));
                }
            }
            Ok(())
        },
    );
}

/// Capacity scaling: multiplying every PLC capacity by k ≥ 1 never
/// lowers the evaluated aggregate of a fixed association.
#[test]
fn capacity_scaling_monotone() {
    Runner::new("capacity_scaling_monotone").run(
        |rng| (network(rng), rng.gen_range(1.0..4.0)),
        |(net, k)| {
            let assoc =
                Association::complete((0..net.users()).map(|i| i % net.extenders()).collect());
            let base = evaluate(net, &assoc).expect("valid").aggregate;
            let scaled = Network::from_raw(
                (0..net.extenders())
                    .map(|j| net.capacity(j).value() * k)
                    .collect(),
                (0..net.users())
                    .map(|i| {
                        (0..net.extenders())
                            .map(|j| net.rate(i, j).expect("reachable").value())
                            .collect()
                    })
                    .collect(),
            )
            .expect("valid");
            let boosted = evaluate(&scaled, &assoc).expect("valid").aggregate;
            if boosted >= base - wolt_units::Mbps::new(1e-9) {
                Ok(())
            } else {
                Err(format!(
                    "scaling capacities by {k} dropped aggregate {base} -> {boosted}"
                ))
            }
        },
    );
}

/// The incremental evaluation engine agrees with a fresh `evaluate()` to
/// within 1e-9 across random move sequences: every successful
/// `probe_move` predicts exactly the aggregate that `apply_move` then
/// realizes, and the running aggregate never drifts from a from-scratch
/// rebuild — over partial associations, unassignment moves, and networks
/// with per-extender user limits.
#[test]
fn incremental_engine_matches_fresh_evaluation() {
    use wolt_core::IncrementalEvaluator;

    #[derive(Debug)]
    struct Case {
        net: Network,
        start: Association,
        moves: Vec<(usize, Option<usize>)>,
    }

    fn case(rng: &mut ChaCha8Rng) -> Case {
        let net = network(rng);
        let (users, exts) = (net.users(), net.extenders());
        // Occasionally constrain an extender so full-cell rejections and
        // the stay-in-full-cell edge case get exercised too.
        let net = if rng.gen_range(0.0..1.0) < 0.3 {
            let limits: Vec<Option<usize>> = (0..exts)
                .map(|_| (rng.gen_range(0.0..1.0) < 0.5).then(|| rng.gen_range(1..=users)))
                .collect();
            net.with_user_limits(limits).expect("right length")
        } else {
            net
        };
        // A partial start: each user is unassigned with probability 1/3.
        let start = Association::from_targets(
            (0..users)
                .map(|i| (rng.gen_range(0.0..1.0) < 2.0 / 3.0).then(|| i % exts))
                .collect(),
        );
        let start = if net.validate_association(&start).is_ok() {
            start
        } else {
            Association::unassigned(users)
        };
        let moves = (0..30)
            .map(|_| {
                let user = rng.gen_range(0..users);
                // 1-in-5 moves unassign the user instead of relocating it.
                let to = (rng.gen_range(0.0..1.0) < 0.8).then(|| rng.gen_range(0..exts));
                (user, to)
            })
            .collect();
        Case { net, start, moves }
    }

    Runner::new("incremental_engine_matches_fresh_evaluation").run(case, |c| {
        let mut evaluator =
            IncrementalEvaluator::new(&c.net, &c.start).expect("validated start");
        for &(user, to) in &c.moves {
            // Inadmissible moves (unreachable extender, full cell) are
            // simply skipped — the engine must reject them without
            // corrupting its state, which the drift check below verifies.
            let Ok(probed) = evaluator.probe_move(user, to) else {
                continue;
            };
            let applied = evaluator.apply_move(user, to).expect("probed move applies");
            if (probed - applied).value().abs() >= 1e-9 {
                return Err(format!(
                    "probe promised {probed} but apply delivered {applied} for user {user} -> {to:?}"
                ));
            }
            let fresh = evaluate(&c.net, evaluator.association())
                .expect("engine keeps the association valid")
                .aggregate;
            if (evaluator.aggregate() - fresh).value().abs() >= 1e-9 {
                return Err(format!(
                    "incremental aggregate {} drifted from fresh evaluation {fresh}",
                    evaluator.aggregate()
                ));
            }
        }
        Ok(())
    });
}
