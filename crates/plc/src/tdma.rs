//! IEEE 1901 TDMA scheduling mode.
//!
//! Besides CSMA, 1901 "supports QoS classes by providing a TDMA-based
//! medium sharing functionality. In TDMA mode, the PLC backhaul will be
//! time-shared between clients" (§II of the paper). Commodity extenders
//! default to CSMA, which is what WOLT models — but the TDMA mode is the
//! natural ablation: a central beacon divides each frame into slots and
//! grants them to extenders according to weights.
//!
//! [`TdmaSchedule::build`] converts fractional weights into integral slot
//! grants with the largest-remainder method, so the slot counts always sum
//! exactly to the frame length and the granted airtime tracks the weights
//! as closely as an integral schedule can.

use wolt_units::Mbps;

use crate::PlcError;

/// An integral TDMA slot schedule for one beacon period.
#[derive(Debug, Clone, PartialEq)]
pub struct TdmaSchedule {
    /// Slots granted to each extender (sums to the frame length).
    pub slots: Vec<u32>,
    /// Total slots in the beacon period.
    pub frame_slots: u32,
}

impl TdmaSchedule {
    /// Builds a schedule granting slots proportionally to `weights` using
    /// the largest-remainder method.
    ///
    /// # Errors
    ///
    /// Returns [`PlcError::InvalidConfig`] if `weights` is empty, any
    /// weight is negative or non-finite, all weights are zero, or
    /// `frame_slots` is zero.
    ///
    /// # Example
    ///
    /// ```
    /// use wolt_plc::tdma::TdmaSchedule;
    ///
    /// # fn main() -> Result<(), wolt_plc::PlcError> {
    /// let s = TdmaSchedule::build(&[2.0, 1.0, 1.0], 100)?;
    /// assert_eq!(s.slots, vec![50, 25, 25]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn build(weights: &[f64], frame_slots: u32) -> Result<Self, PlcError> {
        if weights.is_empty() {
            return Err(PlcError::InvalidConfig {
                context: "need at least one weight",
            });
        }
        if frame_slots == 0 {
            return Err(PlcError::InvalidConfig {
                context: "frame must have at least one slot",
            });
        }
        if weights.iter().any(|w| !(w.is_finite() && *w >= 0.0)) {
            return Err(PlcError::InvalidConfig {
                context: "weights must be finite and non-negative",
            });
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(PlcError::InvalidConfig {
                context: "at least one weight must be positive",
            });
        }

        // Largest-remainder apportionment.
        let quotas: Vec<f64> = weights
            .iter()
            .map(|w| w / total * f64::from(frame_slots))
            .collect();
        let mut slots: Vec<u32> = quotas.iter().map(|q| q.floor() as u32).collect();
        let assigned: u32 = slots.iter().sum();
        let mut leftover = frame_slots - assigned;
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_by(|&a, &b| {
            let ra = quotas[a] - quotas[a].floor();
            let rb = quotas[b] - quotas[b].floor();
            rb.partial_cmp(&ra).expect("finite remainders")
        });
        for &i in &order {
            if leftover == 0 {
                break;
            }
            slots[i] += 1;
            leftover -= 1;
        }

        Ok(Self { slots, frame_slots })
    }

    /// Airtime fraction granted to extender `j`.
    pub fn share(&self, j: usize) -> f64 {
        f64::from(self.slots[j]) / f64::from(self.frame_slots)
    }

    /// Throughput each extender delivers under this schedule, given its
    /// isolation capacity: `c_j × share_j`.
    ///
    /// # Errors
    ///
    /// Returns [`PlcError::InvalidConfig`] if `capacities` has a different
    /// length than the schedule, or [`PlcError::UnusableCapacity`] for
    /// unusable capacities.
    pub fn throughputs(&self, capacities: &[Mbps]) -> Result<Vec<Mbps>, PlcError> {
        if capacities.len() != self.slots.len() {
            return Err(PlcError::InvalidConfig {
                context: "capacities length differs from schedule",
            });
        }
        capacities
            .iter()
            .enumerate()
            .map(|(j, &c)| {
                if c.is_usable() {
                    Ok(c * self.share(j))
                } else {
                    Err(PlcError::UnusableCapacity {
                        capacity_mbps: c.value(),
                    })
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weights_split_evenly() {
        let s = TdmaSchedule::build(&[1.0; 4], 100).unwrap();
        assert_eq!(s.slots, vec![25; 4]);
    }

    #[test]
    fn slots_always_sum_to_frame() {
        let cases: &[&[f64]] = &[
            &[1.0, 1.0, 1.0],
            &[0.3, 0.3, 0.4],
            &[1.0, 2.0, 4.0, 8.0],
            &[0.0, 1.0],
            &[5.0],
        ];
        for &weights in cases {
            for frame in [1u32, 7, 10, 97, 256] {
                let s = TdmaSchedule::build(weights, frame).unwrap();
                assert_eq!(
                    s.slots.iter().sum::<u32>(),
                    frame,
                    "weights {weights:?} frame {frame}"
                );
            }
        }
    }

    #[test]
    fn largest_remainder_favours_biggest_fraction() {
        // Quotas: 3.3, 3.3, 3.4 over 10 slots → floor 3,3,3, the extra
        // slot goes to the largest remainder.
        let s = TdmaSchedule::build(&[0.33, 0.33, 0.34], 10).unwrap();
        assert_eq!(s.slots, vec![3, 3, 4]);
    }

    #[test]
    fn zero_weight_gets_zero_slots() {
        let s = TdmaSchedule::build(&[0.0, 1.0], 10).unwrap();
        assert_eq!(s.slots, vec![0, 10]);
        assert_eq!(s.share(0), 0.0);
    }

    #[test]
    fn shares_track_weights() {
        let s = TdmaSchedule::build(&[2.0, 1.0, 1.0], 1000).unwrap();
        assert!((s.share(0) - 0.5).abs() < 0.01);
        assert!((s.share(1) - 0.25).abs() < 0.01);
    }

    #[test]
    fn throughputs_scale_capacity_by_share() {
        let s = TdmaSchedule::build(&[1.0, 1.0], 10).unwrap();
        let t = s.throughputs(&[Mbps::new(160.0), Mbps::new(60.0)]).unwrap();
        assert_eq!(t, vec![Mbps::new(80.0), Mbps::new(30.0)]);
    }

    #[test]
    fn throughputs_validate_inputs() {
        let s = TdmaSchedule::build(&[1.0, 1.0], 10).unwrap();
        assert!(s.throughputs(&[Mbps::new(10.0)]).is_err());
        assert!(s.throughputs(&[Mbps::new(10.0), Mbps::ZERO]).is_err());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(TdmaSchedule::build(&[], 10).is_err());
        assert!(TdmaSchedule::build(&[1.0], 0).is_err());
        assert!(TdmaSchedule::build(&[-1.0, 2.0], 10).is_err());
        assert!(TdmaSchedule::build(&[f64::NAN], 10).is_err());
        assert!(TdmaSchedule::build(&[0.0, 0.0], 10).is_err());
    }

    #[test]
    fn matches_csma_time_fair_for_equal_weights() {
        // With equal weights TDMA grants the same shares as the CSMA
        // time-fair model for saturated extenders — the two modes agree on
        // Eq. 2.
        use crate::timeshare::{allocate_time_fair, ExtenderDemand};
        let caps = [Mbps::new(160.0), Mbps::new(120.0), Mbps::new(60.0)];
        let tdma = TdmaSchedule::build(&[1.0; 3], 300).unwrap();
        let tdma_t = tdma.throughputs(&caps).unwrap();
        let csma = allocate_time_fair(
            &caps
                .iter()
                .map(|&c| ExtenderDemand::saturated(c))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        #[allow(clippy::needless_range_loop)] // comparing parallel result vectors
        for j in 0..3 {
            assert!((tdma_t[j].value() - csma.throughput[j].value()).abs() < 1e-9);
        }
    }
}
