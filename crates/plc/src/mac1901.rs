//! Slotted IEEE 1901 CSMA/CA micro-simulator.
//!
//! The paper's Fig. 2c measurement — `k` active extenders each deliver
//! `1/k` of their isolation throughput — is an *emergent* property of the
//! 1901 MAC, which this module reproduces from first principles. 1901
//! CSMA/CA differs from 802.11 DCF in its **deferral counter** (Vlachou et
//! al., ICNP 2014): in addition to the backoff counter drawn from the
//! stage's contention window, a station holds a deferral counter `DC`; each
//! time it senses another transmission during countdown it decrements `DC`,
//! and if `DC` is exhausted it jumps to the next backoff stage *without
//! transmitting*. This damps collisions under load.
//!
//! Because every station wins the channel equally often and occupies it for
//! a duration proportional to its *frame* (whose airtime is what it is,
//! regardless of PHY rate — PLC frames carry more bits on better links in
//! the same airtime via tone maps), the long-term **airtime** equalizes and
//! each station's throughput is `rate × share` — time-fair sharing, unlike
//! WiFi's throughput-fair sharing.

use wolt_support::rng::ChaCha8Rng;
use wolt_support::rng::{Rng, SeedableRng};
use wolt_units::{Mbps, Seconds};

use crate::PlcError;

/// IEEE 1901 CSMA/CA parameters (CA0/CA1 priority class).
#[derive(Debug, Clone, PartialEq)]
pub struct Mac1901Config {
    /// Contention window per backoff stage.
    pub cw_per_stage: Vec<u32>,
    /// Initial deferral counter per backoff stage.
    pub dc_per_stage: Vec<u32>,
    /// Idle slot duration in µs.
    pub slot_us: f64,
    /// Priority-resolution + preamble + frame-control overhead per
    /// transmission in µs.
    pub overhead_us: f64,
    /// Response interframe space + selective-ACK + contention interframe
    /// space in µs.
    pub ack_exchange_us: f64,
    /// Fixed frame airtime in µs: 1901 frames occupy a roughly constant
    /// duration and carry `rate × airtime` bits (tone-mapped payload).
    pub frame_airtime_us: f64,
    /// Simulated duration.
    pub duration: Seconds,
}

impl Default for Mac1901Config {
    fn default() -> Self {
        Self {
            // Values from the 1901 standard's CA0/CA1 class.
            cw_per_stage: vec![8, 16, 32, 64],
            dc_per_stage: vec![0, 1, 3, 15],
            slot_us: 35.84,
            overhead_us: 182.0,     // 2 PRS slots + preamble + frame control
            ack_exchange_us: 350.0, // RIFS + SACK + CIFS
            frame_airtime_us: 2000.0,
            duration: Seconds::new(2.0),
        }
    }
}

impl Mac1901Config {
    /// The CA0/CA1 (best-effort) priority class — identical to
    /// [`Mac1901Config::default`].
    pub fn ca01() -> Self {
        Self::default()
    }

    /// The CA2/CA3 (high-priority) class: smaller contention windows at
    /// the upper stages, so stations recover from deferral faster and see
    /// lower access latency (the standard's QoS lever).
    pub fn ca23() -> Self {
        Self {
            cw_per_stage: vec![8, 16, 16, 32],
            dc_per_stage: vec![0, 1, 3, 15],
            ..Self::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PlcError::InvalidConfig`] when stage tables are empty or
    /// of unequal length, any CW is zero, or any duration is non-positive.
    pub fn validate(&self) -> Result<(), PlcError> {
        if self.cw_per_stage.is_empty() || self.cw_per_stage.len() != self.dc_per_stage.len() {
            return Err(PlcError::InvalidConfig {
                context: "cw and dc stage tables must be non-empty and equal length",
            });
        }
        if self.cw_per_stage.contains(&0) {
            return Err(PlcError::InvalidConfig {
                context: "contention windows must be positive",
            });
        }
        let durations = [
            self.slot_us,
            self.overhead_us,
            self.ack_exchange_us,
            self.frame_airtime_us,
            self.duration.value(),
        ];
        if durations.iter().any(|d| !(d.is_finite() && *d > 0.0)) {
            return Err(PlcError::InvalidConfig {
                context: "durations must be finite and positive",
            });
        }
        Ok(())
    }
}

/// Measured outcome of a 1901 MAC simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct Mac1901Outcome {
    /// Long-term throughput of each station (extender).
    pub per_station: Vec<Mbps>,
    /// Fraction of time each station's frames occupied the medium.
    pub airtime_fraction: Vec<f64>,
    /// Successful transmissions.
    pub successes: u64,
    /// Collision events.
    pub collisions: u64,
    /// Stage jumps triggered by deferral-counter exhaustion.
    pub deferrals: u64,
}

/// Runs a saturated 1901 CSMA/CA simulation for extenders with the given
/// PLC PHY rates and returns measured throughputs.
///
/// Deterministic for a given `seed`.
///
/// # Errors
///
/// Returns [`PlcError::InvalidConfig`] for a bad config (see
/// [`Mac1901Config::validate`]) or an empty station list, and
/// [`PlcError::UnusableCapacity`] for unusable rates.
///
/// # Example
///
/// ```
/// use wolt_units::{Mbps, Seconds};
/// use wolt_plc::mac1901::{simulate_1901, Mac1901Config};
///
/// # fn main() -> Result<(), wolt_plc::PlcError> {
/// // A long horizon lets 1901's slow-mixing backoff dynamics average out.
/// let cfg = Mac1901Config { duration: Seconds::new(20.0), ..Mac1901Config::default() };
/// let out = simulate_1901(&[Mbps::new(160.0), Mbps::new(60.0)], &cfg, 7)?;
/// // Time-fair: both extenders occupy similar airtime...
/// let airtime_ratio = out.airtime_fraction[0] / out.airtime_fraction[1];
/// assert!((0.8..1.25).contains(&airtime_ratio));
/// // ...so the faster link carries proportionally more traffic.
/// assert!(out.per_station[0] > 2.0 * out.per_station[1]);
/// # Ok(())
/// # }
/// ```
pub fn simulate_1901(
    phy_rates: &[Mbps],
    config: &Mac1901Config,
    seed: u64,
) -> Result<Mac1901Outcome, PlcError> {
    config.validate()?;
    if phy_rates.is_empty() {
        return Err(PlcError::InvalidConfig {
            context: "need at least one station",
        });
    }
    for r in phy_rates {
        if !r.is_usable() {
            return Err(PlcError::UnusableCapacity {
                capacity_mbps: r.value(),
            });
        }
    }

    let n = phy_rates.len();
    let stages = config.cw_per_stage.len();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    let mut stage = vec![0usize; n];
    let mut backoff: Vec<u32> = (0..n)
        .map(|_| rng.gen_range(0..=config.cw_per_stage[0]))
        .collect();
    let mut defer: Vec<u32> = vec![config.dc_per_stage[0]; n];

    let mut bits = vec![0.0f64; n];
    let mut tx_airtime = vec![0.0f64; n];
    let mut successes = 0u64;
    let mut collisions = 0u64;
    let mut deferrals = 0u64;

    let horizon_us = config.duration.value() * 1e6;
    let mut now_us = 0.0f64;
    let busy_time = config.overhead_us + config.frame_airtime_us + config.ack_exchange_us;

    while now_us < horizon_us {
        let min_backoff = *backoff.iter().min().expect("n >= 1");
        now_us += f64::from(min_backoff) * config.slot_us;
        for b in &mut backoff {
            *b -= min_backoff;
        }
        let transmitters: Vec<usize> = (0..n).filter(|&i| backoff[i] == 0).collect();

        now_us += busy_time;
        if transmitters.len() == 1 {
            let s = transmitters[0];
            // The frame occupies a fixed airtime and carries
            // rate × airtime bits.
            bits[s] += phy_rates[s].value() * config.frame_airtime_us;
            tx_airtime[s] += config.frame_airtime_us;
            successes += 1;
            stage[s] = 0;
            backoff[s] = rng.gen_range(0..=config.cw_per_stage[0]);
            defer[s] = config.dc_per_stage[0];
        } else {
            collisions += 1;
            for &s in &transmitters {
                stage[s] = (stage[s] + 1).min(stages - 1);
                backoff[s] = rng.gen_range(0..=config.cw_per_stage[stage[s]]);
                defer[s] = config.dc_per_stage[stage[s]];
            }
        }

        // Every station that heard the busy medium updates its deferral
        // counter; exhaustion jumps it a stage without transmitting.
        for i in 0..n {
            if transmitters.contains(&i) {
                continue;
            }
            if defer[i] == 0 {
                deferrals += 1;
                stage[i] = (stage[i] + 1).min(stages - 1);
                backoff[i] = rng.gen_range(0..=config.cw_per_stage[stage[i]]);
                defer[i] = config.dc_per_stage[stage[i]];
            } else {
                defer[i] -= 1;
            }
        }
    }

    let elapsed_s = now_us / 1e6;
    let per_station: Vec<Mbps> = bits
        .iter()
        .map(|&b| Mbps::new(b / 1e6 / elapsed_s))
        .collect();
    let airtime_fraction = tx_airtime.iter().map(|&t| t / now_us).collect();

    Ok(Mac1901Outcome {
        per_station,
        airtime_fraction,
        successes,
        collisions,
        deferrals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rates: &[f64]) -> Mac1901Outcome {
        run_for(rates, 2.0)
    }

    /// 1901's winner-captures-the-channel effect mixes slowly, so fairness
    /// assertions need a long horizon.
    fn run_for(rates: &[f64], seconds: f64) -> Mac1901Outcome {
        let rates: Vec<Mbps> = rates.iter().map(|&r| Mbps::new(r)).collect();
        let cfg = Mac1901Config {
            duration: Seconds::new(seconds),
            ..Mac1901Config::default()
        };
        simulate_1901(&rates, &cfg, 99).unwrap()
    }

    #[test]
    fn single_station_keeps_most_of_its_rate() {
        let out = run(&[160.0]);
        let t = out.per_station[0].value();
        // Overhead (backoff + preamble + SACK) costs ~20-30%.
        assert!(t > 100.0 && t < 160.0, "throughput {t}");
    }

    #[test]
    fn airtime_equalizes_across_unequal_rates() {
        let out = run_for(&[160.0, 60.0], 20.0);
        let ratio = out.airtime_fraction[0] / out.airtime_fraction[1];
        assert!(
            (0.85..1.18).contains(&ratio),
            "airtime-fairness violated: ratio {ratio}"
        );
    }

    #[test]
    fn throughput_proportional_to_rate() {
        let out = run_for(&[160.0, 60.0], 20.0);
        let ratio = out.per_station[0] / out.per_station[1];
        let expected = 160.0 / 60.0;
        assert!(
            (ratio - expected).abs() / expected < 0.2,
            "throughput ratio {ratio} vs rate ratio {expected}"
        );
    }

    #[test]
    fn fig2c_each_station_gets_one_kth() {
        // The paper's Fig. 2c shape: k active extenders → each delivers
        // ~1/k of its isolation throughput. The micro-sim pays extra
        // contention overhead at higher k (collisions + deferral-inflated
        // backoff), so shares sit a little *below* the ideal 1/k; the
        // analytic `timeshare` model captures the exact law. Here we check
        // (a) the 1/k trend and (b) that all stations' shares of their own
        // isolation throughput are equal — the time-fairness signature.
        let caps = [160.0, 120.0, 90.0, 60.0];
        let singles: Vec<f64> = caps
            .iter()
            .map(|&c| run_for(&[c], 40.0).per_station[0].value())
            .collect();
        for k in 2..=4 {
            let out = run_for(&caps[..k], 40.0);
            let shares: Vec<f64> = (0..k)
                .map(|j| out.per_station[j].value() / singles[j])
                .collect();
            let ideal = 1.0 / k as f64;
            for (j, &share) in shares.iter().enumerate() {
                assert!(
                    share > 0.55 * ideal && share < 1.15 * ideal,
                    "k={k} station {j}: share {share} vs ideal {ideal}"
                );
            }
            let max = shares.iter().cloned().fold(0.0, f64::max);
            let min = shares.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(
                max / min < 1.3,
                "k={k}: unequal isolation shares {shares:?}"
            );
        }
    }

    #[test]
    fn deferral_counter_fires_under_contention() {
        let out = run(&[100.0; 6]);
        assert!(out.deferrals > 0, "deferral counter never fired");
    }

    #[test]
    fn deferral_damps_collisions() {
        // With the deferral counter, 1901 keeps its collision rate in check
        // even at 8 saturated stations.
        let out = run(&[100.0; 8]);
        let collision_rate = out.collisions as f64 / (out.collisions + out.successes) as f64;
        assert!(
            collision_rate < 0.5,
            "collision rate {collision_rate} too high"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let rates = [Mbps::new(150.0), Mbps::new(70.0)];
        let a = simulate_1901(&rates, &Mac1901Config::default(), 3).unwrap();
        let b = simulate_1901(&rates, &Mac1901Config::default(), 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_inputs() {
        let cfg = Mac1901Config::default();
        assert!(simulate_1901(&[], &cfg, 0).is_err());
        assert!(simulate_1901(&[Mbps::ZERO], &cfg, 0).is_err());
        let bad = Mac1901Config {
            cw_per_stage: vec![],
            ..Mac1901Config::default()
        };
        assert!(simulate_1901(&[Mbps::new(100.0)], &bad, 0).is_err());
        let bad = Mac1901Config {
            cw_per_stage: vec![8, 16],
            dc_per_stage: vec![0],
            ..Mac1901Config::default()
        };
        assert!(simulate_1901(&[Mbps::new(100.0)], &bad, 0).is_err());
        let bad = Mac1901Config {
            frame_airtime_us: 0.0,
            ..Mac1901Config::default()
        };
        assert!(simulate_1901(&[Mbps::new(100.0)], &bad, 0).is_err());
    }

    #[test]
    fn priority_class_presets_differ_as_specified() {
        let ca01 = Mac1901Config::ca01();
        let ca23 = Mac1901Config::ca23();
        assert_eq!(ca01.cw_per_stage, vec![8, 16, 32, 64]);
        assert_eq!(ca23.cw_per_stage, vec![8, 16, 16, 32]);
        assert!(ca01.validate().is_ok());
        assert!(ca23.validate().is_ok());
    }

    #[test]
    fn high_priority_class_spends_fewer_idle_slots() {
        // Smaller upper-stage windows mean less idle backoff per frame;
        // under saturation the CA2/CA3 medium is busier (more successes
        // in the same horizon) despite slightly more collisions.
        let rates = [Mbps::new(100.0); 4];
        let dur = Seconds::new(10.0);
        let ca01 = Mac1901Config {
            duration: dur,
            ..Mac1901Config::ca01()
        };
        let ca23 = Mac1901Config {
            duration: dur,
            ..Mac1901Config::ca23()
        };
        let low = simulate_1901(&rates, &ca01, 5).unwrap();
        let high = simulate_1901(&rates, &ca23, 5).unwrap();
        assert!(
            high.successes + high.collisions > low.successes + low.collisions,
            "high-priority class was not more aggressive: {high:?} vs {low:?}"
        );
    }

    #[test]
    fn aggregate_airtime_bounded_by_one() {
        let out = run(&[160.0, 120.0, 90.0, 60.0]);
        let total: f64 = out.airtime_fraction.iter().sum();
        assert!(total <= 1.0 + 1e-9);
        assert!(total > 0.5, "medium mostly idle under saturation: {total}");
    }
}
