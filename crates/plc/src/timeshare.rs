//! Time-fair PLC airtime allocation with leftover redistribution.
//!
//! The paper's measurements (Fig. 2c) show the 1901 CSMA medium is shared
//! *time-fairly*: `A` active extenders each get a `1/A` airtime share, so
//! extender `j` with isolation capacity `c_j` delivers `c_j / A` (Eq. 2).
//! Its Fig. 3c further shows that airtime an extender cannot fill (because
//! its WiFi side demands less) is re-used by the others: with extender 1
//! demanding only 15 of its 30 Mbit/s half-share, "half of extender 1's
//! leftover time (i.e., one quarter of the total time) is re-allocated to
//! extender 2, causing User 2's end-to-end throughput to increase to 15
//! Mbps".
//!
//! [`allocate_time_fair`] implements exactly that as iterative
//! water-filling over airtime: start from equal shares among active
//! extenders; any extender whose demand needs less airtime than its share
//! keeps just what it needs, and the surplus is split equally among the
//! still-bottlenecked extenders; repeat until a fixed point.

use wolt_units::Mbps;

use crate::PlcError;

/// One extender's view of the PLC medium: its isolation capacity `c_j` and
/// the downstream (WiFi-side) demand it must carry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtenderDemand {
    /// Isolation capacity of the extender's PLC link (`c_j`).
    pub capacity: Mbps,
    /// Throughput the extender's WiFi cell can consume (`T_wifi(j)`).
    /// Zero means the extender is inactive and takes no airtime.
    pub demand: Mbps,
}

impl ExtenderDemand {
    /// An extender whose WiFi side can consume anything the PLC link
    /// offers (demand = +∞ behaviourally; represented as demand = capacity,
    /// which the allocator can never exceed).
    pub fn saturated(capacity: Mbps) -> Self {
        Self {
            capacity,
            demand: capacity,
        }
    }

    /// An extender with no associated users (takes no airtime).
    pub fn idle(capacity: Mbps) -> Self {
        Self {
            capacity,
            demand: Mbps::ZERO,
        }
    }
}

/// Result of a time-fair allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeShareAllocation {
    /// Airtime fraction granted to each extender (0 for inactive ones).
    /// Active shares sum to ≤ 1; strictly less only when every extender's
    /// demand is satisfied.
    pub shares: Vec<f64>,
    /// End-to-end deliverable throughput of each extender:
    /// `min(demand_j, c_j · share_j)`.
    pub throughput: Vec<Mbps>,
}

impl TimeShareAllocation {
    /// Sum of per-extender throughputs.
    pub fn aggregate(&self) -> Mbps {
        self.throughput.iter().copied().sum()
    }
}

/// Allocates PLC airtime time-fairly with leftover redistribution.
///
/// Extenders with zero demand are inactive: they receive no airtime and do
/// not count towards the `1/A` split (the paper's `A` counts *active*
/// extenders — an extender nobody uses does not contend).
///
/// # Errors
///
/// Returns [`PlcError::UnusableCapacity`] if any capacity is zero,
/// negative, or non-finite, and [`PlcError::InvalidDemand`] if any demand
/// is negative or non-finite. An empty slice is allowed and yields an
/// empty allocation.
///
/// # Example
///
/// The paper's Fig. 3c greedy scenario: extender 1 (capacity 60) serves a
/// 15 Mbit/s WiFi cell, extender 2 (capacity 20) a 40 Mbit/s one.
///
/// ```
/// use wolt_units::Mbps;
/// use wolt_plc::timeshare::{allocate_time_fair, ExtenderDemand};
///
/// # fn main() -> Result<(), wolt_plc::PlcError> {
/// let alloc = allocate_time_fair(&[
///     ExtenderDemand { capacity: Mbps::new(60.0), demand: Mbps::new(15.0) },
///     ExtenderDemand { capacity: Mbps::new(20.0), demand: Mbps::new(40.0) },
/// ])?;
/// assert_eq!(alloc.throughput[0], Mbps::new(15.0)); // demand met in 1/4 time
/// assert_eq!(alloc.throughput[1], Mbps::new(15.0)); // 3/4 time × 20 Mbit/s
/// # Ok(())
/// # }
/// ```
pub fn allocate_time_fair(entries: &[ExtenderDemand]) -> Result<TimeShareAllocation, PlcError> {
    for e in entries {
        if !e.capacity.is_usable() {
            return Err(PlcError::UnusableCapacity {
                capacity_mbps: e.capacity.value(),
            });
        }
        if !(e.demand.value().is_finite() && e.demand.value() >= 0.0) {
            return Err(PlcError::InvalidDemand {
                demand_mbps: e.demand.value(),
            });
        }
    }

    let n = entries.len();
    let mut shares = vec![0.0f64; n];
    let active: Vec<usize> = (0..n)
        .filter(|&j| entries[j].demand.value() > 0.0)
        .collect();
    if active.is_empty() {
        return Ok(TimeShareAllocation {
            shares,
            throughput: vec![Mbps::ZERO; n],
        });
    }

    // Water-filling over airtime. `unsatisfied` holds extenders still
    // capped by their airtime share; `budget` is the airtime left to split
    // equally among them.
    let mut unsatisfied: Vec<usize> = active.clone();
    let mut budget = 1.0f64;
    loop {
        let equal = budget / unsatisfied.len() as f64;
        // Extenders whose demand fits inside the equal share are satisfied
        // this round; they keep exactly the airtime they need.
        let (done, rest): (Vec<usize>, Vec<usize>) = unsatisfied
            .iter()
            .partition(|&&j| entries[j].demand.value() / entries[j].capacity.value() <= equal);
        if done.is_empty() {
            // Fixed point: everyone left is airtime-limited.
            for &j in &rest {
                shares[j] = equal;
            }
            break;
        }
        for &j in &done {
            let need = entries[j].demand.value() / entries[j].capacity.value();
            shares[j] = need;
            budget -= need;
        }
        // Float drift can nudge the running budget a hair below zero when
        // the satisfied extenders consume (within rounding) the whole
        // medium; clamp so no later round can compute a negative share.
        budget = budget.max(0.0);
        if rest.is_empty() {
            break;
        }
        if budget == 0.0 {
            // Medium fully consumed with extenders still unsatisfied:
            // grant each its entitled share — zero — explicitly instead of
            // falling out of the loop with their slots merely untouched.
            for &j in &rest {
                shares[j] = 0.0;
            }
            break;
        }
        unsatisfied = rest;
    }

    let throughput: Vec<Mbps> = (0..n)
        .map(|j| (entries[j].capacity * shares[j]).min(entries[j].demand))
        .collect();
    Ok(TimeShareAllocation { shares, throughput })
}

/// Weighted time-fair allocation: like [`allocate_time_fair`] but active
/// extender `j` is entitled to airtime proportional to `weights[j]`
/// (1901's TDMA-style QoS weights layered on the CSMA share model).
/// Satisfied extenders release surplus airtime, which is re-split among
/// the still-bottlenecked ones in proportion to *their* weights.
///
/// With equal weights this is exactly [`allocate_time_fair`].
///
/// # Errors
///
/// As [`allocate_time_fair`], plus [`PlcError::InvalidConfig`] when
/// `weights` has the wrong length, contains a negative/non-finite value,
/// or an extender with positive demand has zero weight.
pub fn allocate_weighted(
    entries: &[ExtenderDemand],
    weights: &[f64],
) -> Result<TimeShareAllocation, PlcError> {
    if weights.len() != entries.len() {
        return Err(PlcError::InvalidConfig {
            context: "weights length differs from entries",
        });
    }
    if weights.iter().any(|w| !(w.is_finite() && *w >= 0.0)) {
        return Err(PlcError::InvalidConfig {
            context: "weights must be finite and non-negative",
        });
    }
    for e in entries {
        if !e.capacity.is_usable() {
            return Err(PlcError::UnusableCapacity {
                capacity_mbps: e.capacity.value(),
            });
        }
        if !(e.demand.value().is_finite() && e.demand.value() >= 0.0) {
            return Err(PlcError::InvalidDemand {
                demand_mbps: e.demand.value(),
            });
        }
    }

    let n = entries.len();
    let mut shares = vec![0.0f64; n];
    let active: Vec<usize> = (0..n)
        .filter(|&j| entries[j].demand.value() > 0.0)
        .collect();
    if active.is_empty() {
        return Ok(TimeShareAllocation {
            shares,
            throughput: vec![Mbps::ZERO; n],
        });
    }
    if active.iter().any(|&j| weights[j] <= 0.0) {
        return Err(PlcError::InvalidConfig {
            context: "active extenders need positive weight",
        });
    }

    let mut unsatisfied: Vec<usize> = active;
    let mut budget = 1.0f64;
    loop {
        let weight_sum: f64 = unsatisfied.iter().map(|&j| weights[j]).sum();
        let entitled = |j: usize| budget * weights[j] / weight_sum;
        let (done, rest): (Vec<usize>, Vec<usize>) = unsatisfied.iter().partition(|&&j| {
            entries[j].demand.value() / entries[j].capacity.value() <= entitled(j)
        });
        if done.is_empty() {
            for &j in &rest {
                shares[j] = entitled(j);
            }
            break;
        }
        for &j in &done {
            let need = entries[j].demand.value() / entries[j].capacity.value();
            shares[j] = need;
            budget -= need;
        }
        // Same drift clamp as `allocate_time_fair`: the budget must never
        // go negative, and an exhausted medium assigns the remaining
        // extenders their entitled (zero) share explicitly.
        budget = budget.max(0.0);
        if rest.is_empty() {
            break;
        }
        if budget == 0.0 {
            for &j in &rest {
                shares[j] = 0.0;
            }
            break;
        }
        unsatisfied = rest;
    }

    let throughput: Vec<Mbps> = (0..n)
        .map(|j| (entries[j].capacity * shares[j]).min(entries[j].demand))
        .collect();
    Ok(TimeShareAllocation { shares, throughput })
}

/// Plain Eq. 2 of the paper: with `active` extenders all saturated, each
/// delivers `c_j / A`. Used for Phase-I utilities, which assume every
/// extender is active (the paper's modified constraint (8)).
///
/// # Errors
///
/// Returns [`PlcError::UnusableCapacity`] for unusable capacities. An
/// empty slice yields an empty vector.
pub fn equal_share_throughput(capacities: &[Mbps]) -> Result<Vec<Mbps>, PlcError> {
    for c in capacities {
        if !c.is_usable() {
            return Err(PlcError::UnusableCapacity {
                capacity_mbps: c.value(),
            });
        }
    }
    let a = capacities.len() as f64;
    Ok(capacities.iter().map(|&c| c / a).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(v: f64) -> Mbps {
        Mbps::new(v)
    }

    fn close(a: Mbps, b: f64) -> bool {
        (a.value() - b).abs() < 1e-9
    }

    #[test]
    fn single_saturated_extender_gets_everything() {
        let alloc = allocate_time_fair(&[ExtenderDemand::saturated(mbps(100.0))]).unwrap();
        assert!(close(alloc.throughput[0], 100.0));
        assert!((alloc.shares[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fig2c_time_fair_halving() {
        // Paper Fig. 2c: with k active extenders each delivers 1/k of its
        // isolation throughput.
        let caps = [160.0, 120.0, 90.0, 60.0];
        for k in 1..=4 {
            let entries: Vec<ExtenderDemand> = caps[..k]
                .iter()
                .map(|&c| ExtenderDemand::saturated(mbps(c)))
                .collect();
            let alloc = allocate_time_fair(&entries).unwrap();
            for (j, &c) in caps[..k].iter().enumerate() {
                assert!(
                    close(alloc.throughput[j], c / k as f64),
                    "k={k} j={j}: {} != {}",
                    alloc.throughput[j],
                    c / k as f64
                );
            }
        }
    }

    #[test]
    fn fig3c_redistribution() {
        // Fig. 3c: extender 1 (cap 60) demands 15, extender 2 (cap 20)
        // demands 40. Extender 1 needs 1/4 airtime; the leftover 1/4 goes
        // to extender 2 which ends at 3/4 × 20 = 15 Mbit/s.
        let alloc = allocate_time_fair(&[
            ExtenderDemand {
                capacity: mbps(60.0),
                demand: mbps(15.0),
            },
            ExtenderDemand {
                capacity: mbps(20.0),
                demand: mbps(40.0),
            },
        ])
        .unwrap();
        assert!(close(alloc.throughput[0], 15.0));
        assert!(close(alloc.throughput[1], 15.0));
        assert!((alloc.shares[0] - 0.25).abs() < 1e-12);
        assert!((alloc.shares[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn idle_extender_takes_no_airtime() {
        let alloc = allocate_time_fair(&[
            ExtenderDemand::saturated(mbps(100.0)),
            ExtenderDemand::idle(mbps(50.0)),
        ])
        .unwrap();
        assert!(close(alloc.throughput[0], 100.0));
        assert!(close(alloc.throughput[1], 0.0));
        assert_eq!(alloc.shares[1], 0.0);
    }

    #[test]
    fn all_idle_yields_zero() {
        let alloc = allocate_time_fair(&[
            ExtenderDemand::idle(mbps(100.0)),
            ExtenderDemand::idle(mbps(50.0)),
        ])
        .unwrap();
        assert_eq!(alloc.aggregate(), Mbps::ZERO);
    }

    #[test]
    fn empty_input_allowed() {
        let alloc = allocate_time_fair(&[]).unwrap();
        assert!(alloc.shares.is_empty());
        assert_eq!(alloc.aggregate(), Mbps::ZERO);
    }

    #[test]
    fn multi_round_redistribution() {
        // Three extenders; two have tiny demands, freeing most airtime for
        // the third. Round 1: equal share 1/3; ext 0 needs 0.05, ext 1
        // needs 0.1, both satisfied. Ext 2 ends with 0.85 airtime.
        let alloc = allocate_time_fair(&[
            ExtenderDemand {
                capacity: mbps(100.0),
                demand: mbps(5.0),
            },
            ExtenderDemand {
                capacity: mbps(100.0),
                demand: mbps(10.0),
            },
            ExtenderDemand {
                capacity: mbps(100.0),
                demand: mbps(1000.0),
            },
        ])
        .unwrap();
        assert!(close(alloc.throughput[0], 5.0));
        assert!(close(alloc.throughput[1], 10.0));
        assert!(close(alloc.throughput[2], 85.0));
    }

    #[test]
    fn cascading_rounds() {
        // Requires two redistribution rounds: ext 0 satisfied at round 1,
        // ext 1 only after inheriting surplus.
        let alloc = allocate_time_fair(&[
            ExtenderDemand {
                capacity: mbps(100.0),
                demand: mbps(10.0),
            }, // needs 0.1 < 1/3
            ExtenderDemand {
                capacity: mbps(100.0),
                demand: mbps(40.0),
            }, // needs 0.4 > 1/3, but < 0.45 after round 1
            ExtenderDemand {
                capacity: mbps(100.0),
                demand: mbps(1000.0),
            },
        ])
        .unwrap();
        assert!(close(alloc.throughput[0], 10.0));
        assert!(close(alloc.throughput[1], 40.0));
        assert!(close(alloc.throughput[2], 50.0));
        let total_share: f64 = alloc.shares.iter().sum();
        assert!((total_share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shares_never_exceed_one_in_total() {
        let alloc = allocate_time_fair(&[
            ExtenderDemand::saturated(mbps(30.0)),
            ExtenderDemand::saturated(mbps(70.0)),
            ExtenderDemand {
                capacity: mbps(120.0),
                demand: mbps(3.0),
            },
        ])
        .unwrap();
        let total: f64 = alloc.shares.iter().sum();
        assert!(total <= 1.0 + 1e-12);
    }

    #[test]
    fn throughput_never_exceeds_demand_or_capacity_share() {
        let entries = [
            ExtenderDemand {
                capacity: mbps(55.0),
                demand: mbps(20.0),
            },
            ExtenderDemand {
                capacity: mbps(80.0),
                demand: mbps(200.0),
            },
            ExtenderDemand {
                capacity: mbps(140.0),
                demand: mbps(60.0),
            },
        ];
        let alloc = allocate_time_fair(&entries).unwrap();
        for (j, e) in entries.iter().enumerate() {
            assert!(alloc.throughput[j] <= e.demand + mbps(1e-9));
            assert!(alloc.throughput[j].value() <= e.capacity.value() * alloc.shares[j] + 1e-9);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            allocate_time_fair(&[ExtenderDemand {
                capacity: Mbps::ZERO,
                demand: mbps(1.0)
            }]),
            Err(PlcError::UnusableCapacity { .. })
        ));
        assert!(matches!(
            allocate_time_fair(&[ExtenderDemand {
                capacity: mbps(10.0),
                demand: mbps(-1.0)
            }]),
            Err(PlcError::InvalidDemand { .. })
        ));
        assert!(matches!(
            allocate_time_fair(&[ExtenderDemand {
                capacity: mbps(10.0),
                demand: mbps(f64::NAN)
            }]),
            Err(PlcError::InvalidDemand { .. })
        ));
    }

    #[test]
    fn equal_share_matches_eq2() {
        let shares =
            equal_share_throughput(&[mbps(160.0), mbps(120.0), mbps(90.0), mbps(60.0)]).unwrap();
        assert!(close(shares[0], 40.0));
        assert!(close(shares[3], 15.0));
    }

    #[test]
    fn equal_share_rejects_unusable() {
        assert!(equal_share_throughput(&[mbps(10.0), Mbps::ZERO]).is_err());
        assert!(equal_share_throughput(&[]).unwrap().is_empty());
    }

    #[test]
    fn aggregate_sums_throughputs() {
        let alloc = allocate_time_fair(&[
            ExtenderDemand::saturated(mbps(100.0)),
            ExtenderDemand::saturated(mbps(50.0)),
        ])
        .unwrap();
        assert!(close(alloc.aggregate(), 75.0));
    }

    #[test]
    fn weighted_with_equal_weights_matches_time_fair() {
        let entries = [
            ExtenderDemand::saturated(mbps(160.0)),
            ExtenderDemand {
                capacity: mbps(80.0),
                demand: mbps(10.0),
            },
            ExtenderDemand::saturated(mbps(60.0)),
        ];
        let equal = allocate_weighted(&entries, &[1.0; 3]).unwrap();
        let plain = allocate_time_fair(&entries).unwrap();
        for j in 0..3 {
            assert!((equal.shares[j] - plain.shares[j]).abs() < 1e-12);
            assert!((equal.throughput[j].value() - plain.throughput[j].value()).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_shares_follow_weights() {
        let entries = [
            ExtenderDemand::saturated(mbps(100.0)),
            ExtenderDemand::saturated(mbps(100.0)),
        ];
        let alloc = allocate_weighted(&entries, &[2.0, 1.0]).unwrap();
        assert!((alloc.shares[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((alloc.shares[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_redistribution_respects_weights() {
        // Extender 0 is satisfied with little airtime; the surplus splits
        // 3:1 between the two saturated ones.
        let entries = [
            ExtenderDemand {
                capacity: mbps(100.0),
                demand: mbps(10.0),
            },
            ExtenderDemand::saturated(mbps(100.0)),
            ExtenderDemand::saturated(mbps(100.0)),
        ];
        let alloc = allocate_weighted(&entries, &[1.0, 3.0, 1.0]).unwrap();
        assert!((alloc.shares[0] - 0.1).abs() < 1e-12);
        let surplus = 0.9;
        assert!((alloc.shares[1] - surplus * 0.75).abs() < 1e-12);
        assert!((alloc.shares[2] - surplus * 0.25).abs() < 1e-12);
    }

    #[test]
    fn weighted_validates_inputs() {
        let entries = [ExtenderDemand::saturated(mbps(100.0))];
        assert!(allocate_weighted(&entries, &[]).is_err());
        assert!(allocate_weighted(&entries, &[-1.0]).is_err());
        assert!(allocate_weighted(&entries, &[f64::NAN]).is_err());
        // Active extender with zero weight is a contradiction.
        assert!(allocate_weighted(&entries, &[0.0]).is_err());
        // Idle extender with zero weight is fine.
        let mixed = [
            ExtenderDemand::idle(mbps(50.0)),
            ExtenderDemand::saturated(mbps(100.0)),
        ];
        let alloc = allocate_weighted(&mixed, &[0.0, 1.0]).unwrap();
        assert!((alloc.shares[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn budget_exhaustion_assigns_entitled_shares_time_fair() {
        // Airtime needs 0.10 + 0.35 + 0.55 consume the whole medium to
        // within float error, across three cascading rounds; the last
        // subtraction lands the budget on (or a hair past) zero. Every
        // active extender must still end with its exact entitled share —
        // never a silently-skipped slot or a negative share.
        let entries = [
            ExtenderDemand {
                capacity: mbps(100.0),
                demand: mbps(10.0),
            },
            ExtenderDemand {
                capacity: mbps(100.0),
                demand: mbps(35.0),
            },
            ExtenderDemand {
                capacity: mbps(100.0),
                demand: mbps(55.0),
            },
        ];
        let alloc = allocate_time_fair(&entries).unwrap();
        let total: f64 = alloc.shares.iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "shares sum to {total}");
        for (j, e) in entries.iter().enumerate() {
            assert!(alloc.shares[j] >= 0.0, "share {j} negative");
            let need = e.demand.value() / e.capacity.value();
            assert!(
                (alloc.shares[j] - need).abs() < 1e-12,
                "extender {j} did not get its entitled share"
            );
        }
        assert!(close(alloc.aggregate(), 100.0));
    }

    #[test]
    fn budget_exhaustion_with_remaining_extenders_weighted() {
        // A near-zero weight makes extender 1's entitlement vanish inside
        // f64 rounding: round 1 grants extender 0 the entire budget
        // (1.0 / (1.0 + 1e-18) == 1.0 in f64), its need consumes it
        // exactly, and extender 1 — active, still unsatisfied — hits the
        // budget-exhausted exit. It must receive an explicit zero share,
        // not be skipped, and nothing may go negative.
        let entries = [
            ExtenderDemand {
                capacity: mbps(100.0),
                demand: mbps(100.0),
            },
            ExtenderDemand {
                capacity: mbps(100.0),
                demand: mbps(50.0),
            },
        ];
        let alloc = allocate_weighted(&entries, &[1.0, 1e-18]).unwrap();
        assert!((alloc.shares[0] - 1.0).abs() < 1e-12);
        assert_eq!(alloc.shares[1], 0.0);
        assert_eq!(alloc.throughput[1], Mbps::ZERO);
        let total: f64 = alloc.shares.iter().sum();
        assert!(total <= 1.0 + 1e-12);
        assert!(alloc.shares.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn redistribution_only_helps() {
        // With redistribution the aggregate can only be >= the plain Eq. 2
        // allocation truncated by demand.
        let entries = [
            ExtenderDemand {
                capacity: mbps(90.0),
                demand: mbps(10.0),
            },
            ExtenderDemand {
                capacity: mbps(40.0),
                demand: mbps(100.0),
            },
        ];
        let with_redistribution = allocate_time_fair(&entries).unwrap().aggregate();
        let naive: f64 = entries
            .iter()
            .map(|e| (e.capacity.value() / 2.0).min(e.demand.value()))
            .sum();
        assert!(with_redistribution.value() >= naive - 1e-9);
        assert!(with_redistribution.value() > naive); // strictly better here
    }
}
