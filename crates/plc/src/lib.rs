//! IEEE 1901 power-line-communication substrate for the WOLT framework.
//!
//! The WOLT paper's central observation is that a PLC backhaul behaves
//! nothing like Ethernet: link capacities differ wildly between outlets
//! (their Fig. 2b measures 60–160 Mbit/s across four outlets of one lab),
//! and the medium is shared **time-fairly** between active extenders — with
//! `k` extenders active, each delivers `1/k` of what it could in isolation
//! (Fig. 2c), and airtime an extender cannot fill is re-allocated to the
//! others (the +5 Mbit/s in their Fig. 3c greedy case study).
//!
//! This crate builds that backhaul from first principles:
//!
//! * [`topology`] — a powerline wiring tree (central unit at the breaker
//!   panel, circuits, outlets) whose per-outlet attenuation comes from
//!   cable length and branch taps, plus a random building generator.
//! * [`channel`] — attenuation → achievable PLC capacity, calibrated to the
//!   paper's measured 60–160 Mbit/s isolation range for HomePlug-AV2-class
//!   extenders.
//! * [`timeshare`] — the **analytic time-fair allocator with
//!   leftover-airtime redistribution** (Eq. 2 of the paper plus the
//!   water-filling refinement its Fig. 3c exposes). This is the model every
//!   association algorithm in `wolt-core` evaluates against.
//! * [`mac1901`] — a slotted IEEE 1901 CSMA/CA micro-simulator (priority
//!   resolution + the 1901 deferral-counter backoff) that *derives*
//!   time-fair airtime sharing instead of assuming it.
//! * [`tdma`] — the 1901 TDMA scheduling mode (supported by commodity gear,
//!   mentioned by the paper but not its default), for ablations.
//! * [`capacity`] — the paper's offline iperf-style capacity-estimation
//!   procedure, with measurement noise.
//!
//! # Example
//!
//! Reproduce the shape of the paper's Fig. 2c (time-fair halving):
//!
//! ```
//! use wolt_units::Mbps;
//! use wolt_plc::timeshare::{allocate_time_fair, ExtenderDemand};
//!
//! # fn main() -> Result<(), wolt_plc::PlcError> {
//! let saturated = |c: f64| ExtenderDemand::saturated(Mbps::new(c));
//! let alloc = allocate_time_fair(&[saturated(160.0), saturated(60.0)])?;
//! // Each active extender gets half its isolation capacity.
//! assert_eq!(alloc.throughput[0], Mbps::new(80.0));
//! assert_eq!(alloc.throughput[1], Mbps::new(30.0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity;
pub mod channel;
pub mod mac1901;
pub mod tdma;
pub mod timeshare;
pub mod topology;

mod error;

pub use channel::PlcChannelModel;
pub use error::PlcError;
pub use timeshare::{allocate_time_fair, ExtenderDemand, TimeShareAllocation};
pub use topology::PowerlineTopology;
