//! Power-line wiring topology and per-outlet attenuation.
//!
//! The paper calibrates its simulator "with PLC link capacities measured
//! from different outlets in a university building" — capacity differs per
//! outlet because the signal between the central unit (at the breaker
//! panel) and an outlet traverses different lengths of mains cable and
//! different branch taps. We model the wiring as a tree rooted at the
//! central unit: circuits leave the panel, outlets hang off circuits, and
//! the attenuation of an outlet is
//!
//! ```text
//! A(outlet) = A_coupling + a_cable · path_length + A_tap · branch_taps(path)
//! ```
//!
//! Typical HomePlug-class figures: 0.4–1 dB/m of mains cable and ~3 dB per
//! branch tap, on top of a ~15 dB fixed coupling loss.

use wolt_support::rng::Rng;
use wolt_units::{Db, Meters};

use crate::PlcError;

/// Identifier of an outlet within a [`PowerlineTopology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OutletId(pub usize);

/// Attenuation parameters of the wiring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WiringParams {
    /// Fixed coupling loss at the two plug interfaces.
    pub coupling_loss: Db,
    /// Cable attenuation per metre.
    pub loss_per_meter: f64,
    /// Loss added by each branch tap (junction with more than one child) on
    /// the signal path.
    pub tap_loss: Db,
}

impl Default for WiringParams {
    fn default() -> Self {
        Self {
            coupling_loss: Db::new(15.0),
            loss_per_meter: 0.6,
            tap_loss: Db::new(3.0),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Node {
    parent: Option<usize>,
    cable_to_parent: Meters,
    children: Vec<usize>,
}

/// A tree of mains wiring rooted at the PLC central unit.
///
/// # Example
///
/// ```
/// use wolt_units::Meters;
/// use wolt_plc::PowerlineTopology;
///
/// # fn main() -> Result<(), wolt_plc::PlcError> {
/// let mut building = PowerlineTopology::new(Default::default());
/// let hallway = building.add_junction(building.root(), Meters::new(10.0))?;
/// let office_a = building.add_outlet(hallway, Meters::new(5.0))?;
/// let office_b = building.add_outlet(hallway, Meters::new(15.0))?;
/// // The nearer outlet attenuates less.
/// assert!(building.attenuation(office_a)? < building.attenuation(office_b)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerlineTopology {
    params: WiringParams,
    nodes: Vec<Node>,
    outlets: Vec<usize>,
}

impl PowerlineTopology {
    /// Creates a topology containing only the central unit (the root).
    pub fn new(params: WiringParams) -> Self {
        Self {
            params,
            nodes: vec![Node {
                parent: None,
                cable_to_parent: Meters::ZERO,
                children: Vec::new(),
            }],
            outlets: Vec::new(),
        }
    }

    /// Index of the root node (the central unit at the breaker panel).
    pub fn root(&self) -> usize {
        0
    }

    /// Wiring parameters in use.
    pub fn params(&self) -> WiringParams {
        self.params
    }

    /// Adds an internal junction (a point where wiring branches) connected
    /// to `parent` by `cable` metres of mains cable and returns its node
    /// index.
    ///
    /// # Errors
    ///
    /// Returns [`PlcError::UnknownOutlet`] if `parent` is not a valid node
    /// index, or [`PlcError::InvalidConfig`] for negative/non-finite cable
    /// lengths.
    pub fn add_junction(&mut self, parent: usize, cable: Meters) -> Result<usize, PlcError> {
        self.check_node(parent)?;
        if !(cable.value().is_finite() && cable.value() >= 0.0) {
            return Err(PlcError::InvalidConfig {
                context: "cable length must be finite and non-negative",
            });
        }
        let id = self.nodes.len();
        self.nodes.push(Node {
            parent: Some(parent),
            cable_to_parent: cable,
            children: Vec::new(),
        });
        self.nodes[parent].children.push(id);
        Ok(id)
    }

    /// Adds an outlet at a new leaf connected to `parent` by `cable` metres
    /// of cable.
    ///
    /// # Errors
    ///
    /// Same as [`PowerlineTopology::add_junction`].
    pub fn add_outlet(&mut self, parent: usize, cable: Meters) -> Result<OutletId, PlcError> {
        let node = self.add_junction(parent, cable)?;
        self.outlets.push(node);
        Ok(OutletId(self.outlets.len() - 1))
    }

    /// Number of outlets.
    pub fn outlet_count(&self) -> usize {
        self.outlets.len()
    }

    /// All outlet ids.
    pub fn outlet_ids(&self) -> impl Iterator<Item = OutletId> + '_ {
        (0..self.outlets.len()).map(OutletId)
    }

    /// Total cable length from the central unit to `outlet`.
    ///
    /// # Errors
    ///
    /// Returns [`PlcError::UnknownOutlet`] for an invalid outlet id.
    pub fn path_length(&self, outlet: OutletId) -> Result<Meters, PlcError> {
        let mut node = self.outlet_node(outlet)?;
        let mut total = Meters::ZERO;
        while let Some(parent) = self.nodes[node].parent {
            total += self.nodes[node].cable_to_parent;
            node = parent;
        }
        Ok(total)
    }

    /// Number of branch taps (junctions with more than one child) on the
    /// path from the central unit to `outlet`, excluding the root panel.
    ///
    /// # Errors
    ///
    /// Returns [`PlcError::UnknownOutlet`] for an invalid outlet id.
    pub fn branch_taps(&self, outlet: OutletId) -> Result<usize, PlcError> {
        let mut node = self.outlet_node(outlet)?;
        let mut taps = 0;
        while let Some(parent) = self.nodes[node].parent {
            if parent != 0 && self.nodes[parent].children.len() > 1 {
                taps += 1;
            }
            node = parent;
        }
        Ok(taps)
    }

    /// End-to-end attenuation between the central unit and `outlet`.
    ///
    /// # Errors
    ///
    /// Returns [`PlcError::UnknownOutlet`] for an invalid outlet id.
    pub fn attenuation(&self, outlet: OutletId) -> Result<Db, PlcError> {
        let length = self.path_length(outlet)?;
        let taps = self.branch_taps(outlet)?;
        Ok(Db::new(
            self.params.coupling_loss.value()
                + self.params.loss_per_meter * length.value()
                + self.params.tap_loss.value() * taps as f64,
        ))
    }

    fn check_node(&self, node: usize) -> Result<(), PlcError> {
        if node < self.nodes.len() {
            Ok(())
        } else {
            Err(PlcError::UnknownOutlet { outlet: node })
        }
    }

    fn outlet_node(&self, outlet: OutletId) -> Result<usize, PlcError> {
        self.outlets
            .get(outlet.0)
            .copied()
            .ok_or(PlcError::UnknownOutlet { outlet: outlet.0 })
    }
}

/// Configuration for [`random_building`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildingConfig {
    /// Number of circuits leaving the breaker panel.
    pub circuits: usize,
    /// Cable run from the panel to the first outlet of each circuit
    /// (sampled uniformly from this range, metres).
    pub feeder_run: (f64, f64),
    /// Spacing between consecutive outlets on a circuit (metres).
    pub outlet_spacing: (f64, f64),
    /// Wiring loss parameters.
    pub wiring: WiringParams,
}

impl Default for BuildingConfig {
    fn default() -> Self {
        Self {
            circuits: 4,
            feeder_run: (5.0, 25.0),
            outlet_spacing: (3.0, 12.0),
            wiring: WiringParams::default(),
        }
    }
}

/// Generates a random building wiring tree with `n_outlets` outlets spread
/// round-robin over the configured circuits — the synthetic stand-in for
/// the paper's university-building outlet measurements.
///
/// # Errors
///
/// Returns [`PlcError::InvalidConfig`] when `n_outlets` or
/// `config.circuits` is zero, or a sampling range is inverted.
pub fn random_building<R: Rng + ?Sized>(
    rng: &mut R,
    n_outlets: usize,
    config: &BuildingConfig,
) -> Result<PowerlineTopology, PlcError> {
    if n_outlets == 0 {
        return Err(PlcError::InvalidConfig {
            context: "need at least one outlet",
        });
    }
    if config.circuits == 0 {
        return Err(PlcError::InvalidConfig {
            context: "need at least one circuit",
        });
    }
    for (lo, hi) in [config.feeder_run, config.outlet_spacing] {
        if !(lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo <= hi) {
            return Err(PlcError::InvalidConfig {
                context: "sampling range must satisfy 0 <= lo <= hi",
            });
        }
    }

    let sample = |rng: &mut R, (lo, hi): (f64, f64)| {
        if lo == hi {
            lo
        } else {
            rng.gen_range(lo..hi)
        }
    };

    let mut topo = PowerlineTopology::new(config.wiring);
    // Each circuit is a chain of junctions; outlets alternate across
    // circuits so the outlet indices interleave circuits (as plugging
    // extenders around a building would).
    let mut circuit_tails: Vec<usize> = Vec::with_capacity(config.circuits);
    for _ in 0..config.circuits {
        let feeder = Meters::new(sample(rng, config.feeder_run));
        let head = topo.add_junction(topo.root(), feeder)?;
        circuit_tails.push(head);
    }
    for i in 0..n_outlets {
        let circuit = i % config.circuits;
        let spacing = Meters::new(sample(rng, config.outlet_spacing));
        // Extend the circuit by one junction, then hang the outlet off it
        // with a short stub (the wall-box pigtail).
        let next = topo.add_junction(circuit_tails[circuit], spacing)?;
        topo.add_outlet(next, Meters::new(0.5))?;
        circuit_tails[circuit] = next;
    }
    Ok(topo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolt_support::rng::ChaCha8Rng;
    use wolt_support::rng::SeedableRng;

    fn chain(lengths: &[f64]) -> (PowerlineTopology, Vec<OutletId>) {
        let mut topo = PowerlineTopology::new(WiringParams::default());
        let mut parent = topo.root();
        let mut outlets = Vec::new();
        for &l in lengths {
            parent = topo.add_junction(parent, Meters::new(l)).unwrap();
            outlets.push(topo.add_outlet(parent, Meters::new(0.0)).unwrap());
        }
        (topo, outlets)
    }

    #[test]
    fn path_length_accumulates() {
        let (topo, outlets) = chain(&[10.0, 5.0, 7.0]);
        assert_eq!(topo.path_length(outlets[0]).unwrap(), Meters::new(10.0));
        assert_eq!(topo.path_length(outlets[2]).unwrap(), Meters::new(22.0));
    }

    #[test]
    fn attenuation_grows_along_chain() {
        let (topo, outlets) = chain(&[10.0, 5.0, 7.0]);
        let a0 = topo.attenuation(outlets[0]).unwrap();
        let a2 = topo.attenuation(outlets[2]).unwrap();
        assert!(a2 > a0);
    }

    #[test]
    fn attenuation_formula() {
        // One junction 10 m out, outlet 0 m further: only cable loss +
        // coupling (the junction has 2 children, but taps on the *path*
        // count junctions between root and outlet with >1 child).
        let mut topo = PowerlineTopology::new(WiringParams::default());
        let j = topo.add_junction(topo.root(), Meters::new(10.0)).unwrap();
        let o = topo.add_outlet(j, Meters::new(0.0)).unwrap();
        let att = topo.attenuation(o).unwrap();
        assert!((att.value() - (15.0 + 0.6 * 10.0)).abs() < 1e-12);
    }

    #[test]
    fn branch_taps_counted() {
        // Root -> junction J (10 m). J has the outlet-of-interest chain AND
        // a second child, so J is a branch tap for anything below it.
        let mut topo = PowerlineTopology::new(WiringParams::default());
        let j = topo.add_junction(topo.root(), Meters::new(10.0)).unwrap();
        let _side = topo.add_outlet(j, Meters::new(2.0)).unwrap();
        let k = topo.add_junction(j, Meters::new(5.0)).unwrap();
        let deep = topo.add_outlet(k, Meters::new(1.0)).unwrap();
        assert_eq!(topo.branch_taps(deep).unwrap(), 1);
        let att = topo.attenuation(deep).unwrap();
        assert!((att.value() - (15.0 + 0.6 * 16.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn unknown_outlet_rejected() {
        let topo = PowerlineTopology::new(WiringParams::default());
        assert!(matches!(
            topo.attenuation(OutletId(0)),
            Err(PlcError::UnknownOutlet { .. })
        ));
        let mut topo2 = PowerlineTopology::new(WiringParams::default());
        assert!(matches!(
            topo2.add_junction(99, Meters::new(1.0)),
            Err(PlcError::UnknownOutlet { .. })
        ));
    }

    #[test]
    fn negative_cable_rejected() {
        let mut topo = PowerlineTopology::new(WiringParams::default());
        assert!(topo.add_junction(0, Meters::new(-1.0)).is_err());
        assert!(topo.add_junction(0, Meters::new(f64::NAN)).is_err());
    }

    #[test]
    fn random_building_has_requested_outlets() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let topo = random_building(&mut rng, 12, &BuildingConfig::default()).unwrap();
        assert_eq!(topo.outlet_count(), 12);
    }

    #[test]
    fn random_building_attenuations_are_diverse_and_plausible() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let topo = random_building(&mut rng, 20, &BuildingConfig::default()).unwrap();
        let atts: Vec<f64> = topo
            .outlet_ids()
            .map(|o| topo.attenuation(o).unwrap().value())
            .collect();
        let min = atts.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = atts.iter().cloned().fold(0.0, f64::max);
        // In-building PLC attenuations live in roughly 15-80 dB.
        assert!(min >= 15.0, "min attenuation {min}");
        assert!(max <= 90.0, "max attenuation {max}");
        assert!(max - min > 5.0, "no outlet diversity: {min}..{max}");
    }

    #[test]
    fn random_building_deterministic_per_seed() {
        let cfg = BuildingConfig::default();
        let a = random_building(&mut ChaCha8Rng::seed_from_u64(3), 8, &cfg).unwrap();
        let b = random_building(&mut ChaCha8Rng::seed_from_u64(3), 8, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn random_building_rejects_bad_config() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(random_building(&mut rng, 0, &BuildingConfig::default()).is_err());
        let cfg = BuildingConfig {
            circuits: 0,
            ..BuildingConfig::default()
        };
        assert!(random_building(&mut rng, 4, &cfg).is_err());
        let cfg = BuildingConfig {
            outlet_spacing: (10.0, 5.0),
            ..BuildingConfig::default()
        };
        assert!(random_building(&mut rng, 4, &cfg).is_err());
    }

    #[test]
    fn outlets_on_same_circuit_monotone_attenuation() {
        // Outlets are laid round-robin; indices i and i+circuits share a
        // circuit and the later one is strictly farther.
        let cfg = BuildingConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let topo = random_building(&mut rng, 12, &cfg).unwrap();
        for i in 0..(12 - cfg.circuits) {
            let near = topo.attenuation(OutletId(i)).unwrap();
            let far = topo.attenuation(OutletId(i + cfg.circuits)).unwrap();
            assert!(far > near, "outlet {i}: {near:?} !< {far:?}");
        }
    }
}
