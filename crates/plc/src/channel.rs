//! Attenuation → achievable PLC capacity model.
//!
//! The paper measures isolation throughputs of 60–160 Mbit/s across
//! different outlets with HomePlug-AV2-class extenders (Fig. 2b) and uses
//! those measured capacities (`c_j`) to calibrate its simulator. We map the
//! wiring attenuation produced by [`crate::topology`] to an achievable
//! capacity through a piecewise-linear table in the same spirit as an AV2
//! tone map: low attenuation saturates the modem's practical TCP ceiling,
//! high attenuation falls off towards the robust-mode floor, and beyond a
//! cutoff the link is unusable.

use wolt_support::rng::Rng;
use wolt_units::{Db, Mbps};

use crate::PlcError;

/// Piecewise-linear attenuation → capacity map with optional noise.
///
/// # Example
///
/// ```
/// use wolt_units::Db;
/// use wolt_plc::PlcChannelModel;
///
/// let model = PlcChannelModel::homeplug_av2();
/// let good = model.capacity(Db::new(25.0)).unwrap();
/// let poor = model.capacity(Db::new(60.0)).unwrap();
/// assert!(good > poor);
/// assert!(model.capacity(Db::new(95.0)).is_none()); // beyond cutoff
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PlcChannelModel {
    /// `(attenuation_db, capacity_mbps)` knots, sorted by attenuation.
    knots: Vec<(f64, f64)>,
    /// Links attenuated beyond this are unusable.
    cutoff: Db,
}

impl PlcChannelModel {
    /// HomePlug AV2 (1200-class) calibration.
    ///
    /// Chosen so the outlets of [`crate::topology::random_building`]
    /// (attenuations ≈ 20–70 dB) produce isolation capacities spanning the
    /// paper's measured 60–160 Mbit/s, with headroom on both sides for
    /// unusually good or bad outlets.
    pub fn homeplug_av2() -> Self {
        Self::from_knots(
            vec![
                (0.0, 200.0),
                (20.0, 170.0),
                (30.0, 140.0),
                (40.0, 110.0),
                (50.0, 80.0),
                (60.0, 55.0),
                (70.0, 30.0),
                (80.0, 12.0),
                (90.0, 4.0),
            ],
            Db::new(90.0),
        )
        .expect("built-in model is well-formed")
    }

    /// Builds a model from explicit knots.
    ///
    /// # Errors
    ///
    /// Returns [`PlcError::InvalidConfig`] if fewer than two knots are
    /// given, attenuations are not strictly increasing, any capacity is
    /// non-positive, or the cutoff exceeds the last knot's attenuation
    /// (the table never extrapolates).
    pub fn from_knots(knots: Vec<(f64, f64)>, cutoff: Db) -> Result<Self, PlcError> {
        if knots.len() < 2 {
            return Err(PlcError::InvalidConfig {
                context: "need at least two knots",
            });
        }
        for w in knots.windows(2) {
            // partial_cmp keeps NaN knots falling into the error branch.
            if w[0].0.partial_cmp(&w[1].0) != Some(std::cmp::Ordering::Less) {
                return Err(PlcError::InvalidConfig {
                    context: "knot attenuations must be strictly increasing",
                });
            }
            if w[1].1 > w[0].1 {
                return Err(PlcError::InvalidConfig {
                    context: "capacity must be non-increasing in attenuation",
                });
            }
        }
        if knots.iter().any(|&(a, c)| {
            !a.is_finite() || c.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
        }) {
            return Err(PlcError::InvalidConfig {
                context: "knots must be finite with positive capacity",
            });
        }
        let last = knots.last().expect("len >= 2").0;
        if !(cutoff.value().is_finite() && cutoff.value() <= last) {
            return Err(PlcError::InvalidConfig {
                context: "cutoff must be finite and within the knot range",
            });
        }
        Ok(Self { knots, cutoff })
    }

    /// Attenuation beyond which a link is unusable.
    pub fn cutoff(&self) -> Db {
        self.cutoff
    }

    /// Achievable capacity at `attenuation`, or `None` beyond the cutoff.
    ///
    /// Attenuations below the first knot clamp to the first knot's
    /// capacity (a modem cannot exceed its practical ceiling).
    pub fn capacity(&self, attenuation: Db) -> Option<Mbps> {
        let a = attenuation.value();
        if !a.is_finite() || a > self.cutoff.value() {
            return None;
        }
        if a <= self.knots[0].0 {
            return Some(Mbps::new(self.knots[0].1));
        }
        for w in self.knots.windows(2) {
            let (a0, c0) = w[0];
            let (a1, c1) = w[1];
            if a <= a1 {
                let t = (a - a0) / (a1 - a0);
                return Some(Mbps::new(c0 + t * (c1 - c0)));
            }
        }
        // a <= cutoff <= last knot, so the loop always returns.
        unreachable!("attenuation within knot range")
    }

    /// Capacity with multiplicative noise of relative σ `sigma` sampled
    /// from `rng` — PLC links fluctuate with appliance noise
    /// (cyclo-stationary interference), which the paper's measurements
    /// average over.
    ///
    /// The sample is clamped to ±3σ and to stay positive.
    pub fn capacity_noisy<R: Rng + ?Sized>(
        &self,
        attenuation: Db,
        sigma: f64,
        rng: &mut R,
    ) -> Option<Mbps> {
        let base = self.capacity(attenuation)?;
        if sigma == 0.0 {
            return Some(base);
        }
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let factor = (1.0 + sigma * z.clamp(-3.0, 3.0)).max(0.05);
        Some(base * factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolt_support::rng::ChaCha8Rng;
    use wolt_support::rng::SeedableRng;

    #[test]
    fn capacity_decreases_with_attenuation() {
        let m = PlcChannelModel::homeplug_av2();
        let mut prev = f64::INFINITY;
        for a in (0..=90).step_by(5) {
            let c = m.capacity(Db::new(a as f64)).unwrap().value();
            assert!(c <= prev, "capacity increased at {a} dB");
            prev = c;
        }
    }

    #[test]
    fn interpolates_between_knots() {
        let m = PlcChannelModel::homeplug_av2();
        // Midpoint of (30,140) and (40,110) is 125.
        let c = m.capacity(Db::new(35.0)).unwrap();
        assert!((c.value() - 125.0).abs() < 1e-9);
    }

    #[test]
    fn clamps_below_first_knot() {
        let m = PlcChannelModel::homeplug_av2();
        assert_eq!(m.capacity(Db::new(-10.0)).unwrap(), Mbps::new(200.0));
        assert_eq!(m.capacity(Db::new(0.0)).unwrap(), Mbps::new(200.0));
    }

    #[test]
    fn cutoff_enforced() {
        let m = PlcChannelModel::homeplug_av2();
        assert!(m.capacity(Db::new(90.0)).is_some());
        assert!(m.capacity(Db::new(90.1)).is_none());
        assert!(m.capacity(Db::new(f64::NAN)).is_none());
    }

    #[test]
    fn typical_building_range_matches_paper() {
        // The paper's Fig. 2b: isolation capacities 60–160 Mbit/s. Our
        // calibration puts attenuations of 25–58 dB in that band.
        let m = PlcChannelModel::homeplug_av2();
        assert!(m.capacity(Db::new(25.0)).unwrap().value() >= 150.0);
        let at58 = m.capacity(Db::new(58.0)).unwrap().value();
        assert!((55.0..70.0).contains(&at58), "capacity at 58 dB: {at58}");
    }

    #[test]
    fn from_knots_validation() {
        assert!(PlcChannelModel::from_knots(vec![(0.0, 10.0)], Db::new(0.0)).is_err());
        assert!(PlcChannelModel::from_knots(vec![(0.0, 10.0), (0.0, 5.0)], Db::new(0.0)).is_err());
        assert!(PlcChannelModel::from_knots(vec![(0.0, 10.0), (5.0, 20.0)], Db::new(5.0)).is_err());
        assert!(PlcChannelModel::from_knots(vec![(0.0, 10.0), (5.0, 0.0)], Db::new(5.0)).is_err());
        assert!(PlcChannelModel::from_knots(vec![(0.0, 10.0), (5.0, 5.0)], Db::new(10.0)).is_err());
        assert!(PlcChannelModel::from_knots(vec![(0.0, 10.0), (5.0, 5.0)], Db::new(5.0)).is_ok());
    }

    #[test]
    fn noisy_capacity_centred_on_base() {
        let m = PlcChannelModel::homeplug_av2();
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let base = m.capacity(Db::new(40.0)).unwrap().value();
        let n = 5000;
        let mean: f64 = (0..n)
            .map(|_| {
                m.capacity_noisy(Db::new(40.0), 0.05, &mut rng)
                    .unwrap()
                    .value()
            })
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - base).abs() / base < 0.01,
            "mean {mean} vs base {base}"
        );
    }

    #[test]
    fn noisy_capacity_zero_sigma_is_exact() {
        let m = PlcChannelModel::homeplug_av2();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(
            m.capacity_noisy(Db::new(40.0), 0.0, &mut rng),
            m.capacity(Db::new(40.0))
        );
    }

    #[test]
    fn noisy_capacity_stays_positive() {
        let m = PlcChannelModel::homeplug_av2();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..1000 {
            let c = m.capacity_noisy(Db::new(85.0), 0.5, &mut rng).unwrap();
            assert!(c.value() > 0.0);
        }
    }
}
