use std::error::Error;
use std::fmt;

/// Errors produced by the PLC substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlcError {
    /// A capacity was zero, negative, or non-finite where a usable link
    /// rate is required.
    UnusableCapacity {
        /// The offending capacity in Mbit/s.
        capacity_mbps: f64,
    },
    /// A demand was negative or non-finite.
    InvalidDemand {
        /// The offending demand in Mbit/s.
        demand_mbps: f64,
    },
    /// A referenced outlet does not exist in the topology.
    UnknownOutlet {
        /// The offending outlet index.
        outlet: usize,
    },
    /// A configuration parameter was outside its valid range.
    InvalidConfig {
        /// Human-readable description of the parameter and its constraint.
        context: &'static str,
    },
}

impl fmt::Display for PlcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlcError::UnusableCapacity { capacity_mbps } => {
                write!(f, "unusable plc capacity: {capacity_mbps} Mbit/s")
            }
            PlcError::InvalidDemand { demand_mbps } => {
                write!(f, "invalid demand: {demand_mbps} Mbit/s")
            }
            PlcError::UnknownOutlet { outlet } => write!(f, "unknown outlet {outlet}"),
            PlcError::InvalidConfig { context } => write!(f, "invalid config: {context}"),
        }
    }
}

impl Error for PlcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(PlcError::UnusableCapacity { capacity_mbps: 0.0 }
            .to_string()
            .contains("0"));
        assert_eq!(
            PlcError::UnknownOutlet { outlet: 3 }.to_string(),
            "unknown outlet 3"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlcError>();
    }
}
