//! Offline PLC capacity estimation.
//!
//! WOLT needs the isolation capacity `c_j` of every PLC link as an input.
//! The paper estimates it offline: "We connect a machine to the PLC
//! extender by an Ethernet cable and saturate the PLC link between that
//! extender and the CC. The maximum amount of traffic the PLC link can
//! deliver is then considered to be the capacity (rate in isolation) of the
//! link" (§V-A). This module emulates that iperf3 procedure — repeated
//! saturated measurements with noise, averaged — and provides the
//! calibrated outlet-capacity sampler the large-scale simulation uses.

use wolt_support::rng::Rng;
use wolt_units::Mbps;

use crate::channel::PlcChannelModel;
use crate::topology::{random_building, BuildingConfig};
use crate::PlcError;

/// Emulates the paper's offline iperf3 capacity-measurement procedure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityEstimator {
    /// Number of measurement rounds averaged.
    pub rounds: usize,
    /// Relative standard deviation of a single saturated measurement
    /// (appliance noise, TCP dynamics).
    pub noise_sigma: f64,
}

impl Default for CapacityEstimator {
    fn default() -> Self {
        Self {
            rounds: 5,
            noise_sigma: 0.03,
        }
    }
}

impl CapacityEstimator {
    /// Estimates a link's isolation capacity by averaging noisy saturated
    /// measurements of the true capacity.
    ///
    /// # Errors
    ///
    /// Returns [`PlcError::UnusableCapacity`] if `true_capacity` is
    /// unusable, or [`PlcError::InvalidConfig`] for zero rounds or a
    /// negative/non-finite noise σ.
    pub fn estimate<R: Rng + ?Sized>(
        &self,
        true_capacity: Mbps,
        rng: &mut R,
    ) -> Result<Mbps, PlcError> {
        if !true_capacity.is_usable() {
            return Err(PlcError::UnusableCapacity {
                capacity_mbps: true_capacity.value(),
            });
        }
        if self.rounds == 0 {
            return Err(PlcError::InvalidConfig {
                context: "need at least one measurement round",
            });
        }
        if !(self.noise_sigma.is_finite() && self.noise_sigma >= 0.0) {
            return Err(PlcError::InvalidConfig {
                context: "noise sigma must be finite and non-negative",
            });
        }
        let mut total = 0.0;
        for _ in 0..self.rounds {
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let sample = true_capacity.value() * (1.0 + self.noise_sigma * z.clamp(-3.0, 3.0));
            total += sample.max(0.0);
        }
        Ok(Mbps::new(total / self.rounds as f64))
    }
}

/// Samples `n` outlet isolation capacities from a freshly generated random
/// building — the calibrated stand-in for the paper's university-building
/// measurements (its Fig. 2b range of 60–160 Mbit/s).
///
/// Outlets whose attenuation exceeds the channel cutoff are re-rolled onto
/// the best outlet (an installer would not plug an extender into a dead
/// outlet), so exactly `n` usable capacities are returned.
///
/// # Errors
///
/// Propagates topology/channel construction errors.
pub fn sample_outlet_capacities<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    building: &BuildingConfig,
    channel: &PlcChannelModel,
) -> Result<Vec<Mbps>, PlcError> {
    let topo = random_building(rng, n, building)?;
    let mut capacities = Vec::with_capacity(n);
    let mut best: Option<Mbps> = None;
    for outlet in topo.outlet_ids() {
        let att = topo.attenuation(outlet)?;
        if let Some(c) = channel.capacity(att) {
            best = Some(best.map_or(c, |b: Mbps| b.max(c)));
            capacities.push(Some(c));
        } else {
            capacities.push(None);
        }
    }
    let fallback = best.ok_or(PlcError::InvalidConfig {
        context: "no usable outlet in generated building",
    })?;
    Ok(capacities
        .into_iter()
        .map(|c| c.unwrap_or(fallback))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolt_support::rng::ChaCha8Rng;
    use wolt_support::rng::SeedableRng;

    #[test]
    fn estimate_close_to_truth() {
        let est = CapacityEstimator::default();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let truth = Mbps::new(120.0);
        let got = est.estimate(truth, &mut rng).unwrap();
        assert!(
            (got.value() - truth.value()).abs() / truth.value() < 0.05,
            "estimate {got} vs truth {truth}"
        );
    }

    #[test]
    fn zero_noise_is_exact() {
        let est = CapacityEstimator {
            rounds: 3,
            noise_sigma: 0.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let got = est.estimate(Mbps::new(88.0), &mut rng).unwrap();
        assert!((got.value() - 88.0).abs() < 1e-9);
    }

    #[test]
    fn more_rounds_reduce_error() {
        let truth = Mbps::new(100.0);
        let err_for = |rounds: usize| {
            let est = CapacityEstimator {
                rounds,
                noise_sigma: 0.1,
            };
            let mut rng = ChaCha8Rng::seed_from_u64(42);
            let trials = 500;
            (0..trials)
                .map(|_| (est.estimate(truth, &mut rng).unwrap().value() - truth.value()).abs())
                .sum::<f64>()
                / trials as f64
        };
        assert!(err_for(20) < err_for(1));
    }

    #[test]
    fn estimate_validates_inputs() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let est = CapacityEstimator::default();
        assert!(est.estimate(Mbps::ZERO, &mut rng).is_err());
        let bad = CapacityEstimator {
            rounds: 0,
            ..CapacityEstimator::default()
        };
        assert!(bad.estimate(Mbps::new(10.0), &mut rng).is_err());
        let bad = CapacityEstimator {
            noise_sigma: -0.1,
            ..CapacityEstimator::default()
        };
        assert!(bad.estimate(Mbps::new(10.0), &mut rng).is_err());
    }

    #[test]
    fn sampled_capacities_cover_paper_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(2020);
        let caps = sample_outlet_capacities(
            &mut rng,
            40,
            &BuildingConfig::default(),
            &PlcChannelModel::homeplug_av2(),
        )
        .unwrap();
        assert_eq!(caps.len(), 40);
        let min = caps.iter().map(|c| c.value()).fold(f64::INFINITY, f64::min);
        let max = caps.iter().map(|c| c.value()).fold(0.0, f64::max);
        // The paper's measured isolation range is 60-160 Mbit/s; our
        // buildings should produce heterogeneity overlapping that band.
        assert!(min < 120.0, "min capacity {min} not heterogeneous");
        assert!(max > 100.0, "max capacity {max} too low");
        assert!(caps.iter().all(|c| c.is_usable()));
    }

    #[test]
    fn sampled_capacities_deterministic_per_seed() {
        let cfg = BuildingConfig::default();
        let model = PlcChannelModel::homeplug_av2();
        let a =
            sample_outlet_capacities(&mut ChaCha8Rng::seed_from_u64(9), 10, &cfg, &model).unwrap();
        let b =
            sample_outlet_capacities(&mut ChaCha8Rng::seed_from_u64(9), 10, &cfg, &model).unwrap();
        assert_eq!(a, b);
    }
}
