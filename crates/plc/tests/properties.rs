//! Property-based tests for the IEEE 1901 substrate.

use proptest::prelude::*;
use wolt_plc::channel::PlcChannelModel;
use wolt_plc::tdma::TdmaSchedule;
use wolt_plc::timeshare::{
    allocate_time_fair, allocate_weighted, equal_share_throughput, ExtenderDemand,
};
use wolt_units::{Db, Mbps};

fn demands(max_len: usize) -> impl Strategy<Value = Vec<ExtenderDemand>> {
    proptest::collection::vec(
        (20.0f64..200.0, 0.0f64..150.0).prop_map(|(c, d)| ExtenderDemand {
            capacity: Mbps::new(c),
            demand: Mbps::new(d),
        }),
        1..=max_len,
    )
}

proptest! {
    /// Allocation feasibility: shares in [0,1], sum ≤ 1, throughput
    /// bounded by both demand and granted capacity.
    #[test]
    fn time_fair_feasible(entries in demands(8)) {
        let alloc = allocate_time_fair(&entries).expect("valid demands");
        let total: f64 = alloc.shares.iter().sum();
        prop_assert!(total <= 1.0 + 1e-9);
        for (j, e) in entries.iter().enumerate() {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&alloc.shares[j]));
            prop_assert!(alloc.throughput[j] <= e.demand + Mbps::new(1e-9));
            prop_assert!(
                alloc.throughput[j].value() <= e.capacity.value() * alloc.shares[j] + 1e-9
            );
        }
    }

    /// Work conservation: if any active extender is airtime-limited, the
    /// whole medium is in use.
    #[test]
    fn time_fair_work_conserving(entries in demands(8)) {
        let alloc = allocate_time_fair(&entries).expect("valid demands");
        let any_limited = entries.iter().zip(&alloc.throughput).any(|(e, t)| {
            e.demand.value() > 0.0 && t.value() < e.demand.value() - 1e-9
        });
        if any_limited {
            let total: f64 = alloc.shares.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "medium idle at {total} while demand unmet");
        }
    }

    /// Satisfied extenders get exactly their demand.
    #[test]
    fn time_fair_exactness(entries in demands(8)) {
        let alloc = allocate_time_fair(&entries).expect("valid demands");
        for (e, &t) in entries.iter().zip(&alloc.throughput) {
            // Throughput is either the full demand or the airtime cap.
            let full = (t.value() - e.demand.value()).abs() < 1e-9;
            let capped = t.value() <= e.demand.value() + 1e-9;
            prop_assert!(full || capped);
        }
    }

    /// Raising an extender's demand never lowers *its own* throughput.
    /// (The network-wide aggregate CAN drop — demand on a low-capacity
    /// link steals airtime from high-capacity ones, which is exactly the
    /// misallocation WOLT exists to avoid.)
    #[test]
    fn more_demand_never_hurts_own_throughput(entries in demands(6), bump in 1.0f64..50.0) {
        let base = allocate_time_fair(&entries).expect("valid");
        for k in 0..entries.len() {
            let mut bumped = entries.clone();
            bumped[k].demand += Mbps::new(bump);
            let after = allocate_time_fair(&bumped).expect("valid");
            prop_assert!(after.throughput[k] >= base.throughput[k] - Mbps::new(1e-9),
                "bumping extender {k} reduced its own throughput: {} -> {}",
                base.throughput[k], after.throughput[k]);
        }
    }

    /// Demand misallocation exists: there are instances where raising a
    /// low-capacity extender's demand lowers the network aggregate — the
    /// phenomenon WOLT's capacity-aware association avoids.
    #[test]
    fn demand_can_hurt_aggregate_elsewhere(gap in 2.0f64..8.0) {
        let entries = [
            ExtenderDemand { capacity: Mbps::new(20.0), demand: Mbps::new(1.0) },
            ExtenderDemand::saturated(Mbps::new(20.0 * gap)),
        ];
        let base = allocate_time_fair(&entries).expect("valid").aggregate();
        let mut bumped = entries;
        bumped[0].demand = Mbps::new(20.0); // saturate the weak link
        let after = allocate_time_fair(&bumped).expect("valid").aggregate();
        prop_assert!(after < base,
            "saturating the weak link should hurt: {base} -> {after}");
    }

    /// Weighted allocation with equal weights equals the unweighted one.
    #[test]
    fn weighted_equals_unweighted_for_equal_weights(entries in demands(6)) {
        let weighted = allocate_weighted(&entries, &vec![1.0; entries.len()])
            .expect("valid");
        let plain = allocate_time_fair(&entries).expect("valid");
        for j in 0..entries.len() {
            prop_assert!((weighted.shares[j] - plain.shares[j]).abs() < 1e-9);
        }
    }

    /// Eq. 2 sanity: equal shares sum to the mean capacity.
    #[test]
    fn equal_share_sums_to_mean(caps in proptest::collection::vec(10.0f64..300.0, 1..10)) {
        let capacities: Vec<Mbps> = caps.iter().map(|&c| Mbps::new(c)).collect();
        let shares = equal_share_throughput(&capacities).expect("usable");
        let total: f64 = shares.iter().map(|s| s.value()).sum();
        let mean = caps.iter().sum::<f64>() / caps.len() as f64;
        prop_assert!((total - mean).abs() < 1e-9);
    }

    /// TDMA slot grants always sum exactly to the frame and track weights
    /// within one slot.
    #[test]
    fn tdma_grants_exact(weights in proptest::collection::vec(0.0f64..10.0, 1..8),
                         frame in 1u32..500) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let schedule = TdmaSchedule::build(&weights, frame).expect("valid");
        prop_assert_eq!(schedule.slots.iter().sum::<u32>(), frame);
        let total: f64 = weights.iter().sum();
        for (j, &w) in weights.iter().enumerate() {
            let ideal = w / total * f64::from(frame);
            prop_assert!((f64::from(schedule.slots[j]) - ideal).abs() <= 1.0 + 1e-9,
                "slot {j} drifted more than one slot from quota");
        }
    }

    /// The channel model is monotone and respects its cutoff.
    #[test]
    fn channel_monotone(a1 in 0.0f64..95.0, a2 in 0.0f64..95.0) {
        let model = PlcChannelModel::homeplug_av2();
        let (low, high) = if a1 <= a2 { (a1, a2) } else { (a2, a1) };
        match (model.capacity(Db::new(low)), model.capacity(Db::new(high))) {
            (Some(c_low), Some(c_high)) => prop_assert!(c_low >= c_high),
            (None, Some(_)) => prop_assert!(false, "capacity reappeared past cutoff"),
            _ => {}
        }
    }
}
