//! Property-based tests for the IEEE 1901 substrate, on the in-tree
//! `wolt_support::check` harness.

use wolt_plc::channel::PlcChannelModel;
use wolt_plc::tdma::TdmaSchedule;
use wolt_plc::timeshare::{
    allocate_time_fair, allocate_weighted, equal_share_throughput, ExtenderDemand,
};
use wolt_support::check::Runner;
use wolt_support::rng::{ChaCha8Rng, Rng};
use wolt_units::{Db, Mbps};

fn demands(rng: &mut ChaCha8Rng, max_len: usize) -> Vec<ExtenderDemand> {
    let n = rng.gen_range(1..=max_len);
    (0..n)
        .map(|_| ExtenderDemand {
            capacity: Mbps::new(rng.gen_range(20.0..200.0)),
            demand: Mbps::new(rng.gen_range(0.0..150.0)),
        })
        .collect()
}

/// Allocation feasibility: shares in [0,1], sum ≤ 1, throughput
/// bounded by both demand and granted capacity.
#[test]
fn time_fair_feasible() {
    Runner::new("time_fair_feasible").run(
        |rng| demands(rng, 8),
        |entries| {
            let alloc = allocate_time_fair(entries).expect("valid demands");
            let total: f64 = alloc.shares.iter().sum();
            if total > 1.0 + 1e-9 {
                return Err(format!("shares sum to {total} > 1"));
            }
            for (j, e) in entries.iter().enumerate() {
                if !(0.0..=1.0 + 1e-12).contains(&alloc.shares[j]) {
                    return Err(format!("share {j} out of range: {}", alloc.shares[j]));
                }
                if alloc.throughput[j] > e.demand + Mbps::new(1e-9) {
                    return Err(format!("throughput {j} exceeds demand"));
                }
                if alloc.throughput[j].value() > e.capacity.value() * alloc.shares[j] + 1e-9 {
                    return Err(format!("throughput {j} exceeds granted capacity"));
                }
            }
            Ok(())
        },
    );
}

/// Work conservation: if any active extender is airtime-limited, the
/// whole medium is in use.
#[test]
fn time_fair_work_conserving() {
    Runner::new("time_fair_work_conserving").run(
        |rng| demands(rng, 8),
        |entries| {
            let alloc = allocate_time_fair(entries).expect("valid demands");
            let any_limited = entries
                .iter()
                .zip(&alloc.throughput)
                .any(|(e, t)| e.demand.value() > 0.0 && t.value() < e.demand.value() - 1e-9);
            if any_limited {
                let total: f64 = alloc.shares.iter().sum();
                if (total - 1.0).abs() >= 1e-9 {
                    return Err(format!("medium idle at {total} while demand unmet"));
                }
            }
            Ok(())
        },
    );
}

/// Satisfied extenders get exactly their demand.
#[test]
fn time_fair_exactness() {
    Runner::new("time_fair_exactness").run(
        |rng| demands(rng, 8),
        |entries| {
            let alloc = allocate_time_fair(entries).expect("valid demands");
            for (e, &t) in entries.iter().zip(&alloc.throughput) {
                // Throughput is either the full demand or the airtime cap.
                let full = (t.value() - e.demand.value()).abs() < 1e-9;
                let capped = t.value() <= e.demand.value() + 1e-9;
                if !(full || capped) {
                    return Err(format!(
                        "throughput {} is neither full demand {} nor capped",
                        t.value(),
                        e.demand.value()
                    ));
                }
            }
            Ok(())
        },
    );
}

/// The `more_demand_never_hurts_own_throughput` invariant for one
/// instance, shared by the random property and the saved regression.
fn check_more_demand_never_hurts(entries: &[ExtenderDemand], bump: f64) -> Result<(), String> {
    let base = allocate_time_fair(entries).expect("valid");
    for k in 0..entries.len() {
        let mut bumped = entries.to_vec();
        bumped[k].demand += Mbps::new(bump);
        let after = allocate_time_fair(&bumped).expect("valid");
        if after.throughput[k] < base.throughput[k] - Mbps::new(1e-9) {
            return Err(format!(
                "bumping extender {k} reduced its own throughput: {} -> {}",
                base.throughput[k], after.throughput[k]
            ));
        }
    }
    Ok(())
}

/// Raising an extender's demand never lowers *its own* throughput.
/// (The network-wide aggregate CAN drop — demand on a low-capacity
/// link steals airtime from high-capacity ones, which is exactly the
/// misallocation WOLT exists to avoid.)
#[test]
fn more_demand_never_hurts_own_throughput() {
    Runner::new("more_demand_never_hurts_own_throughput").run(
        |rng| (demands(rng, 6), rng.gen_range(1.0..50.0)),
        |(entries, bump)| check_more_demand_never_hurts(entries, *bump),
    );
}

/// Saved proptest regression for `more_demand_never_hurts_own_throughput`:
/// one extender with zero demand next to one whose demand exceeds its
/// capacity, with the minimal bump.
#[test]
fn more_demand_never_hurts_regression_zero_demand_neighbor() {
    let entries = [
        ExtenderDemand {
            capacity: Mbps::new(20.0),
            demand: Mbps::new(0.0),
        },
        ExtenderDemand {
            capacity: Mbps::new(54.679591601248426),
            demand: Mbps::new(98.60990004114389),
        },
    ];
    check_more_demand_never_hurts(&entries, 1.0).expect("regression case stays green");
}

/// Demand misallocation exists: there are instances where raising a
/// low-capacity extender's demand lowers the network aggregate — the
/// phenomenon WOLT's capacity-aware association avoids.
#[test]
fn demand_can_hurt_aggregate_elsewhere() {
    Runner::new("demand_can_hurt_aggregate_elsewhere").run(
        |rng| rng.gen_range(2.0..8.0),
        |&gap| {
            let entries = [
                ExtenderDemand {
                    capacity: Mbps::new(20.0),
                    demand: Mbps::new(1.0),
                },
                ExtenderDemand::saturated(Mbps::new(20.0 * gap)),
            ];
            let base = allocate_time_fair(&entries).expect("valid").aggregate();
            let mut bumped = entries;
            bumped[0].demand = Mbps::new(20.0); // saturate the weak link
            let after = allocate_time_fair(&bumped).expect("valid").aggregate();
            if after < base {
                Ok(())
            } else {
                Err(format!(
                    "saturating the weak link should hurt: {base} -> {after}"
                ))
            }
        },
    );
}

/// Weighted allocation with equal weights equals the unweighted one.
#[test]
fn weighted_equals_unweighted_for_equal_weights() {
    Runner::new("weighted_equals_unweighted_for_equal_weights").run(
        |rng| demands(rng, 6),
        |entries| {
            let weighted = allocate_weighted(entries, &vec![1.0; entries.len()]).expect("valid");
            let plain = allocate_time_fair(entries).expect("valid");
            for j in 0..entries.len() {
                if (weighted.shares[j] - plain.shares[j]).abs() >= 1e-9 {
                    return Err(format!(
                        "share {j} differs: weighted {} vs plain {}",
                        weighted.shares[j], plain.shares[j]
                    ));
                }
            }
            Ok(())
        },
    );
}

/// Eq. 2 sanity: equal shares sum to the mean capacity.
#[test]
fn equal_share_sums_to_mean() {
    Runner::new("equal_share_sums_to_mean").run(
        |rng| {
            let n = rng.gen_range(1..10usize);
            (0..n)
                .map(|_| rng.gen_range(10.0..300.0))
                .collect::<Vec<f64>>()
        },
        |caps| {
            let capacities: Vec<Mbps> = caps.iter().map(|&c| Mbps::new(c)).collect();
            let shares = equal_share_throughput(&capacities).expect("usable");
            let total: f64 = shares.iter().map(|s| s.value()).sum();
            let mean = caps.iter().sum::<f64>() / caps.len() as f64;
            if (total - mean).abs() < 1e-9 {
                Ok(())
            } else {
                Err(format!("shares sum {total} != mean capacity {mean}"))
            }
        },
    );
}

/// TDMA slot grants always sum exactly to the frame and track weights
/// within one slot.
#[test]
fn tdma_grants_exact() {
    Runner::new("tdma_grants_exact").run(
        |rng| {
            // Reroll until the weights are not all zero (proptest used
            // prop_assume; rejection keeps determinism since the rng
            // stream is fixed).
            loop {
                let n = rng.gen_range(1..8usize);
                let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
                let frame = rng.gen_range(1..500u32);
                if weights.iter().sum::<f64>() > 0.0 {
                    return (weights, frame);
                }
            }
        },
        |(weights, frame)| {
            let schedule = TdmaSchedule::build(weights, *frame).expect("valid");
            if schedule.slots.iter().sum::<u32>() != *frame {
                return Err("slots do not sum to frame".into());
            }
            let total: f64 = weights.iter().sum();
            for (j, &w) in weights.iter().enumerate() {
                let ideal = w / total * f64::from(*frame);
                if (f64::from(schedule.slots[j]) - ideal).abs() > 1.0 + 1e-9 {
                    return Err(format!("slot {j} drifted more than one slot from quota"));
                }
            }
            Ok(())
        },
    );
}

/// The channel model is monotone and respects its cutoff.
#[test]
fn channel_monotone() {
    Runner::new("channel_monotone").run(
        |rng| (rng.gen_range(0.0..95.0), rng.gen_range(0.0..95.0)),
        |&(a1, a2)| {
            let model = PlcChannelModel::homeplug_av2();
            let (low, high) = if a1 <= a2 { (a1, a2) } else { (a2, a1) };
            match (model.capacity(Db::new(low)), model.capacity(Db::new(high))) {
                (Some(c_low), Some(c_high)) if c_low < c_high => {
                    return Err("capacity rose with more attenuation".into());
                }
                (None, Some(_)) => return Err("capacity reappeared past cutoff".into()),
                _ => {}
            }
            Ok(())
        },
    );
}
