//! Library backing the `wolt` command-line tool.
//!
//! The binary is a thin shell around these testable pieces:
//!
//! * [`args`] — a tiny dependency-free `--flag value` parser;
//! * [`spec`] — the JSON network-specification format (`capacities` +
//!   `rates`) and its conversion to a validated [`wolt_core::Network`];
//! * [`commands`] — the `generate`, `solve`, and `compare` verbs as pure
//!   functions from parsed inputs to serializable reports;
//! * [`service`] — the `serve` and `agent` verbs, wrapping
//!   [`wolt_daemon`]'s networked Central Controller and agent client;
//! * [`chaos`] — the `chaos` verb, a crash-recovery supervisor that
//!   kills `wolt serve` children at seeded crash points and proves the
//!   restarted daemon converges to a byte-identical session report.
//!
//! # Example
//!
//! ```
//! use wolt_cli::spec::NetworkSpec;
//! use wolt_cli::commands::{solve, PolicyChoice};
//!
//! # fn main() -> Result<(), wolt_cli::CliError> {
//! let spec = NetworkSpec {
//!     capacities: vec![60.0, 20.0],
//!     rates: vec![vec![15.0, 10.0], vec![40.0, 20.0]],
//! };
//! let report = solve(&spec, PolicyChoice::Wolt, 0)?;
//! assert!((report.aggregate_mbps - 40.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod chaos;
pub mod commands;
pub mod service;
pub mod spec;

mod error;

pub use error::CliError;
