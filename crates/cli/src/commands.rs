//! The CLI verbs as pure, testable functions.

use wolt_core::baselines::{Greedy, Optimal, Random, Rssi, SelfishGreedy};
use wolt_core::{evaluate, AssociationPolicy, Wolt};
use wolt_sim::scenario::ScenarioConfig;
use wolt_sim::Scenario;
use wolt_support::json::{FromJson, Json, JsonError, ToJson};

use crate::spec::NetworkSpec;
use crate::CliError;

/// Which association policy a `solve` should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyChoice {
    /// The WOLT two-phase algorithm.
    Wolt,
    /// Aggregate-maximizing online greedy.
    Greedy,
    /// Own-throughput-maximizing online greedy.
    SelfishGreedy,
    /// Strongest-signal default.
    Rssi,
    /// Brute-force optimum (small instances only).
    Optimal,
    /// Uniform random (seeded).
    Random,
}

impl PolicyChoice {
    /// Parses a policy name as given on the command line.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] listing the accepted names.
    pub fn parse(name: &str) -> Result<Self, CliError> {
        match name.to_ascii_lowercase().as_str() {
            "wolt" => Ok(Self::Wolt),
            "greedy" => Ok(Self::Greedy),
            "selfish" | "selfish-greedy" => Ok(Self::SelfishGreedy),
            "rssi" => Ok(Self::Rssi),
            "optimal" => Ok(Self::Optimal),
            "random" => Ok(Self::Random),
            other => Err(CliError::Usage {
                message: format!(
                    "unknown policy {other:?} (try wolt | greedy | selfish | rssi | optimal | random)"
                ),
            }),
        }
    }

    /// All parseable choices (for `compare`).
    pub fn comparable() -> [PolicyChoice; 4] {
        [Self::Wolt, Self::Greedy, Self::SelfishGreedy, Self::Rssi]
    }

    fn instantiate(self, seed: u64, threads: Option<usize>) -> Box<dyn AssociationPolicy> {
        match self {
            Self::Wolt => Box::new(Wolt::new()),
            Self::Greedy => Box::new(Greedy::new()),
            Self::SelfishGreedy => Box::new(SelfishGreedy::new()),
            Self::Rssi => Box::new(Rssi),
            // Optimal is the only policy that fans out internally; the
            // others are sequential and ignore the knob. Reports are
            // byte-identical at every thread count either way.
            Self::Optimal => match threads {
                Some(t) => Box::new(Optimal::with_threads(t)),
                None => Box::new(Optimal::new()),
            },
            Self::Random => Box::new(Random::new(seed)),
        }
    }
}

/// Result of a `solve`.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// Policy that produced the association.
    pub policy: String,
    /// Per-user extender assignment.
    pub association: Vec<usize>,
    /// Per-user throughput (Mbit/s).
    pub per_user_mbps: Vec<f64>,
    /// Aggregate network throughput (Mbit/s).
    pub aggregate_mbps: f64,
    /// Jain's fairness index.
    pub jain: Option<f64>,
}

impl ToJson for SolveReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("policy", self.policy.to_json()),
            ("association", self.association.to_json()),
            ("per_user_mbps", self.per_user_mbps.to_json()),
            ("aggregate_mbps", self.aggregate_mbps.to_json()),
            ("jain", self.jain.to_json()),
        ])
    }
}

impl FromJson for SolveReport {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            policy: String::from_json(value.field("policy")?)?,
            association: Vec::<usize>::from_json(value.field("association")?)?,
            per_user_mbps: Vec::<f64>::from_json(value.field("per_user_mbps")?)?,
            aggregate_mbps: f64::from_json(value.field("aggregate_mbps")?)?,
            jain: Option::<f64>::from_json(value.field("jain")?)?,
        })
    }
}

/// Runs one policy on a network spec.
///
/// # Errors
///
/// Propagates spec validation and policy failures.
pub fn solve(spec: &NetworkSpec, policy: PolicyChoice, seed: u64) -> Result<SolveReport, CliError> {
    solve_with_threads(spec, policy, seed, None)
}

/// Like [`solve`], with an explicit worker-thread count for policies that
/// fan out internally (`--threads`). The report is byte-identical at any
/// thread count; `None` defers to `WOLT_THREADS` / machine parallelism.
///
/// # Errors
///
/// Propagates spec validation and policy failures.
pub fn solve_with_threads(
    spec: &NetworkSpec,
    policy: PolicyChoice,
    seed: u64,
    threads: Option<usize>,
) -> Result<SolveReport, CliError> {
    let network = spec.to_network()?;
    let instance = policy.instantiate(seed, threads);
    let assoc = instance.associate(&network)?;
    let eval = evaluate(&network, &assoc)?;
    // Policies are contracted to return complete associations, but that
    // contract is theirs to break on a user-supplied spec — surface a
    // typed error, never a panic, if one does.
    let association = (0..network.users())
        .map(|i| {
            assoc.target(i).ok_or_else(|| CliError::Library {
                message: format!("policy {} left user {i} unassociated", instance.name()),
            })
        })
        .collect::<Result<Vec<usize>, CliError>>()?;
    Ok(SolveReport {
        policy: instance.name().to_string(),
        association,
        per_user_mbps: eval.per_user.iter().map(|t| t.value()).collect(),
        aggregate_mbps: eval.aggregate.value(),
        jain: wolt_core::fairness::jain_index(&eval.per_user),
    })
}

/// Like [`solve`], but returns the human-readable per-extender breakdown
/// (`wolt solve --explain true`).
///
/// # Errors
///
/// Propagates spec validation and policy failures.
pub fn solve_explained(
    spec: &NetworkSpec,
    policy: PolicyChoice,
    seed: u64,
) -> Result<String, CliError> {
    solve_explained_with_threads(spec, policy, seed, None)
}

/// Like [`solve_explained`], with an explicit worker-thread count
/// (`--threads`); see [`solve_with_threads`].
///
/// # Errors
///
/// Propagates spec validation and policy failures.
pub fn solve_explained_with_threads(
    spec: &NetworkSpec,
    policy: PolicyChoice,
    seed: u64,
    threads: Option<usize>,
) -> Result<String, CliError> {
    let network = spec.to_network()?;
    let instance = policy.instantiate(seed, threads);
    let assoc = instance.associate(&network)?;
    let eval = evaluate(&network, &assoc)?;
    let mut text = format!("policy: {}\n", instance.name());
    text.push_str(&wolt_core::report::explain(&network, &assoc, &eval)?);
    Ok(text)
}

/// Runs every comparable policy on a spec.
///
/// # Errors
///
/// Propagates the first failing solve.
pub fn compare(spec: &NetworkSpec, seed: u64) -> Result<Vec<SolveReport>, CliError> {
    compare_with_threads(spec, seed, None)
}

/// Like [`compare`], with an explicit worker-thread count (`--threads`);
/// see [`solve_with_threads`].
///
/// # Errors
///
/// Propagates the first failing solve.
pub fn compare_with_threads(
    spec: &NetworkSpec,
    seed: u64,
    threads: Option<usize>,
) -> Result<Vec<SolveReport>, CliError> {
    PolicyChoice::comparable()
        .into_iter()
        .map(|p| solve_with_threads(spec, p, seed, threads))
        .collect()
}

/// Which scenario preset `generate` samples from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PresetChoice {
    /// The paper's 100 m × 100 m / 15-extender enterprise simulation.
    Enterprise,
    /// The paper's 2408 m² / 3-extender testbed lab.
    Lab,
}

impl PresetChoice {
    /// Parses a preset name.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] listing the accepted names.
    pub fn parse(name: &str) -> Result<Self, CliError> {
        match name.to_ascii_lowercase().as_str() {
            "enterprise" => Ok(Self::Enterprise),
            "lab" => Ok(Self::Lab),
            other => Err(CliError::Usage {
                message: format!("unknown preset {other:?} (try enterprise | lab)"),
            }),
        }
    }

    /// The canonical spelling [`Self::parse`] accepts for this preset.
    pub fn name(self) -> &'static str {
        match self {
            Self::Enterprise => "enterprise",
            Self::Lab => "lab",
        }
    }
}

/// Samples a network spec from a scenario preset.
///
/// # Errors
///
/// Propagates scenario-generation failures.
pub fn generate(preset: PresetChoice, users: usize, seed: u64) -> Result<NetworkSpec, CliError> {
    use wolt_support::rng::SeedableRng;
    let config = match preset {
        PresetChoice::Enterprise => ScenarioConfig::enterprise(users),
        PresetChoice::Lab => ScenarioConfig::lab(users),
    };
    let mut rng = wolt_support::rng::ChaCha8Rng::seed_from_u64(seed);
    let scenario = Scenario::generate(&config, &mut rng)?;
    Ok(NetworkSpec::from_scenario(&scenario))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_spec() -> NetworkSpec {
        NetworkSpec {
            capacities: vec![60.0, 20.0],
            rates: vec![vec![15.0, 10.0], vec![40.0, 20.0]],
        }
    }

    #[test]
    fn policy_names_parse() {
        assert_eq!(PolicyChoice::parse("WOLT").unwrap(), PolicyChoice::Wolt);
        assert_eq!(PolicyChoice::parse("greedy").unwrap(), PolicyChoice::Greedy);
        assert_eq!(
            PolicyChoice::parse("selfish-greedy").unwrap(),
            PolicyChoice::SelfishGreedy
        );
        assert!(PolicyChoice::parse("magic").is_err());
    }

    #[test]
    fn solve_reproduces_fig3() {
        let report = solve(&fig3_spec(), PolicyChoice::Wolt, 0).unwrap();
        assert!((report.aggregate_mbps - 40.0).abs() < 1e-9);
        assert_eq!(report.association, vec![1, 0]);
        let rssi = solve(&fig3_spec(), PolicyChoice::Rssi, 0).unwrap();
        assert!((rssi.aggregate_mbps - 240.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_specs_yield_typed_errors_not_panics() {
        // Zero extenders and unreachable users are valid *user input*
        // (a hand-written spec file); every policy must surface a typed
        // CliError — the old `.expect("policies return complete
        // associations")` path must never be reachable.
        let no_extenders = NetworkSpec {
            capacities: vec![],
            rates: vec![vec![], vec![]],
        };
        let unreachable_user = NetworkSpec {
            capacities: vec![60.0, 20.0],
            rates: vec![vec![15.0, 10.0], vec![0.0, -1.0]],
        };
        for spec in [&no_extenders, &unreachable_user] {
            for policy in [
                PolicyChoice::Wolt,
                PolicyChoice::Greedy,
                PolicyChoice::SelfishGreedy,
                PolicyChoice::Rssi,
                PolicyChoice::Optimal,
                PolicyChoice::Random,
            ] {
                let err = solve(spec, policy, 0).expect_err("degenerate spec must error");
                assert!(
                    matches!(err, CliError::Library { .. } | CliError::BadInput { .. }),
                    "unexpected error shape: {err:?}"
                );
            }
        }
    }

    #[test]
    fn compare_covers_all_policies() {
        let reports = compare(&fig3_spec(), 0).unwrap();
        assert_eq!(reports.len(), 4);
        let names: Vec<&str> = reports.iter().map(|r| r.policy.as_str()).collect();
        assert!(names.contains(&"WOLT"));
        assert!(names.contains(&"RSSI"));
        // WOLT first in quality on the case study.
        let wolt = reports.iter().find(|r| r.policy == "WOLT").unwrap();
        for r in &reports {
            assert!(wolt.aggregate_mbps >= r.aggregate_mbps - 1e-9);
        }
    }

    #[test]
    fn generate_produces_valid_specs() {
        for preset in [PresetChoice::Enterprise, PresetChoice::Lab] {
            let spec = generate(preset, 9, 3).unwrap();
            assert_eq!(spec.rates.len(), 9);
            assert!(spec.to_network().is_ok());
        }
    }

    #[test]
    fn generate_then_solve_pipeline() {
        let spec = generate(PresetChoice::Lab, 7, 11).unwrap();
        let wolt = solve(&spec, PolicyChoice::Wolt, 0).unwrap();
        let rssi = solve(&spec, PolicyChoice::Rssi, 0).unwrap();
        assert!(wolt.aggregate_mbps >= rssi.aggregate_mbps - 1e-9);
        assert_eq!(wolt.per_user_mbps.len(), 7);
    }

    #[test]
    fn solve_explained_names_bottlenecks() {
        let text = solve_explained(&fig3_spec(), PolicyChoice::Wolt, 0).unwrap();
        assert!(text.contains("policy: WOLT"));
        assert!(text.contains("PLC-bound"));
        assert!(text.contains("balanced"));
    }

    #[test]
    fn preset_parse() {
        assert_eq!(
            PresetChoice::parse("Enterprise").unwrap(),
            PresetChoice::Enterprise
        );
        assert!(PresetChoice::parse("home").is_err());
    }

    #[test]
    fn report_serializes() {
        let report = solve(&fig3_spec(), PolicyChoice::Optimal, 0).unwrap();
        let json = report.to_json().to_compact();
        let back = SolveReport::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(report, back);
    }
}
