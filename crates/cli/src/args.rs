//! A tiny `--flag value` argument parser (no external dependencies).

use std::collections::BTreeMap;

use crate::CliError;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand (first positional argument).
    pub command: String,
    options: BTreeMap<String, String>,
}

impl ParsedArgs {
    /// Parses `args` (excluding the program name) into a subcommand and
    /// `--key value` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when no subcommand is present, a flag
    /// is missing its value, a positional argument appears after the
    /// subcommand, or a flag repeats.
    pub fn parse<I, S>(args: I) -> Result<Self, CliError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut iter = args.into_iter().map(Into::into);
        let command = iter.next().ok_or_else(|| CliError::Usage {
            message: "expected a subcommand (generate | solve | compare)".into(),
        })?;
        if command.starts_with('-') {
            return Err(CliError::Usage {
                message: format!("expected a subcommand, found flag {command}"),
            });
        }
        let mut options = BTreeMap::new();
        while let Some(token) = iter.next() {
            let key = token.strip_prefix("--").ok_or_else(|| CliError::Usage {
                message: format!("unexpected positional argument {token}"),
            })?;
            let value = iter.next().ok_or_else(|| CliError::Usage {
                message: format!("flag --{key} is missing its value"),
            })?;
            if options.insert(key.to_string(), value).is_some() {
                return Err(CliError::Usage {
                    message: format!("flag --{key} given twice"),
                });
            }
        }
        Ok(Self { command, options })
    }

    /// The value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// The value of `--key`, or a usage error naming it.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when the flag is absent.
    pub fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key).ok_or_else(|| CliError::Usage {
            message: format!("missing required flag --{key}"),
        })
    }

    /// Parses `--key` as a value of type `T`, or returns `default` when
    /// absent.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when the value fails to parse.
    pub fn get_parsed_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| CliError::Usage {
                message: format!("could not parse --{key} value {raw:?}"),
            }),
        }
    }

    /// Parses `--key` as a value of type `T`, or `None` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when the value fails to parse.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, CliError> {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => raw.parse().map(Some).map_err(|_| CliError::Usage {
                message: format!("could not parse --{key} value {raw:?}"),
            }),
        }
    }

    /// Names of all provided flags.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.options.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_and_flags() {
        let args = ParsedArgs::parse(["solve", "--input", "net.json", "--policy", "wolt"]).unwrap();
        assert_eq!(args.command, "solve");
        assert_eq!(args.get("input"), Some("net.json"));
        assert_eq!(args.get("policy"), Some("wolt"));
        assert_eq!(args.get("missing"), None);
    }

    #[test]
    fn rejects_empty_and_flag_first() {
        assert!(ParsedArgs::parse(Vec::<String>::new()).is_err());
        assert!(ParsedArgs::parse(["--input", "x"]).is_err());
    }

    #[test]
    fn rejects_missing_value_and_positional() {
        assert!(ParsedArgs::parse(["solve", "--input"]).is_err());
        assert!(ParsedArgs::parse(["solve", "stray"]).is_err());
    }

    #[test]
    fn rejects_duplicate_flags() {
        assert!(ParsedArgs::parse(["solve", "--x", "1", "--x", "2"]).is_err());
    }

    #[test]
    fn require_and_parsed_or() {
        let args = ParsedArgs::parse(["generate", "--users", "12"]).unwrap();
        assert_eq!(args.require("users").unwrap(), "12");
        assert!(args.require("seed").is_err());
        assert_eq!(args.get_parsed_or("users", 0usize).unwrap(), 12);
        assert_eq!(args.get_parsed_or("seed", 7u64).unwrap(), 7);
        let bad = ParsedArgs::parse(["generate", "--users", "many"]).unwrap();
        assert!(bad.get_parsed_or("users", 0usize).is_err());
    }

    #[test]
    fn keys_lists_flags() {
        let args = ParsedArgs::parse(["solve", "--b", "2", "--a", "1"]).unwrap();
        let keys: Vec<&str> = args.keys().collect();
        assert_eq!(keys, vec!["a", "b"]);
    }
}
