//! The `chaos` verb: a deterministic crash-recovery harness for the
//! daemon.
//!
//! For every crash point in [`wolt_daemon::crash_catalogue`], the
//! supervisor spawns a real `wolt serve` child with a seeded
//! [`CrashPlan`] armed through [`CRASH_ENV`], lets the plan abort the
//! daemon at the scheduled hit, then restarts it *unarmed* against the
//! same snapshot directory until the session completes. In-process
//! agents ride along and reconnect across the kill. The proof obligation
//! is byte-equality: every crashed-then-recovered run must end with a
//! [`wolt_testbed::SessionReport::canonical`] string identical to an
//! uncrashed baseline run of the same `(preset, users, seed, policy)`.
//!
//! Only the *first* incarnation of each run is armed, so a restart can
//! never crash-loop on the same point; `--max-restarts` bounds the
//! supervisor regardless.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use wolt_daemon::{crash_catalogue, run_agent_with, AgentRetry};
use wolt_sim::Scenario;
use wolt_support::crash::{CrashPlan, CRASH_ENV};
use wolt_support::json::{Json, ToJson};
use wolt_testbed::ControllerPolicy;

use crate::commands::PresetChoice;
use crate::service::scenario_for;
use crate::CliError;

/// How long the supervisor waits for a child daemon to publish its
/// bound address before declaring the spawn dead.
const ADDR_WAIT: Duration = Duration::from_secs(10);

/// Everything `wolt chaos` needs, parsed off the command line.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Scenario preset shared between daemon and agents.
    pub preset: PresetChoice,
    /// Number of users (= agents the supervisor runs in-process).
    pub users: usize,
    /// Scenario seed.
    pub seed: u64,
    /// Online controller the daemon runs.
    pub policy: ControllerPolicy,
    /// Seed for the capacity-estimation noise.
    pub noise_seed: u64,
    /// Seed for the crash schedule (which hit of each point fires) and
    /// the agents' reconnect jitter.
    pub chaos_seed: u64,
    /// Run only this crash point instead of the whole catalogue.
    pub point: Option<String>,
    /// Most daemon restarts tolerated per crash point before the run is
    /// declared unrecoverable.
    pub max_restarts: u32,
    /// Directory for snapshot stores, address files, and child reports.
    /// Left in place afterwards for post-mortems.
    pub workdir: PathBuf,
}

/// One crash point's verdict in the sweep report.
struct PointResult {
    point: String,
    scheduled_hit: u64,
    crashes: u32,
    rollbacks: u64,
    recovery_ms: u128,
    matches: bool,
}

/// Runs the chaos sweep and returns the report as pretty JSON.
///
/// # Errors
///
/// [`CliError::Library`] when a run exhausts `--max-restarts`, an armed
/// point never fires, or a recovered run's canonical report diverges
/// from the baseline; [`CliError::Io`] / [`CliError::Net`] for spawn and
/// filesystem failures.
pub fn chaos(opts: &ChaosOptions) -> Result<String, CliError> {
    let exe = std::env::current_exe()?;
    let scenario = Arc::new(scenario_for(opts.preset, opts.users, opts.seed)?);
    let catalogue = crash_catalogue();
    let sweep: Vec<(&str, u64)> = match &opts.point {
        Some(name) => {
            let entry =
                catalogue
                    .iter()
                    .find(|(n, _)| n == name)
                    .ok_or_else(|| CliError::Usage {
                        message: format!(
                            "unknown crash point {name:?} (catalogue: {})",
                            catalogue
                                .iter()
                                .map(|(n, _)| *n)
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    })?;
            vec![*entry]
        }
        None => catalogue,
    };

    std::fs::create_dir_all(&opts.workdir)?;
    eprintln!(
        "chaos: sweeping {} crash point(s), workdir {}",
        sweep.len(),
        opts.workdir.display()
    );

    let baseline = run_to_completion(&exe, opts, &scenario, "baseline", None)?;
    if baseline.crashes != 0 {
        return Err(CliError::Library {
            message: format!(
                "baseline run crashed {} time(s) with no plan armed",
                baseline.crashes
            ),
        });
    }

    let mut results: Vec<PointResult> = Vec::new();
    for &(name, max_hits) in &sweep {
        let plan = CrashPlan::seeded(opts.chaos_seed, &[(name, max_hits)]);
        let scheduled_hit = plan.trigger(name).unwrap_or(0);
        let label = name.replace('.', "_");
        let run = run_to_completion(&exe, opts, &scenario, &label, Some(plan.to_env()))?;
        if run.crashes == 0 {
            return Err(CliError::Library {
                message: format!(
                    "crash point {name:?} (hit {scheduled_hit}) never fired — \
                     the session completed uncrashed, so nothing was tested"
                ),
            });
        }
        let matches = run.canonical == baseline.canonical;
        eprintln!(
            "chaos: {name} hit={scheduled_hit} crashes={} rollbacks={} \
             recovery={}ms canonical_match={matches}",
            run.crashes, run.rollbacks, run.recovery_ms
        );
        results.push(PointResult {
            point: name.to_string(),
            scheduled_hit,
            crashes: run.crashes,
            rollbacks: run.rollbacks,
            recovery_ms: run.recovery_ms,
            matches,
        });
    }

    let all_match = results.iter().all(|r| r.matches);
    let report = Json::obj(vec![
        ("chaos_seed", opts.chaos_seed.to_json()),
        ("baseline_canonical", baseline.canonical.to_json()),
        (
            "points",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("point", r.point.to_json()),
                            ("scheduled_hit", r.scheduled_hit.to_json()),
                            ("crashes", r.crashes.to_json()),
                            ("rollbacks", r.rollbacks.to_json()),
                            ("recovery_ms", (r.recovery_ms as u64).to_json()),
                            ("canonical_match", r.matches.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("all_match", all_match.to_json()),
    ]);
    if !all_match {
        let diverged: Vec<&str> = results
            .iter()
            .filter(|r| !r.matches)
            .map(|r| r.point.as_str())
            .collect();
        return Err(CliError::Library {
            message: format!(
                "canonical report diverged after recovery at: {} \
                 (workdir {} kept for post-mortem)",
                diverged.join(", "),
                opts.workdir.display()
            ),
        });
    }
    Ok(report.to_pretty())
}

/// What one crash-point run (possibly spanning several daemon
/// incarnations) ended with.
struct RunOutcome {
    canonical: String,
    crashes: u32,
    rollbacks: u64,
    recovery_ms: u128,
}

/// Drives one session to clean completion: spawn the daemon (armed on
/// the first incarnation only), run the agents in-process, and respawn
/// the daemon against the same snapshot store every time the plan kills
/// it.
fn run_to_completion(
    exe: &Path,
    opts: &ChaosOptions,
    scenario: &Arc<Scenario>,
    label: &str,
    armed: Option<String>,
) -> Result<RunOutcome, CliError> {
    let run_dir = opts.workdir.join(label);
    let store_dir = run_dir.join("store");
    std::fs::create_dir_all(&store_dir)?;
    let started = Instant::now();
    for incarnation in 1..=u64::from(opts.max_restarts) + 1 {
        // Every earlier incarnation died at its crash point.
        let crashes = (incarnation - 1) as u32;
        let addr_file = run_dir.join(format!("addr.{incarnation}"));
        let out_file = run_dir.join(format!("report.{incarnation}.json"));
        let metrics_file = run_dir.join(format!("metrics.{incarnation}.json"));
        let arm = if incarnation == 1 {
            armed.as_deref()
        } else {
            None
        };
        let mut child = spawn_serve(
            exe,
            opts,
            &store_dir,
            &addr_file,
            &out_file,
            &metrics_file,
            arm,
        )?;
        let addr = wait_for_addr(&addr_file, &mut child)?;

        // Agents run in *this* process (no plan armed here), one thread
        // per user. A short, seeded retry budget makes a dead daemon
        // cheap to detect: threads of a killed incarnation drain with
        // GaveUp and fresh agents greet the replacement.
        let retry = AgentRetry {
            attempts: 5,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(160),
            seed: opts.chaos_seed,
        };
        let agents: Vec<_> = (0..opts.users)
            .map(|client| {
                let addr = addr.clone();
                let scenario = Arc::clone(scenario);
                let retry = retry.clone();
                std::thread::spawn(move || {
                    run_agent_with(addr.as_str(), &scenario, client, "chaos-agent", &retry)
                })
            })
            .collect();
        let status = child.wait()?;
        for agent in agents {
            // A killed daemon leaves its agents with GaveUp; that is the
            // expected shape of a crash, not a harness failure.
            let _ = agent.join();
        }

        if status.success() {
            let report = Json::parse(&std::fs::read_to_string(&out_file)?).map_err(|e| {
                CliError::Library {
                    message: format!("child report {}: {e}", out_file.display()),
                }
            })?;
            let completed = report
                .get("completed")
                .and_then(Json::as_bool)
                .unwrap_or(false);
            let canonical = report
                .get("canonical")
                .and_then(Json::as_str)
                .ok_or_else(|| CliError::Library {
                    message: format!("child report {} has no canonical", out_file.display()),
                })?
                .to_string();
            if !completed {
                return Err(CliError::Library {
                    message: format!("run {label:?} exited cleanly without completing"),
                });
            }
            let rollbacks = read_counter(&metrics_file, "daemon.snapshot_rollbacks");
            return Ok(RunOutcome {
                canonical,
                crashes,
                rollbacks,
                recovery_ms: started.elapsed().as_millis(),
            });
        }
        eprintln!(
            "chaos: {label} incarnation {incarnation} died ({status}); \
             restarting against {}",
            store_dir.display()
        );
    }
    Err(CliError::Library {
        message: format!(
            "run {label:?} did not recover within {} restart(s)",
            opts.max_restarts
        ),
    })
}

/// Spawns one `wolt serve` incarnation, armed iff `arm` is a plan.
fn spawn_serve(
    exe: &Path,
    opts: &ChaosOptions,
    store_dir: &Path,
    addr_file: &Path,
    out_file: &Path,
    metrics_file: &Path,
    arm: Option<&str>,
) -> Result<Child, CliError> {
    let mut cmd = Command::new(exe);
    cmd.arg("serve")
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--preset")
        .arg(opts.preset.name())
        .arg("--users")
        .arg(opts.users.to_string())
        .arg("--seed")
        .arg(opts.seed.to_string())
        .arg("--policy")
        .arg(policy_name(opts.policy))
        .arg("--noise-seed")
        .arg(opts.noise_seed.to_string())
        .arg("--snapshot")
        .arg(store_dir)
        .arg("--addr-file")
        .arg(addr_file)
        .arg("--metrics-out")
        .arg(metrics_file)
        .arg("--output")
        .arg(out_file)
        .stdin(Stdio::null());
    // Only the first incarnation carries the plan: restarts must be
    // unarmed or the same point would kill every recovery attempt.
    match arm {
        Some(plan) => cmd.env(CRASH_ENV, plan),
        None => cmd.env_remove(CRASH_ENV),
    };
    Ok(cmd.spawn()?)
}

/// Polls the child's `--addr-file` until the bound address appears.
fn wait_for_addr(addr_file: &Path, child: &mut Child) -> Result<String, CliError> {
    let deadline = Instant::now() + ADDR_WAIT;
    loop {
        if let Ok(text) = std::fs::read_to_string(addr_file) {
            let addr = text.trim();
            if !addr.is_empty() {
                return Ok(addr.to_string());
            }
        }
        if let Some(status) = child.try_wait()? {
            return Err(CliError::Net {
                message: format!("daemon child exited before binding ({status})"),
            });
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            return Err(CliError::Net {
                message: format!(
                    "daemon child never published an address to {}",
                    addr_file.display()
                ),
            });
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Reads one counter out of a `--metrics-out` dump; 0 when the file or
/// counter is absent (metrics are best-effort evidence, not the proof).
fn read_counter(metrics_file: &Path, name: &str) -> u64 {
    let Ok(text) = std::fs::read_to_string(metrics_file) else {
        return 0;
    };
    let Ok(json) = Json::parse(&text) else {
        return 0;
    };
    json.get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_i64)
        .and_then(|v| u64::try_from(v).ok())
        .unwrap_or(0)
}

/// The `--policy` spelling `wolt serve` accepts for each controller.
fn policy_name(policy: ControllerPolicy) -> &'static str {
    match policy {
        ControllerPolicy::Wolt => "wolt",
        ControllerPolicy::Greedy => "greedy",
        ControllerPolicy::Rssi => "rssi",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_point_is_a_usage_error() {
        let opts = ChaosOptions {
            preset: PresetChoice::Lab,
            users: 7,
            seed: 1,
            policy: ControllerPolicy::Wolt,
            noise_seed: 0,
            chaos_seed: 1,
            point: Some("no.such.point".into()),
            max_restarts: 3,
            workdir: std::env::temp_dir().join("wolt-chaos-test-unknown-point"),
        };
        let err = chaos(&opts).unwrap_err();
        assert!(matches!(err, CliError::Usage { .. }), "{err:?}");
        assert!(err.to_string().contains("codec.write.mid_frame"));
    }

    #[test]
    fn counter_reader_tolerates_missing_files_and_shapes() {
        let missing = Path::new("/nonexistent/metrics.json");
        assert_eq!(read_counter(missing, "daemon.snapshot_rollbacks"), 0);
    }

    #[test]
    fn policy_names_round_trip_through_the_serve_parser() {
        for policy in [
            ControllerPolicy::Wolt,
            ControllerPolicy::Greedy,
            ControllerPolicy::Rssi,
        ] {
            let name = policy_name(policy);
            let parsed = crate::service::parse_controller_policy(name).unwrap();
            assert_eq!(policy_name(parsed), name);
        }
    }
}
