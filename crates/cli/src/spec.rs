//! The JSON network-specification format.
//!
//! A network is fully described by its PLC capacities `c_j` and the user ×
//! extender achievable-rate matrix `r_ij` (0 = unreachable), which is what
//! the paper's Central Controller learns at runtime. The `wolt generate`
//! subcommand samples these from the simulator's enterprise/lab models;
//! `wolt solve`/`compare` consume them from a file.

use wolt_core::Network;
use wolt_support::json::{FromJson, Json, ToJson};

use crate::CliError;

/// Serializable network description.
///
/// ```json
/// {
///   "capacities": [60.0, 20.0],
///   "rates": [[15.0, 10.0], [40.0, 20.0]]
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// PLC isolation capacities `c_j` in Mbit/s.
    pub capacities: Vec<f64>,
    /// Achievable WiFi rates `r_ij` in Mbit/s (rows = users, columns =
    /// extenders; ≤ 0 = unreachable).
    pub rates: Vec<Vec<f64>>,
}

impl NetworkSpec {
    /// Validates and converts to a [`Network`].
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Library`] with the underlying validation
    /// failure (unusable capacity, unreachable user, ragged rows, …).
    pub fn to_network(&self) -> Result<Network, CliError> {
        Network::from_raw(self.capacities.clone(), self.rates.clone()).map_err(CliError::from)
    }

    /// Builds a spec from a generated simulator scenario.
    pub fn from_scenario(scenario: &wolt_sim::Scenario) -> Self {
        let users = scenario.user_positions.len();
        let exts = scenario.extender_positions.len();
        Self {
            capacities: scenario.capacities.iter().map(|c| c.value()).collect(),
            rates: (0..users)
                .map(|i| {
                    (0..exts)
                        .map(|j| scenario.rate(i, j).map_or(0.0, |r| r.value()))
                        .collect()
                })
                .collect(),
        }
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::BadInput`] on malformed JSON.
    pub fn from_json(text: &str) -> Result<Self, CliError> {
        let value = Json::parse(text)?;
        Ok(Self {
            capacities: Vec::<f64>::from_json(value.field("capacities")?)?,
            rates: <Vec<Vec<f64>>>::from_json(value.field("rates")?)?,
        })
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            ("capacities", self.capacities.to_json()),
            ("rates", self.rates.to_json()),
        ])
        .to_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolt_sim::scenario::ScenarioConfig;
    use wolt_sim::Scenario;
    use wolt_support::rng::ChaCha8Rng;
    use wolt_support::rng::SeedableRng;

    #[test]
    fn json_round_trip() {
        let spec = NetworkSpec {
            capacities: vec![60.0, 20.0],
            rates: vec![vec![15.0, 10.0], vec![40.0, 20.0]],
        };
        let back = NetworkSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn converts_to_network() {
        let spec = NetworkSpec {
            capacities: vec![60.0, 20.0],
            rates: vec![vec![15.0, 10.0], vec![40.0, 20.0]],
        };
        let net = spec.to_network().unwrap();
        assert_eq!(net.users(), 2);
        assert_eq!(net.extenders(), 2);
    }

    #[test]
    fn invalid_spec_rejected() {
        let spec = NetworkSpec {
            capacities: vec![0.0],
            rates: vec![vec![10.0]],
        };
        assert!(spec.to_network().is_err());
        assert!(NetworkSpec::from_json("{not json").is_err());
    }

    #[test]
    fn malformed_json_specs_rejected() {
        // Missing required fields.
        assert!(NetworkSpec::from_json(r#"{"capacities": [60.0]}"#).is_err());
        assert!(NetworkSpec::from_json(r#"{"rates": [[10.0]]}"#).is_err());
        // Wrong field types.
        assert!(NetworkSpec::from_json(r#"{"capacities": "sixty", "rates": [[10.0]]}"#).is_err());
        assert!(NetworkSpec::from_json(r#"{"capacities": [60.0], "rates": [10.0]}"#).is_err());
        assert!(
            NetworkSpec::from_json(r#"{"capacities": [60.0, null], "rates": [[10.0]]}"#).is_err()
        );
        // Structurally valid JSON that fails network validation downstream.
        let ragged = NetworkSpec::from_json(
            r#"{"capacities": [60.0, 20.0], "rates": [[10.0, 5.0], [10.0]]}"#,
        )
        .unwrap();
        assert!(ragged.to_network().is_err());
    }

    #[test]
    fn from_scenario_matches_scenario_rates() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let scenario = Scenario::generate(&ScenarioConfig::lab(5), &mut rng).unwrap();
        let spec = NetworkSpec::from_scenario(&scenario);
        assert_eq!(spec.capacities.len(), 3);
        assert_eq!(spec.rates.len(), 5);
        let net = spec.to_network().unwrap();
        for i in 0..5 {
            for j in 0..3 {
                assert_eq!(net.rate(i, j), scenario.rate(i, j));
            }
        }
    }
}
