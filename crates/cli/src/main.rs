//! `wolt` — command-line interface to the WOLT association framework.
//!
//! ```text
//! wolt generate --preset lab --users 7 --seed 1 --output net.json
//! wolt solve    --input net.json --policy wolt
//! wolt compare  --input net.json
//! wolt serve    --addr 127.0.0.1:0 --users 7 --seed 1 --addr-file addr.txt
//! wolt agent    --addr 127.0.0.1:4800 --users 7 --seed 1 --client 3
//! wolt metrics  --addr 127.0.0.1:4800
//! ```

use std::process::ExitCode;

use wolt_cli::args::ParsedArgs;
use wolt_cli::chaos::{self, ChaosOptions};
use wolt_cli::commands::{
    compare_with_threads, generate, solve_explained_with_threads, solve_with_threads, PolicyChoice,
    PresetChoice,
};
use wolt_cli::service::{self, FleetServeOptions, ServeOptions};
use wolt_cli::spec::NetworkSpec;
use wolt_cli::CliError;
use wolt_daemon::wire::{FleetOp, SiteSpec};
use wolt_support::json::ToJson;

const USAGE: &str = "\
wolt — auto-configuration of integrated PLC-WiFi networks (WOLT, ICDCS 2020)

USAGE:
  wolt generate --preset <enterprise|lab> --users <N> [--seed S] [--output FILE]
  wolt solve    --input FILE [--policy <wolt|greedy|selfish|rssi|optimal|random>] [--seed S] [--threads T] [--explain true] [--output FILE]
  wolt compare  --input FILE [--seed S] [--threads T]
  wolt serve    --addr HOST:PORT [--preset P] [--users N] [--seed S] [--policy <wolt|greedy|rssi>] [--noise-seed S] [--snapshot DIR] [--addr-file FILE] [--metrics-out FILE] [--linger-ms MS] [--coalesce on|off] [--output FILE]
  wolt serve    --addr HOST:PORT --sites SPEC.json [--shards T] [--snapshot DIR] [--addr-file FILE] [--metrics-out FILE] [--linger-ms MS] [--coalesce on|off] [--output FILE]
  wolt agent    --addr HOST:PORT --client I [--site ID] [--preset P] [--users N] [--seed S] [--name NAME] [--burst K]
  wolt fleet status --addr HOST:PORT [--output FILE]
  wolt fleet drain  --addr HOST:PORT --site ID
  wolt fleet remove --addr HOST:PORT --site ID
  wolt fleet add    --addr HOST:PORT --site ID --preset P --users N --seed S [--policy P] [--stop-after N]
  wolt metrics  --addr HOST:PORT [--output FILE]
  wolt chaos    --workdir DIR [--preset P] [--users N] [--seed S] [--policy P] [--noise-seed S] [--chaos-seed S] [--point NAME] [--max-restarts N] [--output FILE]

The network file is JSON: {\"capacities\": [c_j …], \"rates\": [[r_ij …] …]}.
--threads caps the worker threads of policies that fan out internally
(currently `optimal`); it defaults to WOLT_THREADS, then the machine's
parallelism. Reports are byte-identical at every thread count.

serve runs the Central Controller daemon for one session in which all N
users join; agent connects one laptop to it. Both sides regenerate the
scenario from the same (--preset, --users, --seed), so no network file
changes hands. Pass --addr 127.0.0.1:0 with --addr-file to let the OS
pick a port and hand it to the agents.

serve coalesces queued scan reports by default: whole consecutive runs
of telemetry are drained off the session inbox, each client keeps only
its newest frame (daemon.frames_coalesced counts the rest), and the
controller plans once per run. Batching is structural, never
time-based, so clean reports are byte-identical with --coalesce on or
off. agent --burst K re-sends each scan report K times back-to-back to
exercise that path.

metrics queries a live daemon's counters and histograms over the wire
(a WOLT_OBS snapshot as JSON). serve's --metrics-out dumps the same
snapshot to a file when the session ends; --linger-ms keeps the daemon
answering metrics queries that long after the last event completes.

chaos sweeps the daemon's crash-point catalogue: for each point it
spawns a real `wolt serve` child armed (via WOLT_CRASH) with a seeded
CrashPlan, lets the plan abort it mid-write, restarts it unarmed against
the same --snapshot store, and fails unless every recovered session's
canonical report is byte-identical to an uncrashed baseline run.

serve --sites runs a multi-site fleet: every site in the spec file gets
its own controller session behind the one address, stepped on --shards
threads (default WOLT_THREADS). Agents pick their segment with
`agent --site ID` (the spec's per-site preset/users/seed must match the
agent's flags). --snapshot becomes the fleet root: each site persists
under <DIR>/<ID>/. The fleet verbs drive a live fleet over the wire:
status lists every site, drain stops routing new agents to a site and
lets it finish and persist, remove additionally forgets it, add boots a
new site without restarting the daemon.";

fn main() -> ExitCode {
    match run(std::env::args().skip(1)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if matches!(e, CliError::Usage { .. }) {
                eprintln!("\n{USAGE}");
            }
            ExitCode::FAILURE
        }
    }
}

fn run<I: IntoIterator<Item = String>>(args: I) -> Result<(), CliError> {
    let mut args: Vec<String> = args.into_iter().collect();
    // `fleet` carries a sub-verb (`wolt fleet drain --addr …`); lift it
    // out before the flag parser, which allows no positionals.
    let mut fleet_verb = None;
    if args.first().map(String::as_str) == Some("fleet") {
        if args.len() < 2 || args[1].starts_with('-') {
            return Err(CliError::Usage {
                message: "fleet needs a verb: status | drain | remove | add".into(),
            });
        }
        fleet_verb = Some(args.remove(1));
    }
    let parsed = ParsedArgs::parse(args)?;
    if let Some(verb) = fleet_verb {
        return run_fleet_verb(&verb, &parsed);
    }
    match parsed.command.as_str() {
        "generate" => {
            let preset = PresetChoice::parse(parsed.require("preset")?)?;
            let users: usize = parsed
                .require("users")?
                .parse()
                .map_err(|_| CliError::Usage {
                    message: "--users must be a positive integer".into(),
                })?;
            let seed = parsed.get_parsed_or("seed", 0u64)?;
            let spec = generate(preset, users, seed)?;
            emit(&spec.to_json(), parsed.get("output"))?;
            Ok(())
        }
        "solve" => {
            let spec = load_spec(parsed.require("input")?)?;
            let policy = PolicyChoice::parse(parsed.get("policy").unwrap_or("wolt"))?;
            let seed = parsed.get_parsed_or("seed", 0u64)?;
            let threads = parsed.get_parsed::<usize>("threads")?;
            if parsed.get_parsed_or("explain", false)? {
                emit(
                    &solve_explained_with_threads(&spec, policy, seed, threads)?,
                    parsed.get("output"),
                )?;
            } else {
                let report = solve_with_threads(&spec, policy, seed, threads)?;
                emit(&report.to_json().to_pretty(), parsed.get("output"))?;
            }
            Ok(())
        }
        "compare" => {
            let spec = load_spec(parsed.require("input")?)?;
            let seed = parsed.get_parsed_or("seed", 0u64)?;
            let threads = parsed.get_parsed::<usize>("threads")?;
            let reports = compare_with_threads(&spec, seed, threads)?;
            println!("{:<16} {:>12} {:>8}", "policy", "aggregate", "jain");
            for r in &reports {
                println!(
                    "{:<16} {:>9.2} Mb {:>8}",
                    r.policy,
                    r.aggregate_mbps,
                    r.jain.map_or_else(|| "-".into(), |j| format!("{j:.2}")),
                );
            }
            Ok(())
        }
        "serve" if parsed.get("sites").is_some() => {
            for single_only in ["users", "preset", "seed", "policy", "noise-seed"] {
                if parsed.get(single_only).is_some() {
                    return Err(CliError::Usage {
                        message: format!(
                            "--sites and --{single_only} do not combine; per-site settings \
                             live in the spec file"
                        ),
                    });
                }
            }
            let opts = FleetServeOptions {
                addr: parsed.require("addr")?.to_string(),
                sites: parsed.require("sites")?.into(),
                shards: parsed.get_parsed_or("shards", 0usize)?,
                snapshot: parsed.get("snapshot").map(Into::into),
                addr_file: parsed.get("addr-file").map(Into::into),
                metrics_out: parsed.get("metrics-out").map(Into::into),
                linger: std::time::Duration::from_millis(parsed.get_parsed_or("linger-ms", 0u64)?),
                coalesce: parse_coalesce(&parsed)?,
            };
            let text = service::serve_fleet(&opts)?;
            emit(&text, parsed.get("output"))?;
            Ok(())
        }
        "serve" => {
            let opts = ServeOptions {
                addr: parsed.require("addr")?.to_string(),
                preset: PresetChoice::parse(parsed.get("preset").unwrap_or("lab"))?,
                users: parsed.get_parsed_or("users", 7usize)?,
                seed: parsed.get_parsed_or("seed", 0u64)?,
                policy: service::parse_controller_policy(parsed.get("policy").unwrap_or("wolt"))?,
                noise_seed: parsed.get_parsed_or("noise-seed", 0u64)?,
                snapshot: parsed.get("snapshot").map(Into::into),
                addr_file: parsed.get("addr-file").map(Into::into),
                metrics_out: parsed.get("metrics-out").map(Into::into),
                linger: std::time::Duration::from_millis(parsed.get_parsed_or("linger-ms", 0u64)?),
                coalesce: parse_coalesce(&parsed)?,
            };
            let text = service::serve(&opts)?;
            emit(&text, parsed.get("output"))?;
            Ok(())
        }
        "agent" => {
            let summary = service::agent(
                parsed.require("addr")?,
                PresetChoice::parse(parsed.get("preset").unwrap_or("lab"))?,
                parsed.get_parsed_or("users", 7usize)?,
                parsed.get_parsed_or("seed", 0u64)?,
                parsed
                    .require("client")?
                    .parse()
                    .map_err(|_| CliError::Usage {
                        message: "--client must be a user index".into(),
                    })?,
                parsed.get("name").unwrap_or("agent"),
                parsed.get("site"),
                {
                    let burst = parsed.get_parsed_or("burst", 1u32)?;
                    if burst == 0 {
                        return Err(CliError::Usage {
                            message: "--burst must be at least 1".into(),
                        });
                    }
                    burst
                },
            )?;
            eprintln!("{summary}");
            Ok(())
        }
        "metrics" => {
            let text = service::metrics(parsed.require("addr")?)?;
            emit(&text, parsed.get("output"))?;
            Ok(())
        }
        "chaos" => {
            let opts = ChaosOptions {
                preset: PresetChoice::parse(parsed.get("preset").unwrap_or("lab"))?,
                users: parsed.get_parsed_or("users", 7usize)?,
                seed: parsed.get_parsed_or("seed", 0u64)?,
                policy: service::parse_controller_policy(parsed.get("policy").unwrap_or("wolt"))?,
                noise_seed: parsed.get_parsed_or("noise-seed", 0u64)?,
                chaos_seed: parsed.get_parsed_or("chaos-seed", 0u64)?,
                point: parsed.get("point").map(Into::into),
                max_restarts: parsed.get_parsed_or("max-restarts", 3u32)?,
                workdir: parsed.require("workdir")?.into(),
            };
            let text = chaos::chaos(&opts)?;
            emit(&text, parsed.get("output"))?;
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage {
            message: format!("unknown subcommand {other:?}"),
        }),
    }
}

/// Parses the `--coalesce on|off` serve flag; defaults to on.
fn parse_coalesce(parsed: &ParsedArgs) -> Result<bool, CliError> {
    match parsed.get("coalesce").unwrap_or("on") {
        "on" => Ok(true),
        "off" => Ok(false),
        other => Err(CliError::Usage {
            message: format!("--coalesce must be `on` or `off`, not `{other}`"),
        }),
    }
}

/// Dispatches `wolt fleet <verb>` against a live fleet daemon.
fn run_fleet_verb(verb: &str, parsed: &ParsedArgs) -> Result<(), CliError> {
    let addr = parsed.require("addr")?;
    match verb {
        "status" => {
            let text = service::fleet_status(addr)?;
            emit(&text, parsed.get("output"))?;
            Ok(())
        }
        "drain" => {
            let site = parsed.require("site")?.to_string();
            eprintln!("{}", service::fleet_mutate(addr, &FleetOp::Drain { site })?);
            Ok(())
        }
        "remove" => {
            let site = parsed.require("site")?.to_string();
            eprintln!(
                "{}",
                service::fleet_mutate(addr, &FleetOp::Remove { site })?
            );
            Ok(())
        }
        "add" => {
            let spec = SiteSpec {
                id: parsed.require("site")?.to_string(),
                preset: parsed.require("preset")?.to_string(),
                users: parsed
                    .require("users")?
                    .parse()
                    .map_err(|_| CliError::Usage {
                        message: "--users must be a positive integer".into(),
                    })?,
                seed: parsed.get_parsed_or("seed", 0u64)?,
                policy: parsed.get("policy").unwrap_or("wolt").to_string(),
                stop_after: parsed.get_parsed::<usize>("stop-after")?,
            };
            eprintln!("{}", service::fleet_mutate(addr, &FleetOp::Add { spec })?);
            Ok(())
        }
        other => Err(CliError::Usage {
            message: format!("unknown fleet verb {other:?} (try status | drain | remove | add)"),
        }),
    }
}

fn load_spec(path: &str) -> Result<NetworkSpec, CliError> {
    let text = std::fs::read_to_string(path)?;
    NetworkSpec::from_json(&text)
}

fn emit(text: &str, output: Option<&str>) -> Result<(), CliError> {
    use std::io::Write as _;
    match output {
        Some(path) => {
            std::fs::write(path, text)?;
            eprintln!("wrote {path}");
        }
        None => {
            // Tolerate a closed pipe (`wolt ... | head`) instead of
            // panicking like the println! macro would.
            if let Err(e) = writeln!(std::io::stdout(), "{text}") {
                if e.kind() != std::io::ErrorKind::BrokenPipe {
                    return Err(e.into());
                }
            }
        }
    }
    Ok(())
}
