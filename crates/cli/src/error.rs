use std::error::Error;
use std::fmt;

/// Errors surfaced by the `wolt` CLI.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Command line could not be parsed.
    Usage {
        /// What went wrong.
        message: String,
    },
    /// A JSON file could not be read or parsed.
    BadInput {
        /// What went wrong.
        message: String,
    },
    /// The underlying library rejected the request.
    Library {
        /// What went wrong.
        message: String,
    },
    /// Filesystem failure.
    Io(std::io::Error),
    /// Network failure: a socket could not be bound or connected, or a
    /// connection died mid-session (`serve` / `agent`).
    Net {
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage { message } => write!(f, "usage error: {message}"),
            CliError::BadInput { message } => write!(f, "bad input: {message}"),
            CliError::Library { message } => write!(f, "{message}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Net { message } => write!(f, "network error: {message}"),
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<wolt_core::CoreError> for CliError {
    fn from(e: wolt_core::CoreError) -> Self {
        CliError::Library {
            message: e.to_string(),
        }
    }
}

impl From<wolt_sim::SimError> for CliError {
    fn from(e: wolt_sim::SimError) -> Self {
        CliError::Library {
            message: e.to_string(),
        }
    }
}

impl From<wolt_daemon::DaemonError> for CliError {
    fn from(e: wolt_daemon::DaemonError) -> Self {
        use wolt_daemon::DaemonError as D;
        let message = e.to_string();
        match e {
            // Transport-level failures get the typed network variant so
            // the binary can exit nonzero with a diagnosable message
            // instead of panicking on an io::Error.
            D::Io(_)
            | D::Timeout { .. }
            | D::Protocol { .. }
            | D::GaveUp { .. }
            | D::Busy { .. }
            | D::SiteGone { .. } => CliError::Net { message },
            _ => CliError::Library { message },
        }
    }
}

impl From<wolt_support::json::JsonError> for CliError {
    fn from(e: wolt_support::json::JsonError) -> Self {
        CliError::BadInput {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CliError::Usage {
            message: "missing --input".into(),
        };
        assert!(e.to_string().contains("usage"));
        let e: CliError = wolt_core::CoreError::UnreachableUser { user: 3 }.into();
        assert!(e.to_string().contains("user 3"));
    }
}
