//! The `serve` and `agent` verbs: the networked Central Controller as
//! CLI commands.
//!
//! Both sides regenerate the scenario from the same `(preset, users,
//! seed)` triple instead of shipping rate tables over the wire — the
//! agent needs the scenario only for its scan results, and a shared seed
//! keeps the two binaries in lockstep without a file exchange.

use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use wolt_daemon::wire::FleetOp;
use wolt_daemon::{run_agent_burst, wire, AgentRetry, Daemon, DaemonConfig, Envelope};
use wolt_fleet::{Fleet, FleetConfig, FleetSpec};
use wolt_sim::scenario::ScenarioConfig;
use wolt_sim::Scenario;
use wolt_support::json::{Json, ToJson};
use wolt_support::obs;
use wolt_support::rng::{ChaCha8Rng, SeedableRng};
use wolt_testbed::{ControllerPolicy, SessionEvent};

use crate::commands::PresetChoice;
use crate::CliError;

/// Parses a controller policy name for the session daemon (`serve`
/// drives one of the three online controllers, not the offline solvers).
///
/// # Errors
///
/// Returns [`CliError::Usage`] listing the accepted names.
pub fn parse_controller_policy(name: &str) -> Result<ControllerPolicy, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "wolt" => Ok(ControllerPolicy::Wolt),
        "greedy" => Ok(ControllerPolicy::Greedy),
        "rssi" => Ok(ControllerPolicy::Rssi),
        other => Err(CliError::Usage {
            message: format!("unknown controller policy {other:?} (try wolt | greedy | rssi)"),
        }),
    }
}

/// Regenerates the scenario both `serve` and `agent` run against.
///
/// # Errors
///
/// Propagates scenario-generation failures as [`CliError::Library`].
pub fn scenario_for(preset: PresetChoice, users: usize, seed: u64) -> Result<Scenario, CliError> {
    let config = match preset {
        PresetChoice::Enterprise => ScenarioConfig::enterprise(users),
        PresetChoice::Lab => ScenarioConfig::lab(users),
    };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Ok(Scenario::generate(&config, &mut rng)?)
}

/// Everything `wolt serve` needs, parsed off the command line.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Scenario preset shared with the agents.
    pub preset: PresetChoice,
    /// Number of users (= expected agents).
    pub users: usize,
    /// Scenario seed shared with the agents.
    pub seed: u64,
    /// Online controller to run.
    pub policy: ControllerPolicy,
    /// Seed for the capacity-estimation noise.
    pub noise_seed: u64,
    /// Snapshot store directory for crash/restart resume (the daemon
    /// keeps a window of checksummed generations inside it).
    pub snapshot: Option<PathBuf>,
    /// File to write the bound address to, for scripts that pass port 0.
    pub addr_file: Option<PathBuf>,
    /// File to dump the final metrics snapshot to (atomic write) once the
    /// session ends.
    pub metrics_out: Option<PathBuf>,
    /// How long the daemon keeps serving metrics queries after the last
    /// event, before dismissing agents.
    pub linger: Duration,
    /// Telemetry coalescing at the session engine (`--coalesce on|off`).
    pub coalesce: bool,
}

/// Boots the daemon, runs one session where every user joins in index
/// order, and returns the session report as pretty JSON.
///
/// # Errors
///
/// [`CliError::Net`] when the address cannot be bound (e.g. the port is
/// already taken) or the session fails on the wire; [`CliError::Io`] for
/// snapshot/addr-file filesystem failures.
pub fn serve(opts: &ServeOptions) -> Result<String, CliError> {
    let scenario = scenario_for(opts.preset, opts.users, opts.seed)?;
    let events: Vec<SessionEvent> = (0..opts.users).map(SessionEvent::Join).collect();
    let mut config = DaemonConfig::new(opts.policy);
    config.noise_seed = opts.noise_seed;
    config.snapshot_dir = opts.snapshot.clone();
    config.linger = opts.linger;
    config.coalesce = opts.coalesce;
    let daemon = Daemon::bind(opts.addr.as_str(), scenario, events, config)?;
    let bound = daemon.local_addr()?;
    if let Some(path) = &opts.addr_file {
        std::fs::write(path, format!("{bound}\n"))?;
    }
    eprintln!(
        "wolt-daemon listening on {bound} ({} agents expected)",
        opts.users
    );
    let outcome = daemon.run()?;
    if let Some(path) = &opts.metrics_out {
        write_atomic(path, &obs::snapshot().to_json().to_pretty())?;
        eprintln!("wrote metrics to {}", path.display());
    }
    let json = Json::obj(vec![
        ("completed", outcome.completed.to_json()),
        ("epochs_done", outcome.epochs_done.to_json()),
        ("msgs_in", outcome.stats.msgs_in.to_json()),
        ("canonical", outcome.report.canonical().to_json()),
    ]);
    Ok(json.to_pretty())
}

/// Everything `wolt serve --sites` needs, parsed off the command line.
#[derive(Debug, Clone)]
pub struct FleetServeOptions {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Path to the fleet spec file (`{"sites": [...]}`).
    pub sites: PathBuf,
    /// Shard threads (`0` resolves like `--threads`: `WOLT_THREADS`,
    /// then the machine's parallelism).
    pub shards: usize,
    /// Fleet snapshot root; each site persists under `<root>/<id>/`.
    pub snapshot: Option<PathBuf>,
    /// File to write the bound address to, for scripts that pass port 0.
    pub addr_file: Option<PathBuf>,
    /// File to dump the final metrics snapshot to once the fleet ends.
    pub metrics_out: Option<PathBuf>,
    /// Listener grace period after the last site finishes.
    pub linger: Duration,
    /// Telemetry coalescing at every site engine (`--coalesce on|off`).
    pub coalesce: bool,
}

/// Boots a multi-site fleet from a spec file, runs every site to
/// completion (or drain), and returns per-site results as pretty JSON:
/// `{"sites": {id: {completed, epochs_done, canonical} | {error}}}`.
///
/// # Errors
///
/// [`CliError::Io`] when the spec file cannot be read;
/// [`CliError::Net`]/[`CliError::Library`] for bind and startup
/// failures (per-site *session* failures land in the JSON instead).
pub fn serve_fleet(opts: &FleetServeOptions) -> Result<String, CliError> {
    let text = std::fs::read_to_string(&opts.sites)?;
    let spec = FleetSpec::parse(&text)?;
    let defs = spec.materialize()?;
    let n_sites = defs.len();
    let config = FleetConfig {
        shards: opts.shards,
        snapshot_root: opts.snapshot.clone(),
        linger: opts.linger,
        coalesce: opts.coalesce,
        ..FleetConfig::default()
    };
    let fleet = Fleet::bind(opts.addr.as_str(), defs, config)?;
    let bound = fleet.local_addr()?;
    if let Some(path) = &opts.addr_file {
        std::fs::write(path, format!("{bound}\n"))?;
    }
    eprintln!("wolt-fleet listening on {bound} ({n_sites} sites)");
    let outcome = fleet.run()?;
    if let Some(path) = &opts.metrics_out {
        write_atomic(path, &obs::snapshot().to_json().to_pretty())?;
        eprintln!("wrote metrics to {}", path.display());
    }
    let sites: Vec<(String, Json)> = outcome
        .sites
        .iter()
        .map(|(id, result)| {
            let body = match result {
                Ok(o) => Json::obj(vec![
                    ("completed", o.completed.to_json()),
                    ("epochs_done", o.epochs_done.to_json()),
                    ("canonical", o.report.canonical().to_json()),
                ]),
                Err(e) => Json::obj(vec![("error", e.to_string().to_json())]),
            };
            (id.clone(), body)
        })
        .collect();
    let json = Json::obj(vec![("sites", Json::Obj(sites))]);
    Ok(json.to_pretty())
}

/// Queries a running fleet's site registry and returns it as pretty
/// JSON.
///
/// # Errors
///
/// [`CliError::Net`] when the fleet cannot be reached or answers with
/// the wrong envelope.
pub fn fleet_status(addr: &str) -> Result<String, CliError> {
    match fleet_roundtrip(addr, &FleetOp::Status)? {
        Envelope::FleetStatus { sites } => Ok(sites.to_json().to_pretty()),
        other => Err(CliError::Net {
            message: format!("unexpected reply to fleet status: {other:?}"),
        }),
    }
}

/// Sends one fleet mutation (`drain` / `remove` / `add`) and returns
/// the acknowledgement line.
///
/// # Errors
///
/// [`CliError::Net`] when the fleet cannot be reached or the operation
/// is refused (the refusal detail is in the message).
pub fn fleet_mutate(addr: &str, op: &FleetOp) -> Result<String, CliError> {
    match fleet_roundtrip(addr, op)? {
        Envelope::FleetAck {
            op, site, ok: true, ..
        } => Ok(format!("fleet {op} {site}: ok")),
        Envelope::FleetAck {
            op,
            site,
            ok: false,
            detail,
        } => Err(CliError::Net {
            message: format!("fleet {op} {site} refused: {detail}"),
        }),
        other => Err(CliError::Net {
            message: format!("unexpected reply to fleet op: {other:?}"),
        }),
    }
}

/// One control round-trip: connect, send the op, read the reply.
fn fleet_roundtrip(addr: &str, op: &FleetOp) -> Result<Envelope, CliError> {
    let net = |message: String| CliError::Net { message };
    let mut stream =
        TcpStream::connect(addr).map_err(|e| net(format!("connect to {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| net(format!("configure socket: {e}")))?;
    wire::send(&mut stream, &Envelope::Fleet(op.clone()))
        .map_err(|e| net(format!("send fleet op: {e}")))?;
    wire::recv(&mut stream)
        .map_err(|e| net(format!("read fleet reply: {e}")))?
        .ok_or_else(|| net("fleet closed the connection without a reply".into()))
}

/// Writes `text` to `path` via a sibling temp file and a rename, so a
/// reader never observes a partial dump.
fn write_atomic(path: &Path, text: &str) -> Result<(), CliError> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Connects to a running daemon as a control client, requests its
/// metrics snapshot, and returns it as pretty JSON.
///
/// # Errors
///
/// [`CliError::Net`] when the daemon cannot be reached, closes the
/// connection without answering, or replies with the wrong envelope.
pub fn metrics(addr: &str) -> Result<String, CliError> {
    let net = |message: String| CliError::Net { message };
    let mut stream =
        TcpStream::connect(addr).map_err(|e| net(format!("connect to {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| net(format!("configure socket: {e}")))?;
    wire::send(&mut stream, &Envelope::MetricsRequest)
        .map_err(|e| net(format!("send metrics request: {e}")))?;
    match wire::recv(&mut stream).map_err(|e| net(format!("read metrics reply: {e}")))? {
        Some(Envelope::Metrics { metrics }) => Ok(metrics.to_json().to_pretty()),
        Some(other) => Err(net(format!(
            "unexpected reply to metrics request: {other:?}"
        ))),
        None => Err(net(
            "daemon closed the connection without a metrics reply".into()
        )),
    }
}

/// Connects one agent to a running daemon and serves the session; the
/// returned line summarizes what the agent did. With `site`, the hello
/// names that fleet site, and a `site_gone` refusal (drained, removed,
/// or never hosted) fails fast instead of retrying.
///
/// # Errors
///
/// [`CliError::Net`] when the daemon cannot be reached, the connection
/// drops mid-session, or the named site is gone.
#[allow(clippy::too_many_arguments)] // mirrors the CLI flag surface one-to-one
pub fn agent(
    addr: &str,
    preset: PresetChoice,
    users: usize,
    seed: u64,
    client: usize,
    name: &str,
    site: Option<&str>,
    burst: u32,
) -> Result<String, CliError> {
    let scenario = scenario_for(preset, users, seed)?;
    let outcome = run_agent_burst(
        addr,
        &scenario,
        site,
        client,
        name,
        &AgentRetry::default(),
        burst,
    )?;
    Ok(format!(
        "agent {client} ({name}) done: attached={} directives_applied={}",
        outcome
            .attached
            .map_or_else(|| "-".into(), |e| e.to_string()),
        outcome.directives_applied,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lab_opts(addr: &str) -> ServeOptions {
        ServeOptions {
            addr: addr.to_string(),
            preset: PresetChoice::Lab,
            users: 7,
            seed: 1,
            policy: ControllerPolicy::Wolt,
            noise_seed: 0,
            snapshot: None,
            addr_file: None,
            metrics_out: None,
            linger: Duration::ZERO,
            coalesce: true,
        }
    }

    #[test]
    fn controller_policy_names_parse() {
        assert!(matches!(
            parse_controller_policy("WOLT").unwrap(),
            ControllerPolicy::Wolt
        ));
        assert!(matches!(
            parse_controller_policy("rssi").unwrap(),
            ControllerPolicy::Rssi
        ));
        assert!(matches!(
            parse_controller_policy("optimal"),
            Err(CliError::Usage { .. })
        ));
    }

    #[test]
    fn serve_on_an_occupied_port_is_a_typed_net_error() {
        // Hold the port for the duration of the test; std's TcpListener
        // does not set SO_REUSEADDR, so the second bind must fail.
        let guard = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = guard.local_addr().unwrap().to_string();
        let err = serve(&lab_opts(&addr)).unwrap_err();
        assert!(
            matches!(err, CliError::Net { .. }),
            "expected CliError::Net, got {err:?}"
        );
        assert!(err.to_string().contains("network error"));
    }

    #[test]
    fn agent_against_a_dead_port_is_a_typed_net_error() {
        // Grab a free port, then close the listener so nothing accepts.
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap().to_string();
        drop(probe);
        let err = agent(&addr, PresetChoice::Lab, 7, 1, 0, "lonely", None, 1).unwrap_err();
        assert!(
            matches!(err, CliError::Net { .. }),
            "expected CliError::Net, got {err:?}"
        );
    }

    #[test]
    fn agent_with_out_of_range_client_is_not_a_net_error() {
        let err = agent("127.0.0.1:1", PresetChoice::Lab, 7, 1, 99, "ghost", None, 1).unwrap_err();
        assert!(matches!(err, CliError::Library { .. }));
    }
}
