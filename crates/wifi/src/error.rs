use std::error::Error;
use std::fmt;

/// Errors produced by the WiFi substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WifiError {
    /// A throughput computation was asked for a cell with no users.
    EmptyCell,
    /// A rate was zero, negative, or non-finite where a usable link rate is
    /// required.
    UnusableRate {
        /// The offending rate in Mbit/s.
        rate_mbps: f64,
    },
    /// A configuration parameter was outside its valid range.
    InvalidConfig {
        /// Human-readable description of the parameter and its constraint.
        context: &'static str,
    },
}

impl fmt::Display for WifiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WifiError::EmptyCell => write!(f, "cell has no users"),
            WifiError::UnusableRate { rate_mbps } => {
                write!(f, "unusable link rate: {rate_mbps} Mbit/s")
            }
            WifiError::InvalidConfig { context } => write!(f, "invalid config: {context}"),
        }
    }
}

impl Error for WifiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(WifiError::EmptyCell.to_string(), "cell has no users");
        assert!(WifiError::UnusableRate { rate_mbps: -1.0 }
            .to_string()
            .contains("-1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WifiError>();
    }
}
