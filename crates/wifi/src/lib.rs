//! 802.11 substrate for the WOLT PLC-WiFi association framework.
//!
//! WOLT's network model needs three things from the WiFi side:
//!
//! 1. **A distance → PHY-rate map** (§V-A of the paper: "a simple model to
//!    simulate the WiFi channel qualities where the channel quality is a
//!    function of the distance between the extender and the user"). This is
//!    [`pathloss`] (log-distance path loss with optional log-normal
//!    shadowing) composed with [`mcs`] (RSSI → MCS → rate tables in the
//!    spirit of 802.11n single-stream, plus a MAC-efficiency factor that
//!    converts PHY rate to achievable saturation throughput — the `r_ij` of
//!    the paper).
//! 2. **The throughput-fair sharing law** (Eq. 1 of the paper, the 802.11
//!    "performance anomaly" of Heusse et al.): all saturated users of one
//!    cell obtain the same long-term throughput `1/Σ(1/r_i)`. This is
//!    [`cell`], including an incremental accumulator used by the greedy
//!    baseline.
//! 3. **Evidence that (2) is what 802.11 actually does**: [`dcf`] is a
//!    slotted CSMA/CA (DCF) micro-simulator with binary exponential backoff
//!    and collisions; its measured per-station throughputs reproduce the
//!    performance anomaly from first principles (Fig. 2a of the paper) and
//!    validate the analytic model.
//!
//! [`channels`] implements the paper's standing assumption that neighbouring
//! extenders operate on non-overlapping WiFi channels (§V-A), as a greedy
//! graph-colouring allocator with a conflict audit.
//!
//! # Example
//!
//! ```
//! use wolt_units::{Meters, Mbps};
//! use wolt_wifi::WifiRadio;
//!
//! let radio = WifiRadio::office_default();
//! // A user 5 m from the extender gets a high rate...
//! let near = radio.rate_at_distance(Meters::new(5.0)).unwrap();
//! // ...a user 45 m away gets a lower one.
//! let far = radio.rate_at_distance(Meters::new(45.0)).unwrap();
//! assert!(near > far);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod channels;
pub mod dcf;
pub mod mcs;
pub mod pathloss;

mod error;
mod radio;

pub use error::WifiError;
pub use mcs::RateTable;
pub use pathloss::LogDistanceModel;
pub use radio::WifiRadio;
