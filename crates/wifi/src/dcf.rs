//! Slotted 802.11 DCF (CSMA/CA) micro-simulator.
//!
//! The analytic cell model of [`crate::cell`] *assumes* throughput-fair
//! sharing; this module *derives* it. Saturated stations contend with
//! binary-exponential backoff exactly as in the 802.11 DCF: each station
//! draws a backoff uniformly from `[0, CW]`, counts down in idle slots,
//! transmits at zero, doubles `CW` on collision and resets it on success.
//! Because every station wins the channel equally often and ships the same
//! payload per win, per-station *throughput* equalizes while per-station
//! *airtime* does not — the performance anomaly the paper re-measures on
//! commodity PLC-WiFi extenders in Fig. 2a.
//!
//! # Example
//!
//! ```
//! use wolt_units::{Mbps, Seconds};
//! use wolt_wifi::dcf::{simulate_dcf, DcfConfig};
//!
//! # fn main() -> Result<(), wolt_wifi::WifiError> {
//! let out = simulate_dcf(&[Mbps::new(54.0), Mbps::new(6.0)], &DcfConfig::default(), 1)?;
//! // Throughput-fair: the fast and slow station get nearly the same rate.
//! let ratio = out.per_station[0] / out.per_station[1];
//! assert!((0.8..1.25).contains(&ratio));
//! # Ok(())
//! # }
//! ```

use wolt_support::rng::ChaCha8Rng;
use wolt_support::rng::{Rng, SeedableRng};
use wolt_units::{Mbps, Seconds};

use crate::WifiError;

/// 802.11 DCF timing and backoff parameters.
///
/// Defaults correspond to 802.11n (OFDM, 2.4 GHz): 9 µs slots, 16 µs SIFS,
/// DIFS = SIFS + 2·slot, CWmin 15, CWmax 1023, 1500-byte payloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcfConfig {
    /// Idle slot duration in µs.
    pub slot_us: f64,
    /// Short interframe space in µs.
    pub sifs_us: f64,
    /// DCF interframe space in µs.
    pub difs_us: f64,
    /// ACK frame duration (preamble + payload at basic rate) in µs.
    pub ack_us: f64,
    /// PHY preamble + PLCP header duration in µs.
    pub phy_header_us: f64,
    /// MAC payload size in bytes (MSDU).
    pub payload_bytes: u32,
    /// Minimum contention window (CWmin).
    pub cw_min: u32,
    /// Maximum contention window (CWmax).
    pub cw_max: u32,
    /// Simulated duration.
    pub duration: Seconds,
    /// Enable the RTS/CTS handshake: successes pay an extra
    /// `rts_cts_us`, but collisions only waste the short RTS frame
    /// instead of the whole data frame.
    pub rts_cts: bool,
    /// Duration of the RTS + SIFS + CTS + SIFS exchange in µs.
    pub rts_cts_us: f64,
}

impl Default for DcfConfig {
    fn default() -> Self {
        Self {
            slot_us: 9.0,
            sifs_us: 16.0,
            difs_us: 34.0,
            ack_us: 44.0,
            phy_header_us: 40.0,
            payload_bytes: 1500,
            cw_min: 15,
            cw_max: 1023,
            duration: Seconds::new(2.0),
            rts_cts: false,
            rts_cts_us: 100.0,
        }
    }
}

impl DcfConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::InvalidConfig`] if any duration is non-positive,
    /// `cw_min` is 0 or exceeds `cw_max`, or the payload is empty.
    pub fn validate(&self) -> Result<(), WifiError> {
        let positive = [
            self.slot_us,
            self.sifs_us,
            self.difs_us,
            self.ack_us,
            self.phy_header_us,
            self.duration.value(),
        ];
        if positive.iter().any(|v| !(v.is_finite() && *v > 0.0)) {
            return Err(WifiError::InvalidConfig {
                context: "dcf durations must be finite and positive",
            });
        }
        if self.cw_min == 0 || self.cw_min > self.cw_max {
            return Err(WifiError::InvalidConfig {
                context: "require 0 < cw_min <= cw_max",
            });
        }
        if self.payload_bytes == 0 {
            return Err(WifiError::InvalidConfig {
                context: "payload must be non-empty",
            });
        }
        if !(self.rts_cts_us.is_finite() && self.rts_cts_us > 0.0) {
            return Err(WifiError::InvalidConfig {
                context: "rts/cts duration must be finite and positive",
            });
        }
        Ok(())
    }
}

/// Measured outcome of a DCF simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct DcfOutcome {
    /// Long-term throughput of each station.
    pub per_station: Vec<Mbps>,
    /// Sum of per-station throughputs.
    pub aggregate: Mbps,
    /// Fraction of simulated time each station spent transmitting payload.
    pub airtime_fraction: Vec<f64>,
    /// Number of successful transmissions.
    pub successes: u64,
    /// Number of collision events.
    pub collisions: u64,
}

/// Runs a saturated DCF contention simulation for stations with the given
/// PHY rates and returns measured throughputs.
///
/// All stations always have a frame queued (saturation, matching the
/// paper's iperf-driven measurements). The simulation is deterministic for
/// a given `seed`.
///
/// # Errors
///
/// Returns [`WifiError::EmptyCell`] with no stations,
/// [`WifiError::UnusableRate`] if any PHY rate is unusable, or the
/// validation errors of [`DcfConfig::validate`].
pub fn simulate_dcf(
    phy_rates: &[Mbps],
    config: &DcfConfig,
    seed: u64,
) -> Result<DcfOutcome, WifiError> {
    config.validate()?;
    if phy_rates.is_empty() {
        return Err(WifiError::EmptyCell);
    }
    for r in phy_rates {
        if !r.is_usable() {
            return Err(WifiError::UnusableRate {
                rate_mbps: r.value(),
            });
        }
    }

    let n = phy_rates.len();
    let payload_bits = f64::from(config.payload_bytes) * 8.0;
    // Payload transmit time in µs: bits / (Mbit/s) = µs.
    let tx_time = |station: usize| payload_bits / phy_rates[station].value();

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut cw = vec![config.cw_min; n];
    let mut backoff: Vec<u32> = (0..n).map(|i| rng.gen_range(0..=cw[i])).collect();
    let mut bits = vec![0.0f64; n];
    let mut tx_airtime = vec![0.0f64; n];
    let mut successes = 0u64;
    let mut collisions = 0u64;

    let horizon_us = config.duration.value() * 1e6;
    let mut now_us = 0.0f64;

    while now_us < horizon_us {
        // Advance through idle slots until some station reaches zero.
        let min_backoff = *backoff.iter().min().expect("n >= 1");
        now_us += f64::from(min_backoff) * config.slot_us;
        for b in &mut backoff {
            *b -= min_backoff;
        }

        let transmitters: Vec<usize> = (0..n).filter(|&i| backoff[i] == 0).collect();
        debug_assert!(!transmitters.is_empty());

        if transmitters.len() == 1 {
            let station = transmitters[0];
            let payload_time = tx_time(station);
            let handshake = if config.rts_cts {
                config.rts_cts_us
            } else {
                0.0
            };
            let busy = config.difs_us
                + handshake
                + config.phy_header_us
                + payload_time
                + config.sifs_us
                + config.ack_us;
            now_us += busy;
            bits[station] += payload_bits;
            tx_airtime[station] += payload_time;
            successes += 1;
            cw[station] = config.cw_min;
            backoff[station] = rng.gen_range(0..=cw[station]);
        } else {
            // Collision. With RTS/CTS only the short RTS frames collide;
            // without it the channel is busy for the longest colliding
            // data frame. Either way a CTS/ACK-timeout follows.
            let wasted = if config.rts_cts {
                config.rts_cts_us
            } else {
                transmitters
                    .iter()
                    .map(|&i| tx_time(i))
                    .fold(0.0f64, f64::max)
            };
            now_us +=
                config.difs_us + config.phy_header_us + wasted + config.sifs_us + config.ack_us;
            collisions += 1;
            for &station in &transmitters {
                cw[station] = (cw[station] * 2 + 1).min(config.cw_max);
                backoff[station] = rng.gen_range(0..=cw[station]);
            }
        }
    }

    // Use the actual elapsed time (we overshoot the horizon by at most one
    // transaction) so throughputs are unbiased.
    let elapsed_s = now_us / 1e6;
    let per_station: Vec<Mbps> = bits
        .iter()
        .map(|&b| Mbps::new(b / elapsed_s / 1e6))
        .collect();
    let aggregate = per_station.iter().copied().sum();
    let airtime_fraction = tx_airtime.iter().map(|&t| t / now_us).collect();

    Ok(DcfOutcome {
        per_station,
        aggregate,
        airtime_fraction,
        successes,
        collisions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rates: &[f64]) -> DcfOutcome {
        let rates: Vec<Mbps> = rates.iter().map(|&r| Mbps::new(r)).collect();
        simulate_dcf(&rates, &DcfConfig::default(), 42).unwrap()
    }

    #[test]
    fn single_station_efficiency_below_phy_rate() {
        let out = run(&[54.0]);
        let t = out.per_station[0].value();
        // Protocol overhead costs real throughput, but not an order of
        // magnitude.
        assert!(t > 20.0 && t < 54.0, "throughput {t}");
        assert_eq!(out.collisions, 0);
    }

    #[test]
    fn equal_stations_get_equal_shares() {
        let out = run(&[54.0, 54.0, 54.0]);
        let mean = out.aggregate.value() / 3.0;
        for t in &out.per_station {
            // Backoff randomness over a finite run leaves ~5-10% jitter.
            assert!(
                (t.value() - mean).abs() / mean < 0.12,
                "station at {t} vs mean {mean}"
            );
        }
    }

    #[test]
    fn throughput_fairness_across_unequal_rates() {
        // The performance anomaly: per-station throughputs equalize even
        // with a 9x PHY-rate spread.
        let out = run(&[54.0, 6.0]);
        let ratio = out.per_station[0] / out.per_station[1];
        assert!(
            (0.85..1.18).contains(&ratio),
            "throughput-fairness violated: ratio {ratio}"
        );
    }

    #[test]
    fn slow_station_consumes_more_airtime() {
        let out = run(&[54.0, 6.0]);
        assert!(
            out.airtime_fraction[1] > 3.0 * out.airtime_fraction[0],
            "airtime {:?}",
            out.airtime_fraction
        );
    }

    #[test]
    fn anomaly_adding_slow_station_crushes_fast_one() {
        let alone = run(&[54.0]);
        let mixed = run(&[54.0, 6.0]);
        assert!(
            mixed.per_station[0].value() < 0.4 * alone.per_station[0].value(),
            "fast station kept {} of {}",
            mixed.per_station[0],
            alone.per_station[0]
        );
    }

    #[test]
    fn matches_analytic_harmonic_law() {
        // Calibrate each station's effective single-station rate from the
        // simulator, then check the multi-station per-user throughput
        // against 1/Σ(1/r_eff) (Eq. 1 of the paper). The analytic law
        // ignores collision costs, so the simulated value sits somewhat
        // below the prediction; we require the right magnitude (within
        // 35%) and exact throughput-fairness across stations.
        let rates = [54.0, 24.0, 6.0];
        let singles: Vec<f64> = rates
            .iter()
            .map(|&r| run(&[r]).per_station[0].value())
            .collect();
        let predicted_per_user = 1.0 / singles.iter().map(|r| 1.0 / r).sum::<f64>();
        let out = run(&rates);
        for t in &out.per_station {
            let err = (t.value() - predicted_per_user).abs() / predicted_per_user;
            assert!(
                err < 0.35,
                "per-user {} vs predicted {predicted_per_user}",
                t.value()
            );
        }
    }

    #[test]
    fn collisions_grow_with_contention() {
        let few = run(&[54.0, 54.0]);
        let many = run(&[54.0; 12]);
        let few_rate = few.collisions as f64 / few.successes as f64;
        let many_rate = many.collisions as f64 / many.successes as f64;
        assert!(
            many_rate > few_rate,
            "collision rate did not grow: {few_rate} vs {many_rate}"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let rates = [Mbps::new(54.0), Mbps::new(12.0)];
        let a = simulate_dcf(&rates, &DcfConfig::default(), 9).unwrap();
        let b = simulate_dcf(&rates, &DcfConfig::default(), 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_stay_close() {
        let rates = [Mbps::new(54.0), Mbps::new(12.0)];
        let a = simulate_dcf(&rates, &DcfConfig::default(), 1).unwrap();
        let b = simulate_dcf(&rates, &DcfConfig::default(), 2).unwrap();
        let rel = (a.aggregate.value() - b.aggregate.value()).abs() / a.aggregate.value();
        assert!(rel < 0.1, "seed variance too high: {rel}");
    }

    #[test]
    fn rejects_empty_and_unusable() {
        assert_eq!(
            simulate_dcf(&[], &DcfConfig::default(), 0).unwrap_err(),
            WifiError::EmptyCell
        );
        assert!(matches!(
            simulate_dcf(&[Mbps::ZERO], &DcfConfig::default(), 0).unwrap_err(),
            WifiError::UnusableRate { .. }
        ));
    }

    #[test]
    fn rts_cts_costs_throughput_when_alone() {
        let base = DcfConfig::default();
        let rts = DcfConfig {
            rts_cts: true,
            ..base
        };
        let alone_plain = simulate_dcf(&[Mbps::new(54.0)], &base, 1).unwrap();
        let alone_rts = simulate_dcf(&[Mbps::new(54.0)], &rts, 1).unwrap();
        assert!(
            alone_rts.aggregate < alone_plain.aggregate,
            "handshake should cost an uncontended station: {} vs {}",
            alone_rts.aggregate,
            alone_plain.aggregate
        );
    }

    #[test]
    fn rts_cts_pays_off_under_heavy_contention_with_long_frames() {
        // Many stations with slow rates: full-frame collisions are very
        // expensive, so the handshake wins.
        let rates = vec![Mbps::new(2.0); 10];
        let base = DcfConfig::default();
        let rts = DcfConfig {
            rts_cts: true,
            ..base
        };
        let plain = simulate_dcf(&rates, &base, 2).unwrap();
        let with_rts = simulate_dcf(&rates, &rts, 2).unwrap();
        assert!(
            with_rts.aggregate > plain.aggregate,
            "RTS/CTS should win here: {} vs {}",
            with_rts.aggregate,
            plain.aggregate
        );
    }

    #[test]
    fn rts_cts_duration_validated() {
        let cfg = DcfConfig {
            rts_cts_us: 0.0,
            ..DcfConfig::default()
        };
        assert!(simulate_dcf(&[Mbps::new(10.0)], &cfg, 0).is_err());
    }

    #[test]
    fn rejects_invalid_config() {
        let mut cfg = DcfConfig {
            cw_min: 0,
            ..DcfConfig::default()
        };
        assert!(simulate_dcf(&[Mbps::new(10.0)], &cfg, 0).is_err());
        cfg = DcfConfig {
            duration: Seconds::ZERO,
            ..DcfConfig::default()
        };
        assert!(simulate_dcf(&[Mbps::new(10.0)], &cfg, 0).is_err());
        cfg = DcfConfig {
            cw_min: 64,
            cw_max: 32,
            ..DcfConfig::default()
        };
        assert!(simulate_dcf(&[Mbps::new(10.0)], &cfg, 0).is_err());
    }
}
