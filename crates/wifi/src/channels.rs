//! Non-overlapping WiFi channel allocation for extenders.
//!
//! The paper assumes "each extender operates on a non-overlapping channel
//! relative to its neighbor extenders on the WiFi domain" (§V-A, citing
//! measurement-driven WLAN studies). This module makes that assumption an
//! explicit, checkable artifact: a greedy graph-colouring allocator assigns
//! channels so that extenders within interference range differ, and an
//! audit reports any residual conflicts (which occur only when the
//! deployment is denser than the channel budget allows).

use wolt_units::{Meters, Point};

use crate::WifiError;

/// The three non-overlapping 2.4 GHz channels.
pub const CHANNELS_2_4GHZ: &[u16] = &[1, 6, 11];

/// Eight non-overlapping (non-DFS + common DFS) 5 GHz 20 MHz channels.
pub const CHANNELS_5GHZ: &[u16] = &[36, 40, 44, 48, 149, 153, 157, 161];

/// A channel plan: one channel per extender plus a conflict audit.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelPlan {
    /// Channel assigned to each extender (parallel to the input positions).
    pub assignment: Vec<u16>,
    /// Pairs of extenders that ended up sharing a channel within
    /// interference range (empty when the plan is conflict-free).
    pub conflicts: Vec<(usize, usize)>,
}

impl ChannelPlan {
    /// True when no two in-range extenders share a channel.
    pub fn is_conflict_free(&self) -> bool {
        self.conflicts.is_empty()
    }
}

/// Greedily colours extenders with channels so that any two extenders
/// closer than `interference_range` receive different channels when
/// possible.
///
/// Extenders are processed in input order; each takes the least-used
/// channel not already used by an in-range neighbour, falling back to the
/// globally least-used channel when all are taken (recorded as a conflict).
///
/// # Errors
///
/// Returns [`WifiError::InvalidConfig`] if `channels` is empty or
/// `interference_range` is not positive and finite.
///
/// # Example
///
/// ```
/// use wolt_units::{Meters, Point};
/// use wolt_wifi::channels::{assign_channels, CHANNELS_2_4GHZ};
///
/// # fn main() -> Result<(), wolt_wifi::WifiError> {
/// let positions = [Point::new(0.0, 0.0), Point::new(5.0, 0.0), Point::new(100.0, 0.0)];
/// let plan = assign_channels(&positions, CHANNELS_2_4GHZ, Meters::new(30.0))?;
/// assert!(plan.is_conflict_free());
/// assert_ne!(plan.assignment[0], plan.assignment[1]); // close pair split
/// # Ok(())
/// # }
/// ```
pub fn assign_channels(
    positions: &[Point],
    channels: &[u16],
    interference_range: Meters,
) -> Result<ChannelPlan, WifiError> {
    if channels.is_empty() {
        return Err(WifiError::InvalidConfig {
            context: "need at least one channel",
        });
    }
    if !(interference_range.value().is_finite() && interference_range.value() > 0.0) {
        return Err(WifiError::InvalidConfig {
            context: "interference range must be finite and positive",
        });
    }

    let mut assignment: Vec<u16> = Vec::with_capacity(positions.len());
    let mut usage: Vec<usize> = vec![0; channels.len()];

    for (i, &pos) in positions.iter().enumerate() {
        let neighbour_channels: Vec<u16> = (0..i)
            .filter(|&j| pos.distance_to(positions[j]) <= interference_range)
            .map(|j| assignment[j])
            .collect();
        // Least-used channel not used by a neighbour, else least-used
        // overall.
        let pick = (0..channels.len())
            .filter(|&c| !neighbour_channels.contains(&channels[c]))
            .min_by_key(|&c| usage[c])
            .or_else(|| (0..channels.len()).min_by_key(|&c| usage[c]))
            .expect("channels is non-empty");
        usage[pick] += 1;
        assignment.push(channels[pick]);
    }

    let mut conflicts = Vec::new();
    for i in 0..positions.len() {
        for j in (i + 1)..positions.len() {
            if assignment[i] == assignment[j]
                && positions[i].distance_to(positions[j]) <= interference_range
            {
                conflicts.push((i, j));
            }
        }
    }

    Ok(ChannelPlan {
        assignment,
        conflicts,
    })
}

/// Per-extender co-channel degradation factors implied by a channel plan.
///
/// The paper assumes enough non-overlapping channels that extenders never
/// interfere; when a deployment is denser than the channel budget, each
/// extender sharing its channel with `k` in-range neighbours loses
/// airtime to them. The standard first-order model is an equal split of
/// the channel's airtime among the co-channel contenders, so the factor
/// is `1 / (1 + k)`.
///
/// Multiply a user's achievable rate by its serving extender's factor to
/// study dense deployments (an extension knob; all paper reproductions
/// run with conflict-free plans, factor 1.0).
pub fn interference_factors(plan: &ChannelPlan) -> Vec<f64> {
    let n = plan.assignment.len();
    let mut conflicts = vec![0usize; n];
    for &(a, b) in &plan.conflicts {
        conflicts[a] += 1;
        conflicts[b] += 1;
    }
    conflicts
        .into_iter()
        .map(|k| 1.0 / (1.0 + k as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize, spacing: f64) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new((i % 4) as f64 * spacing, (i / 4) as f64 * spacing))
            .collect()
    }

    #[test]
    fn far_apart_extenders_may_share() {
        let positions = [Point::new(0.0, 0.0), Point::new(500.0, 0.0)];
        let plan = assign_channels(&positions, &[1], Meters::new(30.0)).unwrap();
        assert!(plan.is_conflict_free());
        assert_eq!(plan.assignment, vec![1, 1]);
    }

    #[test]
    fn close_pair_gets_distinct_channels() {
        let positions = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let plan = assign_channels(&positions, CHANNELS_2_4GHZ, Meters::new(30.0)).unwrap();
        assert!(plan.is_conflict_free());
        assert_ne!(plan.assignment[0], plan.assignment[1]);
    }

    #[test]
    fn three_close_extenders_fit_in_2_4ghz() {
        let positions = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 2.0),
        ];
        let plan = assign_channels(&positions, CHANNELS_2_4GHZ, Meters::new(30.0)).unwrap();
        assert!(plan.is_conflict_free());
        let mut chans = plan.assignment.clone();
        chans.sort_unstable();
        chans.dedup();
        assert_eq!(chans.len(), 3);
    }

    #[test]
    fn overload_reports_conflicts() {
        // Four mutually-in-range extenders but only three channels.
        let positions = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
        ];
        let plan = assign_channels(&positions, CHANNELS_2_4GHZ, Meters::new(30.0)).unwrap();
        assert!(!plan.is_conflict_free());
        assert_eq!(plan.conflicts.len(), 1);
    }

    #[test]
    fn fifteen_extender_enterprise_fits_in_5ghz() {
        // The paper's simulation deploys 15 extenders in 100 m × 100 m; with
        // the 8 non-overlapping 5 GHz channels and ~35 m interference range
        // a conflict-free plan exists for a regular grid.
        let positions = grid(15, 33.0);
        let plan = assign_channels(&positions, CHANNELS_5GHZ, Meters::new(35.0)).unwrap();
        assert!(plan.is_conflict_free(), "conflicts: {:?}", plan.conflicts);
    }

    #[test]
    fn usage_balances_across_channels() {
        let positions: Vec<Point> = (0..30)
            .map(|i| Point::new(i as f64 * 1000.0, 0.0))
            .collect();
        let plan = assign_channels(&positions, CHANNELS_2_4GHZ, Meters::new(30.0)).unwrap();
        let count = |ch: u16| plan.assignment.iter().filter(|&&c| c == ch).count();
        assert_eq!(count(1), 10);
        assert_eq!(count(6), 10);
        assert_eq!(count(11), 10);
    }

    #[test]
    fn conflict_free_plan_has_unit_factors() {
        let positions = [Point::new(0.0, 0.0), Point::new(500.0, 0.0)];
        let plan = assign_channels(&positions, CHANNELS_2_4GHZ, Meters::new(30.0)).unwrap();
        assert_eq!(interference_factors(&plan), vec![1.0, 1.0]);
    }

    #[test]
    fn conflicting_extenders_split_airtime() {
        // Four mutually-in-range extenders on three channels: exactly one
        // pair shares, and both members of it drop to 1/2.
        let positions = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
        ];
        let plan = assign_channels(&positions, CHANNELS_2_4GHZ, Meters::new(30.0)).unwrap();
        let factors = interference_factors(&plan);
        let halves = factors.iter().filter(|&&f| (f - 0.5).abs() < 1e-12).count();
        let ones = factors.iter().filter(|&&f| (f - 1.0).abs() < 1e-12).count();
        assert_eq!(halves, 2);
        assert_eq!(ones, 2);
    }

    #[test]
    fn single_channel_dense_cluster_splits_n_ways() {
        let positions = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ];
        let plan = assign_channels(&positions, &[1], Meters::new(30.0)).unwrap();
        let factors = interference_factors(&plan);
        // Everyone conflicts with everyone: each hears 2 rivals.
        assert!(factors.iter().all(|&f| (f - 1.0 / 3.0).abs() < 1e-12));
    }

    #[test]
    fn empty_positions_give_empty_plan() {
        let plan = assign_channels(&[], CHANNELS_2_4GHZ, Meters::new(30.0)).unwrap();
        assert!(plan.assignment.is_empty());
        assert!(plan.is_conflict_free());
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(assign_channels(&[], &[], Meters::new(30.0)).is_err());
        assert!(assign_channels(&[], CHANNELS_2_4GHZ, Meters::ZERO).is_err());
        assert!(assign_channels(&[], CHANNELS_2_4GHZ, Meters::new(f64::NAN)).is_err());
    }
}
