//! End-to-end distance → achievable-rate radio model.

use wolt_support::rng::Rng;
use wolt_units::{Dbm, Mbps, Meters};

use crate::{LogDistanceModel, RateTable, WifiError};

/// A complete WiFi radio model: transmit power, propagation, and rate table.
///
/// This composes the pieces the paper's simulator needs: "the distance
/// between every user and extender is computed and the corresponding WiFi
/// channel is estimated" (§V-A). One `WifiRadio` describes one class of
/// extender hardware; all extenders in an experiment typically share it.
///
/// # Example
///
/// ```
/// use wolt_units::Meters;
/// use wolt_wifi::WifiRadio;
///
/// let radio = WifiRadio::office_default();
/// assert!(radio.rate_at_distance(Meters::new(3.0)).unwrap()
///     > radio.rate_at_distance(Meters::new(40.0)).unwrap());
/// assert_eq!(radio.rate_at_distance(Meters::new(500.0)), None);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WifiRadio {
    /// Transmit power of the extender's WiFi interface.
    pub tx_power: Dbm,
    /// Propagation model between extender and users.
    pub pathloss: LogDistanceModel,
    /// RSSI → achievable rate mapping.
    pub rate_table: RateTable,
}

impl WifiRadio {
    /// Default enterprise-office radio: 20 dBm transmit power, 2.4 GHz
    /// office path loss, 802.11n 20 MHz rates.
    pub fn office_default() -> Self {
        Self {
            tx_power: Dbm::new(20.0),
            pathloss: LogDistanceModel::office_2_4ghz(),
            rate_table: RateTable::ieee80211n_20mhz(),
        }
    }

    /// The radio class of the paper's large-scale simulation: Cisco
    /// Aironet 1200-era 802.11b rates over a heavily-obstructed office
    /// (path-loss exponent 4). Achievable rates span ≈ 0.65–7.2 Mbit/s —
    /// well below typical per-extender PLC shares, putting the network in
    /// the WiFi-bound regime the paper's Fig. 6 experiments exercise.
    pub fn enterprise_80211b() -> Self {
        Self {
            tx_power: Dbm::new(20.0),
            pathloss: LogDistanceModel {
                exponent: 4.0,
                ..LogDistanceModel::office_2_4ghz()
            },
            rate_table: RateTable::ieee80211b(),
        }
    }

    /// The radio class of the paper's testbed experiments: 802.11n
    /// extenders in a cluttered lab (tables, cubicles, equipment →
    /// exponent 4, modest transmit power), producing the 4–42 Mbit/s
    /// per-link achievable rates visible in the paper's Fig. 3a.
    pub fn lab_80211n() -> Self {
        Self {
            tx_power: Dbm::new(15.0),
            pathloss: LogDistanceModel {
                exponent: 4.0,
                ..LogDistanceModel::office_2_4ghz()
            },
            rate_table: RateTable::ieee80211n_20mhz(),
        }
    }

    /// Validates the composed configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`WifiError::InvalidConfig`] from the path-loss model and
    /// rejects a non-finite transmit power.
    pub fn validate(&self) -> Result<(), WifiError> {
        if !self.tx_power.is_finite() {
            return Err(WifiError::InvalidConfig {
                context: "tx power must be finite",
            });
        }
        self.pathloss.validate()
    }

    /// Median RSSI observed by a user at distance `d`.
    pub fn rssi_at_distance(&self, d: Meters) -> Dbm {
        self.pathloss.rssi(self.tx_power, d)
    }

    /// Achievable rate (`r_ij`) at distance `d` with median propagation, or
    /// `None` when the user is out of association range.
    pub fn rate_at_distance(&self, d: Meters) -> Option<Mbps> {
        self.rate_table.achievable_rate(self.rssi_at_distance(d))
    }

    /// Achievable rate with a shadowing sample drawn from `rng`.
    pub fn rate_at_distance_shadowed<R: Rng + ?Sized>(
        &self,
        d: Meters,
        rng: &mut R,
    ) -> Option<Mbps> {
        let rssi = self.pathloss.rssi_shadowed(self.tx_power, d, rng);
        self.rate_table.achievable_rate(rssi)
    }

    /// Maximum distance at which a user can still associate (median
    /// propagation).
    pub fn association_range(&self) -> Meters {
        self.pathloss
            .range_for_rssi(self.tx_power, self.rate_table.association_threshold())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_user_gets_top_rate() {
        let radio = WifiRadio::office_default();
        let r = radio.rate_at_distance(Meters::new(1.0)).unwrap();
        assert!((r.value() - 65.0 * 0.65).abs() < 1e-9);
    }

    #[test]
    fn rate_degrades_monotonically_with_distance() {
        let radio = WifiRadio::office_default();
        let mut prev = Mbps::new(f64::MAX);
        for d in [1.0, 5.0, 10.0, 20.0, 30.0, 45.0, 60.0] {
            match radio.rate_at_distance(Meters::new(d)) {
                Some(r) => {
                    assert!(r <= prev, "rate increased at {d} m");
                    prev = r;
                }
                None => break,
            }
        }
    }

    #[test]
    fn association_range_consistent_with_rate_lookup() {
        let radio = WifiRadio::office_default();
        let range = radio.association_range();
        assert!(radio
            .rate_at_distance(Meters::new(range.value() * 0.99))
            .is_some());
        assert!(radio
            .rate_at_distance(Meters::new(range.value() * 1.01))
            .is_none());
    }

    #[test]
    fn association_range_is_realistic_for_enterprise() {
        // With the default model the cell radius should land in the tens of
        // metres (an enterprise access point, not a city-wide tower).
        let radio = WifiRadio::office_default();
        let range = radio.association_range().value();
        assert!((30.0..120.0).contains(&range), "range {range} m");
    }

    #[test]
    fn enterprise_radio_is_wifi_bound_class() {
        let r = WifiRadio::enterprise_80211b();
        // Nearby users get at most 11 * 0.65 ≈ 7.2 Mbit/s.
        let near = r.rate_at_distance(Meters::new(2.0)).unwrap();
        assert!((near.value() - 11.0 * 0.65).abs() < 1e-9);
        // Coverage reaches most of a 100 m plane cell.
        assert!(r.association_range().value() > 50.0);
    }

    #[test]
    fn lab_radio_spans_the_paper_rate_range() {
        let r = WifiRadio::lab_80211n();
        let near = r.rate_at_distance(Meters::new(2.0)).unwrap();
        let far_range = r.association_range().value();
        assert!(near.value() > 35.0, "near rate {near}");
        assert!((15.0..60.0).contains(&far_range), "range {far_range}");
    }

    #[test]
    fn validate_propagates_pathloss_errors() {
        let mut radio = WifiRadio::office_default();
        assert!(radio.validate().is_ok());
        radio.pathloss.exponent = -1.0;
        assert!(radio.validate().is_err());
        radio = WifiRadio::office_default();
        radio.tx_power = Dbm::new(f64::NAN);
        assert!(radio.validate().is_err());
    }

    #[test]
    fn shadowed_rate_varies_but_stays_in_table() {
        use wolt_support::rng::SeedableRng;
        let mut radio = WifiRadio::office_default();
        radio.pathloss = radio.pathloss.with_shadowing(8.0);
        let mut rng = wolt_support::rng::ChaCha8Rng::seed_from_u64(3);
        let rates: Vec<Option<Mbps>> = (0..200)
            .map(|_| radio.rate_at_distance_shadowed(Meters::new(30.0), &mut rng))
            .collect();
        let distinct: std::collections::BTreeSet<String> = rates
            .iter()
            .map(|r| format!("{:?}", r.map(|m| m.value())))
            .collect();
        assert!(distinct.len() > 1, "shadowing produced no rate diversity");
        for r in rates.into_iter().flatten() {
            assert!(r.value() <= 65.0 * 0.65 + 1e-9);
            assert!(r.value() >= 6.5 * 0.65 - 1e-9);
        }
    }
}
