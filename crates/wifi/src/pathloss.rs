//! Log-distance path-loss channel model.
//!
//! The paper's simulator uses "a simple model to simulate the WiFi channel
//! qualities where the channel quality is a function of the distance between
//! the extender and the user" (§V-A, citing a Cisco Aironet data sheet).
//! The standard such model for indoor 802.11 is log-distance path loss:
//!
//! ```text
//! PL(d) = PL(d0) + 10·n·log10(d/d0) + X_σ
//! ```
//!
//! where `n` is the path-loss exponent (≈ 3 for an office with interior
//! walls) and `X_σ` is optional zero-mean Gaussian shadowing. Received
//! signal strength is then `RSSI = P_tx − PL(d)`.

use wolt_support::rng::Rng;
use wolt_units::{Db, Dbm, Meters};

use crate::WifiError;

/// Log-distance path-loss model with optional log-normal shadowing.
///
/// # Example
///
/// ```
/// use wolt_units::{Dbm, Meters};
/// use wolt_wifi::LogDistanceModel;
///
/// let model = LogDistanceModel::office_2_4ghz();
/// let near = model.rssi(Dbm::new(20.0), Meters::new(2.0));
/// let far = model.rssi(Dbm::new(20.0), Meters::new(40.0));
/// assert!(near > far);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogDistanceModel {
    /// Path loss at the reference distance, in dB.
    pub reference_loss: Db,
    /// Reference distance `d0` (usually 1 m).
    pub reference_distance: Meters,
    /// Path-loss exponent `n` (2 = free space, ~3 = office, ~4 = dense).
    pub exponent: f64,
    /// Standard deviation of log-normal shadowing in dB (0 = deterministic).
    pub shadowing_sigma: f64,
}

impl LogDistanceModel {
    /// Office model at 2.4 GHz: 40 dB loss at 1 m, exponent 3.0.
    ///
    /// Yields full-rate coverage out to ≈ 15 m and association cut-off
    /// around 55–65 m with 20 dBm transmit power and the
    /// [`crate::RateTable::ieee80211n_20mhz`] sensitivities — consistent
    /// with enterprise WiFi cells and with the paper's 100 m × 100 m
    /// 15-extender floor plan.
    pub fn office_2_4ghz() -> Self {
        Self {
            reference_loss: Db::new(40.0),
            reference_distance: Meters::new(1.0),
            exponent: 3.0,
            shadowing_sigma: 0.0,
        }
    }

    /// Office model at 5 GHz: 46 dB loss at 1 m, exponent 3.2 (5 GHz
    /// attenuates faster through walls).
    pub fn office_5ghz() -> Self {
        Self {
            reference_loss: Db::new(46.0),
            reference_distance: Meters::new(1.0),
            exponent: 3.2,
            shadowing_sigma: 0.0,
        }
    }

    /// Returns a copy with log-normal shadowing of the given σ (dB).
    pub fn with_shadowing(mut self, sigma_db: f64) -> Self {
        self.shadowing_sigma = sigma_db;
        self
    }

    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::InvalidConfig`] when the exponent, reference
    /// distance, or shadowing σ is non-positive/negative respectively or
    /// non-finite.
    pub fn validate(&self) -> Result<(), WifiError> {
        if !(self.exponent.is_finite() && self.exponent > 0.0) {
            return Err(WifiError::InvalidConfig {
                context: "path-loss exponent must be finite and positive",
            });
        }
        if !(self.reference_distance.value().is_finite() && self.reference_distance.value() > 0.0) {
            return Err(WifiError::InvalidConfig {
                context: "reference distance must be finite and positive",
            });
        }
        if !(self.shadowing_sigma.is_finite() && self.shadowing_sigma >= 0.0) {
            return Err(WifiError::InvalidConfig {
                context: "shadowing sigma must be finite and non-negative",
            });
        }
        Ok(())
    }

    /// Deterministic (median) path loss at distance `d`.
    ///
    /// Distances below the reference distance are clamped to it, so the
    /// loss function is monotone and never negative-slope near zero.
    pub fn loss(&self, d: Meters) -> Db {
        let d = d.max(self.reference_distance);
        let ratio = d / self.reference_distance;
        Db::new(self.reference_loss.value() + 10.0 * self.exponent * ratio.log10())
    }

    /// Path loss with a shadowing sample drawn from `rng`.
    pub fn loss_shadowed<R: Rng + ?Sized>(&self, d: Meters, rng: &mut R) -> Db {
        let median = self.loss(d);
        if self.shadowing_sigma == 0.0 {
            return median;
        }
        // Box-Muller transform for a standard normal sample; rand's
        // distributions module is avoided to keep the dependency surface to
        // the core `Rng` trait.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        Db::new(median.value() + self.shadowing_sigma * z)
    }

    /// Median received signal strength for a transmitter at `tx_power`.
    pub fn rssi(&self, tx_power: Dbm, d: Meters) -> Dbm {
        tx_power.minus_loss(self.loss(d))
    }

    /// Received signal strength with a shadowing sample drawn from `rng`.
    pub fn rssi_shadowed<R: Rng + ?Sized>(&self, tx_power: Dbm, d: Meters, rng: &mut R) -> Dbm {
        tx_power.minus_loss(self.loss_shadowed(d, rng))
    }

    /// Distance at which the median RSSI drops to `threshold` — the cell
    /// radius for a given receiver sensitivity.
    pub fn range_for_rssi(&self, tx_power: Dbm, threshold: Dbm) -> Meters {
        let budget = tx_power.value() - threshold.value() - self.reference_loss.value();
        if budget <= 0.0 {
            return self.reference_distance;
        }
        Meters::new(self.reference_distance.value() * 10f64.powf(budget / (10.0 * self.exponent)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolt_support::rng::ChaCha8Rng;
    use wolt_support::rng::SeedableRng;

    #[test]
    fn loss_increases_with_distance() {
        let m = LogDistanceModel::office_2_4ghz();
        let mut prev = Db::new(0.0);
        for d in [1.0, 2.0, 5.0, 10.0, 50.0, 100.0] {
            let l = m.loss(Meters::new(d));
            assert!(l > prev, "loss not monotone at {d} m");
            prev = l;
        }
    }

    #[test]
    fn loss_at_reference_distance_is_reference_loss() {
        let m = LogDistanceModel::office_2_4ghz();
        assert_eq!(m.loss(Meters::new(1.0)), Db::new(40.0));
    }

    #[test]
    fn loss_clamped_below_reference_distance() {
        let m = LogDistanceModel::office_2_4ghz();
        assert_eq!(m.loss(Meters::new(0.1)), m.loss(Meters::new(1.0)));
        assert_eq!(m.loss(Meters::ZERO), Db::new(40.0));
    }

    #[test]
    fn ten_x_distance_adds_10n_db() {
        let m = LogDistanceModel::office_2_4ghz();
        let l1 = m.loss(Meters::new(3.0));
        let l10 = m.loss(Meters::new(30.0));
        assert!((l10.value() - l1.value() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn rssi_is_tx_minus_loss() {
        let m = LogDistanceModel::office_2_4ghz();
        let rssi = m.rssi(Dbm::new(20.0), Meters::new(10.0));
        assert!((rssi.value() - (20.0 - 70.0)).abs() < 1e-9);
    }

    #[test]
    fn range_inverts_rssi() {
        let m = LogDistanceModel::office_2_4ghz();
        let tx = Dbm::new(20.0);
        let threshold = Dbm::new(-75.0);
        let range = m.range_for_rssi(tx, threshold);
        let rssi_at_range = m.rssi(tx, range);
        assert!((rssi_at_range.value() - threshold.value()).abs() < 1e-6);
    }

    #[test]
    fn range_clamps_to_reference_when_budget_negative() {
        let m = LogDistanceModel::office_2_4ghz();
        let range = m.range_for_rssi(Dbm::new(0.0), Dbm::new(0.0));
        assert_eq!(range, m.reference_distance);
    }

    #[test]
    fn shadowing_zero_is_deterministic() {
        let m = LogDistanceModel::office_2_4ghz();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = m.loss_shadowed(Meters::new(10.0), &mut rng);
        assert_eq!(a, m.loss(Meters::new(10.0)));
    }

    #[test]
    fn shadowing_has_roughly_zero_mean_and_given_sigma() {
        let m = LogDistanceModel::office_2_4ghz().with_shadowing(6.0);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let median = m.loss(Meters::new(10.0)).value();
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| m.loss_shadowed(Meters::new(10.0), &mut rng).value() - median)
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.2, "shadowing mean {mean} too far from 0");
        assert!(
            (var.sqrt() - 6.0).abs() < 0.2,
            "shadowing sigma {} too far from 6",
            var.sqrt()
        );
    }

    #[test]
    fn five_ghz_attenuates_faster() {
        let m24 = LogDistanceModel::office_2_4ghz();
        let m5 = LogDistanceModel::office_5ghz();
        let d = Meters::new(30.0);
        assert!(m5.loss(d) > m24.loss(d));
    }

    #[test]
    fn validate_catches_bad_parameters() {
        let mut m = LogDistanceModel::office_2_4ghz();
        assert!(m.validate().is_ok());
        m.exponent = 0.0;
        assert!(m.validate().is_err());
        m = LogDistanceModel::office_2_4ghz();
        m.reference_distance = Meters::ZERO;
        assert!(m.validate().is_err());
        m = LogDistanceModel::office_2_4ghz();
        m.shadowing_sigma = -1.0;
        assert!(m.validate().is_err());
    }
}
