//! RSSI → modulation-and-coding-scheme → rate tables.
//!
//! The paper's implementation reads "information on the modulation and
//! coding scheme used for each WiFi channel" from the NIC driver "to
//! estimate the transmission bit-rate between the user and the extender"
//! (§V-A). We model that estimation step: a [`RateTable`] maps a received
//! signal strength to the highest MCS whose receiver sensitivity it clears,
//! and then to an *achievable* rate — the PHY rate discounted by a MAC
//! efficiency factor (preamble, contention, ACKs, TCP overhead), which is
//! the `r_ij` used throughout the paper's model (its Fig. 3a labels links
//! with achievable rates like 15 or 40 Mbit/s, not raw PHY rates).

use wolt_units::{Dbm, Mbps};

use crate::WifiError;

/// One MCS row: index, PHY rate, and the minimum RSSI needed to decode it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McsEntry {
    /// MCS index (0 = most robust, highest index = fastest).
    pub index: u8,
    /// PHY bit rate at this MCS.
    pub phy_rate: Mbps,
    /// Receiver sensitivity: the minimum RSSI at which this MCS decodes.
    pub min_rssi: Dbm,
}

/// An RSSI → rate lookup table plus MAC efficiency.
///
/// # Example
///
/// ```
/// use wolt_units::Dbm;
/// use wolt_wifi::RateTable;
///
/// let table = RateTable::ieee80211n_20mhz();
/// let strong = table.achievable_rate(Dbm::new(-50.0)).unwrap();
/// let weak = table.achievable_rate(Dbm::new(-80.0)).unwrap();
/// assert!(strong > weak);
/// assert!(table.achievable_rate(Dbm::new(-95.0)).is_none()); // out of range
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RateTable {
    entries: Vec<McsEntry>,
    mac_efficiency: f64,
}

impl RateTable {
    /// 802.11n, 20 MHz channel, one spatial stream, 800 ns guard interval
    /// (MCS 0–7), with textbook receiver sensitivities.
    ///
    /// Achievable rates with the default 0.65 MAC efficiency span
    /// ≈ 4–42 Mbit/s, matching the per-link WiFi rates observed in the
    /// paper's testbed (Fig. 3a labels of 10–40 Mbit/s).
    pub fn ieee80211n_20mhz() -> Self {
        let rows: [(u8, f64, f64); 8] = [
            (0, 6.5, -82.0),
            (1, 13.0, -79.0),
            (2, 19.5, -77.0),
            (3, 26.0, -74.0),
            (4, 39.0, -70.0),
            (5, 52.0, -66.0),
            (6, 58.5, -65.0),
            (7, 65.0, -64.0),
        ];
        Self::from_entries(
            rows.iter()
                .map(|&(index, rate, rssi)| McsEntry {
                    index,
                    phy_rate: Mbps::new(rate),
                    min_rssi: Dbm::new(rssi),
                })
                .collect(),
            0.65,
        )
        .expect("built-in table is well-formed")
    }

    /// 802.11n, 40 MHz channel, one spatial stream, 800 ns guard interval
    /// (MCS 0–7); the wide-channel option of dual-band extenders.
    pub fn ieee80211n_40mhz() -> Self {
        let rows: [(u8, f64, f64); 8] = [
            (0, 13.5, -79.0),
            (1, 27.0, -76.0),
            (2, 40.5, -74.0),
            (3, 54.0, -71.0),
            (4, 81.0, -67.0),
            (5, 108.0, -63.0),
            (6, 121.5, -62.0),
            (7, 135.0, -61.0),
        ];
        Self::from_entries(
            rows.iter()
                .map(|&(index, rate, rssi)| McsEntry {
                    index,
                    phy_rate: Mbps::new(rate),
                    min_rssi: Dbm::new(rssi),
                })
                .collect(),
            0.65,
        )
        .expect("built-in table is well-formed")
    }

    /// 802.11b (DSSS/CCK) rates — the Cisco Aironet 1200 class the paper's
    /// simulation model cites for its distance → channel-quality mapping.
    ///
    /// Achievable rates with the default 0.65 MAC efficiency span
    /// ≈ 0.65–7.2 Mbit/s, well below typical per-extender PLC shares —
    /// the WiFi-bound regime of the paper's large-scale simulations.
    pub fn ieee80211b() -> Self {
        let rows: [(u8, f64, f64); 4] = [
            (0, 1.0, -94.0),
            (1, 2.0, -91.0),
            (2, 5.5, -87.0),
            (3, 11.0, -82.0),
        ];
        Self::from_entries(
            rows.iter()
                .map(|&(index, rate, rssi)| McsEntry {
                    index,
                    phy_rate: Mbps::new(rate),
                    min_rssi: Dbm::new(rssi),
                })
                .collect(),
            0.65,
        )
        .expect("built-in table is well-formed")
    }

    /// 802.11g (ERP-OFDM) rates 6–54 Mbit/s — the mid-generation option
    /// between the 802.11b and 802.11n presets.
    pub fn ieee80211g() -> Self {
        let rows: [(u8, f64, f64); 8] = [
            (0, 6.0, -90.0),
            (1, 9.0, -89.0),
            (2, 12.0, -87.0),
            (3, 18.0, -85.0),
            (4, 24.0, -82.0),
            (5, 36.0, -78.0),
            (6, 48.0, -74.0),
            (7, 54.0, -72.0),
        ];
        Self::from_entries(
            rows.iter()
                .map(|&(index, rate, rssi)| McsEntry {
                    index,
                    phy_rate: Mbps::new(rate),
                    min_rssi: Dbm::new(rssi),
                })
                .collect(),
            0.65,
        )
        .expect("built-in table is well-formed")
    }

    /// Builds a table from explicit entries.
    ///
    /// Entries may be given in any order; they are sorted by sensitivity.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::InvalidConfig`] if `entries` is empty, any rate
    /// is unusable, any sensitivity is non-finite, a faster MCS has a
    /// *lower* sensitivity requirement than a slower one (non-monotone
    /// table), or `mac_efficiency` is outside `(0, 1]`.
    pub fn from_entries(
        mut entries: Vec<McsEntry>,
        mac_efficiency: f64,
    ) -> Result<Self, WifiError> {
        if entries.is_empty() {
            return Err(WifiError::InvalidConfig {
                context: "rate table needs at least one entry",
            });
        }
        if !(mac_efficiency > 0.0 && mac_efficiency <= 1.0) {
            return Err(WifiError::InvalidConfig {
                context: "mac efficiency must be in (0, 1]",
            });
        }
        for e in &entries {
            if !e.phy_rate.is_usable() {
                return Err(WifiError::UnusableRate {
                    rate_mbps: e.phy_rate.value(),
                });
            }
            if !e.min_rssi.is_finite() {
                return Err(WifiError::InvalidConfig {
                    context: "mcs sensitivity must be finite",
                });
            }
        }
        entries.sort_by(|a, b| {
            a.min_rssi
                .partial_cmp(&b.min_rssi)
                .expect("finite sensitivities compare")
        });
        for pair in entries.windows(2) {
            if pair[1].phy_rate < pair[0].phy_rate {
                return Err(WifiError::InvalidConfig {
                    context: "rate must be non-decreasing in sensitivity",
                });
            }
        }
        Ok(Self {
            entries,
            mac_efficiency,
        })
    }

    /// Returns a copy with a different MAC efficiency.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::InvalidConfig`] if `mac_efficiency` is outside
    /// `(0, 1]`.
    pub fn with_mac_efficiency(self, mac_efficiency: f64) -> Result<Self, WifiError> {
        Self::from_entries(self.entries, mac_efficiency)
    }

    /// The table rows, sorted from most robust to fastest.
    pub fn entries(&self) -> &[McsEntry] {
        &self.entries
    }

    /// MAC efficiency factor applied by [`Self::achievable_rate`].
    pub fn mac_efficiency(&self) -> f64 {
        self.mac_efficiency
    }

    /// Highest MCS decodable at `rssi`, or `None` if even the most robust
    /// MCS cannot decode (the station cannot associate).
    pub fn mcs_for_rssi(&self, rssi: Dbm) -> Option<McsEntry> {
        self.entries
            .iter()
            .rev()
            .find(|e| rssi >= e.min_rssi)
            .copied()
    }

    /// PHY rate at `rssi`, or `None` when out of range.
    pub fn phy_rate(&self, rssi: Dbm) -> Option<Mbps> {
        self.mcs_for_rssi(rssi).map(|e| e.phy_rate)
    }

    /// Achievable saturation throughput at `rssi` — PHY rate × MAC
    /// efficiency — or `None` when out of range. This is the paper's
    /// `r_ij`.
    pub fn achievable_rate(&self, rssi: Dbm) -> Option<Mbps> {
        self.phy_rate(rssi).map(|r| r * self.mac_efficiency)
    }

    /// The weakest RSSI at which a station can still associate.
    pub fn association_threshold(&self) -> Dbm {
        self.entries[0].min_rssi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_signal_gets_top_mcs() {
        let t = RateTable::ieee80211n_20mhz();
        let e = t.mcs_for_rssi(Dbm::new(-40.0)).unwrap();
        assert_eq!(e.index, 7);
        assert_eq!(e.phy_rate, Mbps::new(65.0));
    }

    #[test]
    fn weak_signal_gets_bottom_mcs() {
        let t = RateTable::ieee80211n_20mhz();
        let e = t.mcs_for_rssi(Dbm::new(-81.0)).unwrap();
        assert_eq!(e.index, 0);
    }

    #[test]
    fn below_threshold_gets_nothing() {
        let t = RateTable::ieee80211n_20mhz();
        assert_eq!(t.mcs_for_rssi(Dbm::new(-82.5)), None);
        assert_eq!(t.achievable_rate(Dbm::new(-100.0)), None);
    }

    #[test]
    fn boundary_rssi_is_inclusive() {
        let t = RateTable::ieee80211n_20mhz();
        assert_eq!(t.mcs_for_rssi(Dbm::new(-82.0)).unwrap().index, 0);
        assert_eq!(t.mcs_for_rssi(Dbm::new(-64.0)).unwrap().index, 7);
    }

    #[test]
    fn achievable_applies_efficiency() {
        let t = RateTable::ieee80211n_20mhz();
        let phy = t.phy_rate(Dbm::new(-50.0)).unwrap();
        let ach = t.achievable_rate(Dbm::new(-50.0)).unwrap();
        assert!((ach.value() - phy.value() * 0.65).abs() < 1e-9);
    }

    #[test]
    fn rate_monotone_in_rssi() {
        let t = RateTable::ieee80211n_20mhz();
        let mut prev = Mbps::ZERO;
        for rssi in (-85..=-40).map(|v| Dbm::new(v as f64)) {
            if let Some(r) = t.achievable_rate(rssi) {
                assert!(r >= prev, "rate not monotone at {rssi}");
                prev = r;
            } else {
                assert_eq!(prev, Mbps::ZERO, "gap in coverage at {rssi}");
            }
        }
    }

    #[test]
    fn association_threshold_is_weakest_sensitivity() {
        let t = RateTable::ieee80211n_20mhz();
        assert_eq!(t.association_threshold(), Dbm::new(-82.0));
    }

    #[test]
    fn dot11b_is_slower_and_longer_ranged_than_dot11n() {
        let b = RateTable::ieee80211b();
        let n = RateTable::ieee80211n_20mhz();
        // 802.11b tops out at 11 Mbit/s PHY...
        assert_eq!(b.phy_rate(Dbm::new(-40.0)).unwrap(), Mbps::new(11.0));
        // ...but decodes far weaker signals than 802.11n.
        assert!(b.association_threshold() < n.association_threshold());
        assert!(b.achievable_rate(Dbm::new(-90.0)).is_some());
        assert!(n.achievable_rate(Dbm::new(-90.0)).is_none());
    }

    #[test]
    fn dot11g_sits_between_b_and_n() {
        let b = RateTable::ieee80211b();
        let g = RateTable::ieee80211g();
        let n = RateTable::ieee80211n_20mhz();
        let strong = Dbm::new(-40.0);
        assert!(g.phy_rate(strong).unwrap() > b.phy_rate(strong).unwrap());
        assert!(g.phy_rate(strong).unwrap() < n.phy_rate(strong).unwrap());
        // g decodes weaker signals than n but not as weak as b.
        assert!(g.association_threshold() < n.association_threshold());
        assert!(g.association_threshold() > b.association_threshold());
    }

    #[test]
    fn forty_mhz_is_faster_at_same_mcs() {
        let narrow = RateTable::ieee80211n_20mhz();
        let wide = RateTable::ieee80211n_40mhz();
        let rssi = Dbm::new(-50.0);
        assert!(wide.phy_rate(rssi).unwrap() > narrow.phy_rate(rssi).unwrap());
    }

    #[test]
    fn from_entries_rejects_empty() {
        assert!(matches!(
            RateTable::from_entries(vec![], 0.5),
            Err(WifiError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn from_entries_rejects_bad_efficiency() {
        let e = McsEntry {
            index: 0,
            phy_rate: Mbps::new(6.5),
            min_rssi: Dbm::new(-82.0),
        };
        assert!(RateTable::from_entries(vec![e], 0.0).is_err());
        assert!(RateTable::from_entries(vec![e], 1.5).is_err());
        assert!(RateTable::from_entries(vec![e], 1.0).is_ok());
    }

    #[test]
    fn from_entries_rejects_non_monotone_rates() {
        let entries = vec![
            McsEntry {
                index: 0,
                phy_rate: Mbps::new(50.0),
                min_rssi: Dbm::new(-82.0),
            },
            McsEntry {
                index: 1,
                phy_rate: Mbps::new(10.0),
                min_rssi: Dbm::new(-60.0),
            },
        ];
        assert!(matches!(
            RateTable::from_entries(entries, 0.65),
            Err(WifiError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn from_entries_rejects_unusable_rate() {
        let entries = vec![McsEntry {
            index: 0,
            phy_rate: Mbps::ZERO,
            min_rssi: Dbm::new(-82.0),
        }];
        assert!(matches!(
            RateTable::from_entries(entries, 0.65),
            Err(WifiError::UnusableRate { .. })
        ));
    }

    #[test]
    fn from_entries_sorts_input() {
        let entries = vec![
            McsEntry {
                index: 1,
                phy_rate: Mbps::new(20.0),
                min_rssi: Dbm::new(-60.0),
            },
            McsEntry {
                index: 0,
                phy_rate: Mbps::new(10.0),
                min_rssi: Dbm::new(-80.0),
            },
        ];
        let t = RateTable::from_entries(entries, 0.65).unwrap();
        assert_eq!(t.entries()[0].index, 0);
        assert_eq!(t.mcs_for_rssi(Dbm::new(-70.0)).unwrap().index, 0);
        assert_eq!(t.mcs_for_rssi(Dbm::new(-50.0)).unwrap().index, 1);
    }
}
