//! Throughput-fair WiFi cell model (Eq. 1 of the WOLT paper).
//!
//! Saturated 802.11 stations sharing one access point all achieve the same
//! long-term throughput — the "performance anomaly" of Heusse et al. — so a
//! cell serving users with achievable rates `r_1 … r_n` delivers
//!
//! ```text
//! per-user  t   = 1 / Σ_i (1/r_i)
//! aggregate T   = n / Σ_i (1/r_i)          (harmonic-mean law, Eq. 1)
//! ```
//!
//! [`aggregate_throughput`]/[`per_user_throughput`] compute this directly;
//! [`CellLoad`] maintains the harmonic weight `Σ 1/r_i` incrementally so the
//! greedy baseline and Phase-II local search can evaluate "what if user *i*
//! joined/left extender *j*" in O(1).

use wolt_units::Mbps;

use crate::WifiError;

/// Aggregate cell throughput `n / Σ(1/r_i)` (Eq. 1).
///
/// # Errors
///
/// Returns [`WifiError::EmptyCell`] for an empty rate list and
/// [`WifiError::UnusableRate`] if any rate is zero, negative, or
/// non-finite.
///
/// # Example
///
/// ```
/// use wolt_units::Mbps;
/// use wolt_wifi::cell::aggregate_throughput;
///
/// # fn main() -> Result<(), wolt_wifi::WifiError> {
/// // The RSSI-based association of the paper's Fig. 3b: users at 15 and
/// // 40 Mbit/s on one extender share ≈ 22 Mbit/s total (11 each).
/// let t = aggregate_throughput(&[Mbps::new(15.0), Mbps::new(40.0)])?;
/// assert!((t.value() - 21.82).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
pub fn aggregate_throughput(rates: &[Mbps]) -> Result<Mbps, WifiError> {
    Ok(per_user_throughput(rates)? * rates.len() as f64)
}

/// Per-user throughput `1 / Σ(1/r_i)` — equal for every user in the cell.
///
/// # Errors
///
/// Same as [`aggregate_throughput`].
pub fn per_user_throughput(rates: &[Mbps]) -> Result<Mbps, WifiError> {
    if rates.is_empty() {
        return Err(WifiError::EmptyCell);
    }
    let mut weight = 0.0;
    for r in rates {
        if !r.is_usable() {
            return Err(WifiError::UnusableRate {
                rate_mbps: r.value(),
            });
        }
        weight += 1.0 / r.value();
    }
    Ok(Mbps::new(1.0 / weight))
}

/// Incrementally-maintained cell state: user count and harmonic weight.
///
/// Supports O(1) join/leave and O(1) "what-if" queries, which the greedy
/// baseline performs once per (arriving user × extender).
///
/// # Example
///
/// ```
/// use wolt_units::Mbps;
/// use wolt_wifi::cell::CellLoad;
///
/// let mut cell = CellLoad::new();
/// cell.join(Mbps::new(15.0));
/// let with_both = cell.aggregate_if_joined(Mbps::new(40.0));
/// assert!((with_both.value() - 21.82).abs() < 0.01);
/// cell.join(Mbps::new(40.0));
/// assert_eq!(cell.aggregate(), with_both);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CellLoad {
    users: usize,
    harmonic_weight: f64,
}

impl CellLoad {
    /// An empty cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cell pre-loaded with the given user rates.
    ///
    /// # Panics
    ///
    /// Panics if any rate is unusable; use [`CellLoad::join`] with validated
    /// rates for fallible construction.
    pub fn with_rates(rates: &[Mbps]) -> Self {
        let mut cell = Self::new();
        for &r in rates {
            cell.join(r);
        }
        cell
    }

    /// Number of users in the cell.
    pub fn users(&self) -> usize {
        self.users
    }

    /// True when the cell has no users.
    pub fn is_empty(&self) -> bool {
        self.users == 0
    }

    /// The harmonic weight `Σ 1/r_i`.
    pub fn harmonic_weight(&self) -> f64 {
        self.harmonic_weight
    }

    /// Adds a user with achievable rate `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not usable (zero, negative, or non-finite).
    pub fn join(&mut self, rate: Mbps) {
        assert!(rate.is_usable(), "cannot join with rate {rate}");
        self.users += 1;
        self.harmonic_weight += 1.0 / rate.value();
    }

    /// Removes a user with achievable rate `rate`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is empty or `rate` is not usable. Removing a rate
    /// that was never added silently corrupts the weight — callers own that
    /// bookkeeping (the simulator tracks per-user rates).
    pub fn leave(&mut self, rate: Mbps) {
        assert!(self.users > 0, "cannot leave an empty cell");
        assert!(rate.is_usable(), "cannot leave with rate {rate}");
        self.users -= 1;
        self.harmonic_weight -= 1.0 / rate.value();
        if self.users == 0 {
            // Clear float dust so an emptied cell compares equal to new().
            self.harmonic_weight = 0.0;
        }
    }

    /// Aggregate throughput of the current cell (0 when empty).
    pub fn aggregate(&self) -> Mbps {
        if self.users == 0 {
            Mbps::ZERO
        } else {
            Mbps::new(self.users as f64 / self.harmonic_weight)
        }
    }

    /// Per-user throughput of the current cell (0 when empty).
    pub fn per_user(&self) -> Mbps {
        if self.users == 0 {
            Mbps::ZERO
        } else {
            Mbps::new(1.0 / self.harmonic_weight)
        }
    }

    /// Aggregate throughput if a user with rate `rate` joined (query only —
    /// the cell is not modified).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not usable.
    pub fn aggregate_if_joined(&self, rate: Mbps) -> Mbps {
        assert!(rate.is_usable(), "cannot evaluate join with rate {rate}");
        let users = self.users + 1;
        Mbps::new(users as f64 / (self.harmonic_weight + 1.0 / rate.value()))
    }

    /// Aggregate throughput if a user with rate `rate` left (query only).
    ///
    /// # Panics
    ///
    /// Panics if the cell is empty or `rate` is not usable.
    pub fn aggregate_if_left(&self, rate: Mbps) -> Mbps {
        assert!(self.users > 0, "cannot evaluate leave on an empty cell");
        assert!(rate.is_usable(), "cannot evaluate leave with rate {rate}");
        let users = self.users - 1;
        if users == 0 {
            Mbps::ZERO
        } else {
            Mbps::new(users as f64 / (self.harmonic_weight - 1.0 / rate.value()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(v: f64) -> Mbps {
        Mbps::new(v)
    }

    #[test]
    fn single_user_gets_full_rate() {
        let t = aggregate_throughput(&[mbps(30.0)]).unwrap();
        assert!((t.value() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn equal_rates_split_evenly() {
        let t = per_user_throughput(&[mbps(30.0), mbps(30.0)]).unwrap();
        assert!((t.value() - 15.0).abs() < 1e-12);
        let agg = aggregate_throughput(&[mbps(30.0), mbps(30.0)]).unwrap();
        assert!((agg.value() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn performance_anomaly_slow_user_drags_cell() {
        // One 54 Mbit/s user alone: 54. Adding a 1 Mbit/s user crushes the
        // aggregate to below 2 Mbit/s — the anomaly the paper re-measures in
        // Fig. 2a.
        let alone = aggregate_throughput(&[mbps(54.0)]).unwrap();
        let mixed = aggregate_throughput(&[mbps(54.0), mbps(1.0)]).unwrap();
        assert!(alone.value() > 50.0);
        assert!(mixed.value() < 2.0, "aggregate {mixed}");
    }

    #[test]
    fn fig3b_rssi_cell() {
        // Fig. 3b: users with 15 and 40 Mbit/s on extender 1 get ~11 each.
        let per = per_user_throughput(&[mbps(15.0), mbps(40.0)]).unwrap();
        assert!((per.value() - 10.909).abs() < 0.001);
    }

    #[test]
    fn aggregate_bounded_by_slowest_and_fastest() {
        let rates = [mbps(6.0), mbps(20.0), mbps(50.0)];
        let agg = aggregate_throughput(&rates).unwrap();
        // Aggregate is n times the harmonic mean / n = harmonic mean of the
        // rates, which lies between min and max.
        assert!(agg.value() >= 6.0 && agg.value() <= 50.0);
    }

    #[test]
    fn empty_cell_rejected() {
        assert_eq!(aggregate_throughput(&[]).unwrap_err(), WifiError::EmptyCell);
        assert_eq!(per_user_throughput(&[]).unwrap_err(), WifiError::EmptyCell);
    }

    #[test]
    fn unusable_rate_rejected() {
        let err = aggregate_throughput(&[mbps(10.0), Mbps::ZERO]).unwrap_err();
        assert_eq!(err, WifiError::UnusableRate { rate_mbps: 0.0 });
    }

    #[test]
    fn cell_load_matches_direct_computation() {
        let rates = [mbps(15.0), mbps(40.0), mbps(7.5)];
        let mut cell = CellLoad::new();
        for &r in &rates {
            cell.join(r);
        }
        let direct = aggregate_throughput(&rates).unwrap();
        assert!((cell.aggregate().value() - direct.value()).abs() < 1e-12);
        assert_eq!(cell.users(), 3);
    }

    #[test]
    fn cell_load_join_leave_round_trip() {
        let mut cell = CellLoad::with_rates(&[mbps(20.0), mbps(30.0)]);
        let before = cell.aggregate();
        cell.join(mbps(10.0));
        cell.leave(mbps(10.0));
        assert!((cell.aggregate().value() - before.value()).abs() < 1e-9);
    }

    #[test]
    fn cell_load_what_if_queries_do_not_mutate() {
        let cell = CellLoad::with_rates(&[mbps(20.0)]);
        let hypothetical = cell.aggregate_if_joined(mbps(20.0));
        assert!((hypothetical.value() - 20.0).abs() < 1e-12);
        assert_eq!(cell.users(), 1);
        assert!((cell.aggregate().value() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn cell_load_if_left_matches_actual_leave() {
        let mut cell = CellLoad::with_rates(&[mbps(20.0), mbps(5.0)]);
        let predicted = cell.aggregate_if_left(mbps(5.0));
        cell.leave(mbps(5.0));
        assert!((cell.aggregate().value() - predicted.value()).abs() < 1e-12);
    }

    #[test]
    fn emptied_cell_equals_fresh_cell() {
        let mut cell = CellLoad::new();
        cell.join(mbps(33.0));
        cell.leave(mbps(33.0));
        assert_eq!(cell, CellLoad::new());
        assert_eq!(cell.aggregate(), Mbps::ZERO);
        assert_eq!(cell.per_user(), Mbps::ZERO);
    }

    #[test]
    #[should_panic(expected = "empty cell")]
    fn leave_on_empty_panics() {
        CellLoad::new().leave(mbps(5.0));
    }

    #[test]
    #[should_panic(expected = "cannot join")]
    fn join_with_zero_rate_panics() {
        CellLoad::new().join(Mbps::ZERO);
    }

    #[test]
    fn adding_fast_user_helps_adding_slow_user_hurts() {
        // Lemma 1 of the paper in miniature: joining with a rate above the
        // cell's harmonic mean raises the aggregate; below lowers it.
        let cell = CellLoad::with_rates(&[mbps(20.0), mbps(20.0)]);
        let base = cell.aggregate();
        assert!(cell.aggregate_if_joined(mbps(40.0)) > base);
        assert!(cell.aggregate_if_joined(mbps(5.0)) < base);
        // Joining with exactly the harmonic mean keeps it unchanged.
        let same = cell.aggregate_if_joined(mbps(20.0));
        assert!((same.value() - base.value()).abs() < 1e-12);
    }
}
