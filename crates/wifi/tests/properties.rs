//! Property-based tests for the 802.11 substrate, on the in-tree
//! `wolt_support::check` harness.

use wolt_support::check::Runner;
use wolt_support::rng::{ChaCha8Rng, Rng};
use wolt_units::{Dbm, Mbps, Meters, Seconds};
use wolt_wifi::cell::{aggregate_throughput, per_user_throughput, CellLoad};
use wolt_wifi::dcf::{simulate_dcf, DcfConfig};
use wolt_wifi::{LogDistanceModel, RateTable, WifiRadio};

fn rates(rng: &mut ChaCha8Rng, max_len: usize) -> Vec<Mbps> {
    let n = rng.gen_range(1..=max_len);
    (0..n)
        .map(|_| Mbps::new(rng.gen_range(1.0..60.0)))
        .collect()
}

/// Eq. 1 invariants: aggregate = n × per-user, bounded by min/max rate.
#[test]
fn cell_model_invariants() {
    Runner::new("cell_model_invariants").run(
        |rng| rates(rng, 8),
        |rates| {
            let per_user = per_user_throughput(rates).expect("usable rates");
            let aggregate = aggregate_throughput(rates).expect("usable rates");
            if (aggregate.value() - per_user.value() * rates.len() as f64).abs() >= 1e-9 {
                return Err("aggregate != n x per-user".into());
            }
            let min = rates
                .iter()
                .map(|r| r.value())
                .fold(f64::INFINITY, f64::min);
            let max = rates.iter().map(|r| r.value()).fold(0.0, f64::max);
            if aggregate.value() > max + 1e-9 {
                return Err("aggregate above fastest rate".into());
            }
            if aggregate.value() < min - 1e-9 {
                return Err("aggregate below slowest rate".into());
            }
            if per_user.value() > min + 1e-9 {
                return Err("per-user above slowest rate".into());
            }
            Ok(())
        },
    );
}

/// Adding a user never increases anyone's throughput (contention is
/// monotone).
#[test]
fn adding_user_is_monotone_decreasing() {
    Runner::new("adding_user_is_monotone_decreasing").run(
        |rng| (rates(rng, 6), rng.gen_range(1.0..60.0)),
        |(rates, extra)| {
            let before = per_user_throughput(rates).expect("usable");
            let mut bigger = rates.clone();
            bigger.push(Mbps::new(*extra));
            let after = per_user_throughput(&bigger).expect("usable");
            if after <= before + Mbps::new(1e-12) {
                Ok(())
            } else {
                Err(format!("per-user rose from {before} to {after}"))
            }
        },
    );
}

/// CellLoad tracks the direct computation through arbitrary
/// join/leave sequences.
#[test]
fn cell_load_consistent_with_direct() {
    Runner::new("cell_load_consistent_with_direct").run(
        |rng| rates(rng, 8),
        |rates| {
            let mut cell = CellLoad::new();
            for &r in rates {
                cell.join(r);
            }
            let direct = aggregate_throughput(rates).expect("usable");
            if (cell.aggregate().value() - direct.value()).abs() >= 1e-9 {
                return Err("incremental aggregate diverged after joins".into());
            }
            // Leave half of them and re-check.
            let (keep, drop) = rates.split_at(rates.len() / 2);
            for &r in drop {
                cell.leave(r);
            }
            if !keep.is_empty() {
                let direct = aggregate_throughput(keep).expect("usable");
                if (cell.aggregate().value() - direct.value()).abs() >= 1e-9 {
                    return Err("incremental aggregate diverged after leaves".into());
                }
            } else if !cell.is_empty() {
                return Err("cell not empty after all users left".into());
            }
            Ok(())
        },
    );
}

/// Path loss is monotone in distance for any valid exponent.
#[test]
fn pathloss_monotone() {
    Runner::new("pathloss_monotone").run(
        |rng| {
            (
                rng.gen_range(1.5..5.0),
                rng.gen_range(1.0..100.0),
                rng.gen_range(1.0..100.0),
            )
        },
        |&(exponent, d1, d2)| {
            let model = LogDistanceModel {
                exponent,
                ..LogDistanceModel::office_2_4ghz()
            };
            let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            if model.loss(Meters::new(near)) <= model.loss(Meters::new(far)) {
                Ok(())
            } else {
                Err(format!("loss decreased from {near} m to {far} m"))
            }
        },
    );
}

/// The rate tables are monotone: more signal never means less rate.
#[test]
fn rate_tables_monotone() {
    Runner::new("rate_tables_monotone").run(
        |rng| (rng.gen_range(-100.0..-30.0), rng.gen_range(-100.0..-30.0)),
        |&(rssi1, rssi2)| {
            for table in [
                RateTable::ieee80211b(),
                RateTable::ieee80211g(),
                RateTable::ieee80211n_20mhz(),
                RateTable::ieee80211n_40mhz(),
            ] {
                let (weak, strong) = if rssi1 <= rssi2 {
                    (rssi1, rssi2)
                } else {
                    (rssi2, rssi1)
                };
                let weak_rate = table.achievable_rate(Dbm::new(weak));
                let strong_rate = table.achievable_rate(Dbm::new(strong));
                match (weak_rate, strong_rate) {
                    (Some(w), Some(s)) if s < w => {
                        return Err(format!("rate dropped from {w} to {s} with more signal"));
                    }
                    (Some(_), None) => return Err("stronger signal lost coverage".into()),
                    _ => {}
                }
            }
            Ok(())
        },
    );
}

/// Radio rate lookups agree with the table applied to the computed
/// RSSI.
#[test]
fn radio_composes_pathloss_and_table() {
    Runner::new("radio_composes_pathloss_and_table").run(
        |rng| rng.gen_range(1.0..120.0),
        |&d| {
            let radio = WifiRadio::lab_80211n();
            let rssi = radio.rssi_at_distance(Meters::new(d));
            if radio.rate_at_distance(Meters::new(d)) == radio.rate_table.achievable_rate(rssi) {
                Ok(())
            } else {
                Err(format!("rate_at_distance disagrees with table at {d} m"))
            }
        },
    );
}

/// The DCF conservation invariants for one (n, seed) instance.
fn check_dcf_conservation(n: usize, seed: u64) -> Result<(), String> {
    let rates: Vec<Mbps> = (0..n).map(|i| Mbps::new(6.0 + 8.0 * i as f64)).collect();
    let cfg = DcfConfig {
        duration: Seconds::new(1.0),
        ..DcfConfig::default()
    };
    let out = simulate_dcf(&rates, &cfg, seed).expect("valid sim");
    let airtime: f64 = out.airtime_fraction.iter().sum();
    if airtime > 1.0 + 1e-9 {
        return Err(format!("airtime fractions sum to {airtime} > 1"));
    }
    if !out.per_station.iter().all(|t| t.value() >= 0.0) {
        return Err("negative per-station throughput".into());
    }
    // Over a 1 s horizon every saturated station should have won at
    // least once; allow a rare unlucky straggler but never a majority.
    let starved = out.per_station.iter().filter(|t| t.value() == 0.0).count();
    if starved * 2 > n.max(1) {
        return Err(format!("{starved}/{n} stations starved"));
    }
    let max_rate = rates.iter().map(|r| r.value()).fold(0.0, f64::max);
    if out.aggregate.value() > max_rate {
        return Err("aggregate above fastest station rate".into());
    }
    Ok(())
}

/// DCF conservation: airtime fractions sum below 1 and throughputs
/// are positive under saturation.
#[test]
fn dcf_conservation() {
    Runner::new("dcf_conservation").run(
        |rng| (rng.gen_range(1..6usize), rng.gen_range(0..50u64)),
        |&(n, seed)| check_dcf_conservation(n, seed),
    );
}

/// Saved proptest regression for `dcf_conservation`: the shrunk case
/// `n = 5, seed = 42` once exposed a starvation-count off-by-one.
#[test]
fn dcf_conservation_regression_n5_seed42() {
    check_dcf_conservation(5, 42).expect("regression case stays green");
}
