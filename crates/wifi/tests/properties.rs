//! Property-based tests for the 802.11 substrate.

use proptest::prelude::*;
use wolt_units::{Dbm, Mbps, Meters, Seconds};
use wolt_wifi::cell::{aggregate_throughput, per_user_throughput, CellLoad};
use wolt_wifi::dcf::{simulate_dcf, DcfConfig};
use wolt_wifi::{LogDistanceModel, RateTable, WifiRadio};

fn rates(max_len: usize) -> impl Strategy<Value = Vec<Mbps>> {
    proptest::collection::vec((1.0f64..60.0).prop_map(Mbps::new), 1..=max_len)
}

proptest! {
    /// Eq. 1 invariants: aggregate = n × per-user, bounded by min/max rate.
    #[test]
    fn cell_model_invariants(rates in rates(8)) {
        let per_user = per_user_throughput(&rates).expect("usable rates");
        let aggregate = aggregate_throughput(&rates).expect("usable rates");
        prop_assert!((aggregate.value() - per_user.value() * rates.len() as f64).abs() < 1e-9);
        let min = rates.iter().map(|r| r.value()).fold(f64::INFINITY, f64::min);
        let max = rates.iter().map(|r| r.value()).fold(0.0, f64::max);
        prop_assert!(aggregate.value() <= max + 1e-9);
        prop_assert!(aggregate.value() >= min - 1e-9);
        prop_assert!(per_user.value() <= min + 1e-9, "per-user above slowest rate");
    }

    /// Adding a user never increases anyone's throughput (contention is
    /// monotone).
    #[test]
    fn adding_user_is_monotone_decreasing(rates in rates(6), extra in 1.0f64..60.0) {
        let before = per_user_throughput(&rates).expect("usable");
        let mut bigger = rates.clone();
        bigger.push(Mbps::new(extra));
        let after = per_user_throughput(&bigger).expect("usable");
        prop_assert!(after <= before + Mbps::new(1e-12));
    }

    /// CellLoad tracks the direct computation through arbitrary
    /// join/leave sequences.
    #[test]
    fn cell_load_consistent_with_direct(rates in rates(8)) {
        let mut cell = CellLoad::new();
        for &r in &rates {
            cell.join(r);
        }
        let direct = aggregate_throughput(&rates).expect("usable");
        prop_assert!((cell.aggregate().value() - direct.value()).abs() < 1e-9);
        // Leave half of them and re-check.
        let (keep, drop) = rates.split_at(rates.len() / 2);
        for &r in drop {
            cell.leave(r);
        }
        if !keep.is_empty() {
            let direct = aggregate_throughput(keep).expect("usable");
            prop_assert!((cell.aggregate().value() - direct.value()).abs() < 1e-9);
        } else {
            prop_assert!(cell.is_empty());
        }
    }

    /// Path loss is monotone in distance for any valid exponent.
    #[test]
    fn pathloss_monotone(exponent in 1.5f64..5.0, d1 in 1.0f64..100.0, d2 in 1.0f64..100.0) {
        let model = LogDistanceModel {
            exponent,
            ..LogDistanceModel::office_2_4ghz()
        };
        let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(model.loss(Meters::new(near)) <= model.loss(Meters::new(far)));
    }

    /// The rate tables are monotone: more signal never means less rate.
    #[test]
    fn rate_tables_monotone(rssi1 in -100.0f64..-30.0, rssi2 in -100.0f64..-30.0) {
        for table in [
            RateTable::ieee80211b(),
            RateTable::ieee80211g(),
            RateTable::ieee80211n_20mhz(),
            RateTable::ieee80211n_40mhz(),
        ] {
            let (weak, strong) = if rssi1 <= rssi2 { (rssi1, rssi2) } else { (rssi2, rssi1) };
            let weak_rate = table.achievable_rate(Dbm::new(weak));
            let strong_rate = table.achievable_rate(Dbm::new(strong));
            match (weak_rate, strong_rate) {
                (Some(w), Some(s)) => prop_assert!(s >= w),
                (Some(_), None) => prop_assert!(false, "stronger signal lost coverage"),
                _ => {}
            }
        }
    }

    /// Radio rate lookups agree with the table applied to the computed
    /// RSSI.
    #[test]
    fn radio_composes_pathloss_and_table(d in 1.0f64..120.0) {
        let radio = WifiRadio::lab_80211n();
        let rssi = radio.rssi_at_distance(Meters::new(d));
        prop_assert_eq!(
            radio.rate_at_distance(Meters::new(d)),
            radio.rate_table.achievable_rate(rssi)
        );
    }

    /// DCF conservation: airtime fractions sum below 1 and throughputs
    /// are positive under saturation.
    #[test]
    fn dcf_conservation(n in 1usize..6, seed in 0u64..50) {
        let rates: Vec<Mbps> = (0..n).map(|i| Mbps::new(6.0 + 8.0 * i as f64)).collect();
        let cfg = DcfConfig {
            duration: Seconds::new(1.0),
            ..DcfConfig::default()
        };
        let out = simulate_dcf(&rates, &cfg, seed).expect("valid sim");
        let airtime: f64 = out.airtime_fraction.iter().sum();
        prop_assert!(airtime <= 1.0 + 1e-9);
        prop_assert!(out.per_station.iter().all(|t| t.value() >= 0.0));
        // Over a 1 s horizon every saturated station should have won at
        // least once; allow a rare unlucky straggler but never a majority.
        let starved = out.per_station.iter().filter(|t| t.value() == 0.0).count();
        prop_assert!(starved * 2 < n.max(1) + 1, "{starved}/{n} stations starved");
        prop_assert!(out.aggregate.value() <= rates.iter().map(|r| r.value()).fold(0.0, f64::max));
    }
}
