//! Micro-benchmark: the analytic sharing-model kernels (evaluation is the
//! inner loop of every policy).

use wolt_bench::harness::{black_box, Group};
use wolt_core::{evaluate, Association, Network};
use wolt_plc::timeshare::{allocate_time_fair, ExtenderDemand};
use wolt_support::rng::{ChaCha8Rng, Rng, SeedableRng};
use wolt_units::Mbps;
use wolt_wifi::cell::aggregate_throughput;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);

    let mut group = Group::new("sharing_models");
    for n in [4usize, 16, 64] {
        let rates: Vec<Mbps> = (0..n)
            .map(|_| Mbps::new(rng.gen_range(1.0..50.0)))
            .collect();
        group.bench(&format!("wifi_cell/{n}"), || {
            aggregate_throughput(black_box(&rates)).expect("usable rates")
        });

        let demands: Vec<ExtenderDemand> = (0..n)
            .map(|_| ExtenderDemand {
                capacity: Mbps::new(rng.gen_range(60.0..160.0)),
                demand: Mbps::new(rng.gen_range(0.0..80.0)),
            })
            .collect();
        group.bench(&format!("plc_timeshare/{n}"), || {
            allocate_time_fair(black_box(&demands)).expect("valid demands")
        });
    }

    // Full end-to-end evaluation of an association.
    let users = 60;
    let exts = 15;
    let rates: Vec<Vec<f64>> = (0..users)
        .map(|_| (0..exts).map(|_| rng.gen_range(1.0..40.0)).collect())
        .collect();
    let caps: Vec<f64> = (0..exts).map(|_| rng.gen_range(60.0..160.0)).collect();
    let net = Network::from_raw(caps, rates).expect("valid network");
    let assoc = Association::complete((0..users).map(|i| i % exts).collect());
    group.bench("evaluate_60u_15e", || {
        evaluate(black_box(&net), black_box(&assoc)).expect("valid")
    });
}
