//! Flow-level fidelity — the queueing simulator vs the analytic model.
//!
//! Strengthens the Fig. 4c argument: beyond the protocol rig, the
//! packet/flow pipeline (PLC airtime scheduler → extender queues →
//! throughput-fair WiFi drain, with emergent back-pressure) must converge
//! to the analytic `evaluate()` numbers every association policy
//! optimizes against.

use wolt_bench::{columns, f2, header, measured, row};
use wolt_core::baselines::{Greedy, Rssi};
use wolt_core::{evaluate, AssociationPolicy, Wolt};
use wolt_sim::flowsim::{simulate_flows, FlowSimConfig};
use wolt_sim::scenario::ScenarioConfig;
use wolt_sim::Scenario;
use wolt_support::rng::ChaCha8Rng;
use wolt_support::rng::SeedableRng;

fn main() {
    header(
        "Flow fidelity — queueing simulation vs analytic model",
        "(extends Fig. 4c: simulator self-consistency)",
        "3 seeded lab scenarios × 3 policies; 8 s flow simulation, 25% warmup",
    );

    columns(&[
        "seed",
        "policy",
        "analytic_mbps",
        "flow_mbps",
        "gap_percent",
        "peak_queue_fill",
    ]);

    let wolt = Wolt::new();
    let greedy = Greedy::new();
    let policies: [&dyn AssociationPolicy; 3] = [&wolt, &greedy, &Rssi];
    let mut worst_gap: f64 = 0.0;

    for seed in 0..3u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let scenario =
            Scenario::generate(&ScenarioConfig::lab(7), &mut rng).expect("scenario generates");
        let network = scenario.network().expect("network builds");
        for policy in policies {
            let assoc = policy.associate(&network).expect("policy runs");
            let analytic = evaluate(&network, &assoc).expect("valid");
            let flows =
                simulate_flows(&network, &assoc, &FlowSimConfig::default()).expect("flows run");
            let gap = 100.0 * (flows.aggregate.value() - analytic.aggregate.value()).abs()
                / analytic.aggregate.value();
            worst_gap = worst_gap.max(gap);
            let peak = flows.peak_queue_fill.iter().cloned().fold(0.0f64, f64::max);
            row(&[
                seed.to_string(),
                policy.name().to_string(),
                f2(analytic.aggregate.value()),
                f2(flows.aggregate.value()),
                f2(gap),
                f2(peak),
            ]);
        }
    }

    measured(&format!(
        "the flow-level pipeline converges to the analytic model within \
         {worst_gap:.2}% on every (seed, policy) pair — queues and \
         back-pressure reproduce Eq. 1/Eq. 2 + redistribution"
    ));
}
