//! §V-E — Jain's fairness comparison.
//!
//! Paper result: WOLT 0.66, Greedy 0.52, RSSI 0.65 on average — the
//! throughput-maximizing policy is at least as fair as the baselines.

use wolt_bench::{columns, f2, header, mean, measured, row};
use wolt_core::baselines::{Greedy, Rssi, SelfishGreedy};
use wolt_core::{AssociationPolicy, Wolt};
use wolt_sim::experiment::run_static_trials;
use wolt_sim::scenario::ScenarioConfig;

fn main() {
    header(
        "§V-E — Jain's fairness index",
        "WOLT 0.66, Greedy 0.52, RSSI 0.65 (WOLT at least as fair as baselines)",
        "enterprise plane, 15 extenders, 36 users, 100 seeds",
    );

    let config = ScenarioConfig::enterprise(36);
    let wolt = Wolt::new();
    let greedy = Greedy::new();
    let selfish = SelfishGreedy::new();
    let policies: Vec<&dyn AssociationPolicy> = vec![&wolt, &greedy, &selfish, &Rssi];
    let seeds: Vec<u64> = (0..100).collect();
    let records = run_static_trials(&config, &policies, &seeds).expect("trials run");

    columns(&["policy", "mean_jain", "min_jain", "max_jain"]);
    let mut summary = Vec::new();
    for name in ["WOLT", "Greedy", "SelfishGreedy", "RSSI"] {
        let jains: Vec<f64> = records
            .iter()
            .filter(|r| r.policy == name)
            .filter_map(|r| r.jain)
            .collect();
        let m = mean(&jains);
        summary.push((name, m));
        row(&[
            name.to_string(),
            f2(m),
            f2(jains.iter().cloned().fold(f64::INFINITY, f64::min)),
            f2(jains.iter().cloned().fold(0.0, f64::max)),
        ]);
    }

    let get = |n: &str| summary.iter().find(|(name, _)| *name == n).expect("ran").1;
    measured(&format!(
        "mean Jain: WOLT = {:.2} (paper 0.66), Greedy = {:.2} (paper 0.52), \
         RSSI = {:.2} (paper 0.65); WOLT is not less fair than the baselines: {}",
        get("WOLT"),
        get("Greedy"),
        get("RSSI"),
        get("WOLT") + 0.02 >= get("Greedy").max(get("RSSI")),
    ));
}
