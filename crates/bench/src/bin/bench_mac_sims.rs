//! Micro-benchmark: the slotted MAC micro-simulators (cost per simulated
//! second, by station count).

use wolt_bench::harness::{black_box, Group};
use wolt_plc::mac1901::{simulate_1901, Mac1901Config};
use wolt_units::{Mbps, Seconds};
use wolt_wifi::dcf::{simulate_dcf, DcfConfig};

fn main() {
    let mut group = Group::new("mac_sims");
    for n in [2usize, 8] {
        let wifi_rates: Vec<Mbps> = (0..n).map(|i| Mbps::new(6.0 + 6.0 * i as f64)).collect();
        let dcf_cfg = DcfConfig {
            duration: Seconds::new(0.5),
            ..DcfConfig::default()
        };
        group.bench(&format!("dcf_half_second/{n}"), || {
            simulate_dcf(black_box(&wifi_rates), &dcf_cfg, 7).expect("valid sim")
        });

        let plc_rates: Vec<Mbps> = (0..n).map(|i| Mbps::new(60.0 + 20.0 * i as f64)).collect();
        let mac_cfg = Mac1901Config {
            duration: Seconds::new(0.5),
            ..Mac1901Config::default()
        };
        group.bench(&format!("mac1901_half_second/{n}"), || {
            simulate_1901(black_box(&plc_rates), &mac_cfg, 7).expect("valid sim")
        });
    }
}
