//! Fig. 6b — aggregate throughput as users arrive and depart.
//!
//! Paper setup: Poisson arrivals (λ = 3) and departures (μ = 1) grow the
//! population 36 → 66 → 102 across epochs; WOLT outperforms Greedy at
//! every epoch even past 100 users.

use wolt_bench::{columns, f2, header, measured, row};
use wolt_sim::dynamics::DynamicsConfig;
use wolt_sim::experiment::{DynamicSimulation, OnlinePolicy};
use wolt_sim::scenario::ScenarioConfig;

fn main() {
    header(
        "Fig 6b — aggregate throughput per epoch under user churn",
        "population grows ≈ 36 → 66 → 102; WOLT > Greedy at every epoch",
        "enterprise plane, 15 extenders, Poisson λ=3 / μ=1, 5 epochs, mean of 10 runs",
    );

    let sim = DynamicSimulation::new(ScenarioConfig::enterprise(36), DynamicsConfig::default());
    let epochs = 5;
    let runs: Vec<u64> = (0..10).collect();

    // Per-epoch means across runs for each policy.
    let mut means = std::collections::BTreeMap::new();
    let mut user_counts = vec![0.0f64; epochs];
    for policy in [
        OnlinePolicy::Wolt,
        OnlinePolicy::GreedyOnline,
        OnlinePolicy::Rssi,
    ] {
        let mut per_epoch = vec![0.0f64; epochs];
        for &seed in &runs {
            let records = sim.run(policy, epochs, seed).expect("dynamic run");
            for (e, r) in records.iter().enumerate() {
                per_epoch[e] += r.aggregate / runs.len() as f64;
                if policy == OnlinePolicy::Wolt {
                    user_counts[e] += r.users as f64 / runs.len() as f64;
                }
            }
        }
        means.insert(policy.name(), per_epoch);
    }

    columns(&[
        "epoch",
        "mean_users",
        "wolt_mbps",
        "greedy_mbps",
        "rssi_mbps",
    ]);
    for e in 0..epochs {
        row(&[
            (e + 1).to_string(),
            f2(user_counts[e]),
            f2(means["WOLT"][e]),
            f2(means["Greedy"][e]),
            f2(means["RSSI"][e]),
        ]);
    }

    let always_ahead = (0..epochs).all(|e| means["WOLT"][e] > means["Greedy"][e]);
    measured(&format!(
        "population trajectory {:.0} → {:.0} → {:.0} (paper 36 → 66 → 102); \
         WOLT ahead of Greedy at every epoch: {always_ahead}",
        user_counts[0], user_counts[1], user_counts[2],
    ));
}
