//! Fig. 2a — WiFi-only throughput-fair sharing (the performance anomaly).
//!
//! Paper setup: two laptops on one extender; user 2 is moved from the same
//! spot as user 1 (location 1) to progressively farther locations 2 and 3.
//! Both users' throughput drops together because 802.11 equalizes
//! throughput, not airtime.
//!
//! We reproduce it twice: with the analytic Eq. 1 model and with the
//! slotted DCF micro-simulator.

use wolt_bench::{columns, f2, header, measured, row};
use wolt_units::Meters;
use wolt_wifi::cell::per_user_throughput;
use wolt_wifi::dcf::{simulate_dcf, DcfConfig};
use wolt_wifi::WifiRadio;

fn main() {
    header(
        "Fig 2a — WiFi-only medium sharing",
        "moving user 2 away degrades BOTH users' throughput (throughput-fair sharing)",
        "1 extender, 2 users; user 1 fixed at 3 m; user 2 at 3/15/24 m; 802.11n radio",
    );

    let radio = WifiRadio::lab_80211n();
    let user1_distance = Meters::new(3.0);
    let locations = [(1, 3.0), (2, 15.0), (3, 24.0)];

    columns(&[
        "location",
        "user2_distance_m",
        "analytic_user1_mbps",
        "analytic_user2_mbps",
        "dcf_user1_mbps",
        "dcf_user2_mbps",
    ]);

    let r1 = radio.rate_at_distance(user1_distance).expect("in range");
    let phy1 = radio
        .rate_table
        .phy_rate(radio.rssi_at_distance(user1_distance))
        .expect("in range");

    let mut analytic_user1 = Vec::new();
    for (loc, d2) in locations {
        let d2 = Meters::new(d2);
        let r2 = radio.rate_at_distance(d2).expect("in range");
        let per_user = per_user_throughput(&[r1, r2]).expect("usable rates");
        analytic_user1.push(per_user.value());

        let phy2 = radio
            .rate_table
            .phy_rate(radio.rssi_at_distance(d2))
            .expect("in range");
        let dcf = simulate_dcf(&[phy1, phy2], &DcfConfig::default(), 42).expect("valid config");

        row(&[
            loc.to_string(),
            f2(d2.value()),
            f2(per_user.value()),
            f2(per_user.value()),
            f2(dcf.per_station[0].value()),
            f2(dcf.per_station[1].value()),
        ]);
    }

    let drop = 100.0 * (1.0 - analytic_user1.last().unwrap() / analytic_user1[0]);
    measured(&format!(
        "stationary user 1 loses {drop:.0}% of its throughput when user 2 moves \
         from location 1 to 3 — the performance anomaly, as in the paper"
    ));
}
