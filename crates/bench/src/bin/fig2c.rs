//! Fig. 2c — time-fair PLC medium sharing.
//!
//! Paper setup: activate 1, 2, 3, then 4 extenders simultaneously; each
//! active extender delivers 1/k of its isolation throughput. We regenerate
//! it with both the analytic time-fair allocator (exact) and the IEEE 1901
//! CSMA/CA micro-simulator (emergent).

use wolt_bench::{columns, f2, header, measured, row};
use wolt_plc::mac1901::{simulate_1901, Mac1901Config};
use wolt_plc::timeshare::{allocate_time_fair, ExtenderDemand};
use wolt_units::{Mbps, Seconds};

fn main() {
    header(
        "Fig 2c — time-fair sharing between active PLC extenders",
        "with k extenders active, each delivers 1/k of its isolation throughput",
        "capacities 160/120/90/60 Mbit/s; k = 1..4; analytic allocator + 1901 MAC sim (20 s)",
    );

    let capacities = [160.0, 120.0, 90.0, 60.0];
    let mac_cfg = Mac1901Config {
        duration: Seconds::new(20.0),
        ..Mac1901Config::default()
    };

    // Single-extender MAC baselines for normalization.
    let singles: Vec<f64> = capacities
        .iter()
        .map(|&c| {
            simulate_1901(&[Mbps::new(c)], &mac_cfg, 99)
                .expect("valid sim")
                .per_station[0]
                .value()
        })
        .collect();

    columns(&[
        "active_extenders",
        "extender",
        "analytic_mbps",
        "analytic_fraction_of_isolation",
        "mac1901_mbps",
        "mac1901_fraction_of_isolation",
    ]);

    let mut worst_gap: f64 = 0.0;
    for k in 1..=4usize {
        let entries: Vec<ExtenderDemand> = capacities[..k]
            .iter()
            .map(|&c| ExtenderDemand::saturated(Mbps::new(c)))
            .collect();
        let analytic = allocate_time_fair(&entries).expect("valid demands");
        let rates: Vec<Mbps> = capacities[..k].iter().map(|&c| Mbps::new(c)).collect();
        let mac = simulate_1901(&rates, &mac_cfg, 99).expect("valid sim");
        for j in 0..k {
            let analytic_frac = analytic.throughput[j].value() / capacities[j];
            let mac_frac = mac.per_station[j].value() / singles[j];
            worst_gap = worst_gap.max((mac_frac - 1.0 / k as f64).abs() * k as f64);
            row(&[
                k.to_string(),
                format!("E{}", j + 1),
                f2(analytic.throughput[j].value()),
                f2(analytic_frac),
                f2(mac.per_station[j].value()),
                f2(mac_frac),
            ]);
        }
    }

    measured(&format!(
        "analytic shares are exactly 1/k; the 1901 MAC sim tracks 1/k within \
         {:.0}% (contention overhead) — time-fair sharing as the paper observed",
        worst_gap * 100.0
    ));
}
