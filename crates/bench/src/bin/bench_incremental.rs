//! Incremental-evaluation engine benchmark (ISSUE 2 acceptance numbers).
//!
//! Part 1 — one coordinate-ascent polish sweep over an enterprise network
//! (U = 200 users, A = 20 extenders), scored two ways:
//!
//! * `full`: every candidate move is scored by cloning the association and
//!   running a complete `evaluate()` — O(U·A) per candidate, the
//!   pre-engine behaviour;
//! * `incremental`: the same sweep through [`IncrementalEvaluator`]
//!   probes — O(A·rounds) per candidate.
//!
//! Both sweeps visit identical candidates and must land on the same final
//! aggregate; the `measured:` line reports the speedup (acceptance ≥ 5×).
//!
//! Part 2 — multi-seed static trials fanned out over the
//! [`wolt_support::pool`] at 1/2/4/8 threads. Wall-clock should shrink
//! with threads while the records stay bitwise identical to the
//! single-thread run.

use std::time::Instant;

use wolt_bench::{columns, f2, header, measured, row};
use wolt_core::baselines::{Greedy, Rssi};
use wolt_core::{evaluate, Association, AssociationPolicy, IncrementalEvaluator, Network, Wolt};
use wolt_sim::experiment::run_static_trials_with_threads;
use wolt_sim::scenario::ScenarioConfig;
use wolt_sim::Scenario;
use wolt_support::rng::{ChaCha8Rng, SeedableRng};

const USERS: usize = 200;
const EXTENDERS: usize = 20;

fn enterprise_network(users: usize, extenders: usize, seed: u64) -> Network {
    let mut config = ScenarioConfig::enterprise(users);
    config.extenders = extenders;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Scenario::generate(&config, &mut rng)
        .expect("scenario generates")
        .network()
        .expect("network builds")
}

/// One best-improvement coordinate-ascent sweep scored by incremental
/// probes. Returns (final aggregate, moves applied).
fn sweep_incremental(net: &Network, start: &Association) -> (f64, usize) {
    let mut evaluator = IncrementalEvaluator::new(net, start).expect("valid start");
    let mut moves = 0;
    for i in 0..net.users() {
        let current = evaluator.association().target(i);
        let mut best: Option<(usize, f64)> = None;
        for j in net.reachable_extenders(i) {
            if current == Some(j) {
                continue;
            }
            let Ok(value) = evaluator.probe_move(i, Some(j)) else {
                continue;
            };
            let gain = (value - evaluator.aggregate()).value();
            if gain > 1e-9 && best.is_none_or(|(_, g)| gain > g) {
                best = Some((j, gain));
            }
        }
        if let Some((j, _)) = best {
            evaluator
                .apply_move(i, Some(j))
                .expect("probed move applies");
            moves += 1;
        }
    }
    (evaluator.aggregate().value(), moves)
}

/// The same sweep with every candidate scored by a full clone +
/// `evaluate()` — what polish cost before the incremental engine.
fn sweep_full(net: &Network, start: &Association) -> (f64, usize) {
    let mut assoc = start.clone();
    let mut current = evaluate(net, &assoc)
        .expect("valid start")
        .aggregate
        .value();
    let mut moves = 0;
    for i in 0..net.users() {
        let here = assoc.target(i);
        let mut best: Option<(usize, f64)> = None;
        for j in net.reachable_extenders(i) {
            if here == Some(j) {
                continue;
            }
            let mut candidate = assoc.clone();
            candidate.assign(i, j);
            let Ok(eval) = evaluate(net, &candidate) else {
                continue;
            };
            let gain = eval.aggregate.value() - current;
            if gain > 1e-9 && best.is_none_or(|(_, g)| gain > g) {
                best = Some((j, gain));
            }
        }
        if let Some((j, _)) = best {
            assoc.assign(i, j);
            current = evaluate(net, &assoc).expect("valid move").aggregate.value();
            moves += 1;
        }
    }
    (current, moves)
}

fn main() {
    header(
        "bench_incremental — coordinate-ascent polish and trial fan-out",
        "incremental probes make polish ≥ 5× faster; trials scale with threads, records unchanged",
        &format!("U = {USERS}, A = {EXTENDERS}, enterprise scenario, seed 7"),
    );

    let net = enterprise_network(USERS, EXTENDERS, 7);
    let start = Rssi.associate(&net).expect("rssi start");

    columns(&[
        "engine",
        "users",
        "extenders",
        "sweep_ms",
        "final_mbps",
        "moves",
    ]);
    // Warm up once, then report the fastest of three sweeps — one sweep is
    // already thousands of evaluations, so best-of-3 just trims scheduler
    // noise.
    let best_of = |sweep: &dyn Fn() -> (f64, usize)| {
        let _ = sweep();
        let mut best_ms = f64::INFINITY;
        let mut outcome = (0.0, 0);
        for _ in 0..3 {
            let t = Instant::now();
            outcome = sweep();
            best_ms = best_ms.min(t.elapsed().as_secs_f64() * 1e3);
        }
        (best_ms, outcome)
    };

    let (inc_ms, (inc_value, inc_moves)) = best_of(&|| sweep_incremental(&net, &start));
    row(&[
        "incremental".into(),
        USERS.to_string(),
        EXTENDERS.to_string(),
        f2(inc_ms),
        f2(inc_value),
        inc_moves.to_string(),
    ]);

    let (full_ms, (full_value, full_moves)) = best_of(&|| sweep_full(&net, &start));
    row(&[
        "full".into(),
        USERS.to_string(),
        EXTENDERS.to_string(),
        f2(full_ms),
        f2(full_value),
        full_moves.to_string(),
    ]);

    assert!(
        (inc_value - full_value).abs() < 1e-6 && inc_moves == full_moves,
        "engines diverged: incremental {inc_value} ({inc_moves} moves) vs full {full_value} ({full_moves} moves)"
    );
    let speedup = full_ms / inc_ms;
    measured(&format!(
        "polish sweep: full = {full_ms:.1} ms, incremental = {inc_ms:.1} ms, speedup = {speedup:.1}x (acceptance >= 5x)"
    ));

    // Part 2 — multi-seed trials at growing thread counts.
    let config = ScenarioConfig::enterprise(40);
    let seeds: Vec<u64> = (0..8).collect();
    let wolt = Wolt::new();
    let greedy = Greedy::new();
    let policies: [&dyn AssociationPolicy; 3] = [&wolt, &greedy, &Rssi];

    columns(&["threads", "seeds", "trials_ms", "records_match_1_thread"]);
    let reference =
        run_static_trials_with_threads(&config, &policies, &seeds, 1).expect("trials run");
    for threads in [1usize, 2, 4, 8] {
        let t = Instant::now();
        let records = run_static_trials_with_threads(&config, &policies, &seeds, threads)
            .expect("trials run");
        let ms = t.elapsed().as_secs_f64() * 1e3;
        row(&[
            threads.to_string(),
            seeds.len().to_string(),
            f2(ms),
            (records == reference).to_string(),
        ]);
        assert_eq!(records, reference, "records changed at {threads} threads");
    }
    measured(
        "trial records bitwise identical at 1/2/4/8 threads; wall-clock scales with workers \
         up to the machine's core count",
    );
}
