//! Fig. 2b — different outlets yield different PLC isolation throughputs.
//!
//! Paper setup: four extenders plugged into different power outlets of the
//! lab, each measured alone with iperf3; isolation throughputs span
//! 60–160 Mbit/s. We regenerate the shape from the powerline wiring model:
//! four outlets of a random building, attenuation → capacity, measured
//! through the noisy offline estimation procedure.

use wolt_bench::{columns, f2, header, measured, row, sort_by_metric};
use wolt_plc::capacity::CapacityEstimator;
use wolt_plc::channel::PlcChannelModel;
use wolt_plc::topology::{random_building, BuildingConfig, OutletId};
use wolt_support::rng::ChaCha8Rng;
use wolt_support::rng::SeedableRng;

fn main() {
    header(
        "Fig 2b — per-outlet PLC isolation throughput",
        "four outlets in one lab span ≈ 60–160 Mbit/s in isolation",
        "4 outlets of a random building; attenuation → HomePlug AV2 capacity; 5-round noisy measurement",
    );

    let mut rng = ChaCha8Rng::seed_from_u64(2020);
    // The paper deliberately picked four outlets "of varying link
    // qualities"; we generate a whole building and take the attenuation
    // quartiles to match that selection.
    let building = random_building(&mut rng, 24, &BuildingConfig::default()).expect("valid config");
    let channel = PlcChannelModel::homeplug_av2();
    let estimator = CapacityEstimator::default();

    let mut outlets: Vec<(usize, f64)> = (0..24)
        .map(|j| {
            let att = building.attenuation(OutletId(j)).expect("outlet exists");
            (j, att.value())
        })
        .collect();
    if let Err(e) = sort_by_metric(&mut outlets) {
        eprintln!(
            "fig2b: unusable attenuation ({e}); outlet {}",
            outlets[e.index].0
        );
        std::process::exit(1);
    }
    let picks = [outlets[0].0, outlets[8].0, outlets[16].0, outlets[23].0];

    columns(&[
        "extender",
        "attenuation_db",
        "true_capacity_mbps",
        "measured_capacity_mbps",
    ]);

    let mut measured_caps = Vec::new();
    for (j, &outlet) in picks.iter().enumerate() {
        let att = building
            .attenuation(OutletId(outlet))
            .expect("outlet exists");
        let truth = channel
            .capacity(att)
            .expect("building outlets are within cutoff");
        let estimate = estimator
            .estimate(truth, &mut rng)
            .expect("usable capacity");
        measured_caps.push(estimate.value());
        row(&[
            format!("E{}", j + 1),
            f2(att.value()),
            f2(truth.value()),
            f2(estimate.value()),
        ]);
    }

    let min = measured_caps.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = measured_caps.iter().cloned().fold(0.0, f64::max);
    measured(&format!(
        "isolation throughputs span {min:.0}-{max:.0} Mbit/s across outlets \
         (paper: 60-160 Mbit/s); heterogeneity ratio {:.1}x",
        max / min
    ));
}
