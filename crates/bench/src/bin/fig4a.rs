//! Fig. 4a — testbed comparison of WOLT, Greedy and RSSI.
//!
//! Paper setup: 3 extenders and 7 laptops in a 2408 m² lab, 25 random
//! topologies. Average improvements: +26% over Greedy, +70% over RSSI.
//! We run the same experiment through the threaded controller rig.

use wolt_bench::{columns, f2, header, measured, row};
use wolt_testbed::experiment::{aggregate_summary, TestbedExperiment};

fn main() {
    header(
        "Fig 4a — average aggregate throughput on the testbed",
        "WOLT ≈ +26% over Greedy and ≈ +70% over RSSI (25 topologies, 3 extenders, 7 users)",
        "threaded CC rig on 25 seeded lab scenarios",
    );

    let comparisons = TestbedExperiment::default().run().expect("experiment runs");

    columns(&["topology", "wolt_mbps", "greedy_mbps", "rssi_mbps"]);
    for c in &comparisons {
        row(&[
            c.topology.to_string(),
            f2(c.wolt.aggregate),
            f2(c.greedy.aggregate),
            f2(c.rssi.aggregate),
        ]);
    }

    let summary = aggregate_summary(&comparisons);
    measured(&format!(
        "mean aggregates: WOLT = {:.1}, Greedy = {:.1}, RSSI = {:.1} Mbit/s; \
         WOLT is {:+.0}% vs Greedy (paper +26%) and {:+.0}% vs RSSI (paper +70%)",
        summary.wolt,
        summary.greedy,
        summary.rssi,
        100.0 * (summary.wolt / summary.greedy - 1.0),
        100.0 * (summary.wolt / summary.rssi - 1.0),
    ));
}
