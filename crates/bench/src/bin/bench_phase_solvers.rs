//! Micro-benchmark: Phase-I assignment backends (Hungarian vs auction)
//! and the Phase-II solvers (NLP vs greedy completion).

use wolt_bench::harness::{black_box, Group};
use wolt_core::phase1::{phase1_utilities, run_phase1_with, Phase1Solver};
use wolt_core::phase2::{run_phase2, run_phase2_greedy, Phase2Config};
use wolt_core::Network;
use wolt_opt::auction::auction_assignment;
use wolt_opt::dynamic::IncrementalAssignment;
use wolt_opt::max_weight_assignment;
use wolt_sim::scenario::ScenarioConfig;
use wolt_sim::Scenario;
use wolt_support::rng::{ChaCha8Rng, Rng, SeedableRng};

fn enterprise_network(users: usize) -> Network {
    let config = ScenarioConfig::enterprise(users);
    let mut rng = ChaCha8Rng::seed_from_u64(users as u64);
    Scenario::generate(&config, &mut rng)
        .expect("scenario generates")
        .network()
        .expect("network builds")
}

fn main() {
    let mut group = Group::new("phase_solvers");

    for users in [36usize, 124] {
        let network = enterprise_network(users);
        let utilities = phase1_utilities(&network).expect("utilities build");

        group.bench(&format!("phase1_hungarian/{users}"), || {
            max_weight_assignment(black_box(&utilities))
        });
        group.bench(&format!("phase1_auction/{users}"), || {
            auction_assignment(black_box(&utilities), 1e-9)
        });

        let phase1 = run_phase1_with(&network, Phase1Solver::Hungarian).expect("phase 1 runs");
        let config = Phase2Config::default();
        group.bench(&format!("phase2_nlp/{users}"), || {
            run_phase2(black_box(&network), &phase1.association, &config).expect("runs")
        });
        group.bench(&format!("phase2_greedy/{users}"), || {
            run_phase2_greedy(black_box(&network), &phase1.association, &config).expect("runs")
        });
    }

    // Dynamic repair (paper ref [25]) vs batch re-solve: one arriving user
    // on a 15-extender Phase-I matching.
    let cols = 15usize;
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let rows: Vec<Vec<f64>> = (0..cols - 1)
        .map(|_| (0..cols).map(|_| rng.gen_range(1.0..50.0)).collect())
        .collect();
    let newcomer: Vec<f64> = (0..cols).map(|_| rng.gen_range(1.0..50.0)).collect();

    group.bench_batched(
        "arrival_incremental_repair",
        || {
            let mut inc = IncrementalAssignment::new(cols);
            for r in &rows {
                inc.add_row(r.clone()).expect("capacity available");
            }
            inc
        },
        |mut inc| inc.add_row(black_box(newcomer.clone())).expect("capacity"),
    );
    let mut all = rows.clone();
    all.push(newcomer.clone());
    let matrix = wolt_opt::Matrix::from_rows(&all).expect("well-formed");
    group.bench("arrival_batch_resolve", || {
        max_weight_assignment(black_box(&matrix))
    });
}
