//! `loadgen` — load generator for the `wolt-daemon` Central Controller.
//!
//! Boots the daemon on a loopback port, connects one agent per user, and
//! drives a long churn session (every user joins, then repeated
//! leave/join cycles round-robin) so the controller re-solves hundreds of
//! times under sustained protocol traffic. Reports:
//!
//! * sustained protocol throughput (messages/second into the CC), and
//! * re-solve latency percentiles — receipt of the triggering report or
//!   departure to the last directive ack of the transaction.
//!
//! Fully offline: 127.0.0.1 only, no external services. Writes
//! `BENCH_daemon.json` (canonical workspace JSON) into the current
//! directory alongside the usual CSV rows.
//!
//! ```text
//! cargo run --release -p wolt-bench --bin loadgen -- [users] [cycles] [output]
//! ```

use std::thread;
use std::time::Duration;

use wolt_bench::{columns, f2, header, measured, percentile_sorted, row};
use wolt_daemon::{run_agent, Daemon, DaemonConfig, DaemonOutcome};
use wolt_sim::scenario::ScenarioConfig;
use wolt_sim::Scenario;
use wolt_support::json::{Json, ToJson};
use wolt_support::obs;
use wolt_support::rng::{ChaCha8Rng, SeedableRng};
use wolt_testbed::{ControllerPolicy, SessionEvent};

const SCENARIO_SEED: u64 = 42;
const NOISE_SEED: u64 = 7;

fn churn_events(users: usize, cycles: usize) -> Vec<SessionEvent> {
    let mut events: Vec<SessionEvent> = (0..users).map(SessionEvent::Join).collect();
    for c in 0..cycles {
        let i = c % users;
        events.push(SessionEvent::Leave(i));
        events.push(SessionEvent::Join(i));
    }
    events
}

fn run_load(scenario: &Scenario, events: &[SessionEvent]) -> DaemonOutcome {
    let mut config = DaemonConfig::new(ControllerPolicy::Wolt);
    config.noise_seed = NOISE_SEED;
    let daemon = Daemon::bind("127.0.0.1:0", scenario.clone(), events.to_vec(), config)
        .expect("loopback bind");
    let addr = daemon.local_addr().expect("bound address");
    let agents: Vec<_> = (0..scenario.user_positions.len())
        .map(|i| {
            let scenario = scenario.clone();
            thread::spawn(move || run_agent(addr, &scenario, i, &format!("load-{i}")))
        })
        .collect();
    let outcome = daemon.run().expect("session runs");
    for handle in agents {
        handle
            .join()
            .expect("agent thread")
            .expect("agent exits cleanly");
    }
    outcome
}

/// Nearest-rank percentile over sorted samples; zero when there are
/// none (shared edge-case contract — see [`percentile_sorted`]).
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    percentile_sorted(sorted, p).unwrap_or(Duration::ZERO)
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn main() {
    let mut args = std::env::args().skip(1);
    let users: usize = args.next().map_or(7, |a| a.parse().expect("users"));
    let cycles: usize = args.next().map_or(60, |a| a.parse().expect("cycles"));
    let output = args.next().unwrap_or_else(|| "BENCH_daemon.json".into());

    header(
        "loadgen — wolt-daemon sustained load over loopback TCP",
        "the networked CC sustains agent traffic and re-solves within interactive latencies",
        &format!(
            "lab scenario seed {SCENARIO_SEED}, {users} users, {cycles} leave/join churn cycles, \
             WOLT policy, 127.0.0.1"
        ),
    );

    let scenario_config = ScenarioConfig::lab(users);
    let mut rng = ChaCha8Rng::seed_from_u64(SCENARIO_SEED);
    let scenario = Scenario::generate(&scenario_config, &mut rng).expect("scenario generates");

    let events = churn_events(users, cycles);
    let outcome = run_load(&scenario, &events);
    assert!(outcome.completed, "load session did not complete");
    assert_eq!(outcome.epochs_done, events.len());

    let stats = &outcome.stats;
    let elapsed_s = stats.elapsed.as_secs_f64();
    let msgs_per_sec = stats.msgs_in as f64 / elapsed_s;
    let mut sorted = stats.resolve_latencies.clone();
    sorted.sort();
    let (p50, p90, p99) = (
        percentile(&sorted, 50.0),
        percentile(&sorted, 90.0),
        percentile(&sorted, 99.0),
    );
    let max = sorted.last().copied().unwrap_or(Duration::ZERO);

    columns(&[
        "users",
        "epochs",
        "msgs_in",
        "elapsed_ms",
        "msgs_per_sec",
        "resolve_p50_us",
        "resolve_p90_us",
        "resolve_p99_us",
        "resolve_max_us",
    ]);
    row(&[
        users.to_string(),
        outcome.epochs_done.to_string(),
        stats.msgs_in.to_string(),
        f2(elapsed_s * 1e3),
        f2(msgs_per_sec),
        f2(micros(p50)),
        f2(micros(p90)),
        f2(micros(p99)),
        f2(micros(max)),
    ]);

    let json = Json::obj(vec![
        ("bench", "loadgen".to_string().to_json()),
        ("scenario", "lab".to_string().to_json()),
        ("scenario_seed", SCENARIO_SEED.to_json()),
        ("users", users.to_json()),
        ("churn_cycles", cycles.to_json()),
        ("epochs", outcome.epochs_done.to_json()),
        ("msgs_in", stats.msgs_in.to_json()),
        ("elapsed_ms", (elapsed_s * 1e3).to_json()),
        ("msgs_per_sec", msgs_per_sec.to_json()),
        (
            "resolve_latency_us",
            Json::obj(vec![
                ("p50", micros(p50).to_json()),
                ("p90", micros(p90).to_json()),
                ("p99", micros(p99).to_json()),
                ("max", micros(max).to_json()),
                ("samples", sorted.len().to_json()),
            ]),
        ),
        ("canonical_report", outcome.report.canonical().to_json()),
        // The process-wide observability snapshot: daemon wire traffic,
        // controller decisions, solver work — all counted during the run.
        ("metrics", obs::snapshot().to_json()),
    ]);
    std::fs::write(&output, format!("{}\n", json.to_pretty())).expect("write bench json");
    eprintln!("wrote {output}");

    measured(&format!(
        "sustained {msgs_per_sec:.0} msgs/s over {} epochs; re-solve latency p50 = {:.0} us, \
         p99 = {:.0} us (loopback TCP, directive acks included)",
        outcome.epochs_done,
        micros(p50),
        micros(p99),
    ));
}
